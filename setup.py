"""Setuptools shim.

Kept so that legacy editable installs (``pip install -e . --no-use-pep517``)
work on machines without the ``wheel`` package; all metadata lives in
``pyproject.toml``.
"""

from setuptools import setup

setup()
