"""§III microbenchmark: TCP bandwidth utilisation vs stream count.

Shape criteria: "a single communication stream can only utilize at most
30% of the bandwidth provided by the TCP/IP link"; concurrent streams
push utilisation toward the aggregate limit (~96%), which is the entire
premise of multi-streamed communication.
"""

from benchmarks.conftest import run_once
from repro.harness import bandwidth_utilization


def test_bandwidth_utilization(benchmark, record_table):
    rows = run_once(benchmark, bandwidth_utilization)
    record_table("bandwidth_utilization", rows,
                 "TCP utilisation vs number of concurrent streams (§III)")
    by_streams = {row["streams"]: row for row in rows}

    # One stream: at most ~30% of the raw 30 Gbps link.
    assert by_streams[1]["utilization"] < 0.32
    assert by_streams[1]["utilization"] > 0.2

    # Utilisation grows with streams and approaches the aggregate cap.
    utils = [by_streams[k]["utilization"] for k in (1, 2, 4, 8)]
    assert utils == sorted(utils)
    assert by_streams[8]["utilization"] > 0.85
    assert by_streams[16]["utilization"] <= 1.0
