"""Fig. 14: impact of batch size (BERT-Large, 16 GPUs).

Shape criteria: "AIACC-Training gives better performance on small batch
sizes due to the more frequent gradient communications" — the speedup
over Horovod decreases monotonically as per-GPU batch grows, from a
multi-x gain at tiny batches toward parity at memory-filling batches.
"""

from benchmarks.conftest import run_once
from repro.harness import fig14_batchsize


def test_fig14_batchsize(benchmark, record_table):
    rows = run_once(benchmark, fig14_batchsize)
    record_table("fig14_batchsize", rows,
                 "Fig. 14: BERT-Large speedup over Horovod vs batch size")
    speedups = [row["speedup"] for row in rows]

    # Monotone decrease with batch size.
    assert speedups == sorted(speedups, reverse=True)
    # Strong gain at the smallest batch, approaching parity at the top.
    assert speedups[0] > 2.0
    assert speedups[-1] < 1.3
    assert all(s >= 1.0 for s in speedups)
