"""Fig. 15: RDMA nodes (64 GPUs), speedup over PyTorch-DDP.

Shape criteria: a single RDMA stream uses only 5-10% of the fabric, so
multi-streaming pays off even more than on TCP; "on the large GPT-2 DNN,
AIACC-Training gives a 9.8x speedup over PyTorch-DDP"; bigger models see
bigger gains.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import fig15_rdma


def test_fig15_rdma(benchmark, record_table):
    rows = run_once(benchmark, fig15_rdma)
    record_table("fig15_rdma", rows,
                 "Fig. 15: RDMA (64 GPUs), speedup over PyTorch-DDP")
    by_model = {row["model"]: row for row in rows}

    # AIACC wins for every model.
    assert all(row["speedup"] > 1.0 for row in rows)

    # The paper's headline: ~9.8x on GPT-2 XL.
    assert by_model["gpt2-xl"]["speedup"] == pytest.approx(9.8, rel=0.25)

    # Larger, more communication-bound models gain more.
    assert by_model["gpt2-xl"]["speedup"] > \
        by_model["bert-large"]["speedup"] > \
        by_model["resnet50"]["speedup"]
