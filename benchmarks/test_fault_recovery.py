"""Acceptance benchmark for event-driven fault injection (paper §IV).

A node crash is injected mid-allreduce into a 16-worker simulated AIACC
run.  The engine must *detect* the failure through its sync-round
timeout (not be told about it), abort in-flight units, rebuild the ring
over the survivors, restore from the last checkpoint, and complete the
run — and the measured goodput must agree with the closed-form
:func:`simulate_resilient_training` walk for the same schedule.
"""

import pytest

from benchmarks.conftest import run_once
from repro.sim.faults import FaultPlan, NodeCrash
from repro.training.resilience import (
    run_fault_injected_training,
    simulate_resilient_training,
)
from repro.training.trainer import run_training

MODEL = "resnet50"
NUM_GPUS = 16
ITERATIONS = 20
CHECKPOINT_INTERVAL = 5


def crash_recovery_run():
    baseline = run_training(MODEL, "aiacc", NUM_GPUS,
                            measure_iterations=2, warmup_iterations=1)
    iter_s = baseline.mean_iteration_s
    # Crash 40% into iteration 9 — mid-allreduce, past the checkpoint
    # written after iteration 5.
    crash_at = 8.4 * iter_s
    result = run_fault_injected_training(
        MODEL, FaultPlan([NodeCrash(at_s=crash_at, node=1)]),
        num_gpus=NUM_GPUS, total_iterations=ITERATIONS,
        checkpoint_interval=CHECKPOINT_INTERVAL)
    return iter_s, result


class TestFaultRecovery:
    def test_crash_mid_allreduce_self_heals(self, benchmark, record_table):
        iter_s, result = run_once(benchmark, crash_recovery_run)

        # --- the run completed on the surviving workers ----------------
        assert result.total_iterations == ITERATIONS
        assert result.initial_num_gpus == NUM_GPUS
        assert result.final_num_gpus == 8
        assert len(result.recoveries) == 1
        rec = result.recoveries[0]
        assert rec.failed_nodes == (1,)

        # --- detection went through the sync-round timeout -------------
        counters = result.trace.counters
        assert counters["aiacc.faults.sync_timeout"] >= 1
        assert counters["aiacc.faults.suspect"] >= 1
        assert counters["aiacc.faults.confirm"] == 1
        assert rec.injected_at_s < rec.suspected_at_s < rec.confirmed_at_s

        # --- resumed from the checkpoint boundary -----------------------
        assert rec.resumed_iteration == CHECKPOINT_INTERVAL
        assert rec.failed_at_iteration >= CHECKPOINT_INTERVAL
        assert result.wasted_iterations == rec.lost_iterations

        # --- goodput agrees with the analytical model (±15%) ------------
        failure_at = [min(int(rec.injected_at_s // iter_s),
                          ITERATIONS - 1)]
        analytical = simulate_resilient_training(
            MODEL, iter_s, ITERATIONS, CHECKPOINT_INTERVAL,
            failure_at=failure_at)
        assert result.goodput == pytest.approx(analytical.goodput,
                                               rel=0.15)

        # --- fault events visible in counters and the Chrome trace ------
        for kind in ("inject", "suspect", "confirm", "rebuild", "restore"):
            assert counters[f"aiacc.faults.{kind}"] >= 1, kind
        chrome_names = {ev.get("name")
                        for ev in result.trace.to_chrome_trace()}
        assert {"aiacc.fault.inject", "aiacc.fault.suspect",
                "aiacc.fault.confirm", "aiacc.fault.rebuild",
                "aiacc.fault.restore"} <= chrome_names

        record_table("fault_recovery", [{
            "model": MODEL,
            "workers": f"{NUM_GPUS} -> {result.final_num_gpus}",
            "detection_s": round(rec.detection_latency_s, 2),
            "rebuild_s": round(rec.rebuild_time_s, 1),
            "lost_iters": rec.lost_iterations,
            "goodput": round(result.goodput, 3),
            "analytical": round(analytical.goodput, 3),
        }], title="Self-healing recovery from an injected node crash "
                  "(16 workers, crash mid-allreduce)")
