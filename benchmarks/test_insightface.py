"""§VIII-C: InsightFace face recognition at 128 GPUs.

Shape criteria: the 512 x 1M-identity ArcFace head makes this workload
heavily communication-bound, so the AIACC speedup over (hand-tuned)
Horovod DDL is much larger than on ImageNet ResNet-50 — the paper reports
3.8x at 128 GPUs.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import insightface_speedup, measure


def test_insightface(benchmark, record_table):
    rows = run_once(benchmark, insightface_speedup)
    record_table("insightface", rows,
                 "InsightFace face recognition (128 GPUs)")
    row = rows[0]

    # Paper: 3.8x at 128 GPUs.
    assert row["speedup"] == pytest.approx(3.8, rel=0.2)

    # The speedup dwarfs plain ResNet-50's at the same scale.
    plain_aiacc = measure("resnet50", "aiacc", 128)
    plain_horovod = measure("resnet50", "horovod", 128)
    plain = plain_aiacc.throughput / plain_horovod.throughput
    assert row["speedup"] > 1.5 * plain
