"""Fig. 12: MXNet models — AIACC vs the native KVStore parameter server.

Shape criteria: "the parameter server approach used by MXNet gives a
lower throughput compared to the all-reduce" — AIACC wins every
multi-node point and the gap widens with scale.
"""

from benchmarks.conftest import run_once
from repro.harness import fig12_mxnet


def test_fig12_mxnet(benchmark, record_table):
    rows = run_once(benchmark, fig12_mxnet)
    record_table(
        "fig12_mxnet", rows,
        "Fig. 12: MXNet throughput (AIACC vs KVStore PS)",
        columns=["model", "gpus", "aiacc", "mxnet-kvstore", "aiacc_eff",
                 "mxnet-kvstore_eff"])
    by_key = {(row["model"], row["gpus"]): row for row in rows}

    for (model, gpus), row in by_key.items():
        if gpus > 8:
            assert row["aiacc"] > row["mxnet-kvstore"], (model, gpus)

    for model in ("vgg16", "resnet50"):
        gain_16 = by_key[(model, 16)]["aiacc"] / \
            by_key[(model, 16)]["mxnet-kvstore"]
        gain_256 = by_key[(model, 256)]["aiacc"] / \
            by_key[(model, 256)]["mxnet-kvstore"]
        assert gain_256 > gain_16 > 1.0, model
