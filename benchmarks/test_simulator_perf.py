"""Simulator wall-clock benchmarks: cost of simulating one training step.

Unlike the paper-reproduction benchmarks (which assert *simulated-time*
claims), this suite measures how much *host* wall-clock the simulator
burns per simulated training step — the quantity that decides whether
128–256-rank sweeps are interactive or overnight jobs.

Every scenario runs in **full-link mode** (``representative=False``):
representative mode collapses symmetric clusters to one NIC pair and
would hide the O(flows x links) cost this suite exists to guard.  The
stress scenario adds congestion + the hierarchical algorithm, the
worst case for the fair-share solver (32 nodes x 8 streams per unit).

CI exports the results to ``BENCH_simulator.json`` via
``tools/bench_to_json.py``; the committed file keeps the perf
trajectory across PRs.  Regressions show up as the wall-clock budget
assertions below tripping long before a human notices a slow sweep.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.runtime import AIACCConfig
from repro.frameworks import make_backend
from repro.frameworks.base import IterationStats, TrainContext
from repro.models.zoo import get_model
from repro.training.trainer import build_train_context


@dataclasses.dataclass(frozen=True)
class StepScenario:
    """One benchmarked simulator workload."""

    name: str
    ranks: int
    streams: int
    model: str = "resnet50"
    algorithm: str = "ring"
    congested: bool = False
    #: Leaf-spine core oversubscription (> 1 inserts the shared core
    #: link every inter-node flow traverses — the planner's home turf).
    core_oversubscription: float = 1.0
    #: Generous wall-clock ceiling (seconds) per simulated step; trips
    #: on order-of-magnitude regressions, not scheduler noise.
    budget_s: float = 2.0


#: The benchmark axis: 8 -> 256 ranks at the paper's 4-stream setting,
#: plus the solver's worst case.  ``step-128r-4s`` is the acceptance
#: gate of the scaling work (>= 5x over the pre-optimisation baseline).
SCENARIOS = (
    StepScenario("step-8r-4s", ranks=8, streams=4, budget_s=0.5),
    StepScenario("step-32r-4s", ranks=32, streams=4, budget_s=0.5),
    StepScenario("step-128r-4s", ranks=128, streams=4, budget_s=1.0),
    StepScenario("step-256r-4s", ranks=256, streams=4, budget_s=2.0),
    # The 1024/4096-rank tier rides the vectorized hot state: flow
    # bundling (RING_BUNDLE_MIN_NODES) collapses each ring unit's
    # 2·nodes-flow fan-out into two solver entities, so the acceptance
    # gate of the vectorization work (>= 5x over the pre-vectorization
    # 1024-rank wall time) holds with headroom.
    StepScenario("step-1024r-4s", ranks=1024, streams=4, budget_s=2.0),
    StepScenario("step-4096r-4s", ranks=4096, streams=4, budget_s=4.0),
    StepScenario("stress-256r-hier", ranks=256, streams=24,
                 model="vgg16", algorithm="hierarchical", congested=True,
                 budget_s=8.0),
    StepScenario("planner-128r-ina", ranks=128, streams=4,
                 algorithm="ina", core_oversubscription=4.0,
                 budget_s=4.0),
)


def build_step_context(scenario: StepScenario
                       ) -> tuple[TrainContext, object]:
    """Build a warmed-up full-link training context for ``scenario``."""
    config = AIACCConfig(num_streams=scenario.streams,
                         algorithm=scenario.algorithm)
    backend = make_backend("aiacc", config=config)
    spec = get_model(scenario.model)
    congested = {0: 0.9} if scenario.congested else None
    full_link_default = (congested is None
                         and scenario.core_oversubscription == 1.0)
    ctx = build_train_context(
        spec, backend, scenario.ranks, spec.default_batch_size,
        congested_links=congested,
        core_oversubscription=scenario.core_oversubscription,
        representative=False if full_link_default else None)
    warm = ctx.sim.spawn(backend.warmup(ctx), name="warmup")
    ctx.sim.run(until=warm)
    return ctx, backend


def simulate_step(ctx: TrainContext, backend) -> float:
    """Simulate one full training step; returns simulated seconds."""
    proc = ctx.sim.spawn(backend.iteration(ctx), name="bench-iter")
    ctx.sim.run(until=proc)
    stats = proc.value
    assert isinstance(stats, IterationStats)
    return stats.iteration_time_s


@pytest.mark.parametrize("scenario", SCENARIOS,
                         ids=[s.name for s in SCENARIOS])
def test_simulated_step_wall_clock(benchmark, scenario):
    ctx, backend = build_step_context(scenario)
    # Warm-up iteration outside the timer: first-step costs (packer
    # setup, metric registration) are not steady-state per-step cost.
    sim_step_s = simulate_step(ctx, backend)
    assert sim_step_s > 0

    result = benchmark.pedantic(
        simulate_step, args=(ctx, backend), rounds=3, iterations=1)
    benchmark.extra_info.update(
        ranks=scenario.ranks, streams=scenario.streams,
        model=scenario.model, algorithm=scenario.algorithm,
        congested=scenario.congested, simulated_step_s=result)
    assert benchmark.stats.stats.min < scenario.budget_s, (
        f"{scenario.name}: simulating one step took "
        f"{benchmark.stats.stats.min:.3f}s wall-clock "
        f"(budget {scenario.budget_s}s) — simulator hot-path regression?"
    )
