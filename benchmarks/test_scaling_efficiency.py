"""§VIII-A / §III text claims: scaling efficiencies and speedups.

Shape criteria:

* AIACC scaling efficiency high (paper: "over 0.96"; our fp32 lower
  bound: > 0.9 at 32 GPUs);
* "1.3x and 1.8x improvement over Horovod on ResNet-50 and VGG-16
  respectively with 32 GPUs";
* larger speedups at 256 GPUs (paper: "up to 1.68x and 2.68x" over
  Horovod and PyTorch-DDP).
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import scaling_efficiency_summary


def test_scaling_efficiency_claims(benchmark, record_table):
    rows = run_once(benchmark, scaling_efficiency_summary)
    record_table("scaling_efficiency", rows,
                 "Scaling efficiency and speedups (§VIII-A)")
    by_key = {(row["model"], row["gpus"]): row for row in rows}

    # ResNet-50 @32: ~1.3x over Horovod (Horovod at ~75% efficiency).
    rn32 = by_key[("resnet50", 32)]
    assert rn32["speedup_vs_horovod"] == pytest.approx(1.3, rel=0.15)
    assert rn32["aiacc_eff"] > 0.9

    # VGG-16 @32: ~1.8x over Horovod.
    vgg32 = by_key[("vgg16", 32)]
    assert vgg32["speedup_vs_horovod"] == pytest.approx(1.8, rel=0.15)

    # 256 GPUs: larger gains, in the paper's reported bands (ours runs
    # slightly above the 1.68x/2.68x "up to" values; see EXPERIMENTS.md).
    for model in ("resnet50", "vgg16"):
        large = by_key[(model, 256)]
        small = by_key[(model, 32)]
        assert large["speedup_vs_horovod"] > small["speedup_vs_horovod"]
        assert 1.5 < large["speedup_vs_horovod"] < 3.0
        assert 1.5 < large["speedup_vs_ddp"] < 3.6
