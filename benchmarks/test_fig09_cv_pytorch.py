"""Fig. 9: training throughput of PyTorch CV models.

Shape criteria (paper §VIII-A):

* AIACC fastest for every model on every multi-node GPU count;
* backends indistinguishable on a single node (communication nearly free
  over NVLink);
* the AIACC advantage grows with the number of GPUs;
* BytePS trails the all-reduce frameworks (no extra CPU servers);
* ResNet-50 is the most scalable model.
"""

from benchmarks.conftest import run_once
from repro.harness import fig9_cv_pytorch


def test_fig9_cv_models(benchmark, record_table):
    rows = run_once(benchmark, fig9_cv_pytorch)
    record_table(
        "fig09_cv_pytorch", rows, "Fig. 9: PyTorch CV model throughput",
        columns=["model", "gpus", "aiacc", "horovod", "pytorch-ddp",
                 "byteps", "aiacc_eff", "horovod_eff"])

    by_key = {(row["model"], row["gpus"]): row for row in rows}
    models = ("vgg16", "resnet50", "resnet101")

    for model in models:
        for gpus in (16, 32, 64, 128, 256):
            row = by_key[(model, gpus)]
            competitors = [row["horovod"], row["pytorch-ddp"],
                           row["byteps"]]
            # AIACC wins everywhere beyond one node (ties within 2% can
            # occur at 16 GPUs where compute hides all communication).
            assert row["aiacc"] > max(competitors) * 0.98, (model, gpus)
        for gpus in (32, 64, 128, 256):
            row = by_key[(model, gpus)]
            # Strict win, allowing sub-1% ties on fully compute-bound
            # points (ResNet-101 at 32 GPUs hides all communication; the
            # paper's bars are likewise indistinguishable there).
            assert row["aiacc"] > 0.99 * max(
                row["horovod"], row["pytorch-ddp"], row["byteps"]), \
                (model, gpus)
            if model != "resnet101":
                # BytePS without extra CPU servers trails Horovod once
                # communication matters.  (For ResNet-101 at 256 GPUs our
                # Horovod model's negotiation cost over its ~300 tensors
                # lets BytePS draw even — see EXPERIMENTS.md.)
                assert row["byteps"] < row["horovod"] * 1.02, (model, gpus)

        # Single node: all backends within a few percent.
        single = by_key[(model, 8)]
        rates = [single["aiacc"], single["horovod"],
                 single["pytorch-ddp"]]
        assert max(rates) / min(rates) < 1.1, model

        # Advantage grows with scale.
        gain_32 = by_key[(model, 32)]["aiacc"] / \
            by_key[(model, 32)]["horovod"]
        gain_256 = by_key[(model, 256)]["aiacc"] / \
            by_key[(model, 256)]["horovod"]
        assert gain_256 > gain_32, model

    # High AIACC scaling efficiency at 256 GPUs (paper: ResNet-50 over
    # 95%; our fp32/batch-80 calibration lands slightly lower for
    # ResNet-50 and slightly higher for VGG — see EXPERIMENTS.md).
    effs = {model: by_key[(model, 256)]["aiacc_eff"] for model in models}
    assert effs["resnet50"] > 0.8
    assert all(value > 0.6 for value in effs.values())
