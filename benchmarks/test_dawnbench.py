"""§VIII-C: DAWNBench — time and cost to 93% top-5 on ImageNet.

Shape criteria: with the AIACC recipe (fp16 + AdamSGD + linear decay,
folded into the calibrated epochs-to-target constant) on 128 V100 GPUs,
training lands in the paper's regime: "158 seconds ... with a training
cost of $7.43" on 16 instances.
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import dawnbench


def test_dawnbench(benchmark, record_table):
    rows = run_once(benchmark, dawnbench)
    record_table("dawnbench", rows,
                 "DAWNBench: ResNet-50 to 93% top-5 (128 GPUs)")
    row = rows[0]

    assert row["instances"] == 16
    # Paper: 158 s.  Our simulated throughput is fp32-calibrated, so the
    # match is in the right regime rather than exact.
    assert row["train_seconds"] == pytest.approx(158, rel=0.3)
    assert row["cost_usd"] == pytest.approx(7.43, rel=0.3)
