"""Fig. 10: training throughput of PyTorch NLP models.

Shape criteria: AIACC wins on every multi-node setting; BERT-Large (more
communication per unit compute than Transformer relative to its size)
shows the larger AIACC gap; computation-intensive models scale worse than
ResNet-50 (paper §VIII-A discussion of CUDA-stream limits).
"""

from benchmarks.conftest import run_once
from repro.harness import fig10_nlp_pytorch


def test_fig10_nlp_models(benchmark, record_table):
    rows = run_once(benchmark, fig10_nlp_pytorch)
    record_table(
        "fig10_nlp_pytorch", rows, "Fig. 10: PyTorch NLP model throughput",
        columns=["model", "gpus", "aiacc", "horovod", "pytorch-ddp",
                 "byteps", "aiacc_eff", "horovod_eff"])
    by_key = {(row["model"], row["gpus"]): row for row in rows}

    for model in ("transformer", "bert-large"):
        for gpus in (16, 32, 64, 128, 256):
            row = by_key[(model, gpus)]
            assert row["aiacc"] >= max(row["horovod"], row["pytorch-ddp"],
                                       row["byteps"]), (model, gpus)

    # BERT (302M params) is the communication-heavy NLP model: the AIACC
    # advantage over Horovod is larger than for the 66M Transformer.
    bert_gain = by_key[("bert-large", 64)]["aiacc"] / \
        by_key[("bert-large", 64)]["horovod"]
    transformer_gain = by_key[("transformer", 64)]["aiacc"] / \
        by_key[("transformer", 64)]["horovod"]
    assert bert_gain > transformer_gain

    # Throughput grows monotonically with GPUs for AIACC.
    for model in ("transformer", "bert-large"):
        series = [by_key[(model, gpus)]["aiacc"]
                  for gpus in (8, 16, 32, 64, 128, 256)]
        assert series == sorted(series), model
