"""§V-B: algorithm choice under link congestion.

Shape criteria: on a healthy fabric the two all-reduce algorithms are
within a few percent (the auto-tuner's choice is workload-dependent); on
a fabric where one node's NIC is congested by other tenants, the
hierarchical algorithm wins clearly — the reason it exists.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import congested_algorithm_choice


def test_congested_algorithm_choice(benchmark, record_table):
    rows = run_once(benchmark, congested_algorithm_choice)
    record_table("congested_algorithm", rows,
                 "Ring vs hierarchical all-reduce under congestion (§V-B)")
    by_scenario = {row["scenario"]: row for row in rows}

    healthy = by_scenario["healthy"]["hierarchical_speedup"]
    congested = by_scenario["congested"]["hierarchical_speedup"]
    # Healthy: near-tie (within 10%).
    assert 0.9 < healthy < 1.1
    # Congested: hierarchical clearly preferable, and more so than on
    # the healthy fabric.
    assert congested > 1.15
    assert congested > healthy
