"""§VIII-C: the production CTR recommendation workload at 128 GPUs.

Shape criteria: Horovod's master-node negotiation over thousands of
embedding-gradient tensors is the bottleneck; AIACC's decentralized
synchronization yields a near-order-of-magnitude speedup (paper: 13.4x
over hand-tuned Horovod-DDL; our synthetic CTR stand-in lands in the
same regime — see EXPERIMENTS.md for the calibration notes).
"""

from benchmarks.conftest import run_once
from repro.harness import ctr_production


def test_ctr_production(benchmark, record_table):
    rows = run_once(benchmark, ctr_production)
    record_table("ctr_production", rows,
                 "Production CTR workload (128 GPUs)")
    row = rows[0]

    # Near-order-of-magnitude win from decentralized synchronization.
    assert row["speedup"] > 5.0
    # Throughput must be in the "billions of entries in hours" regime
    # the paper describes (100e9 entries / 5 h needs ~5.6M entries/s).
    assert row["aiacc_entries_per_s"] > 1e6
