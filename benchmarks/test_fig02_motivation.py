"""Fig. 2: Horovod throughput vs. the theoretical linear speedup.

Shape criteria: near-linear within one NVLink node, a visible gap from
linear once multiple nodes communicate over TCP, and ~75% scaling
efficiency at 32 GPUs (the paper's headline motivation number).
"""

from benchmarks.conftest import run_once
from repro.harness import fig2_motivation


def test_fig2_motivation(benchmark, record_table):
    rows = run_once(benchmark, fig2_motivation)
    record_table("fig02_motivation", rows,
                 "Fig. 2: Horovod vs linear scaling (ResNet-50)")
    by_gpus = {row["gpus"]: row for row in rows}

    # Single node (NVLink) is near-linear.
    assert by_gpus[8]["scaling_efficiency"] > 0.95
    # Multi-node efficiency degrades monotonically.
    assert by_gpus[16]["scaling_efficiency"] > by_gpus[32][
        "scaling_efficiency"]
    # Paper: "Horovod gives a scaling efficiency of 75% when using 32
    # GPUs".
    assert 0.65 < by_gpus[32]["scaling_efficiency"] < 0.85
    # Throughput still grows with GPUs (more GPUs do help, just poorly).
    assert by_gpus[32]["horovod_throughput"] > \
        by_gpus[16]["horovod_throughput"]
