"""Table I: DNN model characteristics (#parameters, #FLOPs)."""

import pytest

from benchmarks.conftest import run_once
from repro.models import table1

#: The paper's printed values.
PAPER_TABLE1 = {
    "vgg16": (138.3e6, 31e9),
    "resnet50": (25.6e6, 4e9),
    "resnet101": (29.4e6, 8e9),
    "transformer": (66.5e6, 145e9),
    "bert-large": (302.2e6, 232e9),
}


def test_table1(benchmark, record_table):
    rows = run_once(benchmark, table1)
    record_table("table1_models", rows, "Table I: DNN model characteristics")
    for row in rows:
        params, flops = PAPER_TABLE1[row["model"]]
        assert row["parameters"] == pytest.approx(params, rel=0.001)
        assert row["flops"] == pytest.approx(flops, rel=0.001)
