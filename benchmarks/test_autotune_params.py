"""§VIII-D: auto-tuning parameter choices across deployments.

Shape criteria: "the number of concurrent CUDA streams varies between 2
and 24, whereas AIACC-Training tends to use a larger number of CUDA
streams when a higher number of GPUs is available"; "the chosen
communication granularity is larger for the Transformer-based model".
The ring-vs-hierarchical choice is within noise in our cost model (see
EXPERIMENTS.md), so it is reported but not asserted.
"""

from benchmarks.conftest import run_once
from repro.harness import autotune_parameters


def test_autotune_parameter_trends(benchmark, record_table):
    rows = run_once(benchmark, autotune_parameters)
    record_table("autotune_params", rows,
                 "Auto-tuned communication parameters (§VIII-D)")
    by_key = {(row["model"], row["gpus"]): row for row in rows}

    # All choices stay in the paper's observed stream range.
    assert all(2 <= row["streams"] <= 24 for row in rows)

    # More GPUs -> more streams (ResNet-50 at 16 vs 128 GPUs).
    assert by_key[("resnet50", 128)]["streams"] >= \
        by_key[("resnet50", 16)]["streams"]

    # The Transformer-family model tunes to a granularity at least as
    # large as the CV model's.
    assert by_key[("bert-large", 64)]["granularity_mb"] >= \
        by_key[("resnet50", 16)]["granularity_mb"]

    # The tuner always returns a valid algorithm.
    assert all(row["algorithm"] in ("ring", "hierarchical")
               for row in rows)
