"""Shared helpers for the paper-reproduction benchmarks.

Every benchmark runs its experiment exactly once (the simulator is
deterministic), asserts the paper's *shape* criteria, and writes the
regenerated table to ``results/`` so a benchmark run leaves all paper
tables on disk.
"""

from __future__ import annotations

import pathlib

import pytest

from repro.harness.report import format_table, save_report

#: Where regenerated tables are written.
RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


@pytest.fixture
def record_table():
    """Fixture: render rows, save under results/, and echo to stdout."""

    def _record(name: str, rows, title: str, columns=None) -> str:
        table = format_table(rows, columns=columns, title=title)
        save_report(name, table, directory=RESULTS_DIR)
        print()
        print(table)
        return table

    return _record


def run_once(benchmark, fn, *args, **kwargs):
    """Run an experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs,
                              rounds=1, iterations=1)
