"""§VIII-A what-if: future high-end GPUs amplify the AIACC advantage.

Shape criteria: "As future-generation GPUs are likely to provide more
parallel execution units, we expect AIACC-Training will deliver better
performance on future high-end GPUs by leveraging the hardware
parallelism" — on an A100 cluster (more SMs, faster compute) the
AIACC-over-Horovod speedup must exceed the V100 cluster's.
"""

from benchmarks.conftest import run_once
from repro.harness import future_gpu_whatif


def test_future_gpu_whatif(benchmark, record_table):
    rows = run_once(benchmark, future_gpu_whatif)
    record_table("future_gpu", rows,
                 "What-if: V100 vs A100 (VGG-16, 64 GPUs, 30 Gbps TCP)")
    by_gpu = {row["gpu"]: row for row in rows}

    # Both generations: AIACC wins.
    assert all(row["speedup"] > 1.0 for row in rows)
    # Faster GPUs make training more communication-bound, so the
    # multi-stream advantage grows.
    assert by_gpu["A100"]["speedup"] > by_gpu["V100"]["speedup"]
    # Absolute throughput improves with the better GPU too.
    assert by_gpu["A100"]["aiacc"] > by_gpu["V100"]["aiacc"]
