"""Fig. 13: hybrid data + model parallelism on ResNet-50 (MXNet path).

Shape criteria: AIACC consistently improves the MXNet DDL implementation,
"improving the throughput by 2.8x when using 64 GPUs".
"""

import pytest

from benchmarks.conftest import run_once
from repro.harness import fig13_hybrid


def test_fig13_hybrid(benchmark, record_table):
    rows = run_once(benchmark, fig13_hybrid)
    record_table("fig13_hybrid", rows,
                 "Fig. 13: hybrid data+model parallelism (ResNet-50)")
    by_gpus = {row["gpus"]: row for row in rows}

    # AIACC wins on every multi-node point and the gap grows.
    speedups = [by_gpus[gpus]["speedup"] for gpus in (16, 32, 64)]
    assert all(s > 1.0 for s in speedups)
    assert speedups == sorted(speedups)

    # Paper's headline: 2.8x at 64 GPUs.
    assert by_gpus[64]["speedup"] == pytest.approx(2.8, rel=0.25)
