"""§V: planner-synthesized backends vs spine oversubscription.

Shape criteria: on a healthy fabric the NVLink-aware algorithms
(hierarchical and the planner schedules) all beat the flat ring, and
in-network aggregation is *not* the winner — its switch detour costs
latency the healthy NICs don't repay.  On a 4:1 oversubscribed
leaf-spine core the ordering flips: ina moves ~S(1+1/m) bytes per node
through the core instead of ~2S, so it must win outright.
"""

from benchmarks.conftest import run_once
from repro.harness.experiments import planner_backend_sweep


def test_planner_backend_sweep(benchmark, record_table):
    rows = run_once(benchmark, planner_backend_sweep)
    record_table("planner_backends", rows,
                 "Planner backends vs spine oversubscription (§V)")
    by_scenario = {row["scenario"]: row for row in rows}

    healthy = by_scenario["healthy"]
    oversub = by_scenario["oversubscribed"]
    # Healthy fabric: hierarchical-style schedules beat the flat ring,
    # and the switch-aggregation detour does not pay off.
    assert healthy["hierarchical_ms"] < healthy["ring_ms"]
    assert healthy["best"] != "ina"
    # Oversubscribed spine: in-network aggregation wins outright.
    assert oversub["best"] == "ina"
    assert oversub["ina_ms"] < oversub["hierarchical_ms"]
    assert oversub["ina_ms"] < oversub["ring_ms"]
    # Congestion hurts everyone, but ina least of the planner backends.
    assert oversub["ina_ms"] > healthy["ina_ms"]
