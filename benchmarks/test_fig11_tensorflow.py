"""Fig. 11: TensorFlow models — the unified library gives portable gains.

Shape criteria: same winner/shape as the PyTorch figures ("AIACC-Training
gives portable performance across DL frameworks"), with a speedup over
Horovod approaching ~3x for the communication-bound model at 256 GPUs
("a speedup of 3.3x over Horovod when using 256 GPUs").
"""

from benchmarks.conftest import run_once
from repro.harness import fig11_tensorflow


def test_fig11_tensorflow(benchmark, record_table):
    rows = run_once(benchmark, fig11_tensorflow)
    record_table(
        "fig11_tensorflow", rows,
        "Fig. 11: TensorFlow throughput (AIACC vs Horovod engine)",
        columns=["model", "gpus", "aiacc", "horovod", "aiacc_eff",
                 "horovod_eff"])
    by_key = {(row["model"], row["gpus"]): row for row in rows}

    for (model, gpus), row in by_key.items():
        if gpus > 8:
            assert row["aiacc"] > row["horovod"], (model, gpus)

    # Best-case speedup at 256 GPUs lands in the paper's 2-3.5x band.
    best = max(by_key[(model, 256)]["aiacc"] /
               by_key[(model, 256)]["horovod"]
               for model in ("vgg16", "resnet50", "bert-large"))
    assert 2.0 < best < 3.6
