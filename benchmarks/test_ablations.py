"""Ablation benchmarks for the design choices called out in DESIGN.md.

Not paper figures, but quantitative support for the paper's three design
decisions: multi-streaming, decentralized synchronization, and adaptive
packing with tensor splitting.
"""

from benchmarks.conftest import run_once
from repro.core.runtime import AIACCConfig
from repro.frameworks import make_backend
from repro.training.trainer import run_training


def sweep_streams(model="vgg16", num_gpus=64,
                  streams_axis=(1, 2, 4, 8, 16, 24)):
    rows = []
    for streams in streams_axis:
        config = AIACCConfig(num_streams=streams, granularity_bytes=8e6)
        result = run_training(model, make_backend("aiacc", config=config),
                              num_gpus, measure_iterations=2,
                              warmup_iterations=1)
        rows.append({"streams": streams,
                     "throughput": result.throughput,
                     "efficiency": result.scaling_efficiency})
    return rows


def sweep_granularity(model="bert-large", num_gpus=64,
                      granularities_mb=(1, 4, 16, 64, 256)):
    rows = []
    for granularity in granularities_mb:
        config = AIACCConfig(num_streams=16,
                             granularity_bytes=granularity * 1e6)
        result = run_training(model, make_backend("aiacc", config=config),
                              num_gpus, measure_iterations=2,
                              warmup_iterations=1)
        rows.append({"granularity_mb": granularity,
                     "throughput": result.throughput})
    return rows


def compare_sync_schemes(num_gpus=128):
    """Decentralized (AIACC) vs master-based (Horovod) negotiation on the
    gradient-count-heavy CTR workload, with the data plane equalised as
    far as the frameworks allow (single stream AIACC)."""
    single_stream = AIACCConfig(num_streams=1, granularity_bytes=64e6)
    aiacc = run_training("ctr", make_backend("aiacc", config=single_stream),
                         num_gpus, measure_iterations=2,
                         warmup_iterations=1)
    horovod = run_training("ctr", "horovod", num_gpus,
                           measure_iterations=2, warmup_iterations=1)
    return [{
        "scheme": "decentralized (AIACC, 1 stream)",
        "iteration_s": aiacc.mean_iteration_s,
    }, {
        "scheme": "master-based (Horovod)",
        "iteration_s": horovod.mean_iteration_s,
    }]


def compare_packing(num_gpus=64):
    """Tensor splitting on/off: VGG's 410 MB fc6 gradient with a packer
    that can slice it (16 MB units) vs Horovod-style whole-tensor
    transfers approximated by a huge granularity."""
    split = AIACCConfig(num_streams=16, granularity_bytes=16e6)
    whole = AIACCConfig(num_streams=16, granularity_bytes=256e6)
    rows = []
    for label, config in (("split into 16MB units", split),
                          ("whole tensors (256MB units)", whole)):
        result = run_training("vgg16", make_backend("aiacc", config=config),
                              num_gpus, measure_iterations=2,
                              warmup_iterations=1)
        rows.append({"packing": label,
                     "throughput": result.throughput})
    return rows


def test_ablation_streams(benchmark, record_table):
    rows = run_once(benchmark, sweep_streams)
    record_table("ablation_streams", rows,
                 "Ablation: number of communication streams (VGG-16, 64 GPUs)")
    by_streams = {row["streams"]: row for row in rows}
    # Throughput rises steeply up to saturation (~4 streams at 30% each).
    assert by_streams[4]["throughput"] > 2 * by_streams[1]["throughput"]
    # Beyond saturation, more streams change little (within 15%).
    assert abs(by_streams[24]["throughput"] - by_streams[8]["throughput"]) \
        < 0.15 * by_streams[8]["throughput"]


def test_ablation_granularity(benchmark, record_table):
    rows = run_once(benchmark, sweep_granularity)
    record_table("ablation_granularity", rows,
                 "Ablation: all-reduce unit granularity (BERT-Large, 64 GPUs)")
    best = max(row["throughput"] for row in rows)
    worst = min(row["throughput"] for row in rows)
    # Granularity matters: the extremes differ measurably.
    assert best > 1.05 * worst
    # Neither extreme is optimal (interior optimum).
    assert rows[0]["throughput"] < best
    assert rows[-1]["throughput"] < best


def test_ablation_decentralized_sync(benchmark, record_table):
    rows = run_once(benchmark, compare_sync_schemes)
    record_table("ablation_sync", rows,
                 "Ablation: decentralized vs master-based synchronization "
                 "(CTR, 128 GPUs)")
    decentralized, master = rows[0]["iteration_s"], rows[1]["iteration_s"]
    # Even with a single communication stream, removing the master
    # negotiation is a large win on many-gradient workloads.
    assert master > 1.5 * decentralized


def test_ablation_packing(benchmark, record_table):
    rows = run_once(benchmark, compare_packing)
    record_table("ablation_packing", rows,
                 "Ablation: tensor splitting (VGG-16, 64 GPUs)")
    split, whole = rows[0]["throughput"], rows[1]["throughput"]
    # Splitting the huge FC gradients across streams is a clear win
    # (the 256 MB "whole" mode still splits the 410 MB fc6 once, so the
    # contrast is damped but must stay above 10%).
    assert split > 1.1 * whole


def sweep_byteps_servers(num_gpus=64,
                         server_counts=(0, 2, 8, 16)):
    """BytePS with/without dedicated CPU server machines (§VIII-A)."""
    from repro.frameworks import BytePSBackend

    rows = []
    for extra in server_counts:
        result = run_training(
            "vgg16", BytePSBackend(extra_cpu_server_nodes=extra),
            num_gpus, measure_iterations=2, warmup_iterations=1)
        rows.append({"extra_cpu_servers": extra,
                     "throughput": result.throughput})
    return rows


def test_ablation_byteps_cpu_servers(benchmark, record_table):
    rows = run_once(benchmark, sweep_byteps_servers)
    record_table("ablation_byteps_servers", rows,
                 "Ablation: BytePS dedicated CPU servers (VGG-16, 64 GPUs)")
    by_servers = {row["extra_cpu_servers"]: row["throughput"]
                  for row in rows}
    # The paper: "To achieve improved performance for BytePS will incur
    # an extra financial cost for CPU machine subscription."
    assert by_servers[8] > 1.2 * by_servers[0]
    # Under-provisioned dedicated servers bottleneck on their own NICs.
    assert by_servers[2] < by_servers[8]
