"""Quickstart: data-parallel training through the Perseus API.

This is the numeric mode of the library: four simulated workers train a
small numpy MLP with real gradients flowing through the complete
AIACC-Training pipeline — registration, decentralized bit-vector
synchronization, gradient packing, ring all-reduce, unpacking — and the
result is bit-compatible with single-worker training on the combined
batch.

It also demonstrates the source-to-source translator: porting a
sequential training script (and a Horovod script) to Perseus.

Run:  python examples/quickstart.py
"""

from repro.core.runtime import AIACCConfig
from repro.core.translator import (
    translate_horovod_source,
    translate_sequential_source,
)
from repro.training.numeric import (
    TinyMLP,
    make_synthetic_task,
    train_data_parallel,
    train_single,
)
from repro.training.optimizer import SGD


def main() -> None:
    workers = 4
    global_batch = 64
    steps = 30
    task = make_synthetic_task(num_samples=1024, input_dim=16,
                               num_classes=4, seed=0)

    # --- distributed training through Perseus ---------------------------
    print(f"Training a TinyMLP on {workers} simulated workers "
          f"(global batch {global_batch}) ...")
    model = TinyMLP(16, 32, 4, seed=1)
    config = AIACCConfig(granularity_bytes=1 << 20, nan_check=True)
    worker_params, losses = train_data_parallel(
        model, task, SGD(lr=0.2, momentum=0.9), steps, workers,
        global_batch, config=config)
    print(f"  loss: {losses[0]:.3f} -> {losses[-1]:.3f}")
    accuracy = TinyMLP.accuracy(worker_params[0], task.inputs, task.labels)
    print(f"  accuracy after {steps} steps: {accuracy:.1%}")

    # --- verify against single-worker training --------------------------
    reference = TinyMLP(16, 32, 4, seed=1)
    train_single(reference, task, SGD(lr=0.2, momentum=0.9), steps,
                 global_batch)
    import numpy as np

    drift = max(
        float(np.abs(worker_params[0][name] - value).max())
        for name, value in reference.parameters.items()
    )
    print(f"  max parameter drift vs single-worker training: {drift:.2e}")
    assert drift < 1e-4, "distributed training diverged from reference"

    # --- the one-line Horovod port ---------------------------------------
    horovod_script = "import horovod.torch as hvd\nhvd.init()\n"
    print("\nPorting a Horovod script (the one-line change):")
    print("  before:", horovod_script.splitlines()[0])
    print("  after: ", translate_horovod_source(
        horovod_script).splitlines()[0])

    # --- translating a sequential script ----------------------------------
    sequential = "optimizer = SGD(lr=0.1, momentum=0.9)\n"
    print("\nTranslating a sequential training script for 8 workers:")
    for line in translate_sequential_source(
            sequential, num_workers=8).splitlines():
        print("  " + line)


if __name__ == "__main__":
    main()
