"""Fault tolerance and elastic deployment (paper Section IV).

A production scenario on the numeric engine:

1. four workers train with periodic checkpoints;
2. one worker's node fails mid-run — the coordinator shrinks the group
   and restores everyone from the last checkpoint;
3. later two fresh workers join — the coordinator broadcasts the *live*
   parameters to them (no checkpoint round-trip) and training continues
   at the larger scale;
4. a NaN is injected to show the gradient debugger attributing it to the
   exact parameter and worker.

Run:  python examples/fault_tolerance_elastic.py
"""

import tempfile

import numpy as np

from repro.core.fault_tolerance import CheckpointManager, ElasticCoordinator
from repro.core.perseus import PerseusSession
from repro.core.runtime import AIACCConfig
from repro.errors import NaNGradientError
from repro.training.numeric import TinyMLP, make_synthetic_task
from repro.training.optimizer import SGD, DistributedOptimizer


def train_steps(session, optimizer, worker_params, task, start, steps,
                batch_per_worker):
    """Run some data-parallel steps; returns the last step index."""
    for step in range(start, start + steps):
        offset = (step * batch_per_worker * session.size()) % 512
        grads = []
        for rank in range(session.size()):
            lo = (offset + rank * batch_per_worker) % 512
            hi = lo + batch_per_worker
            _, g = TinyMLP.loss_and_grads(worker_params[rank],
                                          task.inputs[lo:hi],
                                          task.labels[lo:hi])
            grads.append(g)
        optimizer.step(worker_params, grads)
    return start + steps


def main() -> None:
    task = make_synthetic_task(num_samples=512, seed=0)
    model = TinyMLP(16, 16, 4, seed=1)

    with tempfile.TemporaryDirectory() as ckpt_dir:
        checkpoints = CheckpointManager(ckpt_dir, keep_last=2)
        coordinator = ElasticCoordinator(checkpoints, initial_workers=4)

        session = PerseusSession(4)
        optimizer = DistributedOptimizer(SGD(lr=0.1, momentum=0.9), session)
        worker_params = [model.clone_parameters() for _ in range(4)]

        print("Phase 1: training on 4 workers with checkpointing ...")
        step = train_steps(session, optimizer, worker_params, task, 0, 10, 8)
        checkpoints.save(step, worker_params[0])
        step = train_steps(session, optimizer, worker_params, task,
                           step, 5, 8)
        print(f"  reached step {step}; last checkpoint at step 10")

        print("\nPhase 2: node failure! restoring from checkpoint ...")
        restored_step, params = coordinator.on_failure(failed_workers=1)
        print(f"  resumed at step {restored_step} with "
              f"{coordinator.live_workers} workers "
              f"(steps 11-15 are recomputed)")
        session = PerseusSession(coordinator.live_workers)
        optimizer = DistributedOptimizer(SGD(lr=0.1, momentum=0.9), session)
        worker_params = [
            {k: v.copy() for k, v in params.items()}
            for _ in range(coordinator.live_workers)
        ]
        step = train_steps(session, optimizer, worker_params, task,
                           restored_step, 5, 8)

        print("\nPhase 3: two new nodes join; broadcasting parameters ...")
        worker_params = coordinator.on_join(worker_params, new_workers=2)
        print(f"  now {coordinator.live_workers} workers; joiners received "
              f"identical parameters: "
              f"{all(np.array_equal(worker_params[0]['fc1.weight'], p['fc1.weight']) for p in worker_params)}")
        session = PerseusSession(coordinator.live_workers)
        optimizer = DistributedOptimizer(SGD(lr=0.1, momentum=0.9), session)
        step = train_steps(session, optimizer, worker_params, task,
                           step, 5, 8)
        accuracy = TinyMLP.accuracy(worker_params[0], task.inputs,
                                    task.labels)
        print(f"  training continued to step {step}; accuracy "
              f"{accuracy:.1%}")

        print("\nPhase 4: NaN debugging ...")
        nan_session = PerseusSession(
            2, config=AIACCConfig(nan_check=True))
        nan_session.register_parameters({"w": (3,)})
        good = {"w": np.ones(3)}
        bad = {"w": np.array([1.0, np.nan, 3.0])}
        try:
            nan_session.reduce_gradients([good, bad])
        except NaNGradientError as error:
            print(f"  caught: {error}")


if __name__ == "__main__":
    main()
