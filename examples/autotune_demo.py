"""Auto-tuning demo: the Section VI parameter search, end to end.

Runs the multi-armed-bandit meta solver over the four-technique ensemble
(grid search, PBT, Bayesian optimization, Hyperband) to choose the number
of communication streams, the all-reduce unit granularity and the
algorithm for a deployment — then shows the settings cache warm-starting
a *similar* deployment, exactly as the paper describes for repeated GPU
cloud jobs.

Run:  python examples/autotune_demo.py
"""

from repro.autotune import AutoTuner, SettingsCache, make_evaluator
from repro.harness import format_table
from repro.models import get_model
from repro.sim import Simulator, alibaba_v100_cluster


def topology(num_gpus: int):
    return alibaba_v100_cluster(Simulator(), num_gpus).topology_graph()


def main() -> None:
    cache = SettingsCache()
    model = get_model("resnet50")

    # --- first deployment: cold search -----------------------------------
    print("Tuning ResNet-50 on 64 GPUs (cold start, budget 40) ...")
    tuner = AutoTuner(budget=40, seed=0)
    result = tuner.tune(make_evaluator("resnet50", 64))
    print(f"  best: {result.best_point.num_streams} streams, "
          f"{result.best_point.granularity_bytes / 1e6:.0f} MB units, "
          f"{result.best_point.algorithm} all-reduce "
          f"({result.best_cost_s * 1e3:.1f} ms/iteration)")
    usage_rows = [{"technique": name, "iterations": count}
                  for name, count in sorted(
                      result.technique_usage.items())]
    print(format_table(usage_rows,
                       title="Warm-up budget allocation by the MAB"))

    cache.store("resnet50@64", model, topology(64), result.best_point,
                result.best_cost_s)

    # --- similar deployment: warm start from the cache --------------------
    print("\nTuning ResNet-50 on 72 GPUs (warm start from cache) ...")
    start = cache.starting_point(model, topology(72))
    assert start is not None, "cache lookup should find the 64-GPU entry"
    print(f"  cache suggests: {start.num_streams} streams, "
          f"{start.granularity_bytes / 1e6:.0f} MB, {start.algorithm}")
    warm_tuner = AutoTuner(budget=15, seed=1, initial_point=start)
    warm = warm_tuner.tune(make_evaluator("resnet50", 72))
    first_trial = warm.trials[0]
    print(f"  first warm-up iteration used the cached point via "
          f"{first_trial.technique!r}; final best "
          f"{warm.best_cost_s * 1e3:.1f} ms/iteration")

    # --- the paper's qualitative trend -------------------------------------
    print("\nStream counts chosen across scales "
          "(paper: more GPUs -> more streams):")
    for gpus in (16, 64, 128):
        result = AutoTuner(budget=30, seed=0).tune(
            make_evaluator("resnet50", gpus))
        print(f"  {gpus:4d} GPUs -> {result.best_point.num_streams} "
              f"streams, {result.best_point.granularity_bytes / 1e6:.0f} "
              f"MB units")


if __name__ == "__main__":
    main()
