"""DAWNBench race: time and cost to 93% top-5 on ImageNet (paper §VIII-C).

"An earlier version of AIACC-Training was top in the DAWNBench league
board for both training time and cost.  Specifically, AIACC-Training
achieved the training goal within 158 seconds using 128 V100 GPUs across
16 computing instances with a training cost of $7.43."

This example races four configurations to the DAWNBench target,
combining two ingredients the paper contributes:

* the *communication* side — measured throughput per backend on the
  simulated 128-GPU cluster;
* the *recipe* side — epochs-to-target for the AIACC recipe (AdamSGD +
  linear decay + fp16, calibrated) vs the standard SGD + step-decay
  schedule.

It also shows the hybrid AdamSGD optimizer converging faster than plain
SGD on the numeric MLP — the micro-scale version of the recipe effect.

Run:  python examples/dawnbench_race.py
"""

from repro.harness import format_table, measure
from repro.training.convergence import (
    AIACC_RECIPE_EPOCHS,
    BASELINE_RECIPE_EPOCHS,
    time_to_accuracy,
)
from repro.training.lr_schedule import LinearDecay
from repro.training.numeric import TinyMLP, make_synthetic_task
from repro.training.optimizer import SGD, AdamSGD


def main() -> None:
    num_gpus = 128
    print(f"Measuring ResNet-50 throughput on {num_gpus} simulated V100s ...")
    contenders = []
    for backend, recipe, epochs in (
        ("aiacc", "AIACC recipe (AdamSGD + linear decay + fp16)",
         AIACC_RECIPE_EPOCHS),
        ("aiacc", "standard recipe (SGD + step decay)",
         BASELINE_RECIPE_EPOCHS),
        ("horovod", "AIACC recipe on Horovod communication",
         AIACC_RECIPE_EPOCHS),
        ("pytorch-ddp", "AIACC recipe on PyTorch-DDP communication",
         AIACC_RECIPE_EPOCHS),
    ):
        throughput = measure("resnet50", backend, num_gpus).throughput
        tta = time_to_accuracy(throughput, num_gpus,
                               epochs_to_target=epochs)
        contenders.append({
            "configuration": recipe,
            "backend": backend,
            "images_per_s": throughput,
            "time_to_93pct_s": tta.train_seconds,
            "cost_usd": tta.cost_usd,
        })
    print(format_table(contenders,
                       title="Race to 93% top-5 on ImageNet (128 GPUs)"))
    winner = min(contenders, key=lambda row: row["time_to_93pct_s"])
    print(f"\nWinner: {winner['backend']} + fast recipe at "
          f"{winner['time_to_93pct_s']:.0f} s / ${winner['cost_usd']:.2f} "
          f"(paper: 158 s / $7.43)")

    # --- the optimizer recipe at micro scale -------------------------------
    print("\nAdamSGD vs plain SGD on the numeric MLP "
          "(20 steps, same data):")
    task = make_synthetic_task(num_samples=512, seed=0)
    schedule = LinearDecay(base_lr=0.05, total_steps=20, warmup_steps=2)
    for label, optimizer in (
        ("AdamSGD (paper §IV)", AdamSGD(lr=0.05, sgd_lr=0.05,
                                        switch_step=10)),
        ("SGD", SGD(lr=0.05)),
    ):
        model = TinyMLP(16, 16, 4, seed=1)
        losses = []
        for step in range(20):
            lo = (step * 64) % 448
            loss, grads = TinyMLP.loss_and_grads(
                model.parameters, task.inputs[lo:lo + 64],
                task.labels[lo:lo + 64])
            if isinstance(optimizer, AdamSGD):
                optimizer.set_lr(schedule.lr_at(step))
            else:
                optimizer.lr = schedule.lr_at(step)
            optimizer.step(model.parameters, grads)
            losses.append(loss)
        print(f"  {label:22s} loss {losses[0]:.3f} -> {losses[-1]:.3f}")


if __name__ == "__main__":
    main()
