"""Shared-cloud effects: congestion, oversubscription, algorithm choice.

The paper motivates the tree (hierarchical) all-reduce with exactly this
scenario: "it is useful when some of the physical network links become
congested due to burst communications from other shared cloud users"
(§V-B).  This example shows three shared-cloud effects end to end:

1. a congested node NIC flips the ring-vs-hierarchical choice;
2. an oversubscribed datacenter core slows every concurrent all-reduce;
3. a mid-transfer bandwidth drop (another tenant's burst) stretches an
   in-flight transfer — the runtime variability the §VI auto-tuner
   exists to absorb.

Run:  python examples/congested_cloud.py
"""

from repro.collectives import TimedCollectives
from repro.core.runtime import AIACCConfig
from repro.frameworks import make_backend
from repro.harness import format_table
from repro.sim import FluidNetwork, Simulator
from repro.sim.topology import Cluster, NodeSpec
from repro.training.trainer import run_training


def algorithm_choice() -> None:
    print("1. Ring vs hierarchical all-reduce, healthy vs congested NIC")
    rows = []
    for scenario, links in (("healthy", None), ("congested", {1: 0.25})):
        times = {}
        for algorithm in ("ring", "hierarchical"):
            config = AIACCConfig(num_streams=16, granularity_bytes=8e6,
                                 algorithm=algorithm)
            result = run_training(
                "resnet50", make_backend("aiacc", config=config), 32,
                measure_iterations=2, warmup_iterations=1,
                congested_links=links)
            times[algorithm] = result.mean_iteration_s * 1e3
        rows.append({"scenario": scenario,
                     "ring_ms": times["ring"],
                     "hierarchical_ms": times["hierarchical"],
                     "hier_advantage": times["ring"]
                     / times["hierarchical"]})
    print(format_table(rows))
    print("   -> near-tie on a healthy fabric; congestion makes the "
          "hierarchical algorithm a clear win (paper §V-B).\n")


def oversubscribed_core() -> None:
    print("2. Oversubscribed datacenter core (8 concurrent all-reduces)")
    rows = []
    for factor in (1.0, 2.0, 4.0):
        sim = Simulator()
        net = FluidNetwork(sim)
        cluster = Cluster(sim, 8, NodeSpec(),
                          core_oversubscription=factor)
        timed = TimedCollectives(sim, net, cluster)
        events = [timed.allreduce(20e6) for _ in range(8)]
        sim.run(until=sim.all_of(events))
        rows.append({"core_oversubscription": factor,
                     "all_reduce_ms": sim.now * 1e3})
    print(format_table(rows))
    print("   -> a 4:1 core turns a 89 ms exchange into ~350 ms.\n")


def bursty_tenant() -> None:
    print("3. A tenant burst halves our NIC mid-transfer")
    sim = Simulator()
    net = FluidNetwork(sim)
    cluster = Cluster(sim, 2, NodeSpec())
    timed = TimedCollectives(sim, net, cluster, representative=False)
    done = timed.allreduce(100e6)

    def burst():
        yield sim.timeout(0.05)
        for link in (cluster.nic_out[0], cluster.nic_in[1]):
            net.set_link_capacity(link, link.capacity_bps * 0.3)
        print(f"   t={sim.now * 1e3:6.1f} ms: burst begins "
              f"(NIC at 30% capacity)")
        yield sim.timeout(0.1)
        for link in (cluster.nic_out[0], cluster.nic_in[1]):
            net.set_link_capacity(link, link.capacity_bps / 0.3)
        print(f"   t={sim.now * 1e3:6.1f} ms: burst ends")

    sim.spawn(burst())
    sim.run(until=done)
    print(f"   all-reduce finished at t={sim.now * 1e3:.1f} ms "
          f"(undisturbed: ~107 ms)\n")


def main() -> None:
    algorithm_choice()
    oversubscribed_core()
    bursty_tenant()


if __name__ == "__main__":
    main()
