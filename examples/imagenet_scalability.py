"""Scalability study: ResNet-50/VGG-16 on the simulated GPU cloud.

Reproduces a slice of the paper's Fig. 9 interactively: training
throughput of AIACC-Training against Horovod, PyTorch-DDP and BytePS on
8-128 V100 GPUs connected by the 30 Gbps TCP network, plus the scaling
efficiencies of Fig. 2.

Run:  python examples/imagenet_scalability.py
"""

from repro.harness import format_table, measure


def main() -> None:
    backends = ("aiacc", "horovod", "pytorch-ddp", "byteps")
    for model in ("resnet50", "vgg16"):
        rows = []
        for gpus in (8, 16, 32, 64, 128):
            row = {"gpus": gpus}
            for backend in backends:
                result = measure(model, backend, gpus)
                row[backend] = result.throughput
            row["aiacc_vs_horovod"] = row["aiacc"] / row["horovod"]
            rows.append(row)
        print(format_table(
            rows, title=f"{model}: images/s on V100 nodes, 30 Gbps TCP"))
        print()

    # The headline anchors from the paper's Section III / VIII-A.
    rn = measure("resnet50", "aiacc", 32)
    hv = measure("resnet50", "horovod", 32)
    print(f"ResNet-50 @ 32 GPUs: AIACC scaling efficiency "
          f"{rn.scaling_efficiency:.2f} (paper: >0.9), "
          f"speedup over Horovod {rn.throughput / hv.throughput:.2f}x "
          f"(paper: 1.3x)")


if __name__ == "__main__":
    main()
