"""Regenerate ``tests/sim/golden_digests.json``.

Runs every invariant-checked cell of the determinism matrix through
:func:`repro.harness.determinism.run_probe` and records the resulting
event-sequence digests.  The golden file pins the simulator's observable
event schedule: any hot-path rewrite that shifts an event time or name
by even one ulp fails ``tests/sim/test_determinism_matrix.py``.

Only regenerate after an *intentional*, reviewed behaviour change:

    PYTHONPATH=src python tools/capture_golden_digests.py
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.harness.determinism import probe_key, run_probe

GOLDEN_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "tests" / "sim" / "golden_digests.json"

#: The invariant-checked matrix cells that get pinned digests.
GOLDEN_CELLS: tuple[dict, ...] = tuple(
    {"ranks": ranks, "streams": streams, "faults": faults,
     "invariants": True, "seed": 0}
    for ranks in (2, 8, 32)
    for streams in (1, 4)
    for faults in (False, True)
) + (
    # Planner-backend cell (in-network aggregation schedule).
    {"ranks": 8, "streams": 4, "faults": False, "invariants": True,
     "seed": 0, "algorithm": "ina"},
    # Large-scale cell: 1024 ranks pins the vectorized-hot-state tier
    # (array-backed flow table, pooled wakeups) at the scale the
    # flow-bundling work targets.  Symmetric, so it runs in
    # representative mode — cheap enough for the test matrix while
    # still covering the 128-node schedule's event stream.
    {"ranks": 1024, "streams": 4, "faults": False, "invariants": True,
     "seed": 0},
)


def capture() -> dict:
    digests = {}
    for cell in GOLDEN_CELLS:
        probe = run_probe(**cell)
        assert probe.digest is not None
        digests[probe_key(**cell)] = {
            "digest": probe.digest,
            "iteration_times_s": list(probe.iteration_times_s),
        }
        print(f"{probe.key}: {probe.digest}", file=sys.stderr)
    return digests


def main() -> None:
    GOLDEN_PATH.write_text(json.dumps(capture(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}", file=sys.stderr)


if __name__ == "__main__":
    main()
