"""Kill-and-resume smoke of the campaign service, used by CI.

The script exercises ISSUE 6's end-to-end invariant on a tiny grid:

1. submit a grid mixing sleep cells with one ``kamikaze`` cell that
   SIGKILLs its own worker mid-campaign;
2. run the campaign in a child orchestrator and ``kill -9`` that
   orchestrator once some cells are done and some are still active;
3. resume with ``python -m repro campaign resume`` and require that
   every cell ends terminal, the kamikaze cell recovered, and the final
   report digest equals that of an uninterrupted control run of the
   same grid in a fresh store;
4. write the resulting store summary under ``--out`` for upload.

Exit code 0 only if every check holds.
"""

from __future__ import annotations

import argparse
import json
import os
import pathlib
import signal
import subprocess
import sys
import time

SRC = pathlib.Path(__file__).resolve().parent.parent / "src"
sys.path.insert(0, str(SRC))

from repro.campaign.grid import CampaignGrid  # noqa: E402
from repro.campaign.policy import RetryPolicy  # noqa: E402
from repro.campaign.report import (  # noqa: E402
    load_report,
    write_report_artifacts,
)
from repro.campaign.runner import (  # noqa: E402
    CampaignRunner,
    submit_campaign,
)
from repro.campaign.store import CampaignStore  # noqa: E402

POLICY = RetryPolicy(max_attempts=3, base_backoff_s=0.05,
                     max_backoff_s=0.5)

GRIDS = [
    CampaignGrid(runner="sleep", axes={"cell": tuple(range(6))},
                 base={"duration_s": 0.25}),
    CampaignGrid(runner="kamikaze", axes={"cell": (100,)},
                 base={"die_attempts": 1}),
]


def run_uninterrupted(store_path: pathlib.Path) -> str:
    with CampaignStore(store_path) as store:
        campaign_id = submit_campaign(store, GRIDS, name="smoke-control")
    runner = CampaignRunner(store_path, campaign_id, max_workers=2,
                            lease_s=1.0, poll_s=0.05, policy=POLICY)
    counts = runner.run(max_wall_s=120.0)
    assert counts["done"] == 7, f"control run incomplete: {counts}"
    with CampaignStore(store_path) as store:
        return load_report(store, campaign_id).digest()


def spawn_orchestrator(store_path: pathlib.Path,
                       campaign_id: int) -> subprocess.Popen:
    env = dict(os.environ)
    env["PYTHONPATH"] = str(SRC) + os.pathsep + env.get("PYTHONPATH", "")
    return subprocess.Popen(
        [sys.executable, "-m", "repro", "campaign", "run",
         "--store", str(store_path), "--id", str(campaign_id),
         "--workers", "2", "--lease", "1.0",
         "--max-attempts", "3", "--backoff", "0.05"],
        env=env)


def wait_for_kill_window(store_path: pathlib.Path, campaign_id: int,
                         proc: subprocess.Popen) -> dict:
    deadline = time.monotonic() + 120.0
    with CampaignStore(store_path) as store:
        while time.monotonic() < deadline:
            counts = store.counts(campaign_id)
            if counts["done"] >= 2 and store.active_count(campaign_id):
                return counts
            if proc.poll() is not None:
                raise SystemExit(
                    f"orchestrator finished before the kill window: "
                    f"{counts}")
            time.sleep(0.02)
    raise SystemExit("campaign never reached the kill window")


def main() -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("results/campaign_smoke"))
    parser.add_argument("--store", type=pathlib.Path, default=None,
                        help="store path (default: <out>/campaigns.db)")
    args = parser.parse_args()
    args.out.mkdir(parents=True, exist_ok=True)
    store_path = args.store or args.out / "campaigns.db"
    control_path = args.out / "control.db"
    for stale in (store_path, control_path):
        stale.unlink(missing_ok=True)

    control_digest = run_uninterrupted(control_path)
    print(f"control digest: {control_digest}")

    with CampaignStore(store_path) as store:
        campaign_id = submit_campaign(store, GRIDS, name="smoke-killed")
    proc = spawn_orchestrator(store_path, campaign_id)
    try:
        at_kill = wait_for_kill_window(store_path, campaign_id, proc)
        print(f"kill -9 orchestrator at {at_kill}")
        os.kill(proc.pid, signal.SIGKILL)
    finally:
        proc.wait(timeout=60)

    result = subprocess.run(
        [sys.executable, "-m", "repro", "campaign", "resume",
         str(campaign_id), "--store", str(store_path),
         "--workers", "2", "--lease", "1.0",
         "--max-attempts", "3", "--backoff", "0.05"],
        env={**os.environ,
             "PYTHONPATH": str(SRC) + os.pathsep +
             os.environ.get("PYTHONPATH", "")})
    if result.returncode != 0:
        raise SystemExit(f"resume exited {result.returncode}")

    with CampaignStore(store_path) as store:
        report = load_report(store, campaign_id)
        counts = store.counts(campaign_id)
    write_report_artifacts(args.out, report)
    summary = {
        "counts": counts,
        "digest": report.digest(),
        "control_digest": control_digest,
        "counts_at_kill": at_kill,
    }
    (args.out / "smoke.json").write_text(json.dumps(summary, indent=2))
    print(json.dumps(summary, indent=2))

    assert counts["done"] == 7, f"resume left cells unfinished: {counts}"
    assert report.complete, "report not complete after resume"
    assert report.digest() == control_digest, (
        f"digest mismatch: interrupted {report.digest()} != "
        f"control {control_digest}")
    kamikaze = [r for r in report.rows if r.runner == "kamikaze"][0]
    assert kamikaze.state == "done" and kamikaze.attempt >= 2, (
        f"kamikaze cell did not recover: {kamikaze.state} "
        f"after {kamikaze.attempt} attempts")
    print("campaign smoke OK: kill -9 + resume matches uninterrupted run")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
