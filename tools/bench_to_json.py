"""Export pytest-benchmark results into the ``BENCH_simulator.json`` trajectory.

``BENCH_simulator.json`` is the repo's committed perf trajectory: a list
of labelled entries, each one run of ``benchmarks/test_simulator_perf.py``
reduced to the numbers worth diffing — min/mean wall-clock seconds per
simulated step, plus the scenario metadata the benchmark recorded.

Usage (what the CI benchmark job runs)::

    PYTHONPATH=src python -m pytest benchmarks/test_simulator_perf.py \
        --benchmark-only -q --benchmark-json=results/benchmark_raw.json
    python tools/bench_to_json.py results/benchmark_raw.json \
        --out BENCH_simulator.json --label ci

Re-running with an existing ``--label`` replaces that entry (so local
iteration doesn't grow the file); a new label appends.  Entries are
kept in insertion order — the trajectory reads top-to-bottom as
oldest-to-newest.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import re
import sys

#: Benchmark ids look like ``test_simulated_step_wall_clock[step-8r-4s]``.
_SCENARIO_RE = re.compile(r"\[(?P<scenario>[^\]]+)\]$")


def scenario_name(benchmark_name: str) -> str:
    match = _SCENARIO_RE.search(benchmark_name)
    return match.group("scenario") if match else benchmark_name


def reduce_benchmarks(raw: dict) -> dict:
    """Squash one pytest-benchmark JSON into a trajectory entry body."""
    scenarios = {}
    for bench in raw.get("benchmarks", []):
        stats = bench["stats"]
        extra = dict(bench.get("extra_info", {}))
        scenarios[scenario_name(bench["name"])] = {
            "wall_s_min": stats["min"],
            "wall_s_mean": stats["mean"],
            "rounds": stats["rounds"],
            **extra,
        }
    if not scenarios:
        raise SystemExit("no benchmarks found in the input JSON "
                         "(did the run use --benchmark-only?)")
    return {
        "datetime": raw.get("datetime"),
        "commit": (raw.get("commit_info") or {}).get("id"),
        "scenarios": scenarios,
    }


def merge_entry(trajectory: list[dict], label: str, entry: dict) -> None:
    """Replace the entry with ``label`` in place, or append."""
    entry = {"label": label, **entry}
    for index, existing in enumerate(trajectory):
        if existing.get("label") == label:
            trajectory[index] = entry
            return
    trajectory.append(entry)


def main(argv: list[str] | None = None) -> None:
    parser = argparse.ArgumentParser(
        description="Fold a pytest-benchmark JSON into BENCH_simulator.json")
    parser.add_argument("input", type=pathlib.Path,
                        help="pytest-benchmark --benchmark-json output")
    parser.add_argument("--out", type=pathlib.Path,
                        default=pathlib.Path("BENCH_simulator.json"))
    parser.add_argument("--label", default="current",
                        help="trajectory entry name (same label replaces)")
    args = parser.parse_args(argv)

    raw = json.loads(args.input.read_text())
    trajectory: list[dict] = []
    if args.out.exists():
        trajectory = json.loads(args.out.read_text())
        if not isinstance(trajectory, list):
            raise SystemExit(f"{args.out} is not a trajectory list")
    merge_entry(trajectory, args.label, reduce_benchmarks(raw))
    args.out.write_text(json.dumps(trajectory, indent=2) + "\n")
    gate = [s for e in trajectory for s in (e["scenarios"],)
            if e["label"] == args.label]
    print(f"{args.out}: updated entry {args.label!r} "
          f"({len(gate[0])} scenarios)", file=sys.stderr)


if __name__ == "__main__":
    main()
