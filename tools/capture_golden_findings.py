"""Regenerate ``tests/sim/golden_findings.json``.

Runs every diagnosis-determinism cell through
:func:`repro.harness.determinism.diagnosis_probe` and records each
cell's canonical findings digest.  The golden file pins the diagnosis
layer's output the same way ``golden_digests.json`` pins the simulator's
event schedule: a detector-threshold tweak, a finding-field rename, or a
sort-order change all fail ``tests/sim/test_determinism_matrix.py``.

Only regenerate after an *intentional*, reviewed behaviour change:

    PYTHONPATH=src python tools/capture_golden_findings.py
"""

from __future__ import annotations

import json
import pathlib
import sys

from repro.harness.determinism import diagnosis_probe

GOLDEN_PATH = pathlib.Path(__file__).resolve().parent.parent / \
    "tests" / "sim" / "golden_findings.json"

#: The diagnosis cells that get pinned findings digests: a clean run
#: (must stay at the empty-findings digest) and an injected straggler.
GOLDEN_CELLS: tuple[dict, ...] = (
    {"straggler_rank": None, "straggler_factor": 3.0, "seed": 0},
    {"straggler_rank": 2, "straggler_factor": 3.0, "seed": 0},
)


def capture() -> dict:
    digests = {}
    for cell in GOLDEN_CELLS:
        probe = diagnosis_probe(**cell)
        digests[probe.key] = {
            "findings_digest": probe.findings_digest,
            "findings": probe.findings,
        }
        print(f"{probe.key}: {probe.findings_digest} "
              f"({probe.findings} finding(s))", file=sys.stderr)
    return digests


def main() -> None:
    GOLDEN_PATH.write_text(json.dumps(capture(), indent=2) + "\n")
    print(f"wrote {GOLDEN_PATH}", file=sys.stderr)


if __name__ == "__main__":
    main()
