"""Time-to-accuracy model (DAWNBench, paper §VIII-C).

"AIACC-Training achieved the training goal [93% top-5 on ImageNet] within
158 seconds using 128 V100 GPUs across 16 computing instances with a
training cost of $7.43."

We cannot train ImageNet, so the convergence side is a calibrated model:
the *epochs to reach 93% top-5* for each optimizer recipe is a constant
measured by the community (and by the paper's DAWNBench entry, which
folds in fp16, progressive resizing and the AdamSGD/linear-decay recipe).
Given epochs-to-target and a simulated throughput, time-to-accuracy and
dollar cost follow directly.
"""

from __future__ import annotations

import dataclasses

from repro.errors import TrainingError
from repro.models.datasets import IMAGENET, DatasetSpec

#: Effective ImageNet epochs to 93% top-5 with the AIACC DAWNBench recipe
#: (fp16 + progressive resizing + AdamSGD + linear decay).  Calibrated so
#: that the measured 128-GPU throughput reproduces the paper's 158 s.
AIACC_RECIPE_EPOCHS = 5.5

#: Epochs to 93% top-5 with the standard SGD + step-decay recipe
#: (classic 90-epoch schedule reaches it around epoch 35).
BASELINE_RECIPE_EPOCHS = 35.0

#: On-demand hourly price of one 8xV100 cloud instance (USD), from the
#: paper's $7.43 @ 158 s @ 16 instances.
INSTANCE_PRICE_PER_HOUR = 7.43 / (158.0 / 3600.0) / 16.0


@dataclasses.dataclass(frozen=True)
class TimeToAccuracy:
    """DAWNBench-style result: wall time and public-cloud cost."""

    train_seconds: float
    num_instances: int
    cost_usd: float
    epochs: float
    throughput: float


def time_to_accuracy(throughput_samples_per_s: float, num_gpus: int,
                     epochs_to_target: float = AIACC_RECIPE_EPOCHS,
                     dataset: DatasetSpec = IMAGENET,
                     gpus_per_instance: int = 8) -> TimeToAccuracy:
    """Compute DAWNBench metrics from a measured training throughput."""
    if throughput_samples_per_s <= 0:
        raise TrainingError("throughput must be positive")
    if num_gpus < 1 or gpus_per_instance < 1:
        raise TrainingError("GPU counts must be >= 1")
    if epochs_to_target <= 0:
        raise TrainingError("epochs_to_target must be positive")
    total_samples = dataset.num_samples * epochs_to_target
    seconds = total_samples / throughput_samples_per_s
    instances = max(1, num_gpus // gpus_per_instance)
    cost = instances * INSTANCE_PRICE_PER_HOUR * seconds / 3600.0
    return TimeToAccuracy(
        train_seconds=seconds,
        num_instances=instances,
        cost_usd=cost,
        epochs=epochs_to_target,
        throughput=throughput_samples_per_s,
    )
