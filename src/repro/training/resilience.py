"""Failure injection for long training runs (paper §IV fault tolerance).

AIACC-Training "provides fault-tolerance to restart the training process
from the last checkpoint upon node failure".  This module quantifies
that: given a measured per-iteration time, a checkpoint cadence and a
failure schedule, it computes the wall-clock cost of failures — lost
work since the last checkpoint, restart overhead, and the parameter
broadcast to the rebuilt worker group — and the resulting *goodput*.

It answers the operational question behind the feature: how often should
a production job checkpoint, given its failure rate?
(:func:`optimal_checkpoint_interval` implements Young's classic
approximation for comparison.)
"""

from __future__ import annotations

import dataclasses
import math
import tempfile
import typing as t

import numpy as np

from repro.errors import FaultInjectionError, PeerDeadError, TrainingError
from repro.core.elastic import EpochTransition
from repro.models.base import ModelSpec
from repro.models.zoo import get_model
from repro.sim.faults import FaultInjector, FaultPlan
from repro.sim.tracing import Trace
from repro.sim.transport import TransportModel
from repro.sim.tcp import TCP

#: Sustained write bandwidth of cloud block storage for checkpoints.
CHECKPOINT_WRITE_BPS = 2e9 * 8

#: Process respawn + communicator re-bootstrap after a node failure.
DEFAULT_RESTART_OVERHEAD_S = 30.0


@dataclasses.dataclass(frozen=True)
class ResilienceResult:
    """Outcome of a failure-injected training simulation."""

    total_iterations: int
    completed_iterations: int
    wasted_iterations: int
    ideal_time_s: float
    total_time_s: float
    checkpoint_time_s: float
    recovery_time_s: float
    failures: int

    @property
    def goodput(self) -> float:
        """Useful-work fraction: ideal time / actual time."""
        return self.ideal_time_s / self.total_time_s

    @property
    def overhead_fraction(self) -> float:
        return 1.0 - self.goodput


def checkpoint_write_time_s(model: str | ModelSpec) -> float:
    """Seconds to persist one fp32 copy of the model parameters."""
    spec = get_model(model) if isinstance(model, str) else model
    return spec.gradient_bytes * 8.0 / CHECKPOINT_WRITE_BPS


def broadcast_time_s(model: str | ModelSpec,
                     stream_bps: float = 7.5e9) -> float:
    """Seconds to propagate parameters to a rebuilt/joining worker."""
    spec = get_model(model) if isinstance(model, str) else model
    return spec.gradient_bytes * 8.0 / stream_bps


def simulate_resilient_training(
    model: str | ModelSpec,
    iteration_time_s: float,
    total_iterations: int,
    checkpoint_interval: int,
    failure_at: t.Sequence[int] = (),
    restart_overhead_s: float = DEFAULT_RESTART_OVERHEAD_S,
) -> ResilienceResult:
    """Walk a training run with checkpoints and injected failures.

    Parameters
    ----------
    iteration_time_s:
        Steady-state iteration time (e.g. from
        :func:`repro.training.trainer.run_training`).
    checkpoint_interval:
        Iterations between checkpoints (a checkpoint is written *after*
        every ``checkpoint_interval``-th iteration).
    failure_at:
        Iteration indices (0-based, in completed-work coordinates) at
        which a node fails; work since the last checkpoint is lost.
    """
    spec = get_model(model) if isinstance(model, str) else model
    if iteration_time_s <= 0:
        raise TrainingError("iteration_time_s must be positive")
    if total_iterations < 1 or checkpoint_interval < 1:
        raise TrainingError("iterations/interval must be >= 1")
    failures = sorted(set(failure_at))
    if failures and (failures[0] < 0 or failures[-1] >= total_iterations):
        raise TrainingError("failure indices out of range")

    ckpt_time = checkpoint_write_time_s(spec)
    recovery_unit = restart_overhead_s + broadcast_time_s(spec)

    time = 0.0
    ckpt_total = 0.0
    recovery_total = 0.0
    wasted = 0
    completed = 0
    last_checkpoint = 0
    failure_queue = list(failures)

    while completed < total_iterations:
        time += iteration_time_s
        completed += 1
        if failure_queue and completed - 1 == failure_queue[0]:
            failure_queue.pop(0)
            lost = completed - last_checkpoint
            wasted += lost
            completed = last_checkpoint
            recovery_total += recovery_unit
            time += recovery_unit
            continue
        if completed % checkpoint_interval == 0 and \
                completed != last_checkpoint:
            ckpt_total += ckpt_time
            time += ckpt_time
            last_checkpoint = completed

    return ResilienceResult(
        total_iterations=total_iterations,
        completed_iterations=total_iterations,
        wasted_iterations=wasted,
        ideal_time_s=total_iterations * iteration_time_s,
        total_time_s=time,
        checkpoint_time_s=ckpt_total,
        recovery_time_s=recovery_total,
        failures=len(failures),
    )


def optimal_checkpoint_interval(iteration_time_s: float,
                                mean_iterations_between_failures: float,
                                model: str | ModelSpec) -> int:
    """Young's approximation: sqrt(2 x ckpt_cost x MTBF), in iterations."""
    spec = get_model(model) if isinstance(model, str) else model
    if iteration_time_s <= 0 or mean_iterations_between_failures <= 0:
        raise TrainingError("inputs must be positive")
    ckpt_cost = checkpoint_write_time_s(spec)
    mtbf_s = mean_iterations_between_failures * iteration_time_s
    interval_s = math.sqrt(2.0 * ckpt_cost * mtbf_s)
    return max(1, round(interval_s / iteration_time_s))


@dataclasses.dataclass(frozen=True)
class ElasticPhase:
    """One segment of an elastically scaled training run."""

    num_gpus: int
    iterations: int
    iteration_time_s: float
    samples: float


def simulate_elastic_scaling(
    model: str | ModelSpec,
    backend: str,
    phases: t.Sequence[tuple[int, int]],
    batch_per_gpu: int | None = None,
) -> tuple[list[ElasticPhase], float]:
    """Timed elastic deployment: resize the cluster between phases.

    ``phases`` is ``[(num_gpus, iterations), ...]``; between consecutive
    phases the coordinator pauses training, re-forms the communicators
    and broadcasts the parameters to any joining workers (paper §IV:
    "elastic deployment by propagating training parameters into newly
    added computing nodes").

    Returns the per-phase results and the total wall-clock seconds
    including the resize pauses.
    """
    from repro.training.trainer import run_training

    spec = get_model(model) if isinstance(model, str) else model
    if not phases:
        raise TrainingError("need at least one phase")
    results: list[ElasticPhase] = []
    total_time = 0.0
    previous_gpus: int | None = None
    # One measurement per distinct world size: an up-down-up schedule
    # revisiting a size reuses its measured iteration time (the
    # measurement is a deterministic function of (spec, backend,
    # num_gpus, batch_per_gpu), all fixed across phases).
    measured_cache: dict[int, t.Any] = {}
    for num_gpus, iterations in phases:
        if num_gpus < 1 or iterations < 1:
            raise TrainingError("phases need positive GPUs/iterations")
        measured = measured_cache.get(num_gpus)
        if measured is None:
            measured = run_training(spec, backend, num_gpus,
                                    batch_per_gpu=batch_per_gpu,
                                    measure_iterations=2,
                                    warmup_iterations=1)
            measured_cache[num_gpus] = measured
        if previous_gpus is not None and num_gpus != previous_gpus:
            # Resize pause: communicator rebuild + parameter broadcast
            # to joiners (only needed when growing).
            total_time += DEFAULT_RESTART_OVERHEAD_S / 3.0
            if num_gpus > previous_gpus:
                total_time += broadcast_time_s(spec)
        phase_time = iterations * measured.mean_iteration_s
        total_time += phase_time
        results.append(ElasticPhase(
            num_gpus=num_gpus,
            iterations=iterations,
            iteration_time_s=measured.mean_iteration_s,
            samples=iterations * num_gpus * measured.batch_per_gpu,
        ))
        previous_gpus = num_gpus
    return results, total_time


@dataclasses.dataclass(frozen=True)
class RecoveryRecord:
    """Timeline of one detected failure and the recovery that followed."""

    #: Original node ids that died in this failure batch.
    failed_nodes: tuple[int, ...]
    #: Simulated time the (first) crash was injected.
    injected_at_s: float
    #: Time the engine first suspected a peer (first missed deadline).
    suspected_at_s: float
    #: Time the peer was declared dead (retries exhausted).
    confirmed_at_s: float
    #: Time training resumed on the rebuilt cluster.
    resumed_at_s: float
    #: Iterations completed when the failure was confirmed.
    failed_at_iteration: int
    #: Checkpoint iteration training restarted from.
    resumed_iteration: int

    @property
    def detection_latency_s(self) -> float:
        """Crash injection to confirmed declaration."""
        return self.confirmed_at_s - self.injected_at_s

    @property
    def rebuild_time_s(self) -> float:
        """Confirmation to resumed training."""
        return self.resumed_at_s - self.confirmed_at_s

    @property
    def lost_iterations(self) -> int:
        """Work discarded by restarting from the checkpoint."""
        return self.failed_at_iteration - self.resumed_iteration


@dataclasses.dataclass(frozen=True)
class FaultInjectionResult:
    """Outcome of an event-driven fault-injected training run."""

    model: str
    backend: str
    initial_num_gpus: int
    final_num_gpus: int
    total_iterations: int
    wasted_iterations: int
    total_time_s: float
    checkpoint_time_s: float
    iteration_times_s: tuple[float, ...]
    recoveries: tuple[RecoveryRecord, ...]
    trace: Trace
    #: Event-sequence digest (replay determinism); ``None`` unless the
    #: run executed under the invariant checker.
    state_digest: str | None = None
    #: Membership-epoch transitions (scale-down / scale-up / failure),
    #: in boundary order.  Empty for a purely crash-free, static run.
    epoch_transitions: tuple[EpochTransition, ...] = ()
    #: Membership epoch the run finished in.
    final_epoch: int = 0
    #: Linear-scaling-rule LR multiplier for the final world size.
    final_lr_scale: float = 1.0

    @property
    def ideal_iteration_s(self) -> float:
        """Healthy per-iteration time (first completed iteration)."""
        return self.iteration_times_s[0]

    @property
    def ideal_time_s(self) -> float:
        return self.total_iterations * self.ideal_iteration_s

    @property
    def goodput(self) -> float:
        """Useful-work fraction, comparable to
        :attr:`ResilienceResult.goodput`."""
        return self.ideal_time_s / self.total_time_s


def run_fault_injected_training(
    model: str | ModelSpec,
    plan: FaultPlan,
    backend: str | t.Any = "aiacc",
    num_gpus: int = 16,
    total_iterations: int = 20,
    checkpoint_interval: int = 5,
    checkpoint_dir: str | None = None,
    batch_per_gpu: int | None = None,
    gpus_per_node: int = 8,
    transport: TransportModel = TCP,
    nic_bandwidth_bps: float = 30e9,
    sync_timeout_s: float = 1.0,
    unit_timeout_s: float = 2.0,
    comm_retries: int = 1,
    retry_backoff_s: float = 0.25,
    restart_overhead_s: float = DEFAULT_RESTART_OVERHEAD_S,
    trace: Trace | None = None,
    max_restarts: int = 8,
    check_invariants: bool = False,
    obs: t.Any = None,
    settings_cache: t.Any = None,
) -> FaultInjectionResult:
    """Train under an event-driven fault schedule and self-heal.

    Unlike :func:`simulate_resilient_training` (a closed-form time walk),
    this runs the real AIACC engine inside the discrete-event simulator
    with a :class:`~repro.sim.faults.FaultInjector` armed: a crashed node
    stalls in-flight flows and new collectives, the engine's timeout
    detector suspects and then confirms the death
    (:class:`~repro.errors.PeerDeadError`), in-flight units are aborted,
    the ring is rebuilt over the survivors, state restores from the last
    checkpoint via :class:`~repro.core.fault_tolerance.ElasticCoordinator`,
    and training resumes — all on the simulated clock, so the recovery
    trajectory (detection latency, rebuild time, lost work) is measured,
    not assumed.

    The full (non-representative) link set is simulated so the dead
    node's NIC squash actually stalls traffic; ``sync_timeout_s`` /
    ``unit_timeout_s`` / ``comm_retries`` / ``retry_backoff_s`` drive the
    paper's §IV failure detector.

    The plan may also schedule *membership* events
    (:class:`~repro.sim.faults.NodeLeave` /
    :class:`~repro.sim.faults.NodeJoin`).  These are drained at
    iteration boundaries — where the group is quiescent — and advance
    the membership epoch (:class:`~repro.core.elastic.ElasticRuntime`):
    a clean leave excises the departed nodes and continues from the
    survivors' **live** parameters (no checkpoint restore); a join
    admits the new identities via the coordinator's pipelined
    live-parameter broadcast, verified bit-identical across ranks, and
    re-keys the auto-tuner's best-setting cache (pass
    ``settings_cache``) plus the linear-scaling LR multiplier for the
    new topology.  Crashes keep the abort → rebuild → checkpoint-restore
    path, now also stamped as a ``failure`` epoch transition.
    """
    from repro.core.elastic import ElasticRuntime
    from repro.core.fault_tolerance import CheckpointManager, \
        ElasticCoordinator
    from repro.frameworks import make_backend
    from repro.training.trainer import build_train_context

    spec = get_model(model) if isinstance(model, str) else model
    if total_iterations < 1 or checkpoint_interval < 1:
        raise TrainingError("iterations/interval must be >= 1")
    if num_gpus % gpus_per_node != 0 or num_gpus < 2 * gpus_per_node:
        raise TrainingError(
            "fault injection needs >= 2 whole nodes (num_gpus a multiple "
            "of gpus_per_node)"
        )
    if isinstance(backend, str):
        backend = make_backend(backend)
    config = getattr(backend, "config", None)
    if config is None or not hasattr(backend, "abort"):
        raise TrainingError(
            "fault-injected training requires an abortable backend with "
            "detection timeouts (the aiacc engine)"
        )
    backend.config = config.replace(
        sync_timeout_s=sync_timeout_s, unit_timeout_s=unit_timeout_s,
        comm_retries=comm_retries, retry_backoff_s=retry_backoff_s,
        check_invariants=check_invariants or config.check_invariants)
    num_nodes = num_gpus // gpus_per_node
    try:
        plan.membership_bounds(num_nodes)
    except FaultInjectionError as exc:
        raise TrainingError(f"invalid fault plan: {exc}") from exc
    batch = batch_per_gpu or spec.default_batch_size
    run_trace = trace or Trace(enabled=True, keep_spans=True)

    ctx = build_train_context(
        spec, backend, num_gpus, batch, transport=transport,
        nic_bandwidth_bps=nic_bandwidth_bps, gpus_per_node=gpus_per_node,
        trace=run_trace, representative=False, obs=obs)
    sim = ctx.sim
    injector = FaultInjector(sim, ctx.cluster, ctx.network, trace=run_trace)
    injector.arm(plan)

    # Checkpoint payloads are stubs: simulated time uses the analytical
    # write cost, so there is no reason to shovel real gigabytes through
    # the filesystem of the machine running the simulation.
    def _stub_state(iteration: int) -> dict:
        return {"theta": np.asarray([iteration], dtype=np.float32)}

    cleanup: tempfile.TemporaryDirectory | None = None
    if checkpoint_dir is None:
        cleanup = tempfile.TemporaryDirectory(prefix="repro-faults-")
        checkpoint_dir = cleanup.name
    try:
        checkpoints = CheckpointManager(checkpoint_dir, keep_last=3)
        elastic = ElasticCoordinator(
            checkpoints, initial_workers=num_gpus,
            init_parameters=lambda: _stub_state(0))
        runtime = ElasticRuntime(
            elastic, members=range(num_nodes), gpus_per_node=gpus_per_node,
            settings_cache=settings_cache)
        ckpt_cost = checkpoint_write_time_s(spec)
        rebuild_cost = restart_overhead_s + broadcast_time_s(spec)
        #: Communicator re-formation pause at a clean epoch boundary —
        #: no process respawn, so a third of the full restart overhead
        #: (matching :func:`simulate_elastic_scaling`'s resize pause).
        reconfigure_cost = restart_overhead_s / 3.0

        def _rebuild(world_size: int, label: str):
            """Re-form the group: new context, retargeted injector.

            Built with no intervening simulated time after the caller's
            membership bookkeeping, so no fault can land in between.
            """
            nonlocal ctx
            ctx = build_train_context(
                spec, backend, world_size, batch, transport=transport,
                nic_bandwidth_bps=nic_bandwidth_bps,
                gpus_per_node=gpus_per_node, trace=run_trace,
                representative=False, sim=sim, obs=obs)
            injector.retarget(ctx.cluster, ctx.network)
            backend.advance_epoch(runtime.epoch)
            rewarm = sim.spawn(backend.warmup(ctx), name=label)
            sim.run(until=rewarm)

        warm = sim.spawn(backend.warmup(ctx), name="warmup")
        sim.run(until=warm)
        start = sim.now

        times: list[float] = []
        recoveries: list[RecoveryRecord] = []
        ckpt_total = 0.0
        wasted = 0
        completed = 0
        while completed < total_iterations:
            proc = sim.spawn(backend.iteration(ctx), name=f"iter{completed}")
            proc.add_callback(lambda _ev: None)  # watch: record, don't raise
            sim.run(until=proc)
            if proc.ok:
                times.append(proc.value.iteration_time_s)
                completed += 1
                if completed % checkpoint_interval == 0:
                    checkpoints.save(completed, _stub_state(completed))
                    ckpt_total += ckpt_cost
                    sim.run(until=sim.timeout(ckpt_cost))

                # Epoch boundary: the group is quiescent, so announced
                # clean departures and pending joins take effect here,
                # in announcement order (batching consecutive same-kind
                # events into one transition each, matching the order
                # the plan was validated in).
                leaves = injector.take_pending_leaves()
                joins = injector.take_pending_joins()
                batches: list[tuple[str, list[int]]] = []
                announced = sorted(
                    [(injector.leave_times[n], n, "leave") for n in leaves]
                    + [(injector.join_times[n], n, "join") for n in joins])
                for _at, node, kind in announced:
                    if batches and batches[-1][0] == kind:
                        batches[-1][1].append(node)
                    else:
                        batches.append((kind, [node]))
                while batches:
                    if injector.has_pending_dead:
                        # A crash landed mid-transition: hand the
                        # boundary to the crash-recovery path and keep
                        # the rest of the membership work queued.
                        for kind, nodes in batches:
                            if kind == "leave":
                                injector.requeue_leaves(nodes)
                            else:
                                injector.requeue_joins(nodes)
                        break
                    kind, nodes = batches.pop(0)
                    if kind == "leave":
                        # Scale-down: excise the departed ranks and
                        # continue from the survivors' live parameters —
                        # nothing is lost, nothing restores from
                        # checkpoint.
                        injector.depart(nodes)
                        runtime.scale_down(
                            nodes, at_s=sim.now,
                            resumed_iteration=completed,
                            reconfigure_time_s=reconfigure_cost)
                        _rebuild(runtime.view.world_size,
                                 f"rewarm-epoch{runtime.epoch}")
                        sim.run(until=sim.timeout(reconfigure_cost))
                        run_trace.epoch(runtime.epoch, sim.now,
                                        kind="scale-down",
                                        world=runtime.view.world_size)
                    else:
                        # Scale-up: admit joiners via the pipelined
                        # live-parameter broadcast, re-key the tuner's
                        # best-setting cache for the new topology and
                        # rescale the LR (linear scaling rule).
                        injector.admit(nodes)
                        join_cost = reconfigure_cost + \
                            broadcast_time_s(spec)
                        live = [_stub_state(completed)
                                for _ in range(elastic.live_workers)]
                        new_world = runtime.view.world_size + \
                            len(nodes) * gpus_per_node
                        joined_ctx = build_train_context(
                            spec, backend, new_world, batch,
                            transport=transport,
                            nic_bandwidth_bps=nic_bandwidth_bps,
                            gpus_per_node=gpus_per_node, trace=run_trace,
                            representative=False, sim=sim, obs=obs)
                        backend.config, tuned_label = runtime.retune(
                            spec, joined_ctx.cluster, backend.config)
                        runtime.scale_up(
                            nodes, at_s=sim.now, live_parameters=live,
                            resumed_iteration=completed,
                            reconfigure_time_s=join_cost,
                            retuned=tuned_label)
                        ctx = joined_ctx
                        injector.retarget(ctx.cluster, ctx.network)
                        backend.advance_epoch(runtime.epoch)
                        rewarm = sim.spawn(
                            backend.warmup(ctx),
                            name=f"rewarm-epoch{runtime.epoch}")
                        sim.run(until=rewarm)
                        sim.run(until=sim.timeout(join_cost))
                        run_trace.epoch(runtime.epoch, sim.now,
                                        kind="scale-up", world=new_world)
                continue

            failure = proc.value
            if not isinstance(failure, PeerDeadError):
                raise t.cast(BaseException, failure)
            if len(recoveries) >= max_restarts:
                raise TrainingError(
                    f"exceeded {max_restarts} restarts; aborting"
                )
            backend.abort(failure)
            dead = injector.take_pending_dead()
            if not dead:
                raise TrainingError(
                    "failure detector confirmed a dead peer but no node "
                    "crashed — detection timeouts are too aggressive for "
                    "this configuration"
                )
            # Pay the restart overhead per batch of deaths; more crashes
            # landing during the window extend the outage.
            all_dead: list[int] = []
            while dead:
                all_dead.extend(dead)
                run_trace.fault("rebuild", sim.now, nodes=tuple(dead))
                sim.run(until=sim.timeout(rebuild_cost))
                dead = injector.take_pending_dead()

            resume_iteration, _params = elastic.on_failure(
                failed_workers=len(all_dead) * gpus_per_node)
            run_trace.fault("restore", sim.now,
                            iteration=resume_iteration)
            runtime.failure(
                all_dead, at_s=sim.now, resumed_iteration=resume_iteration,
                reconfigure_time_s=sim.now - failure.confirmed_at_s)
            # Rebuild the communicator over the survivors and retarget
            # the injector with no intervening simulated time, so no
            # fault can land between the two.
            _rebuild(runtime.view.world_size, "rewarmup")
            recoveries.append(RecoveryRecord(
                failed_nodes=tuple(all_dead),
                injected_at_s=min(injector.crash_times[n]
                                  for n in all_dead),
                suspected_at_s=failure.suspected_at_s,
                confirmed_at_s=failure.confirmed_at_s,
                resumed_at_s=sim.now,
                failed_at_iteration=completed,
                resumed_iteration=resume_iteration,
            ))
            run_trace.epoch(runtime.epoch, sim.now, kind="failure",
                            world=runtime.view.world_size)
            wasted += completed - resume_iteration
            completed = resume_iteration
    finally:
        if cleanup is not None:
            cleanup.cleanup()

    return FaultInjectionResult(
        model=spec.name,
        backend=backend.name,
        initial_num_gpus=num_gpus,
        final_num_gpus=ctx.cluster.world_size,
        total_iterations=total_iterations,
        wasted_iterations=wasted,
        total_time_s=sim.now - start,
        checkpoint_time_s=ckpt_total,
        iteration_times_s=tuple(times),
        recoveries=tuple(recoveries),
        trace=run_trace,
        state_digest=sim.state_digest(),
        epoch_transitions=tuple(runtime.transitions),
        final_epoch=runtime.epoch,
        final_lr_scale=runtime.lr_scale(),
    )
