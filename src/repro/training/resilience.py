"""Failure injection for long training runs (paper §IV fault tolerance).

AIACC-Training "provides fault-tolerance to restart the training process
from the last checkpoint upon node failure".  This module quantifies
that: given a measured per-iteration time, a checkpoint cadence and a
failure schedule, it computes the wall-clock cost of failures — lost
work since the last checkpoint, restart overhead, and the parameter
broadcast to the rebuilt worker group — and the resulting *goodput*.

It answers the operational question behind the feature: how often should
a production job checkpoint, given its failure rate?
(:func:`optimal_checkpoint_interval` implements Young's classic
approximation for comparison.)
"""

from __future__ import annotations

import dataclasses
import math
import typing as t

from repro.errors import TrainingError
from repro.models.base import ModelSpec
from repro.models.zoo import get_model

#: Sustained write bandwidth of cloud block storage for checkpoints.
CHECKPOINT_WRITE_BPS = 2e9 * 8

#: Process respawn + communicator re-bootstrap after a node failure.
DEFAULT_RESTART_OVERHEAD_S = 30.0


@dataclasses.dataclass(frozen=True)
class ResilienceResult:
    """Outcome of a failure-injected training simulation."""

    total_iterations: int
    completed_iterations: int
    wasted_iterations: int
    ideal_time_s: float
    total_time_s: float
    checkpoint_time_s: float
    recovery_time_s: float
    failures: int

    @property
    def goodput(self) -> float:
        """Useful-work fraction: ideal time / actual time."""
        return self.ideal_time_s / self.total_time_s

    @property
    def overhead_fraction(self) -> float:
        return 1.0 - self.goodput


def checkpoint_write_time_s(model: str | ModelSpec) -> float:
    """Seconds to persist one fp32 copy of the model parameters."""
    spec = get_model(model) if isinstance(model, str) else model
    return spec.gradient_bytes * 8.0 / CHECKPOINT_WRITE_BPS


def broadcast_time_s(model: str | ModelSpec,
                     stream_bps: float = 7.5e9) -> float:
    """Seconds to propagate parameters to a rebuilt/joining worker."""
    spec = get_model(model) if isinstance(model, str) else model
    return spec.gradient_bytes * 8.0 / stream_bps


def simulate_resilient_training(
    model: str | ModelSpec,
    iteration_time_s: float,
    total_iterations: int,
    checkpoint_interval: int,
    failure_at: t.Sequence[int] = (),
    restart_overhead_s: float = DEFAULT_RESTART_OVERHEAD_S,
) -> ResilienceResult:
    """Walk a training run with checkpoints and injected failures.

    Parameters
    ----------
    iteration_time_s:
        Steady-state iteration time (e.g. from
        :func:`repro.training.trainer.run_training`).
    checkpoint_interval:
        Iterations between checkpoints (a checkpoint is written *after*
        every ``checkpoint_interval``-th iteration).
    failure_at:
        Iteration indices (0-based, in completed-work coordinates) at
        which a node fails; work since the last checkpoint is lost.
    """
    spec = get_model(model) if isinstance(model, str) else model
    if iteration_time_s <= 0:
        raise TrainingError("iteration_time_s must be positive")
    if total_iterations < 1 or checkpoint_interval < 1:
        raise TrainingError("iterations/interval must be >= 1")
    failures = sorted(set(failure_at))
    if failures and (failures[0] < 0 or failures[-1] >= total_iterations):
        raise TrainingError("failure indices out of range")

    ckpt_time = checkpoint_write_time_s(spec)
    recovery_unit = restart_overhead_s + broadcast_time_s(spec)

    time = 0.0
    ckpt_total = 0.0
    recovery_total = 0.0
    wasted = 0
    completed = 0
    last_checkpoint = 0
    failure_queue = list(failures)

    while completed < total_iterations:
        time += iteration_time_s
        completed += 1
        if failure_queue and completed - 1 == failure_queue[0]:
            failure_queue.pop(0)
            lost = completed - last_checkpoint
            wasted += lost
            completed = last_checkpoint
            recovery_total += recovery_unit
            time += recovery_unit
            continue
        if completed % checkpoint_interval == 0 and \
                completed != last_checkpoint:
            ckpt_total += ckpt_time
            time += ckpt_time
            last_checkpoint = completed

    return ResilienceResult(
        total_iterations=total_iterations,
        completed_iterations=total_iterations,
        wasted_iterations=wasted,
        ideal_time_s=total_iterations * iteration_time_s,
        total_time_s=time,
        checkpoint_time_s=ckpt_total,
        recovery_time_s=recovery_total,
        failures=len(failures),
    )


def optimal_checkpoint_interval(iteration_time_s: float,
                                mean_iterations_between_failures: float,
                                model: str | ModelSpec) -> int:
    """Young's approximation: sqrt(2 x ckpt_cost x MTBF), in iterations."""
    spec = get_model(model) if isinstance(model, str) else model
    if iteration_time_s <= 0 or mean_iterations_between_failures <= 0:
        raise TrainingError("inputs must be positive")
    ckpt_cost = checkpoint_write_time_s(spec)
    mtbf_s = mean_iterations_between_failures * iteration_time_s
    interval_s = math.sqrt(2.0 * ckpt_cost * mtbf_s)
    return max(1, round(interval_s / iteration_time_s))


@dataclasses.dataclass(frozen=True)
class ElasticPhase:
    """One segment of an elastically scaled training run."""

    num_gpus: int
    iterations: int
    iteration_time_s: float
    samples: float


def simulate_elastic_scaling(
    model: str | ModelSpec,
    backend: str,
    phases: t.Sequence[tuple[int, int]],
    batch_per_gpu: int | None = None,
) -> tuple[list[ElasticPhase], float]:
    """Timed elastic deployment: resize the cluster between phases.

    ``phases`` is ``[(num_gpus, iterations), ...]``; between consecutive
    phases the coordinator pauses training, re-forms the communicators
    and broadcasts the parameters to any joining workers (paper §IV:
    "elastic deployment by propagating training parameters into newly
    added computing nodes").

    Returns the per-phase results and the total wall-clock seconds
    including the resize pauses.
    """
    from repro.training.trainer import run_training

    spec = get_model(model) if isinstance(model, str) else model
    if not phases:
        raise TrainingError("need at least one phase")
    results: list[ElasticPhase] = []
    total_time = 0.0
    previous_gpus: int | None = None
    for num_gpus, iterations in phases:
        if num_gpus < 1 or iterations < 1:
            raise TrainingError("phases need positive GPUs/iterations")
        measured = run_training(spec, backend, num_gpus,
                                batch_per_gpu=batch_per_gpu,
                                measure_iterations=2, warmup_iterations=1)
        if previous_gpus is not None and num_gpus != previous_gpus:
            # Resize pause: communicator rebuild + parameter broadcast
            # to joiners (only needed when growing).
            total_time += DEFAULT_RESTART_OVERHEAD_S / 3.0
            if num_gpus > previous_gpus:
                total_time += broadcast_time_s(spec)
        phase_time = iterations * measured.mean_iteration_s
        total_time += phase_time
        results.append(ElasticPhase(
            num_gpus=num_gpus,
            iterations=iterations,
            iteration_time_s=measured.mean_iteration_s,
            samples=iterations * num_gpus * measured.batch_per_gpu,
        ))
        previous_gpus = num_gpus
    return results, total_time
