"""Learning-rate schedules.

"It uses linear decay to adjust the learning rate rather than the
commonly used step decay because we found linear decay works better with
the communication optimization and gradient compression implemented in
AIACC-Training" (paper §IV).  Both schedules are provided so the choice
can be ablated; warm-up is included because every large-batch recipe the
paper builds on (DAWNBench) uses it.
"""

from __future__ import annotations

from repro.errors import TrainingError


class LRSchedule:
    """Base: maps a step index to a learning rate."""

    def __init__(self, base_lr: float, total_steps: int,
                 warmup_steps: int = 0) -> None:
        if base_lr <= 0:
            raise TrainingError("base_lr must be positive")
        if total_steps < 1:
            raise TrainingError("total_steps must be >= 1")
        if not 0 <= warmup_steps < total_steps:
            raise TrainingError("warmup_steps must be within total_steps")
        self.base_lr = base_lr
        self.total_steps = total_steps
        self.warmup_steps = warmup_steps

    def lr_at(self, step: int) -> float:
        """Learning rate for ``step`` (0-based)."""
        if step < 0:
            raise TrainingError("step must be >= 0")
        if self.warmup_steps and step < self.warmup_steps:
            # Linear warm-up from base_lr / warmup_steps.
            return self.base_lr * (step + 1) / self.warmup_steps
        return self._decayed(min(step, self.total_steps - 1))

    def _decayed(self, step: int) -> float:
        raise NotImplementedError


class LinearDecay(LRSchedule):
    """AIACC's default: linear decay to ``final_fraction x base_lr``."""

    def __init__(self, base_lr: float, total_steps: int,
                 warmup_steps: int = 0, final_fraction: float = 0.0) -> None:
        super().__init__(base_lr, total_steps, warmup_steps)
        if not 0 <= final_fraction <= 1:
            raise TrainingError("final_fraction must be in [0, 1]")
        self.final_fraction = final_fraction

    def _decayed(self, step: int) -> float:
        span = self.total_steps - self.warmup_steps
        progress = (step - self.warmup_steps) / max(1, span - 1)
        scale = 1.0 - (1.0 - self.final_fraction) * progress
        return self.base_lr * scale


class StepDecay(LRSchedule):
    """Classic step decay: multiply by ``gamma`` at each milestone."""

    def __init__(self, base_lr: float, total_steps: int,
                 milestones: list[int], gamma: float = 0.1,
                 warmup_steps: int = 0) -> None:
        super().__init__(base_lr, total_steps, warmup_steps)
        if not 0 < gamma < 1:
            raise TrainingError("gamma must be in (0, 1)")
        if sorted(milestones) != list(milestones):
            raise TrainingError("milestones must be ascending")
        self.milestones = list(milestones)
        self.gamma = gamma

    def _decayed(self, step: int) -> float:
        drops = sum(1 for milestone in self.milestones if step >= milestone)
        return self.base_lr * (self.gamma ** drops)
