"""Hybrid data + model parallelism (paper §VIII-D, Fig. 13).

"Fig. 13 shows the performance for applying AIACC-Training to ResNet-50
using a hybrid data and model parallelism ... AIACC-Training consistently
improves the MXNet DDL implementation, improving the throughput by 2.8x
when using 64 GPUs."

Model parallelism splits each layer across ``model_parallel_degree`` GPUs
inside a node (over NVLink).  Consequences for the simulation:

* each GPU holds ``1/k`` of the parameters → its gradient all-reduce
  volume shrinks by ``k`` (slices reduce with same-slice peers);
* each GPU executes ``1/k`` of the FLOPs per sample;
* every layer boundary exchanges activations inside the node, adding an
  NVLink communication term proportional to batch size.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import TrainingError
from repro.models.base import ModelSpec
from repro.models.zoo import get_model
from repro.training.trainer import ThroughputResult, run_training
from repro.sim.cuda import V100


@dataclasses.dataclass(frozen=True)
class HybridPlan:
    """How one model is split across data- and model-parallel dimensions."""

    model: ModelSpec
    model_parallel_degree: int
    #: Activation bytes crossing the intra-node fabric per sample per
    #: direction (both the forward scatter and backward gather).
    activation_bytes_per_sample: float

    def __post_init__(self) -> None:
        if self.model_parallel_degree < 1:
            raise TrainingError("model_parallel_degree must be >= 1")

    def per_gpu_spec(self) -> ModelSpec:
        """The per-GPU shard: 1/k of parameters and FLOPs."""
        k = self.model_parallel_degree
        if k == 1:
            return self.model
        return self.model.scaled_to(
            max(1, self.model.num_parameters // k),
            self.model.forward_flops / k,
        )

    def activation_exchange_time_s(self, batch: int,
                                   nvlink_bps: float) -> float:
        """NVLink time for one iteration's activation scatter+gather."""
        if self.model_parallel_degree == 1:
            return 0.0
        total_bytes = 2.0 * self.activation_bytes_per_sample * batch
        return total_bytes * 8.0 / nvlink_bps


def make_hybrid_plan(model: str | ModelSpec,
                     model_parallel_degree: int) -> HybridPlan:
    """Build a hybrid plan with a standard activation-volume estimate.

    Activations per sample are estimated at 4 bytes x 8 x #parameters^0.75
    — a fit that yields ~25 MB/sample for ResNet-50 at 224x224, matching
    profiler numbers for fp32 training.
    """
    spec = get_model(model) if isinstance(model, str) else model
    activation_bytes = 4.0 * 8.0 * spec.num_parameters ** 0.75
    return HybridPlan(
        model=spec,
        model_parallel_degree=model_parallel_degree,
        activation_bytes_per_sample=activation_bytes,
    )


def run_hybrid_training(model: str | ModelSpec, backend: str,
                        num_gpus: int, model_parallel_degree: int = 2,
                        batch_per_group: int | None = None,
                        **train_kwargs: object) -> ThroughputResult:
    """Simulate hybrid-parallel training; returns group-level throughput.

    ``num_gpus`` counts physical GPUs; every ``model_parallel_degree``
    consecutive GPUs of a node form one model-parallel group that behaves
    like a single data-parallel worker with sharded parameters.
    """
    plan = make_hybrid_plan(model, model_parallel_degree)
    k = plan.model_parallel_degree
    if num_gpus % k != 0:
        raise TrainingError(
            f"num_gpus={num_gpus} not divisible by "
            f"model_parallel_degree={k}"
        )
    batch = batch_per_group or plan.model.default_batch_size
    shard_spec = plan.per_gpu_spec()
    exchange = plan.activation_exchange_time_s(batch, V100.nvlink_bps)
    result = run_training(
        shard_spec, backend, num_gpus,
        batch_per_gpu=batch,
        extra_forward_time_s=exchange,
        **t.cast(dict, train_kwargs),
    )
    # A group of k GPUs jointly processes `batch` samples, so the
    # per-physical-GPU sample share is batch / k.
    return dataclasses.replace(
        result, batch_per_gpu=max(1, batch // k))
