"""Timed training driver: runs backends and measures throughput.

This is the harness equivalent of the paper's measurement protocol
(Section VII-D): iterate, discard warm-up iterations, report steady-state
training throughput (samples/second across all GPUs) and scaling
efficiency (``T_N / (N x T_1)`` per the definition in Section III).

The simulation is deterministic, so a handful of measured iterations give
exact steady-state numbers (the paper needs 200 iterations x 5 runs to
average away testbed noise; we document the difference in EXPERIMENTS.md).
"""

from __future__ import annotations

import dataclasses
import logging
import statistics
import typing as t

from repro.errors import TrainingError
from repro.collectives.timed import TimedCollectives
from repro.frameworks import make_backend
from repro.frameworks.base import DDLBackend, IterationStats, TrainContext
from repro.models.base import ModelSpec
from repro.models.zoo import get_model
from repro.obs import Observability
from repro.sim.kernel import Simulator
from repro.sim.network import FluidNetwork
from repro.sim.tcp import TCP
from repro.sim.topology import alibaba_v100_cluster
from repro.sim.tracing import Trace
from repro.sim.transport import TransportModel


logger = logging.getLogger("repro.training")


@dataclasses.dataclass(frozen=True)
class ThroughputResult:
    """Measured steady-state performance of one training configuration."""

    model: str
    backend: str
    num_gpus: int
    batch_per_gpu: int
    iteration_times_s: tuple[float, ...]
    compute_time_s: float
    sample_unit: str

    @property
    def mean_iteration_s(self) -> float:
        return statistics.fmean(self.iteration_times_s)

    @property
    def throughput(self) -> float:
        """Samples processed per second across the whole cluster."""
        return self.num_gpus * self.batch_per_gpu / self.mean_iteration_s

    @property
    def single_gpu_throughput(self) -> float:
        """The communication-free single-GPU rate (the paper's T_1)."""
        return self.batch_per_gpu / self.compute_time_s

    @property
    def scaling_efficiency(self) -> float:
        """``measured / (N x T_1)`` — Section III's definition."""
        return self.throughput / (self.num_gpus * self.single_gpu_throughput)

    @property
    def exposed_comm_s(self) -> float:
        """Mean per-iteration communication time not hidden by compute."""
        return max(0.0, self.mean_iteration_s - self.compute_time_s)


def build_train_context(
    spec: ModelSpec,
    backend: DDLBackend,
    num_gpus: int,
    batch_per_gpu: int,
    transport: TransportModel = TCP,
    nic_bandwidth_bps: float = 30e9,
    gpus_per_node: int = 8,
    trace: Trace | None = None,
    extra_forward_time_s: float = 0.0,
    congested_links: t.Mapping[int, float] | None = None,
    gpu_spec: t.Any = None,
    representative: bool | None = None,
    sim: Simulator | None = None,
    obs: Observability | None = None,
    core_oversubscription: float = 1.0,
) -> TrainContext:
    """Build a fresh simulator + cluster + network training context.

    Shared by :func:`run_training` and the fault-injection driver
    (:func:`repro.training.resilience.run_fault_injected_training`, which
    passes ``representative=False`` so that a crashed node's links are
    actually simulated and its death stalls real flows).
    """
    sim = sim or Simulator()
    network = FluidNetwork(sim)
    from repro.sim.cuda import V100

    if congested_links:
        from repro.sim.topology import Cluster, NodeSpec

        if num_gpus % gpus_per_node != 0:
            raise TrainingError("num_gpus must fill whole nodes when "
                                "injecting congestion")
        node_spec = NodeSpec(gpus_per_node=gpus_per_node,
                             nic_bandwidth_bps=nic_bandwidth_bps,
                             transport=transport,
                             gpu=gpu_spec or V100)
        cluster = Cluster(sim, num_gpus // gpus_per_node, node_spec,
                          congested_links=congested_links,
                          core_oversubscription=core_oversubscription)
    else:
        cluster = alibaba_v100_cluster(
            sim, num_gpus, transport=transport,
            nic_bandwidth_bps=nic_bandwidth_bps,
            gpus_per_node=gpus_per_node, gpu=gpu_spec or V100,
            core_oversubscription=core_oversubscription)
    run_trace = trace or Trace(enabled=True)
    obs = obs or Observability.disabled()
    # The fluid network only pays per-flow telemetry when something will
    # read it; the fault hooks gain timeline instants the same way.
    network.obs = obs if obs.enabled else None
    network.diag = obs.diag
    run_trace.attach_timeline(obs.timeline)
    return TrainContext(
        sim=sim,
        network=network,
        cluster=cluster,
        collectives=TimedCollectives(sim, network, cluster, trace=run_trace,
                                     representative=representative,
                                     obs=obs),
        model=spec,
        batch_per_gpu=batch_per_gpu,
        trace=run_trace,
        wire_dtype_bytes=_wire_bytes_of(backend),
        extra_forward_time_s=extra_forward_time_s,
        obs=obs,
    )


def run_training(
    model: str | ModelSpec,
    backend: str | DDLBackend,
    num_gpus: int,
    batch_per_gpu: int | None = None,
    measure_iterations: int = 5,
    warmup_iterations: int = 2,
    transport: TransportModel = TCP,
    nic_bandwidth_bps: float = 30e9,
    gpus_per_node: int = 8,
    backend_options: t.Mapping[str, t.Any] | None = None,
    trace: Trace | None = None,
    extra_forward_time_s: float = 0.0,
    congested_links: t.Mapping[int, float] | None = None,
    gpu_spec: t.Any = None,
    obs: Observability | None = None,
    core_oversubscription: float = 1.0,
) -> ThroughputResult:
    """Simulate distributed training and measure steady-state throughput.

    Parameters
    ----------
    model:
        Zoo model name or an explicit :class:`ModelSpec`.
    backend:
        Backend name (see :func:`repro.frameworks.make_backend`) or a
        ready-made backend instance.
    num_gpus:
        Total worker count; packed ``gpus_per_node`` per node.
    batch_per_gpu:
        Per-GPU minibatch; defaults to the model's paper setting.
    measure_iterations / warmup_iterations:
        Measurement protocol; warm-up iterations are discarded.
    congested_links:
        Optional ``node -> capacity_fraction`` map injecting cross-tenant
        congestion (forces the slower full-link simulation mode).
    core_oversubscription:
        Leaf-spine oversubscription ratio; ``> 1`` inserts the shared
        core link every inter-node flow traverses (also forces full-link
        mode, since the shared core breaks NIC symmetry).
    gpu_spec:
        GPU model override (defaults to the paper's V100); pass
        :data:`repro.sim.cuda.A100` for future-hardware what-ifs.
    """
    if measure_iterations < 1 or warmup_iterations < 0:
        raise TrainingError("iteration counts out of range")
    spec = get_model(model) if isinstance(model, str) else model
    if isinstance(backend, str):
        backend = make_backend(backend, **dict(backend_options or {}))
    elif backend_options:
        raise TrainingError(
            "backend_options only apply when backend is given by name"
        )
    batch = batch_per_gpu or spec.default_batch_size

    ctx = build_train_context(
        spec, backend, num_gpus, batch,
        transport=transport, nic_bandwidth_bps=nic_bandwidth_bps,
        gpus_per_node=gpus_per_node, trace=trace,
        extra_forward_time_s=extra_forward_time_s,
        congested_links=congested_links, gpu_spec=gpu_spec,
        obs=obs, core_oversubscription=core_oversubscription,
    )
    sim = ctx.sim

    warm = sim.spawn(backend.warmup(ctx), name="warmup")
    sim.run(until=warm)

    times: list[float] = []
    for index in range(warmup_iterations + measure_iterations):
        proc = sim.spawn(backend.iteration(ctx), name=f"iter{index}")
        sim.run(until=proc)
        stats = t.cast(IterationStats, proc.value)
        if index >= warmup_iterations:
            times.append(stats.iteration_time_s)

    result = ThroughputResult(
        model=spec.name,
        backend=backend.name,
        num_gpus=num_gpus,
        batch_per_gpu=batch,
        iteration_times_s=tuple(times),
        compute_time_s=ctx.compute_time_s,
        sample_unit=spec.sample_unit,
    )
    logger.debug(
        "%s/%s on %d GPUs: %.1f %s/s (efficiency %.3f, "
        "exposed comm %.1f ms)", result.model, result.backend,
        result.num_gpus, result.throughput, result.sample_unit,
        result.scaling_efficiency, result.exposed_comm_s * 1e3)
    return result


def _wire_bytes_of(backend: DDLBackend) -> int:
    """Gradient wire width: fp16 when the backend compresses."""
    config = getattr(backend, "config", None)
    if config is not None and getattr(config, "fp16_compression", False):
        return 2
    return 4
