"""Asynchronous data parallelism (bounded staleness).

The paper's footnote 1 lists "asynchronous-data parallelism" among the
strategies AIACC-Training supports.  This module provides the numeric
semantics: workers apply gradients computed against parameters that are
up to ``staleness`` steps old — the classic stale-synchronous-parallel
model.  It exists so the trade-off can be *measured*: higher staleness
removes synchronization stalls but degrades convergence, which is why
the paper (and this reproduction) focus on the synchronous path.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import TrainingError
from repro.training.numeric import SyntheticTask, TinyMLP
from repro.training.optimizer import Optimizer

State = t.Dict[str, np.ndarray]


class StaleGradientTrainer:
    """Single-copy parameter server applying delayed worker gradients.

    A central parameter copy is updated by gradients that each worker
    computed ``staleness`` applications ago (staleness 0 = fully
    synchronous sequential SGD over worker contributions).
    """

    def __init__(self, model: TinyMLP, optimizer: Optimizer,
                 num_workers: int, staleness: int = 1) -> None:
        if num_workers < 1:
            raise TrainingError("num_workers must be >= 1")
        if staleness < 0:
            raise TrainingError("staleness must be >= 0")
        self.parameters = model.clone_parameters()
        self.optimizer = optimizer
        self.num_workers = num_workers
        self.staleness = staleness
        #: FIFO of pending gradients (the delay line).
        self._in_flight: list[State] = []

    def train(self, task: SyntheticTask, steps: int,
              batch_per_worker: int) -> list[float]:
        """Run ``steps`` rounds; returns the loss trajectory."""
        losses: list[float] = []
        cursor = 0
        for _ in range(steps):
            round_losses = []
            for _worker in range(self.num_workers):
                lo = cursor % (len(task.inputs) - batch_per_worker + 1)
                hi = lo + batch_per_worker
                cursor += batch_per_worker
                loss, grads = TinyMLP.loss_and_grads(
                    self.parameters, task.inputs[lo:hi],
                    task.labels[lo:hi])
                round_losses.append(loss)
                self._in_flight.append(grads)
                # Apply the gradient that has aged past the bound.
                if len(self._in_flight) > self.staleness:
                    stale = self._in_flight.pop(0)
                    self.optimizer.step(self.parameters, stale)
            losses.append(float(np.mean(round_losses)))
        # Drain the delay line so no contribution is lost.
        while self._in_flight:
            self.optimizer.step(self.parameters, self._in_flight.pop(0))
        return losses


def async_iteration_time_s(sync_iteration_s: float,
                           exposed_comm_s: float,
                           staleness: int) -> float:
    """Timing model: staleness hides exposed communication.

    With staleness ``s``, up to ``s`` communication rounds overlap with
    compute, so the exposed communication shrinks geometrically; at
    s = 0 the synchronous time is returned unchanged.
    """
    if sync_iteration_s <= 0 or exposed_comm_s < 0:
        raise TrainingError("times must be positive")
    if exposed_comm_s > sync_iteration_s:
        raise TrainingError("exposed comm cannot exceed iteration time")
    if staleness < 0:
        raise TrainingError("staleness must be >= 0")
    hidden = exposed_comm_s * (1.0 - 0.5 ** staleness)
    return sync_iteration_s - hidden
