"""Training substrate: optimizers, schedules, drivers, convergence.

- :mod:`repro.training.trainer` — timed throughput measurement;
- :mod:`repro.training.optimizer` — SGD / Adam / AdamSGD (paper §IV) and
  the Horovod-style ``DistributedOptimizer``;
- :mod:`repro.training.lr_schedule` — linear decay (AIACC default) and
  step decay;
- :mod:`repro.training.numeric` — end-to-end numeric data-parallel
  training on a numpy MLP (correctness proof for the whole pipeline);
- :mod:`repro.training.hybrid` — data + model parallelism (Fig. 13);
- :mod:`repro.training.convergence` — DAWNBench time-to-accuracy model.
"""

from repro.training.convergence import (
    AIACC_RECIPE_EPOCHS,
    BASELINE_RECIPE_EPOCHS,
    TimeToAccuracy,
    time_to_accuracy,
)
from repro.training.hybrid import (
    HybridPlan,
    make_hybrid_plan,
    run_hybrid_training,
)
from repro.training.async_dp import (
    StaleGradientTrainer,
    async_iteration_time_s,
)
from repro.training.lr_schedule import LinearDecay, LRSchedule, StepDecay
from repro.training.pipeline import (
    NumericPipeline,
    PipelinePlan,
    plan_pipeline,
    run_pipeline_training,
)
from repro.training.resilience import (
    FaultInjectionResult,
    RecoveryRecord,
    ResilienceResult,
    optimal_checkpoint_interval,
    run_fault_injected_training,
    simulate_resilient_training,
)
from repro.training.numeric import (
    SyntheticTask,
    TinyMLP,
    make_synthetic_task,
    train_data_parallel,
    train_single,
)
from repro.training.optimizer import (
    SGD,
    Adam,
    AdamSGD,
    DistributedOptimizer,
    Optimizer,
)
from repro.training.trainer import (
    ThroughputResult,
    build_train_context,
    run_training,
)

__all__ = [
    "AIACC_RECIPE_EPOCHS",
    "Adam",
    "AdamSGD",
    "BASELINE_RECIPE_EPOCHS",
    "DistributedOptimizer",
    "FaultInjectionResult",
    "HybridPlan",
    "LRSchedule",
    "LinearDecay",
    "NumericPipeline",
    "PipelinePlan",
    "RecoveryRecord",
    "ResilienceResult",
    "StaleGradientTrainer",
    "async_iteration_time_s",
    "build_train_context",
    "optimal_checkpoint_interval",
    "plan_pipeline",
    "run_fault_injected_training",
    "run_pipeline_training",
    "simulate_resilient_training",
    "Optimizer",
    "SGD",
    "StepDecay",
    "SyntheticTask",
    "ThroughputResult",
    "TimeToAccuracy",
    "TinyMLP",
    "make_hybrid_plan",
    "make_synthetic_task",
    "run_hybrid_training",
    "run_training",
    "time_to_accuracy",
    "train_data_parallel",
    "train_single",
]
