"""End-to-end *numeric* data-parallel training on a tiny model.

Throughput experiments only need timing, but correctness of the whole
AIACC pipeline — registration, synchronization, packing, ring all-reduce,
unpacking, distributed optimizer — is proven here: a small numpy MLP is
trained data-parallel through :class:`~repro.core.perseus.PerseusSession`
and must produce **exactly** the same parameters as single-worker
training on the concatenated batch (gradient averaging is linear, so the
math is bit-identical up to float associativity).
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.errors import TrainingError
from repro.core.perseus import PerseusSession
from repro.core.runtime import AIACCConfig
from repro.training.optimizer import DistributedOptimizer, Optimizer, SGD

State = t.Dict[str, np.ndarray]


@dataclasses.dataclass(frozen=True)
class SyntheticTask:
    """A fixed synthetic classification dataset."""

    inputs: np.ndarray
    labels: np.ndarray
    num_classes: int

    def __post_init__(self) -> None:
        if len(self.inputs) != len(self.labels):
            raise TrainingError("inputs/labels length mismatch")

    def batches(self, batch_size: int) -> t.Iterator[tuple[np.ndarray,
                                                           np.ndarray]]:
        """Fixed-order minibatches (deterministic for equivalence tests)."""
        for start in range(0, len(self.inputs) - batch_size + 1, batch_size):
            stop = start + batch_size
            yield self.inputs[start:stop], self.labels[start:stop]


def make_synthetic_task(num_samples: int = 512, input_dim: int = 16,
                        num_classes: int = 4, seed: int = 0) -> SyntheticTask:
    """Linearly separable-ish Gaussian blobs, one per class."""
    rng = np.random.default_rng(seed)
    centers = rng.normal(scale=3.0, size=(num_classes, input_dim))
    labels = rng.integers(num_classes, size=num_samples)
    inputs = centers[labels] + rng.normal(size=(num_samples, input_dim))
    return SyntheticTask(inputs=inputs, labels=labels,
                         num_classes=num_classes)


class TinyMLP:
    """Two-layer tanh MLP with softmax cross-entropy, pure numpy."""

    def __init__(self, input_dim: int, hidden_dim: int, num_classes: int,
                 seed: int = 0) -> None:
        rng = np.random.default_rng(seed)
        scale1 = 1.0 / np.sqrt(input_dim)
        scale2 = 1.0 / np.sqrt(hidden_dim)
        self.parameters: State = {
            "fc1.weight": rng.normal(scale=scale1,
                                     size=(input_dim, hidden_dim)),
            "fc1.bias": np.zeros(hidden_dim),
            "fc2.weight": rng.normal(scale=scale2,
                                     size=(hidden_dim, num_classes)),
            "fc2.bias": np.zeros(num_classes),
        }

    def clone_parameters(self) -> State:
        return {k: v.copy() for k, v in self.parameters.items()}

    @staticmethod
    def loss_and_grads(parameters: State, inputs: np.ndarray,
                       labels: np.ndarray) -> tuple[float, State]:
        """Mean cross-entropy loss and gradients for one minibatch."""
        hidden_pre = inputs @ parameters["fc1.weight"] + \
            parameters["fc1.bias"]
        hidden = np.tanh(hidden_pre)
        logits = hidden @ parameters["fc2.weight"] + parameters["fc2.bias"]

        shifted = logits - logits.max(axis=1, keepdims=True)
        exp = np.exp(shifted)
        probs = exp / exp.sum(axis=1, keepdims=True)
        batch = len(inputs)
        loss = float(-np.log(probs[np.arange(batch), labels] + 1e-12).mean())

        dlogits = probs.copy()
        dlogits[np.arange(batch), labels] -= 1.0
        dlogits /= batch
        dhidden = dlogits @ parameters["fc2.weight"].T
        dpre = dhidden * (1.0 - hidden ** 2)
        grads: State = {
            "fc2.weight": hidden.T @ dlogits,
            "fc2.bias": dlogits.sum(axis=0),
            "fc1.weight": inputs.T @ dpre,
            "fc1.bias": dpre.sum(axis=0),
        }
        return loss, grads

    @staticmethod
    def accuracy(parameters: State, inputs: np.ndarray,
                 labels: np.ndarray) -> float:
        hidden = np.tanh(inputs @ parameters["fc1.weight"] +
                         parameters["fc1.bias"])
        logits = hidden @ parameters["fc2.weight"] + parameters["fc2.bias"]
        return float((logits.argmax(axis=1) == labels).mean())


def train_single(model: TinyMLP, task: SyntheticTask,
                 optimizer: Optimizer, steps: int,
                 global_batch: int) -> list[float]:
    """Reference single-worker training; returns per-step losses."""
    losses = []
    batches = task.batches(global_batch)
    for _ in range(steps):
        try:
            inputs, labels = next(batches)
        except StopIteration:
            batches = task.batches(global_batch)
            inputs, labels = next(batches)
        loss, grads = TinyMLP.loss_and_grads(model.parameters, inputs,
                                             labels)
        optimizer.step(model.parameters, grads)
        losses.append(loss)
    return losses


def train_data_parallel(model: TinyMLP, task: SyntheticTask,
                        optimizer: Optimizer, steps: int,
                        num_workers: int, global_batch: int,
                        config: AIACCConfig | None = None
                        ) -> tuple[list[State], list[float]]:
    """Data-parallel training through the full Perseus pipeline.

    The global batch is sharded across ``num_workers``; each worker
    computes local gradients, the session averages them (sync + pack +
    ring all-reduce + unpack), and every worker applies the update.
    Returns (per-worker final parameters, per-step global losses).
    """
    if global_batch % num_workers != 0:
        raise TrainingError(
            f"global batch {global_batch} not divisible by "
            f"{num_workers} workers"
        )
    shard = global_batch // num_workers
    session = PerseusSession(num_workers, config=config)
    dist_optimizer = DistributedOptimizer(optimizer, session)
    worker_params = [model.clone_parameters() for _ in range(num_workers)]

    losses = []
    batches = task.batches(global_batch)
    for _ in range(steps):
        try:
            inputs, labels = next(batches)
        except StopIteration:
            batches = task.batches(global_batch)
            inputs, labels = next(batches)
        worker_grads = []
        step_losses = []
        for worker in range(num_workers):
            lo, hi = worker * shard, (worker + 1) * shard
            loss, grads = TinyMLP.loss_and_grads(
                worker_params[worker], inputs[lo:hi], labels[lo:hi])
            worker_grads.append(grads)
            step_losses.append(loss)
        dist_optimizer.step(worker_params, worker_grads)
        losses.append(float(np.mean(step_losses)))
    return worker_params, losses


def default_optimizer() -> Optimizer:
    """The optimizer used by the equivalence tests and examples."""
    return SGD(lr=0.1, momentum=0.9)
