"""Numeric optimizers, including the paper's hybrid AdamSGD.

"It implements a new optimizer by combining Adaptive Moment Estimation
(Adam) and Stochastic Gradient Descent (SGD)" (paper §IV).  The hybrid
runs Adam during an initial phase for fast progress, then switches to SGD
(whose flatter minima generalise better) for the remainder — the common
SWATS-style recipe.

:class:`DistributedOptimizer` is the Horovod-style wrapper: it averages
gradients across a :class:`~repro.core.perseus.PerseusSession` before
applying the local update, keeping all workers' parameters bit-identical.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import TrainingError

State = t.Dict[str, np.ndarray]


class Optimizer:
    """Base class: stateful parameter updates from gradients."""

    def __init__(self, lr: float) -> None:
        if lr <= 0:
            raise TrainingError(f"learning rate must be positive, got {lr}")
        self.lr = lr
        self.steps = 0

    def step(self, parameters: State, gradients: State) -> None:
        """Update ``parameters`` in place from ``gradients``."""
        if set(parameters) != set(gradients):
            raise TrainingError("parameter/gradient key mismatch")
        self._apply(parameters, gradients)
        self.steps += 1

    def _apply(self, parameters: State, gradients: State) -> None:
        raise NotImplementedError

    def state_dict(self) -> State:
        """Serializable optimizer state (for checkpoints)."""
        return {"steps": np.asarray(self.steps)}

    def load_state_dict(self, state: State) -> None:
        self.steps = int(state["steps"])


class SGD(Optimizer):
    """Stochastic gradient descent with optional momentum."""

    def __init__(self, lr: float = 0.1, momentum: float = 0.0,
                 weight_decay: float = 0.0) -> None:
        super().__init__(lr)
        if not 0 <= momentum < 1:
            raise TrainingError("momentum must be in [0, 1)")
        self.momentum = momentum
        self.weight_decay = weight_decay
        self._velocity: State = {}

    def _apply(self, parameters: State, gradients: State) -> None:
        for name, param in parameters.items():
            grad = gradients[name]
            if self.weight_decay:
                grad = grad + self.weight_decay * param
            if self.momentum:
                velocity = self._velocity.get(name)
                if velocity is None:
                    velocity = np.zeros_like(param)
                velocity = self.momentum * velocity + grad
                self._velocity[name] = velocity
                grad = velocity
            param -= self.lr * grad

    def state_dict(self) -> State:
        state = super().state_dict()
        for name, velocity in self._velocity.items():
            state[f"velocity/{name}"] = velocity
        return state

    def load_state_dict(self, state: State) -> None:
        super().load_state_dict(state)
        self._velocity = {
            key[len("velocity/"):]: np.array(value)
            for key, value in state.items() if key.startswith("velocity/")
        }


class Adam(Optimizer):
    """Adam (Kingma & Ba, 2014)."""

    def __init__(self, lr: float = 1e-3, beta1: float = 0.9,
                 beta2: float = 0.999, eps: float = 1e-8) -> None:
        super().__init__(lr)
        if not (0 <= beta1 < 1 and 0 <= beta2 < 1):
            raise TrainingError("betas must be in [0, 1)")
        self.beta1 = beta1
        self.beta2 = beta2
        self.eps = eps
        self._m: State = {}
        self._v: State = {}

    def _apply(self, parameters: State, gradients: State) -> None:
        step = self.steps + 1
        correction1 = 1 - self.beta1 ** step
        correction2 = 1 - self.beta2 ** step
        for name, param in parameters.items():
            grad = gradients[name]
            m = self._m.get(name)
            v = self._v.get(name)
            if m is None:
                m = np.zeros_like(param)
                v = np.zeros_like(param)
            m = self.beta1 * m + (1 - self.beta1) * grad
            v = self.beta2 * v + (1 - self.beta2) * grad * grad
            self._m[name] = m
            self._v[name] = v
            m_hat = m / correction1
            v_hat = v / correction2
            param -= self.lr * m_hat / (np.sqrt(v_hat) + self.eps)


class AdamSGD(Optimizer):
    """The paper's hybrid: Adam warm phase, then SGD (paper §IV)."""

    def __init__(self, lr: float = 1e-3, sgd_lr: float = 0.01,
                 switch_step: int = 100, momentum: float = 0.9) -> None:
        super().__init__(lr)
        if switch_step < 1:
            raise TrainingError("switch_step must be >= 1")
        self.switch_step = switch_step
        self.adam = Adam(lr=lr)
        self.sgd = SGD(lr=sgd_lr, momentum=momentum)

    @property
    def active(self) -> Optimizer:
        """The phase currently applying updates."""
        return self.adam if self.steps < self.switch_step else self.sgd

    def _apply(self, parameters: State, gradients: State) -> None:
        self.active.step(parameters, gradients)

    def set_lr(self, lr: float) -> None:
        """Propagate a schedule's learning rate to the active phase."""
        self.lr = lr
        self.active.lr = lr


class DistributedOptimizer:
    """Averages gradients across a Perseus session, then updates locally.

    The Horovod-API wrapper: ``DistributedOptimizer(SGD(...), session)``.
    Every worker's parameters stay identical because all workers apply the
    same averaged gradients with the same deterministic optimizer state.
    """

    def __init__(self, optimizer: Optimizer, session: t.Any) -> None:
        self.optimizer = optimizer
        self.session = session
        self._optimizers: list[Optimizer] | None = None

    def step(self, worker_parameters: t.Sequence[State],
             worker_gradients: t.Sequence[State]) -> None:
        """One synchronized data-parallel update across all workers."""
        size = self.session.size()
        if len(worker_parameters) != size or len(worker_gradients) != size:
            raise TrainingError(
                f"expected state for {size} workers, got "
                f"{len(worker_parameters)}/{len(worker_gradients)}"
            )
        if not self.session.registered:
            self.session.register_parameters({
                name: value.shape
                for name, value in worker_parameters[0].items()
            })
        if self._optimizers is None:
            import copy

            self._optimizers = [copy.deepcopy(self.optimizer)
                                for _ in range(size)]
        averaged = self.session.reduce_gradients(worker_gradients)
        for optimizer, parameters, gradients in zip(
                self._optimizers, worker_parameters, averaged):
            optimizer.step(parameters, gradients)
