"""Pipeline parallelism (GPipe-style), combinable with data parallelism.

The paper states AIACC-Training supports "data, model and pipeline
parallelisms or a mixture of these parallelization strategies" (§I
footnote, §IV).  This module provides both faces:

* **timed** — :func:`run_pipeline_training` partitions a model into
  balanced stages, derives the per-GPU shard, adds the pipeline *bubble*
  ((S-1)/(M+S-1) of compute idle for S stages and M micro-batches) and
  the inter-stage activation traffic, then reuses the standard trainer so
  every communication backend can be compared under pipeline parallelism;
* **numeric** — :class:`NumericPipeline` executes a two-stage TinyMLP
  with real micro-batch scheduling and activation/grad-activation
  exchanges, and is provably equivalent to non-pipelined training
  (synchronous GPipe does not change the math).
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.errors import TrainingError
from repro.models.base import ModelSpec
from repro.models.zoo import get_model
from repro.sim.cuda import V100
from repro.training.trainer import ThroughputResult, run_training

State = t.Dict[str, np.ndarray]


@dataclasses.dataclass(frozen=True)
class PipelinePlan:
    """Partition of a model into pipeline stages."""

    model: ModelSpec
    num_stages: int
    micro_batches: int
    #: Layer index ranges [start, end) per stage, FLOPs-balanced.
    stage_bounds: tuple[tuple[int, int], ...]
    #: Activation bytes crossing each stage boundary per sample.
    activation_bytes_per_sample: float

    def __post_init__(self) -> None:
        if self.num_stages < 1:
            raise TrainingError("num_stages must be >= 1")
        if self.micro_batches < 1:
            raise TrainingError("micro_batches must be >= 1")
        if len(self.stage_bounds) != self.num_stages:
            raise TrainingError("stage_bounds/num_stages mismatch")

    @property
    def bubble_fraction(self) -> float:
        """Idle fraction of the pipeline: (S-1) / (M+S-1) (GPipe)."""
        s, m = self.num_stages, self.micro_batches
        return (s - 1) / (m + s - 1)

    def stage_spec(self, stage: int) -> ModelSpec:
        """The ModelSpec of one stage's layer slice."""
        lo, hi = self.stage_bounds[stage]
        layers = self.model.layers[lo:hi]
        return dataclasses.replace(self.model,
                                   name=f"{self.model.name}.stage{stage}",
                                   layers=layers)

    def heaviest_stage_spec(self) -> ModelSpec:
        """The stage that paces the pipeline (most FLOPs)."""
        return max((self.stage_spec(s) for s in range(self.num_stages)),
                   key=lambda spec: spec.forward_flops)


def plan_pipeline(model: str | ModelSpec, num_stages: int,
                  micro_batches: int | None = None) -> PipelinePlan:
    """FLOPs-balanced contiguous partition of a model into stages.

    ``micro_batches`` defaults to ``4 x num_stages`` (the GPipe paper's
    recommendation for keeping the bubble below ~20%).
    """
    spec = get_model(model) if isinstance(model, str) else model
    if num_stages < 1 or num_stages > len(spec.layers):
        raise TrainingError(
            f"num_stages must be in [1, {len(spec.layers)}]"
        )
    micro = micro_batches if micro_batches is not None else 4 * num_stages

    # Greedy balanced partition over the layer FLOPs prefix sums.
    total = spec.forward_flops
    bounds: list[tuple[int, int]] = []
    start = 0
    acc = 0.0
    target = total / num_stages
    for index, layer in enumerate(spec.layers):
        acc += layer.forward_flops
        remaining_layers = len(spec.layers) - index - 1
        remaining_stages = num_stages - len(bounds) - 1
        if (acc >= target and remaining_stages > 0) or \
                remaining_layers < remaining_stages:
            bounds.append((start, index + 1))
            start = index + 1
            acc = 0.0
            if len(bounds) == num_stages - 1:
                break
    bounds.append((start, len(spec.layers)))
    while len(bounds) < num_stages:  # degenerate tiny models
        bounds.append((len(spec.layers), len(spec.layers)))

    # Activation volume at a stage cut ~ hidden width; reuse the hybrid
    # heuristic scaled down (only one boundary tensor, not all layers).
    activation_bytes = 4.0 * spec.num_parameters ** 0.75

    return PipelinePlan(
        model=spec,
        num_stages=num_stages,
        micro_batches=micro,
        stage_bounds=tuple(bounds),
        activation_bytes_per_sample=activation_bytes,
    )


def run_pipeline_training(model: str | ModelSpec, backend: str,
                          num_gpus: int, num_stages: int = 4,
                          micro_batches: int | None = None,
                          batch_per_pipeline: int | None = None,
                          **train_kwargs: t.Any) -> ThroughputResult:
    """Timed pipeline + data parallel training.

    ``num_gpus`` GPUs form ``num_gpus / num_stages`` pipeline replicas;
    replicas are data-parallel, so each stage's parameter shard
    all-reduces with its counterparts through the chosen backend.
    """
    plan = plan_pipeline(model, num_stages, micro_batches)
    if num_gpus % plan.num_stages != 0:
        raise TrainingError(
            f"num_gpus={num_gpus} not divisible by num_stages="
            f"{plan.num_stages}"
        )
    batch = batch_per_pipeline or plan.model.default_batch_size

    # Per-GPU view: the pacing stage's compute, stretched by the bubble,
    # plus inter-stage activation exchange (M transfers each way; stages
    # are placed on consecutive GPUs of a node, so NVLink carries them).
    pacing = plan.heaviest_stage_spec()
    gpu_flops_rate = V100.peak_fp32_flops * V100.compute_efficiency
    stage_compute = 3.0 * pacing.forward_flops * batch / gpu_flops_rate
    bubble_time = stage_compute * plan.bubble_fraction / \
        max(1e-12, 1.0 - plan.bubble_fraction)
    activation_time = (2.0 * plan.activation_bytes_per_sample * batch
                       * 8.0 / V100.nvlink_bps)

    result = run_training(
        pacing, backend, num_gpus,
        batch_per_gpu=batch,
        extra_forward_time_s=bubble_time + activation_time,
        **train_kwargs,
    )
    # A pipeline replica of S GPUs jointly processes `batch` samples.
    return dataclasses.replace(
        result, batch_per_gpu=max(1, batch // plan.num_stages))


class NumericPipeline:
    """Two-stage micro-batched pipeline over a :class:`TinyMLP`.

    Stage 0 owns ``fc1`` (+tanh), stage 1 owns ``fc2`` (+softmax/CE).
    Forward activations flow 0→1 per micro-batch; activation gradients
    flow back 1→0; each stage accumulates parameter gradients over all
    micro-batches, then averages — mathematically identical to one
    full-batch backward pass.
    """

    def __init__(self, parameters: State, micro_batches: int = 4) -> None:
        if micro_batches < 1:
            raise TrainingError("micro_batches must be >= 1")
        self.parameters = parameters
        self.micro_batches = micro_batches

    def loss_and_grads(self, inputs: np.ndarray,
                       labels: np.ndarray) -> tuple[float, State]:
        """Micro-batched forward/backward; returns mean loss and grads."""
        if len(inputs) % self.micro_batches != 0:
            raise TrainingError(
                f"batch {len(inputs)} not divisible by "
                f"{self.micro_batches} micro-batches"
            )
        shard = len(inputs) // self.micro_batches
        p = self.parameters
        grads = {name: np.zeros_like(value) for name, value in p.items()}
        losses = []

        # Forward pass of every micro-batch (stage 0 then stage 1),
        # stashing activations exactly as a pipeline schedule would.
        stashed = []
        for m in range(self.micro_batches):
            x = inputs[m * shard:(m + 1) * shard]
            hidden = np.tanh(x @ p["fc1.weight"] + p["fc1.bias"])
            stashed.append((x, hidden))
        for m in range(self.micro_batches):
            x, hidden = stashed[m]
            y = labels[m * shard:(m + 1) * shard]
            logits = hidden @ p["fc2.weight"] + p["fc2.bias"]
            shifted = logits - logits.max(axis=1, keepdims=True)
            exp = np.exp(shifted)
            probs = exp / exp.sum(axis=1, keepdims=True)
            losses.append(float(
                -np.log(probs[np.arange(shard), y] + 1e-12).mean()))

            # Stage-1 backward; activation gradient travels to stage 0.
            dlogits = probs
            dlogits[np.arange(shard), y] -= 1.0
            dlogits /= shard
            grads["fc2.weight"] += hidden.T @ dlogits
            grads["fc2.bias"] += dlogits.sum(axis=0)
            dhidden = dlogits @ p["fc2.weight"].T

            # Stage-0 backward.
            dpre = dhidden * (1.0 - hidden ** 2)
            grads["fc1.weight"] += x.T @ dpre
            grads["fc1.bias"] += dpre.sum(axis=0)

        scale = 1.0 / self.micro_batches
        return float(np.mean(losses)), {
            name: value * scale for name, value in grads.items()}
