"""Transport-protocol models.

A :class:`TransportModel` captures how efficiently a protocol uses a raw
physical link:

``single_stream_efficiency``
    The fraction of raw link bandwidth one stream/connection can reach.
    Section III of the paper measured this at **≤ 30% for TCP** on the
    Alibaba 30 Gbps VPC and **5–10% for RDMA** — the observation that
    motivates multi-streamed communication.
``aggregate_efficiency``
    The fraction reachable by many concurrent streams (protocol framing,
    congestion control and virtualisation overhead keep it below 1.0).
``per_message_overhead_s``
    Fixed per-message cost (syscall/driver/NIC doorbell); the α term of
    the α–β cost model.
``setup_latency_s``
    One-time cost of opening an additional stream (connection handshake,
    CUDA stream + communicator construction).
"""

from __future__ import annotations

import dataclasses

from repro.errors import NetworkError


@dataclasses.dataclass(frozen=True)
class TransportModel:
    """Efficiency profile of a network transport protocol."""

    name: str
    single_stream_efficiency: float
    aggregate_efficiency: float
    per_message_overhead_s: float
    setup_latency_s: float
    #: Whether the NIC reads GPU memory directly (GPU-direct RDMA).  On
    #: plain TCP the communication bucket lives in CPU memory (paper
    #: §V-A.2), so each all-reduce unit pays a PCIe staging copy.
    gpu_direct: bool = False

    def __post_init__(self) -> None:
        if not 0 < self.single_stream_efficiency <= 1:
            raise NetworkError("single_stream_efficiency must be in (0, 1]")
        if not 0 < self.aggregate_efficiency <= 1:
            raise NetworkError("aggregate_efficiency must be in (0, 1]")
        if self.single_stream_efficiency > self.aggregate_efficiency:
            raise NetworkError(
                "a single stream cannot beat the aggregate efficiency"
            )
        if self.per_message_overhead_s < 0 or self.setup_latency_s < 0:
            raise NetworkError("overheads must be non-negative")

    def stream_cap_bps(self, raw_bandwidth_bps: float) -> float:
        """Per-stream rate cap on a link of ``raw_bandwidth_bps``."""
        return raw_bandwidth_bps * self.single_stream_efficiency

    def effective_capacity_bps(self, raw_bandwidth_bps: float) -> float:
        """Usable aggregate capacity of a link of ``raw_bandwidth_bps``."""
        return raw_bandwidth_bps * self.aggregate_efficiency

    def max_useful_streams(self) -> int:
        """Streams needed to saturate the aggregate capacity."""
        import math

        return math.ceil(self.aggregate_efficiency
                         / self.single_stream_efficiency)
