"""Generator-based simulated processes.

A process wraps a Python generator.  The generator yields :class:`Event`
objects (timeouts, resource acquisitions, other processes, ...) to suspend;
when the yielded event triggers, the process resumes with the event's value.
A failing event has its exception thrown into the generator, so ordinary
``try/except`` works inside simulated code.

A :class:`Process` is itself an :class:`Event` that triggers when the
generator returns (value = the ``return`` value) or raises.
"""

from __future__ import annotations

import typing as t

from repro.errors import ProcessInterrupt, SimulationError
from repro.sim.events import Event

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Process(Event):
    """A running simulated process.  Also an event: fires on termination."""

    __slots__ = ("generator", "_waiting_on")

    def __init__(self, sim: "Simulator", generator: t.Generator,
                 name: str = "") -> None:
        if not hasattr(generator, "send"):
            raise TypeError(
                f"Process requires a generator, got {type(generator).__name__}; "
                "did you forget to call the process function?"
            )
        super().__init__(sim, name=name or getattr(generator, "__name__", "process"))
        self.generator = generator
        self._waiting_on: Event | None = None
        # Kick off the process at the current simulation instant, but through
        # the event queue so that spawn order does not matter.
        bootstrap = sim.event(name=f"{self.name}.start")
        self._waiting_on = bootstrap
        bootstrap.add_callback(self._resume)
        sim._schedule_at(sim.now, bootstrap, None)

    # -- lifecycle ------------------------------------------------------------

    @property
    def alive(self) -> bool:
        """Whether the process generator is still running."""
        return not self.triggered

    @property
    def can_interrupt(self) -> bool:
        """Whether :meth:`interrupt` would succeed right now.

        False for finished processes and for the (rare) alive-but-stuck
        state left behind when an unwatched generator crashed and had its
        exception surfaced instead of recorded.  Deferred interrupt
        delivery (:meth:`Simulator.interrupt`) checks this so a crash
        racing its victim's exit is a no-op instead of an error.
        """
        return not self.triggered and self._waiting_on is not None

    def interrupt(self, cause: object = None) -> None:
        """Throw :class:`ProcessInterrupt` into the process at its yield point.

        Interrupting a terminated process is an error.  The event the process
        was waiting on remains pending; the process may re-wait on it.
        """
        if self.triggered:
            raise SimulationError(f"cannot interrupt finished process {self!r}")
        waiting = self._waiting_on
        if waiting is None:
            raise SimulationError(
                f"process {self!r} is not waiting; cannot interrupt during startup"
            )
        self._waiting_on = None
        self._step(ProcessInterrupt(cause), throw=True)

    # -- engine -----------------------------------------------------------------

    def _resume(self, event: Event) -> None:
        """Callback fired when the event this process waits on triggers."""
        if self._waiting_on is not event:
            # The process was interrupted while waiting and has moved on;
            # ignore the stale wakeup.
            return
        self._waiting_on = None
        if event.ok:
            self._step(event.value, throw=False)
        else:
            self._step(event.value, throw=True)

    def _step(self, value: object, throw: bool) -> None:
        """Advance the generator one yield."""
        try:
            if throw:
                target = self.generator.throw(t.cast(BaseException, value))
            else:
                target = self.generator.send(value)
        except StopIteration as stop:
            self.succeed(stop.value)
            return
        except BaseException as exc:
            if self.callbacks is not None and not self.callbacks:
                # Nobody is watching this process: surface the crash rather
                # than swallowing it into an un-observed failed event.
                raise
            self.fail(exc)
            return

        if not isinstance(target, Event):
            crash = SimulationError(
                f"process {self.name!r} yielded {target!r}; processes may "
                "only yield Event instances"
            )
            self.generator.close()
            self.fail(crash)
            return
        if target.sim is not self.sim:
            self.generator.close()
            self.fail(SimulationError(
                f"process {self.name!r} yielded an event from a different simulator"
            ))
            return
        self._waiting_on = target
        target.add_callback(self._resume)
