"""Core event primitives for the discrete-event simulator.

An :class:`Event` is a one-shot occurrence with an optional value.  Processes
(see :mod:`repro.sim.process`) yield events to suspend until the event is
*triggered*.  Events may also *fail*, in which case the exception is thrown
into every waiting process.

The design follows the SimPy model closely but is self-contained: only the
pieces needed by this library are implemented, and triggering semantics are
strict (an event can be triggered exactly once).
"""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator

Callback = t.Callable[["Event"], None]

#: Sentinel used for "not yet triggered" values.
_PENDING = object()

#: Memoized ``timeout(<delay:g>)`` labels.  Simulated workloads reuse a
#: small set of distinct delays (per-hop latencies, retry backoffs, layer
#: compute times) thousands of times per step, and ``%g`` formatting per
#: Timeout shows up in kernel profiles.  The cached string is identical
#: to the formatted one, so event names — and replay digests — are
#: unchanged.  Bounded so adversarial delay sequences cannot grow it.
_TIMEOUT_NAMES: dict[float, str] = {}
_TIMEOUT_NAMES_MAX = 4096


def _timeout_name(delay: float) -> str:
    name = _TIMEOUT_NAMES.get(delay)
    if name is None:
        name = f"timeout({delay:g})"
        if len(_TIMEOUT_NAMES) >= _TIMEOUT_NAMES_MAX:
            _TIMEOUT_NAMES.clear()
        _TIMEOUT_NAMES[delay] = name
    return name


class Event:
    """A one-shot occurrence in simulated time.

    Parameters
    ----------
    sim:
        The owning simulator.  Events scheduled on one simulator must never
        be mixed with another simulator instance.
    name:
        Optional human-readable label used in traces and error messages.
    """

    __slots__ = ("sim", "name", "callbacks", "_value", "_ok",
                 "_scheduled", "_pooled")

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name
        self.callbacks: list[Callback] | None = []
        self._value: object = _PENDING
        self._ok: bool = True
        #: Heap-entry balance: incremented when the kernel schedules this
        #: event, decremented when it triggers.  Non-zero means at least
        #: one pending heap entry still references the object, so it must
        #: not be recycled (see :meth:`Simulator.release_event`).
        self._scheduled: int = 0
        #: Whether the event currently sits in the kernel's event pool.
        #: Guards against double-release (a cancellation path and the
        #: wakeup callback may both try to return the same object).
        self._pooled: bool = False

    # -- state inspection -------------------------------------------------

    @property
    def triggered(self) -> bool:
        """Whether the event has occurred (successfully or not)."""
        return self._value is not _PENDING

    @property
    def ok(self) -> bool:
        """Whether the event succeeded. Only meaningful once triggered."""
        return self._ok

    @property
    def value(self) -> object:
        """The event's value (or exception if it failed)."""
        if self._value is _PENDING:
            raise SimulationError(f"event {self!r} has not been triggered")
        return self._value

    # -- triggering --------------------------------------------------------

    def succeed(self, value: object = None) -> "Event":
        """Trigger the event successfully with ``value``."""
        if self._value is not _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = value
        self._ok = True
        self._scheduled -= 1
        self.sim._dispatch(self)
        return self

    def fail(self, exception: BaseException) -> "Event":
        """Trigger the event with a failure.

        Waiting processes will have ``exception`` thrown into them at their
        yield point.
        """
        if not isinstance(exception, BaseException):
            raise TypeError("fail() requires an exception instance")
        if self._value is not _PENDING:
            raise SimulationError(f"event {self!r} already triggered")
        self._value = exception
        self._ok = False
        self._scheduled -= 1
        self.sim._dispatch(self)
        return self

    # -- observer registration ----------------------------------------------

    def _reset_for_reuse(self, name: str = "") -> None:
        """Return a fired event to the untriggered state (object pooling).

        Strictly internal: only safe for events whose every reference is
        owned by the caller — the network's wakeup timers qualify (they
        are never yielded to processes, and each one is popped from the
        kernel heap exactly once before it is recycled).  Pooling them
        cuts one allocation per rate reallocation off the hot path; the
        recycled event is observationally identical to a fresh one
        (including its name, which the replay digest folds), so replay
        digests are unchanged.  :meth:`Simulator.release_event` refuses
        events with a pending heap entry (``_scheduled > 0``), so a
        recycled event can never be resurrected into a double-trigger.
        """
        self._value = _PENDING
        self._ok = True
        self.callbacks = []
        self.name = name

    def add_callback(self, callback: Callback) -> None:
        """Invoke ``callback(event)`` when the event triggers.

        If the event has already been dispatched the callback fires
        immediately (synchronously).
        """
        if self.callbacks is None:
            callback(self)
        else:
            self.callbacks.append(callback)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "triggered" if self.triggered else "pending"
        label = self.name or self.__class__.__name__
        return f"<{label} {state} at t={self.sim.now:.6f}>"


class Timeout(Event):
    """An event that triggers after a fixed simulated delay."""

    __slots__ = ("delay",)

    def __init__(self, sim: "Simulator", delay: float, value: object = None,
                 name: str = "") -> None:
        if delay < 0:
            raise ValueError(f"negative timeout delay: {delay}")
        super().__init__(sim, name=name or _timeout_name(delay))
        self.delay = delay
        sim._schedule_at(sim.now + delay, self, value)


class AllOf(Event):
    """Triggers when all child events have triggered successfully.

    The value is a list of the children's values in the order given.  If any
    child fails, this event fails with the same exception (first failure
    wins).
    """

    __slots__ = ("events", "_remaining")

    def __init__(self, sim: "Simulator", events: t.Sequence[Event]) -> None:
        super().__init__(sim, name=f"all_of({len(events)})")
        self.events = list(events)
        self._remaining = len(self.events)
        if self._remaining == 0:
            self.succeed([])
            return
        for child in self.events:
            child.add_callback(self._on_child)

    def _on_child(self, child: Event) -> None:
        if self.triggered:
            return
        if not child.ok:
            self.fail(t.cast(BaseException, child.value))
            return
        self._remaining -= 1
        if self._remaining == 0:
            self.succeed([c.value for c in self.events])


class AnyOf(Event):
    """Triggers when the first child event triggers.

    The value is the ``(index, value)`` pair of the first child.  A failing
    first child fails this event.
    """

    __slots__ = ("events",)

    def __init__(self, sim: "Simulator", events: t.Sequence[Event]) -> None:
        super().__init__(sim, name=f"any_of({len(events)})")
        self.events = list(events)
        if not self.events:
            raise SimulationError("AnyOf requires at least one event")
        for index, child in enumerate(self.events):
            child.add_callback(self._make_child_callback(index))

    def _make_child_callback(self, index: int) -> Callback:
        def _on_child(child: Event) -> None:
            if self.triggered:
                return
            if child.ok:
                self.succeed((index, child.value))
            else:
                self.fail(t.cast(BaseException, child.value))

        return _on_child
