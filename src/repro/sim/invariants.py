"""Opt-in invariant checking and deterministic-replay support.

The paper's core claim (§V) rests on lock-step agreement: every worker
independently produces the *same* unit plan and the *same* sync decision,
or the multi-streamed all-reduce silently corrupts.  This module is the
harness that checks those agreements — and the kernel's resource
accounting — continuously while a simulation runs, instead of only in
dedicated tests.

Three invariant families:

**Resource accounting** (kernel-level).  Every
:class:`~repro.sim.resources.Resource` built while a checker is attached
keeps a double-entry grant/release ledger; the checker verifies
``in_use == granted_slots - released_slots`` and ``in_use >= 0`` after
every mutation, and quiescence checks assert no slots or acquire grants
leaked after interrupts (the stream pool must drain to zero at iteration
boundaries).  :class:`~repro.sim.resources.Store` channels are checked
for the buffered-items-and-waiting-getters contradiction.

**Event-ordering determinism**.  The kernel breaks simultaneous-event
ties with a monotone insertion counter, so two runs of the same seeded
workload pop events in the same order.  The checker folds every popped
``(time, event-name)`` pair into a rolling BLAKE2 digest
(:meth:`InvariantChecker.digest`, surfaced as
:meth:`~repro.sim.kernel.Simulator.state_digest`); byte-identical digests
across runs prove replay determinism, a diverging digest localises the
first nondeterministic step.

**Cross-worker agreement** (shadow referee).  Per-rank components report
their decisions to the checker, which compares them against the first
reporter for the same round: sync rounds must return identical ready-id
vectors on every rank (:meth:`report_sync_result`), unit plans must be
identical per round (:meth:`report_unit_plan`), no unit plan may contain
degenerate sub-epsilon slices or gaps/overlaps
(:meth:`check_unit_plan`), and a synchronizer must never enter a new
round while its previous ring worker is still alive
(:meth:`on_sync_worker` — the leaked-worker class of bug).

Enabling the checker: pass ``check_invariants=True`` to
:class:`~repro.sim.kernel.Simulator`, set
``AIACCConfig(check_invariants=True)``, pass ``--check-invariants`` to a
``repro`` CLI subcommand, or export ``REPRO_CHECK_INVARIANTS=1`` (the CI
hook) — the environment flag makes every new simulator attach a checker
automatically.  Violations raise :class:`~repro.errors.InvariantViolation`
naming the invariant, rank, and simulated time.
"""

from __future__ import annotations

import hashlib
import os
import typing as t

from repro.errors import InvariantViolation, SimulationError

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.packing import AllReduceUnit
    from repro.core.streams import CommStreamPool
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process
    from repro.sim.resources import Resource, Store

#: Environment flag that turns the checker on for every new simulator.
ENV_FLAG = "REPRO_CHECK_INVARIANTS"


def invariants_enabled_by_env() -> bool:
    """Whether ``REPRO_CHECK_INVARIANTS`` requests checking globally."""
    value = os.environ.get(ENV_FLAG, "").strip().lower()
    return value not in ("", "0", "false", "no")


def ensure_invariants(sim: "Simulator") -> "InvariantChecker":
    """Return ``sim``'s checker, attaching a fresh one if absent."""
    checker = sim.invariants
    if checker is None:
        checker = InvariantChecker()
        checker.attach(sim)
    return checker


class InvariantChecker:
    """Continuous invariant checking woven through one simulator.

    Attach before building the system under test so resources register
    themselves; components discover the checker through
    ``sim.invariants`` and report into it.  All ``check_*`` /
    ``report_*`` methods raise :class:`InvariantViolation` on failure
    and are no-ops otherwise.
    """

    def __init__(self) -> None:
        self.sim: "Simulator | None" = None
        self._digest = hashlib.blake2b(digest_size=16)
        #: Events folded into the digest so far.
        self.events_hashed = 0
        #: Invariant evaluations performed (all families).
        self.checks = 0
        self._resources: list["Resource"] = []
        #: synchronizer -> its most recently spawned ring worker.
        self._sync_workers: dict[object, "Process"] = {}
        #: (round, vector length) -> (reporting rank, ready-id tuple).
        self._sync_results: dict[tuple[int, int], tuple[int, tuple]] = {}
        #: round -> (reporting rank, unit-plan signature).
        self._unit_plans: dict[int, tuple[int, tuple]] = {}
        #: Membership epoch the referee tables belong to (see
        #: :meth:`advance_epoch`).
        self.epoch = 0

    def attach(self, sim: "Simulator") -> "InvariantChecker":
        """Install this checker as ``sim.invariants``."""
        if sim.invariants is not None and sim.invariants is not self:
            raise SimulationError(
                "simulator already has an invariant checker attached"
            )
        sim.invariants = self
        self.sim = sim
        return self

    def _now(self) -> float | None:
        return self.sim.now if self.sim is not None else None

    def _violate(self, invariant: str, detail: str,
                 rank: int | None = None) -> t.NoReturn:
        raise InvariantViolation(invariant, detail, rank=rank,
                                 sim_time=self._now())

    # -- event-ordering determinism ------------------------------------------

    def record_event(self, when: float, name: str) -> None:
        """Fold one popped event into the run digest (kernel hook)."""
        self._digest.update(f"{when!r}|{name}\n".encode())
        self.events_hashed += 1

    def digest(self) -> str:
        """Hex digest of the event sequence so far.

        Two runs of the same seeded workload must produce byte-identical
        digests; comparing digests is the replay-determinism invariant.
        """
        return self._digest.hexdigest()

    # -- membership epochs ---------------------------------------------------

    def advance_epoch(self, epoch: int) -> None:
        """Re-key the cross-worker referee for a new membership epoch.

        An elastic scale-up/down changes the world size and restarts the
        engines' round numbering, so sync-round and unit-plan agreements
        recorded before the transition must not be compared against
        reports from the new worker group: the per-round referee tables
        (and the dead previous epoch's ring workers) are cleared.  The
        event-sequence digest is untouched — replay determinism spans
        epochs.
        """
        if epoch < self.epoch:
            self._violate(
                "epoch-monotone",
                f"membership epoch moved backwards: {self.epoch} -> "
                f"{epoch}")
        if epoch == self.epoch:
            return
        self.epoch = epoch
        self._sync_workers.clear()
        self._sync_results.clear()
        self._unit_plans.clear()

    # -- resource accounting -------------------------------------------------

    def register_resource(self, resource: "Resource") -> None:
        """Track ``resource`` for accounting and quiescence checks."""
        self._resources.append(resource)

    def check_resource(self, resource: "Resource") -> None:
        """Double-entry accounting: usage must equal the grant ledger."""
        self.checks += 1
        if resource.in_use < 0:
            self._violate(
                "resource-non-negative",
                f"{resource.name!r} holds {resource.in_use} slots")
        if resource.capacity < 1:
            self._violate(
                "resource-capacity-positive",
                f"{resource.name!r} has capacity {resource.capacity}")
        ledger = resource.granted_slots - resource.released_slots
        if resource.in_use != ledger:
            self._violate(
                "resource-ledger",
                f"{resource.name!r}: in_use={resource.in_use} but "
                f"granted-released={ledger}")

    def check_store(self, store: "Store") -> None:
        """A store must never buffer items while getters wait."""
        self.checks += 1
        if len(store._items) and len(store._getters):
            self._violate(
                "store-no-starved-getters",
                f"{store.name!r} buffers {len(store._items)} item(s) "
                f"while {len(store._getters)} getter(s) wait")

    def check_idle(self, resource: "Resource",
                   rank: int | None = None) -> None:
        """Quiescence: no held slots, no queued acquire requests.

        Called at iteration boundaries; a failure means an interrupt
        leaked a grant (or a cancel failed to withdraw a request).
        """
        self.checks += 1
        self.check_resource(resource)
        if resource.in_use != 0:
            self._violate(
                "resource-quiescent",
                f"{resource.name!r} still holds {resource.in_use} "
                "slot(s) at a quiescence point", rank=rank)
        if resource.waiting_requests != 0:
            self._violate(
                "resource-quiescent",
                f"{resource.name!r} still queues "
                f"{resource.waiting_requests} acquire request(s) at a "
                "quiescence point", rank=rank)

    # -- stream-pool accounting ----------------------------------------------

    def check_stream_accounting(self, pool: "CommStreamPool",
                                rank: int | None = None) -> None:
        """``dispatched_units`` must never exceed actual stream grants.

        The counter is maintained independently (a callback per granted
        acquire); cross-checking it against the resource's grant ledger
        catches the count-on-request drift where acquire requests later
        cancelled by an interrupt inflate post-recovery metrics.
        """
        self.checks += 1
        grants = pool._resource.total_grants
        if pool.dispatched_units > grants:
            self._violate(
                "stream-dispatch-count",
                f"pool counted {pool.dispatched_units} dispatched units "
                f"but only {grants} stream grant(s) happened "
                "(counting requests instead of grants?)", rank=rank)

    def check_pool_quiescent(self, pool: "CommStreamPool",
                             rank: int | None = None) -> None:
        """All streams returned and no queued units at a boundary."""
        self.check_stream_accounting(pool, rank=rank)
        self.check_idle(pool._resource, rank=rank)

    # -- cross-worker agreement (shadow referee) -----------------------------

    def on_sync_worker(self, synchronizer: object, rank: int,
                       round_index: int, worker: "Process") -> None:
        """A synchronizer spawned its ring worker for ``round_index``.

        The previous round's worker must be dead by now: a worker
        abandoned on timeout keeps consuming tags and peer messages that
        collide with the retry round (the leaked-worker bug class).
        """
        self.checks += 1
        previous = self._sync_workers.get(synchronizer)
        if previous is not None and previous.alive:
            self._violate(
                "no-leaked-sync-worker",
                f"round {round_index} started while the previous ring "
                f"worker {previous.name!r} is still alive", rank=rank)
        self._sync_workers[synchronizer] = worker

    def report_sync_result(self, rank: int, round_index: int,
                           vector_length: int,
                           ready_ids: t.Iterable[int]) -> None:
        """All ranks must agree on each round's globally-ready set."""
        self.checks += 1
        key = (round_index, vector_length)
        value = tuple(int(g) for g in ready_ids)
        reference = self._sync_results.get(key)
        if reference is None:
            self._sync_results[key] = (rank, value)
            return
        ref_rank, ref_value = reference
        if value != ref_value:
            self._violate(
                "sync-agreement",
                f"round {round_index}: rank {rank} decided {value} but "
                f"rank {ref_rank} decided {ref_value}", rank=rank)

    def check_unit_plan(self, units: t.Sequence["AllReduceUnit"],
                        granularity_bytes: float,
                        rank: int | None = None) -> None:
        """Structural sanity of one pack() output.

        * no *split* gradient may contribute a slice below
          ``granularity * SLICE_EPSILON_FRACTION`` (degenerate residue
          slices from accumulated float error);
        * every unit except the last must be full within epsilon, and no
          unit may exceed the granularity by more than epsilon;
        * slices must tile each gradient without gaps or overlaps.
        """
        from repro.core.packing import (
            PackingError,
            SLICE_EPSILON_FRACTION,
            unpack,
        )

        self.checks += 1
        if not units:
            return
        epsilon = granularity_bytes * SLICE_EPSILON_FRACTION
        slices_per_grad: dict[int, int] = {}
        for unit in units:
            for piece in unit.slices:
                slices_per_grad[piece.grad_id] = \
                    slices_per_grad.get(piece.grad_id, 0) + 1
        for unit in units:
            for piece in unit.slices:
                if slices_per_grad[piece.grad_id] > 1 \
                        and piece.nbytes < epsilon:
                    self._violate(
                        "no-degenerate-slices",
                        f"unit {unit.unit_id} carries a "
                        f"{piece.nbytes:g}-byte residue slice of split "
                        f"gradient {piece.grad_id} "
                        f"(epsilon={epsilon:g})", rank=rank)
            if unit.nbytes > granularity_bytes + epsilon:
                self._violate(
                    "unit-granularity",
                    f"unit {unit.unit_id} holds {unit.nbytes:g} bytes, "
                    f"over the {granularity_bytes:g}-byte granularity",
                    rank=rank)
        for unit in units[:-1]:
            if unit.nbytes < granularity_bytes - epsilon:
                self._violate(
                    "unit-granularity",
                    f"non-final unit {unit.unit_id} holds only "
                    f"{unit.nbytes:g} of {granularity_bytes:g} bytes",
                    rank=rank)
        try:
            unpack(units)
        except PackingError as error:
            self._violate("pack-contiguity", str(error), rank=rank)

    def report_unit_plan(self, rank: int, round_index: int,
                         units: t.Sequence["AllReduceUnit"],
                         granularity_bytes: float) -> None:
        """All ranks must produce byte-identical plans per round.

        Unit ids are excluded from the comparison: the packer numbers
        units in call order, which is not cross-worker stable; the
        (grad_id, offset, nbytes) structure is.
        """
        self.check_unit_plan(units, granularity_bytes, rank=rank)
        self.checks += 1
        signature = tuple(
            tuple((s.grad_id, float(s.offset), float(s.nbytes))
                  for s in unit.slices)
            for unit in units)
        reference = self._unit_plans.get(round_index)
        if reference is None:
            self._unit_plans[round_index] = (rank, signature)
            return
        ref_rank, ref_signature = reference
        if signature != ref_signature:
            self._violate(
                "plan-agreement",
                f"round {round_index}: rank {rank} packed a different "
                f"unit plan than rank {ref_rank}", rank=rank)

    # -- whole-sim sweeps -----------------------------------------------------

    def check_all_resources(self) -> None:
        """Re-validate the ledger of every registered resource."""
        for resource in self._resources:
            self.check_resource(resource)
