"""Lightweight tracing and metric accumulation for simulations.

Training engines record spans (named intervals of simulated time) and
counters here; the harness turns them into the utilisation and throughput
numbers the paper reports (e.g. "a single stream utilises ≤30% of the
link").
"""

from __future__ import annotations

import dataclasses
import typing as t
from collections import defaultdict


@dataclasses.dataclass(frozen=True)
class Span:
    """A named interval of simulated time with optional metadata."""

    name: str
    start: float
    end: float
    meta: t.Mapping[str, object] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Collects spans, point events and counters from a simulation run."""

    def __init__(self, enabled: bool = True, keep_spans: bool = False) -> None:
        #: When disabled, all recording methods are near-free no-ops.
        self.enabled = enabled
        #: Retain individual spans (memory-hungry for long runs).
        self.keep_spans = keep_spans
        self.spans: list[Span] = []
        self.busy_time: dict[str, float] = defaultdict(float)
        self.counters: dict[str, float] = defaultdict(float)
        self.points: list[tuple[str, float, dict]] = []

    def add_span(self, name: str, start: float, end: float,
                 **meta: object) -> None:
        """Record that activity ``name`` occupied [start, end]."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        self.busy_time[name] += end - start
        if self.keep_spans:
            self.spans.append(Span(name, start, end, meta))

    def incr(self, counter: str, amount: float = 1.0) -> None:
        """Increase a named counter."""
        if self.enabled:
            self.counters[counter] += amount

    def point(self, name: str, time: float, **meta: object) -> None:
        """Record a point event (kept only when ``keep_spans`` is set)."""
        if self.enabled and self.keep_spans:
            self.points.append((name, time, dict(meta)))

    def fault(self, kind: str, time: float, **meta: object) -> None:
        """Record a fault-lifecycle event (inject/suspect/confirm/...).

        Bumps the ``aiacc.faults.<kind>`` counter (always, so headless
        runs can assert on fault activity) and records a point event so
        the fault shows up on the Chrome-trace timeline when spans are
        kept.
        """
        self.incr(f"aiacc.faults.{kind}")
        self.point(f"aiacc.fault.{kind}", time, **meta)

    def busy_fraction(self, name: str, total_time: float) -> float:
        """Fraction of ``total_time`` spent in activity ``name``."""
        if total_time <= 0:
            raise ValueError("total_time must be positive")
        return self.busy_time.get(name, 0.0) / total_time

    def merge(self, other: "Trace") -> None:
        """Fold another trace's accumulators into this one."""
        for name, value in other.busy_time.items():
            self.busy_time[name] += value
        for name, value in other.counters.items():
            self.counters[name] += value
        self.spans.extend(other.spans)
        self.points.extend(other.points)

    def to_chrome_trace(self) -> list[dict]:
        """Export spans/points as Chrome trace-event JSON objects.

        Load the result (``json.dump`` of this list) in
        ``chrome://tracing`` or Perfetto to inspect the simulated
        timeline.  Requires the trace to have been created with
        ``keep_spans=True``.  Timestamps are microseconds, as the trace
        format expects.
        """
        if not self.keep_spans:
            raise ValueError(
                "chrome export needs keep_spans=True at Trace creation"
            )
        events: list[dict] = []
        for span in self.spans:
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": 0,
                "tid": abs(hash(span.name)) % 64,
                "args": {key: repr(value)
                         for key, value in span.meta.items()},
            })
        for name, time, meta in self.points:
            events.append({
                "name": name,
                "ph": "i",
                "ts": time * 1e6,
                "pid": 0,
                "tid": 0,
                "s": "g",
                "args": {key: repr(value) for key, value in meta.items()},
            })
        events.sort(key=lambda event: event["ts"])
        return events
