"""Lightweight tracing and metric accumulation for simulations.

Training engines record spans (named intervals of simulated time) and
counters here; the harness turns them into the utilisation and throughput
numbers the paper reports (e.g. "a single stream utilises ≤30% of the
link").
"""

from __future__ import annotations

import dataclasses
import typing as t
from collections import defaultdict

#: First tid handed to activity lanes in the Chrome export (streams own
#: tids ``1 + stream``; 0 is the instant/marker track).
_LANE_TID_BASE = 64


@dataclasses.dataclass(frozen=True)
class Span:
    """A named interval of simulated time with optional metadata."""

    name: str
    start: float
    end: float
    meta: t.Mapping[str, object] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


class Trace:
    """Collects spans, point events and counters from a simulation run."""

    def __init__(self, enabled: bool = True, keep_spans: bool = False) -> None:
        #: When disabled, all recording methods are near-free no-ops.
        self.enabled = enabled
        #: Retain individual spans (memory-hungry for long runs).
        self.keep_spans = keep_spans
        self.spans: list[Span] = []
        self.busy_time: dict[str, float] = defaultdict(float)
        self.counters: dict[str, float] = defaultdict(float)
        self.points: list[tuple[str, float, dict]] = []
        #: Optional :class:`repro.obs.timeline.StepTimeline` receiving
        #: fault-lifecycle events (see :meth:`attach_timeline`).
        self.timeline = None

    def attach_timeline(self, timeline) -> None:
        """Forward fault-lifecycle events to an obs step timeline.

        Wires the legacy :meth:`fault` hook — called throughout the
        engine, the fault injector and the recovery driver — into
        :meth:`repro.obs.timeline.StepTimeline.fault_event`, so recovery
        episodes appear as instant + flow events in Perfetto next to the
        rings they abort.
        """
        self.timeline = timeline

    def add_span(self, name: str, start: float, end: float,
                 **meta: object) -> None:
        """Record that activity ``name`` occupied [start, end]."""
        if not self.enabled:
            return
        if end < start:
            raise ValueError(f"span {name!r} ends before it starts")
        self.busy_time[name] += end - start
        if self.keep_spans:
            self.spans.append(Span(name, start, end, meta))

    def incr(self, counter: str, amount: float = 1.0) -> None:
        """Increase a named counter."""
        if self.enabled:
            self.counters[counter] += amount

    def point(self, name: str, time: float, **meta: object) -> None:
        """Record a point event (kept only when ``keep_spans`` is set)."""
        if self.enabled and self.keep_spans:
            self.points.append((name, time, dict(meta)))

    def fault(self, kind: str, time: float, **meta: object) -> None:
        """Record a fault-lifecycle event (inject/suspect/confirm/...).

        Bumps the ``aiacc.faults.<kind>`` counter (always, so headless
        runs can assert on fault activity) and records a point event so
        the fault shows up on the Chrome-trace timeline when spans are
        kept.
        """
        self.incr(f"aiacc.faults.{kind}")
        self.point(f"aiacc.fault.{kind}", time, **meta)
        if self.timeline is not None and self.enabled:
            self.timeline.fault_event(kind, time, **meta)

    def epoch(self, epoch: int, time: float, **meta: object) -> None:
        """Record a membership-epoch advance (elastic scale-up/down).

        Bumps the ``aiacc.epoch_advances`` counter, records a point
        event, and forwards to the obs timeline's
        :meth:`~repro.obs.timeline.StepTimeline.epoch_event` — which
        also closes the open announce→admit episode, so the transition
        renders as one arrow ending at the epoch boundary.
        """
        self.incr("aiacc.epoch_advances")
        self.point("aiacc.epoch.advance", time, epoch=epoch, **meta)
        if self.timeline is not None and self.enabled:
            self.timeline.epoch_event(epoch, time, **meta)

    def busy_fraction(self, name: str, total_time: float) -> float:
        """Fraction of ``total_time`` spent in activity ``name``."""
        if total_time <= 0:
            raise ValueError("total_time must be positive")
        return self.busy_time.get(name, 0.0) / total_time

    def merge(self, other: "Trace") -> None:
        """Fold another trace's accumulators into this one.

        Respects the destination's retention policy: spans and points
        are only copied into a trace created with ``keep_spans=True``.
        (Merging span-keeping traces into an aggregate-only one used to
        silently grow unbounded memory on long merged runs.)
        """
        for name, value in other.busy_time.items():
            self.busy_time[name] += value
        for name, value in other.counters.items():
            self.counters[name] += value
        if self.keep_spans:
            self.spans.extend(other.spans)
            self.points.extend(other.points)

    def to_chrome_trace(self) -> list[dict]:
        """Export spans/points as Chrome trace-event JSON objects.

        Load the result (``json.dump`` of this list) in
        ``chrome://tracing`` or Perfetto to inspect the simulated
        timeline.  Requires the trace to have been created with
        ``keep_spans=True``.  Timestamps are microseconds, as the trace
        format expects.
        """
        if not self.keep_spans:
            raise ValueError(
                "chrome export needs keep_spans=True at Trace creation"
            )
        # Deterministic track mapping.  pid comes from the span's rank
        # metadata; tid from its stream metadata (tid = 1 + stream) when
        # present, else from the sorted order of activity names — stable
        # across runs and independent of PYTHONHASHSEED, unlike the old
        # ``abs(hash(name)) % 64`` scheme, which also collided tracks.
        lane_names = sorted({span.name for span in self.spans
                             if span.meta.get("stream") is None})
        lane_tid = {name: _LANE_TID_BASE + index
                    for index, name in enumerate(lane_names)}
        events: list[dict] = []
        for span in self.spans:
            stream = span.meta.get("stream")
            tid = 1 + int(t.cast(int, stream)) if stream is not None \
                else lane_tid[span.name]
            events.append({
                "name": span.name,
                "ph": "X",
                "ts": span.start * 1e6,
                "dur": span.duration * 1e6,
                "pid": int(t.cast(int, span.meta.get("rank", 0))),
                "tid": tid,
                "args": {key: repr(value)
                         for key, value in span.meta.items()},
            })
        for name, time, meta in self.points:
            events.append({
                "name": name,
                "ph": "i",
                "ts": time * 1e6,
                "pid": int(t.cast(int, meta.get("rank", 0))),
                "tid": 0,
                "s": "g",
                "args": {key: repr(value) for key, value in meta.items()},
            })
        events.sort(key=lambda event: event["ts"])
        return events
