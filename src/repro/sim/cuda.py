"""GPU compute and CUDA-stream model.

The paper exploits two GPU properties:

1. Kernels placed on *different CUDA streams* may run concurrently on
   different streaming multiprocessors (SMs) — so communication kernels can
   run alongside backward-pass compute kernels.
2. SMs are a finite resource: "computation-intensive models limit the
   number of CUDA streams that can be executed concurrently for gradient
   communications" (Section VIII-A).

:class:`GPUSpec` describes a device (the evaluation platform uses V100s);
:class:`GPUDevice` turns FLOP counts into simulated compute time and models
SM contention between compute and communication streams.
"""

from __future__ import annotations

import dataclasses
import math

from repro.errors import SimulationError


@dataclasses.dataclass(frozen=True)
class GPUSpec:
    """Static description of a GPU model."""

    name: str
    #: Peak single-precision throughput in FLOP/s.
    peak_fp32_flops: float
    #: Number of streaming multiprocessors.
    sm_count: int
    #: Device memory in bytes.
    memory_bytes: float
    #: Per-GPU NVLink bandwidth (bits/second, effective).
    nvlink_bps: float
    #: Fraction of peak FLOP/s sustained by real training kernels.
    compute_efficiency: float = 0.55
    #: SMs consumed by one communication (copy/reduce) stream.
    sms_per_comm_stream: int = 2
    #: Host-device copy bandwidth (bits/s); PCIe 3.0 x16 effective.
    pcie_bps: float = 13e9 * 8

    def __post_init__(self) -> None:
        if self.peak_fp32_flops <= 0 or self.sm_count <= 0:
            raise SimulationError(f"invalid GPU spec {self.name!r}")
        if not 0 < self.compute_efficiency <= 1:
            raise SimulationError("compute_efficiency must be in (0, 1]")


#: NVIDIA Tesla V100 (32 GB, NVLink), the paper's evaluation GPU.
#: 15.7 TFLOP/s fp32 peak, 80 SMs, 150 GB/s effective NVLink per GPU.
V100 = GPUSpec(
    name="V100-SXM2-32GB",
    peak_fp32_flops=15.7e12,
    sm_count=80,
    memory_bytes=32 * 2**30,
    nvlink_bps=150e9 * 8,
)

#: NVIDIA A100 — used by "future high-end GPUs" what-if experiments.
A100 = GPUSpec(
    name="A100-SXM4-80GB",
    peak_fp32_flops=19.5e12,
    sm_count=108,
    memory_bytes=80 * 2**30,
    nvlink_bps=300e9 * 8,
)


class GPUDevice:
    """Timing/contention model for a single GPU.

    The device does not execute kernels through the event queue itself;
    training engines ask it for durations and stream budgets and advance
    simulated time accordingly.
    """

    def __init__(self, spec: GPUSpec) -> None:
        self.spec = spec

    def compute_time_s(self, flops: float) -> float:
        """Wall-clock seconds to execute ``flops`` of training compute."""
        if flops < 0:
            raise SimulationError(f"negative flops: {flops}")
        return flops / (self.spec.peak_fp32_flops * self.spec.compute_efficiency)

    def max_concurrent_comm_streams(self, compute_occupancy: float) -> int:
        """How many communication streams can actually run concurrently.

        Parameters
        ----------
        compute_occupancy:
            Fraction of SMs kept busy by the model's compute kernels while
            communication overlaps (0 = idle GPU, 1 = fully busy).  Large,
            computation-intensive models have high occupancy and therefore
            leave fewer SMs for communication kernels — reproducing the
            paper's observation that such models limit stream concurrency.
        """
        if not 0 <= compute_occupancy <= 1:
            raise SimulationError(
                f"compute_occupancy must be in [0, 1], got {compute_occupancy}"
            )
        free_sms = self.spec.sm_count * (1.0 - compute_occupancy)
        # Epsilon guards the floor against float residue (0.1 * 80 is
        # 7.999... in binary).
        streams = math.floor(free_sms / self.spec.sms_per_comm_stream
                             + 1e-9)
        # The hardware scheduler always time-slices at least one comm
        # stream even on a saturated device.
        return max(1, streams)

    def effective_streams(self, requested: int, compute_occupancy: float) -> int:
        """Streams that run concurrently given a request of ``requested``."""
        if requested < 1:
            raise SimulationError(f"requested streams must be >= 1: {requested}")
        return min(requested, self.max_concurrent_comm_streams(compute_occupancy))
