"""Cluster topology: nodes, GPUs, NICs and the links between them.

The evaluation platform of the paper (Section VII-A) is the Alibaba
``ecs.gn6e-c12g1.24xlarge`` instance: 8× NVLink-enabled 32 GB V100 GPUs per
node, nodes connected by a 30 Gbps VPC TCP/IP network (RDMA in §VIII-D).

A :class:`Cluster` owns the simulator-facing :class:`~repro.sim.network.Link`
objects.  Because the paper's experiments are symmetric (identical nodes,
identical NICs, isolated machines), the timed collective executor may run in
*representative* mode: only one NIC pair is simulated and, by symmetry, its
rates equal those of every other NIC.  Asymmetric experiments (congested
links motivating tree all-reduce) build the full link set.
"""

from __future__ import annotations

import dataclasses
import typing as t

import networkx as nx

from repro.errors import TopologyError
from repro.sim.cuda import GPUDevice, GPUSpec, V100
from repro.sim.kernel import Simulator
from repro.sim.network import Link
from repro.sim.tcp import TCP
from repro.sim.transport import TransportModel


@dataclasses.dataclass(frozen=True)
class NodeSpec:
    """Hardware description of one computing node."""

    gpus_per_node: int = 8
    gpu: GPUSpec = V100
    #: Raw NIC bandwidth in bits/second (30 Gbps on the evaluation platform).
    nic_bandwidth_bps: float = 30e9
    transport: TransportModel = TCP
    cpu_cores: int = 96
    #: One-way latency between GPUs of the same node over NVLink/PCIe.
    intra_node_latency_s: float = 5e-6
    #: One-way latency between nodes over the datacenter network.
    inter_node_latency_s: float = 100e-6

    def __post_init__(self) -> None:
        if self.gpus_per_node < 1:
            raise TopologyError("gpus_per_node must be >= 1")
        if self.nic_bandwidth_bps <= 0:
            raise TopologyError("nic_bandwidth_bps must be positive")


class Cluster:
    """A set of identical nodes joined by a non-blocking datacenter fabric.

    Parameters
    ----------
    sim:
        Owning simulator; all links belong to it.
    num_nodes:
        Number of computing nodes.
    node_spec:
        Per-node hardware description.
    congested_links:
        Optional mapping ``node_index -> capacity_fraction`` modelling bursty
        cross-traffic from other cloud tenants: that node's NIC capacity is
        multiplied by the fraction.  Used by the tree-all-reduce experiments.
    core_oversubscription:
        Oversubscription ratio of the datacenter core.  1.0 (default)
        models a non-blocking fabric; ``k > 1`` inserts a shared core
        link of capacity ``num_nodes x NIC / k`` that every inter-node
        flow traverses — the classic leaf-spine oversubscription that
        makes congestion-aware algorithm choice matter.
    """

    def __init__(self, sim: Simulator, num_nodes: int,
                 node_spec: NodeSpec | None = None,
                 congested_links: t.Mapping[int, float] | None = None,
                 core_oversubscription: float = 1.0) -> None:
        if num_nodes < 1:
            raise TopologyError(f"num_nodes must be >= 1, got {num_nodes}")
        self.sim = sim
        self.num_nodes = num_nodes
        self.spec = node_spec or NodeSpec()
        self.congestion = dict(congested_links or {})
        if core_oversubscription < 1.0:
            raise TopologyError("core_oversubscription must be >= 1")
        self.core_oversubscription = core_oversubscription
        for node, fraction in self.congestion.items():
            if not 0 <= node < num_nodes:
                raise TopologyError(f"congested node {node} out of range")
            if not 0 < fraction <= 1:
                raise TopologyError("congestion fraction must be in (0, 1]")

        transport = self.spec.transport
        self.nic_out: list[Link] = []
        self.nic_in: list[Link] = []
        for node in range(num_nodes):
            scale = self.congestion.get(node, 1.0)
            raw = self.spec.nic_bandwidth_bps * scale
            capacity = transport.effective_capacity_bps(raw)
            latency = self.spec.inter_node_latency_s / 2
            self.nic_out.append(Link(f"node{node}.nic.out", capacity, latency))
            self.nic_in.append(Link(f"node{node}.nic.in", capacity, latency))
        #: Shared datacenter core (None for a non-blocking fabric).
        self.core: Link | None = None
        if core_oversubscription > 1.0 and num_nodes > 1:
            core_capacity = (num_nodes
                             * transport.effective_capacity_bps(
                                 self.spec.nic_bandwidth_bps)
                             / core_oversubscription)
            self.core = Link("core", core_capacity, latency_s=0.0)
        #: Per-node NVLink fabric, modelled as one shared intra-node link.
        self.nvlink: list[Link] = [
            Link(f"node{node}.nvlink", self.spec.gpu.nvlink_bps,
                 self.spec.intra_node_latency_s)
            for node in range(num_nodes)
        ]
        self.gpu_device = GPUDevice(self.spec.gpu)
        #: Nodes declared dead by a fault injector.  Collectives consult
        #: this set: any collective whose participant set intersects it
        #: stalls forever (like a real NCCL ring with a dead member) and
        #: must be caught by the engine's failure detector.
        self.failed_nodes: set[int] = set()

    # -- failure bookkeeping ---------------------------------------------------

    def fail_node(self, node: int) -> None:
        """Mark ``node`` as crashed.  Idempotent."""
        self._check_node(node)
        self.failed_nodes.add(node)

    def restore_node(self, node: int) -> None:
        """Clear a node's crashed flag (it rejoined after elastic rebuild)."""
        self._check_node(node)
        self.failed_nodes.discard(node)

    def uncrash(self, node: int) -> None:
        """Rejoin bookkeeping: the node is healthy again.

        Alias of :meth:`restore_node`, named for the elastic-membership
        path: a rank that crashed, was excised at one epoch, and rejoins
        at a later epoch re-enters through here — its links regain full
        capacity (the fault injector restores them on admission) and
        collectives stop treating it as dead.  Idempotent.
        """
        self.restore_node(node)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise TopologyError(f"node {node} out of range")

    @property
    def alive_nodes(self) -> list[int]:
        """Indices of nodes not currently marked failed."""
        return [n for n in range(self.num_nodes) if n not in self.failed_nodes]

    @property
    def alive_world_size(self) -> int:
        """GPU workers on surviving nodes."""
        return len(self.alive_nodes) * self.spec.gpus_per_node

    # -- rank arithmetic -----------------------------------------------------

    @property
    def world_size(self) -> int:
        """Total number of GPU workers."""
        return self.num_nodes * self.spec.gpus_per_node

    def node_of(self, rank: int) -> int:
        """Node index hosting worker ``rank``."""
        self._check_rank(rank)
        return rank // self.spec.gpus_per_node

    def local_rank(self, rank: int) -> int:
        """GPU index of worker ``rank`` within its node."""
        self._check_rank(rank)
        return rank % self.spec.gpus_per_node

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.world_size:
            raise TopologyError(
                f"rank {rank} out of range for world size {self.world_size}"
            )

    # -- link selection --------------------------------------------------------

    @property
    def is_symmetric(self) -> bool:
        """True when one NIC's flow pattern represents every NIC.

        Congested links break symmetry directly; a shared oversubscribed
        core breaks it too, because the core carries *all* nodes' flows
        and a representative 1/m sample would undercount its load.
        """
        return not self.congestion and self.core is None

    def stream_cap_bps(self, node: int = 0) -> float:
        """Per-stream rate cap on ``node``'s NIC."""
        scale = self.congestion.get(node, 1.0)
        raw = self.spec.nic_bandwidth_bps * scale
        return self.spec.transport.stream_cap_bps(raw)

    def path_between(self, src_rank: int, dst_rank: int) -> list[Link]:
        """Links traversed by a message from ``src_rank`` to ``dst_rank``."""
        src_node = self.node_of(src_rank)
        dst_node = self.node_of(dst_rank)
        if src_rank == dst_rank:
            return []
        if src_node == dst_node:
            return [self.nvlink[src_node]]
        path = [self.nic_out[src_node], self.nic_in[dst_node]]
        if self.core is not None:
            path.insert(1, self.core)
        return path

    def representative_hop(self) -> list[Link]:
        """The NIC pair used in representative (symmetric) simulations."""
        if self.num_nodes == 1:
            raise TopologyError("single-node cluster has no inter-node hop")
        return [self.nic_out[0], self.nic_in[1 % self.num_nodes]]

    # -- similarity support (autotuner cache) -----------------------------------

    def topology_graph(self) -> nx.Graph:
        """Undirected graph of nodes with bandwidth edge attributes.

        Used by the auto-tuner's settings cache, which matches previously
        seen deployments via graph edit distance (paper Section VI).
        """
        graph = nx.Graph()
        for node in range(self.num_nodes):
            graph.add_node(node, gpus=self.spec.gpus_per_node,
                           gpu=self.spec.gpu.name)
        for a in range(self.num_nodes):
            for b in range(a + 1, self.num_nodes):
                scale = min(self.congestion.get(a, 1.0),
                            self.congestion.get(b, 1.0))
                graph.add_edge(a, b,
                               bandwidth=self.spec.nic_bandwidth_bps * scale)
        return graph


def alibaba_v100_cluster(sim: Simulator, num_gpus: int,
                         transport: TransportModel = TCP,
                         nic_bandwidth_bps: float = 30e9,
                         gpus_per_node: int = 8,
                         gpu: GPUSpec = V100,
                         core_oversubscription: float = 1.0) -> Cluster:
    """Build the paper's evaluation cluster for ``num_gpus`` workers.

    GPUs are packed 8 per node (``ecs.gn6e-c12g1.24xlarge``); ``num_gpus``
    below 8 yields a single partially filled node.
    ``core_oversubscription > 1`` inserts the shared leaf-spine core
    link (see :class:`Cluster`).
    """
    if num_gpus < 1:
        raise TopologyError(f"num_gpus must be >= 1, got {num_gpus}")
    if num_gpus < gpus_per_node:
        gpus_per_node = num_gpus
    if num_gpus % gpus_per_node != 0:
        raise TopologyError(
            f"num_gpus={num_gpus} is not a multiple of "
            f"gpus_per_node={gpus_per_node}"
        )
    spec = NodeSpec(gpus_per_node=gpus_per_node,
                    nic_bandwidth_bps=nic_bandwidth_bps,
                    transport=transport, gpu=gpu)
    return Cluster(sim, num_gpus // gpus_per_node, spec,
                   core_oversubscription=core_oversubscription)
