"""Message-level MPI-like substrate over the simulated network.

AIACC-Training runs one MPI daemon per GPU worker (paper Fig. 4); the
daemons exchange control messages (the gradient synchronization vector) and
drive collective payloads.  This module provides the point-to-point layer:
ranks, matched send/recv with tags, and process groups.

Two timing backends are supported:

* **cluster-backed** — message bytes travel as flows through the cluster's
  links, so they contend with gradient traffic;
* **ideal** — a fixed latency plus ``bytes/bandwidth``, used by the numeric
  correctness layer where contention is irrelevant.
"""

from __future__ import annotations

import typing as t
from collections import deque

from repro.errors import SimulationError
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.network import FluidNetwork
from repro.sim.resources import Resource
from repro.sim.topology import Cluster

#: Matching key for a pending message or receiver: (dst, src, tag).
_Key = t.Tuple[int, int, int]


class Communicator:
    """A fixed-size group of ranks with tag-matched point-to-point messaging.

    Parameters
    ----------
    sim:
        Owning simulator.
    size:
        Number of ranks (0 .. size-1).
    cluster, network:
        When both are given, message payloads are carried as flows over the
        cluster links (sharing bandwidth with everything else).  Otherwise
        the ideal model is used.
    ideal_latency_s / ideal_bandwidth_bps:
        Parameters of the ideal model.  ``None`` bandwidth means latency-only
        (instantaneous payload).
    """

    def __init__(self, sim: Simulator, size: int,
                 cluster: Cluster | None = None,
                 network: FluidNetwork | None = None,
                 ideal_latency_s: float = 10e-6,
                 ideal_bandwidth_bps: float | None = None,
                 connections_per_pair: int = 1) -> None:
        if size < 1:
            raise SimulationError(f"communicator size must be >= 1, got {size}")
        if (cluster is None) != (network is None):
            raise SimulationError(
                "cluster and network must be given together or not at all"
            )
        if cluster is not None and cluster.world_size < size:
            raise SimulationError(
                f"communicator size {size} exceeds cluster world size "
                f"{cluster.world_size}"
            )
        if connections_per_pair < 1:
            raise SimulationError("connections_per_pair must be >= 1")
        self.sim = sim
        self.size = size
        self.cluster = cluster
        self.network = network
        self.ideal_latency_s = ideal_latency_s
        self.ideal_bandwidth_bps = ideal_bandwidth_bps
        self._inbox: dict[_Key, deque[object]] = {}
        self._waiting: dict[_Key, deque[Event]] = {}
        #: Transport connections per directed rank pair: messages on the
        #: same (src, dst) serialize onto this many sockets/queue pairs
        #: (cluster-backed mode only).  Multi-streamed communication
        #: opens one connection per stream (paper §V-B).
        self.connections_per_pair = connections_per_pair
        self._channels: dict[tuple[int, int], Resource] = {}
        self.messages_sent = 0
        self.bytes_sent = 0.0

    # -- point-to-point ---------------------------------------------------

    def send(self, src: int, dst: int, payload: object,
             nbytes: float = 0.0, tag: int = 0) -> Event:
        """Send ``payload`` from ``src`` to ``dst``.

        Returns an event that triggers when the message has been delivered
        (the sender may also simply not wait on it — eager/buffered send).
        """
        self._check_rank(src)
        self._check_rank(dst)
        self.messages_sent += 1
        self.bytes_sent += nbytes

        done = self.sim.event(name=f"send({src}->{dst},tag={tag})")
        arrival = self._transfer(src, dst, nbytes)

        def _deliver(_ev: Event) -> None:
            self._deposit((dst, src, tag), payload)
            done.succeed(None)

        arrival.add_callback(_deliver)
        return done

    def recv(self, dst: int, src: int, tag: int = 0) -> Event:
        """Receive the next message sent from ``src`` to ``dst`` with ``tag``.

        Returns an event whose value is the payload.
        """
        self._check_rank(src)
        self._check_rank(dst)
        key = (dst, src, tag)
        event = self.sim.event(name=f"recv({src}->{dst},tag={tag})")
        inbox = self._inbox.get(key)
        if inbox:
            payload = inbox.popleft()
            self.sim._schedule_at(self.sim.now, event, payload)
        else:
            self._waiting.setdefault(key, deque()).append(event)
        return event

    def cancel_recv(self, event: Event) -> bool:
        """Withdraw a pending :meth:`recv` request.

        An interrupted receiver must not leave its getter queued: a later
        send matching the same ``(dst, src, tag)`` would hand its payload
        to the dead request, silently stealing a message from the retry
        round.  Returns ``True`` when the getter was still waiting;
        ``False`` when a payload was already dispatched to it (the
        message is consumed — callers retrying on fresh tags avoid the
        residual race).
        """
        for waiting in self._waiting.values():
            try:
                waiting.remove(event)
            except ValueError:
                continue
            return True
        return False

    # -- internals ----------------------------------------------------------

    def _transfer(self, src: int, dst: int, nbytes: float) -> Event:
        """Event firing when the message's bytes reach ``dst``."""
        if self.cluster is not None and self.network is not None:
            path = self.cluster.path_between(src, dst)
            if not path:  # self-send: immediate
                event = self.sim.event(name="self-send")
                self.sim._schedule_at(self.sim.now, event, None)
                return event
            cap = None
            if any(link is nic for nic in self.cluster.nic_out for link in path):
                cap = self.cluster.stream_cap_bps(self.cluster.node_of(src))
            channel = self._channels.get((src, dst))
            if channel is None:
                channel = Resource(self.sim, self.connections_per_pair,
                                   name=f"chan.{src}->{dst}")
                self._channels[(src, dst)] = channel
            done = self.sim.event(name=f"transfer({src}->{dst})")

            def serialized() -> t.Generator:
                yield channel.acquire()
                try:
                    yield self.network.start_flow(path, nbytes,
                                                  rate_cap_bps=cap)
                finally:
                    channel.release()
                done.succeed(None)

            self.sim.spawn(serialized(), name=f"send.{src}->{dst}")
            return done
        delay = self.ideal_latency_s
        if self.ideal_bandwidth_bps is not None and nbytes > 0:
            delay += nbytes * 8.0 / self.ideal_bandwidth_bps
        return self.sim.timeout(delay)

    def _deposit(self, key: _Key, payload: object) -> None:
        waiting = self._waiting.get(key)
        if waiting:
            event = waiting.popleft()
            self.sim._schedule_at(self.sim.now, event, payload)
        else:
            self._inbox.setdefault(key, deque()).append(payload)

    def _check_rank(self, rank: int) -> None:
        if not 0 <= rank < self.size:
            raise SimulationError(
                f"rank {rank} out of range for communicator of size {self.size}"
            )

    # -- derived groups -----------------------------------------------------

    def ring_neighbors(self, rank: int) -> tuple[int, int]:
        """(predecessor, successor) of ``rank`` in the canonical ring."""
        self._check_rank(rank)
        return (rank - 1) % self.size, (rank + 1) % self.size
