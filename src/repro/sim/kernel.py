"""The discrete-event simulation kernel.

:class:`Simulator` owns the virtual clock and the pending-event heap.  All
other simulation components (processes, resources, the network model, the
GPU model) schedule work through it.

Time is a ``float`` in **seconds**.  Ties are broken by insertion order so
simulations are fully deterministic.
"""

from __future__ import annotations

import heapq
import itertools
import typing as t

from repro.errors import SimulationError
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.invariants import InvariantChecker, invariants_enabled_by_env

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.process import Process


class Simulator:
    """A deterministic discrete-event simulator.

    Ties between simultaneous events are broken by insertion order (a
    monotone counter), so two runs of the same seeded workload pop events
    in the same sequence.  With ``check_invariants`` enabled (or the
    ``REPRO_CHECK_INVARIANTS`` environment flag set) an
    :class:`~repro.sim.invariants.InvariantChecker` is attached as
    ``self.invariants``: resources register accounting ledgers with it,
    components report cross-worker decisions to it, and every popped
    event is folded into a run digest (:meth:`state_digest`) proving
    run-to-run replay determinism.

    Example
    -------
    >>> sim = Simulator()
    >>> def worker(sim):
    ...     yield sim.timeout(1.5)
    ...     return "done"
    >>> proc = sim.spawn(worker(sim))
    >>> sim.run()
    >>> proc.value
    'done'
    """

    def __init__(self, check_invariants: bool | None = None) -> None:
        self.now: float = 0.0
        self._heap: list[tuple[float, int, Event, object]] = []
        self._counter = itertools.count()
        self._active_processes = 0
        #: Recycled one-shot :class:`Event` slots (see
        #: :meth:`pooled_event` / :meth:`release_event`).  Owned by the
        #: kernel so every pooling component — the network's completion
        #: wakeups, epoch-batched advance timers — shares one free list
        #: that survives across training epochs and elastic transitions.
        self._event_pool: list[Event] = []
        self.invariants: InvariantChecker | None = None
        if check_invariants is None:
            check_invariants = invariants_enabled_by_env()
        if check_invariants:
            InvariantChecker().attach(self)

    # -- scheduling ---------------------------------------------------------

    def _schedule_at(self, when: float, event: Event, value: object) -> None:
        """Schedule ``event`` to trigger successfully at absolute time ``when``."""
        if when < self.now:
            raise SimulationError(
                f"cannot schedule event in the past ({when} < {self.now})"
            )
        event._scheduled += 1
        heapq.heappush(self._heap, (when, next(self._counter), event, value))

    def _dispatch(self, event: Event) -> None:
        """Run the callbacks of a freshly triggered event."""
        callbacks = event.callbacks
        event.callbacks = None
        if callbacks:
            for callback in callbacks:
                callback(event)

    # -- event factories ------------------------------------------------------

    def event(self, name: str = "") -> Event:
        """Create an untriggered event owned by this simulator."""
        return Event(self, name=name)

    def timeout(self, delay: float, value: object = None) -> Timeout:
        """An event that fires after ``delay`` simulated seconds."""
        return Timeout(self, delay, value=value)

    def all_of(self, events: t.Sequence[Event]) -> AllOf:
        """An event that fires when every event in ``events`` has fired."""
        return AllOf(self, events)

    def any_of(self, events: t.Sequence[Event]) -> AnyOf:
        """An event that fires when the first event in ``events`` fires."""
        return AnyOf(self, events)

    def pooled_event(self, name: str = "") -> Event:
        """An untriggered event from the kernel's recycling pool.

        Behaviourally identical to :meth:`event` — same name semantics,
        same replay-digest fold — but the object may be a recycled
        instance, saving one allocation per call on hot paths (the fluid
        network schedules one wakeup per rate reallocation).  Callers
        that hand the event to :meth:`release_event` after it fires MUST
        own every reference to it; never pool events yielded to
        processes.
        """
        pool = self._event_pool
        if pool:
            event = pool.pop()
            event._pooled = False
            event._reset_for_reuse(name)
            return event
        return Event(self, name=name)

    def release_event(self, event: Event) -> None:
        """Return a fired pooled event for reuse, if it is safe to.

        Safe means: the event is not already pooled (double release is
        idempotent) and no pending heap entry still references it
        (``_scheduled > 0``).  The latter arises under fault-injected
        cancellation — a flow is interrupted, its owner releases the
        wakeup, but the wakeup's heap entry has not popped yet.  Reusing
        that object would let the stale pop trigger the *recycled*
        event.  Such events are simply not pooled; they die naturally
        when their stale entry pops (already-triggered entries are
        skipped by the run loop) and get garbage-collected.
        """
        if event._pooled or event._scheduled > 0:
            return
        event._pooled = True
        self._event_pool.append(event)

    def spawn(self, generator: t.Generator, name: str = "") -> "Process":
        """Start a new simulated process running ``generator``."""
        from repro.sim.process import Process

        return Process(self, generator, name=name)

    def interrupt(self, process: "Process", cause: object = None,
                  delay: float = 0.0) -> Event:
        """Deliver a :class:`ProcessInterrupt` through the event queue.

        Unlike :meth:`Process.interrupt` (which throws synchronously and
        errors on a finished process), delivery is scheduled like any
        other event: after ``delay`` simulated seconds the victim is
        interrupted *if it is still alive and interruptible* — otherwise
        the delivery silently expires.  This is the API fault injectors
        use: a simulated node crash must not blow up just because its
        victim happened to finish first.

        Returns the delivery event (value: ``cause``).
        """
        delivery = self.event(name=f"interrupt({process.name})")

        def _deliver(_ev: Event) -> None:
            if process.can_interrupt:
                process.interrupt(cause)

        delivery.add_callback(_deliver)
        self._schedule_at(self.now + delay, delivery, cause)
        return delivery

    # -- main loop -----------------------------------------------------------

    def step(self) -> None:
        """Process the single next scheduled event."""
        if not self._heap:
            raise SimulationError("step() called on an empty event queue")
        when, _, event, value = heapq.heappop(self._heap)
        self.now = when
        if self.invariants is not None:
            self.invariants.record_event(when, event.name)
        if not event.triggered:
            event.succeed(value)

    def run(self, until: float | Event | None = None) -> None:
        """Run the simulation.

        The loops below inline :meth:`step` (pop, clock update, digest
        fold, trigger) with the heap and pop function hoisted into
        locals: at 128–256 ranks the kernel pops tens of thousands of
        events per simulated step, and the per-event method/property
        overhead of calling ``step()`` is a measurable fraction of total
        wall-clock.  ``self.invariants`` is re-read on every pop — a
        checker may legitimately attach *mid-run* (the AIACC engine's
        warmup process attaches one from inside the first ``run()``
        call) and must see every event popped after attachment.  The
        inlined loops pop events in the identical order with identical
        clock updates, so :meth:`state_digest` is unaffected.

        Parameters
        ----------
        until:
            ``None``
                run until no scheduled events remain.
            ``float``
                run until the clock reaches this absolute time.
            :class:`Event`
                run until the event triggers.
        """
        heap = self._heap
        pop = heapq.heappop
        if isinstance(until, Event):
            stop = until
            while not stop.triggered:
                if not heap:
                    raise SimulationError(
                        f"simulation ran out of events before {stop!r} triggered"
                    )
                when, _, event, value = pop(heap)
                self.now = when
                checker = self.invariants
                if checker is not None:
                    checker.record_event(when, event.name)
                if not event.triggered:
                    event.succeed(value)
        elif until is None:
            while heap:
                when, _, event, value = pop(heap)
                self.now = when
                checker = self.invariants
                if checker is not None:
                    checker.record_event(when, event.name)
                if not event.triggered:
                    event.succeed(value)
        else:
            horizon = float(until)
            if horizon < self.now:
                raise SimulationError(
                    f"run(until={horizon}) is in the past (now={self.now})"
                )
            while heap and heap[0][0] <= horizon:
                when, _, event, value = pop(heap)
                self.now = when
                checker = self.invariants
                if checker is not None:
                    checker.record_event(when, event.name)
                if not event.triggered:
                    event.succeed(value)
            self.now = horizon

    @property
    def queue_length(self) -> int:
        """Number of scheduled (not yet fired) events."""
        return len(self._heap)

    def state_digest(self) -> str | None:
        """Digest of the event sequence popped so far, or ``None``.

        Only available when the invariant checker is attached.  Two runs
        of the same seeded workload must return byte-identical digests —
        the deterministic-replay invariant.
        """
        if self.invariants is None:
            return None
        return self.invariants.digest()
