"""Discrete-event simulation substrate.

This package replaces the paper's physical testbed (Alibaba GPU cloud,
V100 nodes, 30 Gbps VPC TCP / RDMA) with a deterministic simulator:

- :mod:`repro.sim.kernel` — event loop and virtual clock;
- :mod:`repro.sim.process` — generator-based processes;
- :mod:`repro.sim.resources` — semaphores and FIFO channels;
- :mod:`repro.sim.network` — fluid flow model with max-min fair sharing
  and per-stream rate caps (the mechanism behind the paper's headline
  observation that one TCP stream reaches ≤30% of link bandwidth);
- :mod:`repro.sim.tcp` / :mod:`repro.sim.rdma` — calibrated transports;
- :mod:`repro.sim.topology` — clusters of V100 nodes;
- :mod:`repro.sim.cuda` — GPU compute timing and CUDA-stream contention;
- :mod:`repro.sim.mpi` — per-worker communication daemons;
- :mod:`repro.sim.tracing` — metric collection;
- :mod:`repro.sim.invariants` — opt-in invariant checking and
  deterministic-replay digests.
"""

from repro.sim.cuda import A100, GPUDevice, GPUSpec, V100
from repro.sim.events import AllOf, AnyOf, Event, Timeout
from repro.sim.invariants import (
    InvariantChecker,
    ensure_invariants,
    invariants_enabled_by_env,
)
from repro.sim.faults import (
    BandwidthDegradation,
    FaultInjector,
    FaultPlan,
    LinkFlap,
    NodeCrash,
    Straggler,
)
from repro.sim.kernel import Simulator
from repro.sim.mpi import Communicator
from repro.sim.network import Flow, FluidNetwork, Link
from repro.sim.process import Process
from repro.sim.rdma import RDMA, rdma_transport
from repro.sim.resources import PriorityStore, Resource, Store
from repro.sim.tcp import TCP, tcp_transport
from repro.sim.topology import Cluster, NodeSpec, alibaba_v100_cluster
from repro.sim.tracing import Span, Trace
from repro.sim.transport import TransportModel

__all__ = [
    "A100",
    "AllOf",
    "AnyOf",
    "BandwidthDegradation",
    "Cluster",
    "Communicator",
    "Event",
    "FaultInjector",
    "FaultPlan",
    "Flow",
    "FluidNetwork",
    "GPUDevice",
    "GPUSpec",
    "InvariantChecker",
    "Link",
    "LinkFlap",
    "NodeCrash",
    "NodeSpec",
    "PriorityStore",
    "Process",
    "RDMA",
    "Resource",
    "Simulator",
    "Span",
    "Store",
    "Straggler",
    "TCP",
    "Timeout",
    "Trace",
    "TransportModel",
    "V100",
    "alibaba_v100_cluster",
    "ensure_invariants",
    "invariants_enabled_by_env",
    "rdma_transport",
    "tcp_transport",
]
