"""RDMA transport calibration.

Section III of the paper notes that a single communication stream "can be
as low as 10% to 5% of RDMA" bandwidth, and Section VIII-D evaluates on
RDMA-enabled nodes where AIACC-Training achieves up to 9.8× over
PyTorch-DDP on GPT-2 — precisely because many concurrent streams are needed
to fill the much faster fabric.
"""

from __future__ import annotations

from repro.sim.transport import TransportModel

#: A single RDMA queue pair driven by one CPU/GPU context reaches only a
#: small fraction of the fabric (paper: 5–10%); we use the midpoint.
RDMA_SINGLE_STREAM_EFFICIENCY = 0.08

#: Aggregate efficiency of the RDMA fabric under many queue pairs.
RDMA_AGGREGATE_EFFICIENCY = 0.97

#: Kernel-bypass messaging is far cheaper per message than TCP (~4 µs).
RDMA_PER_MESSAGE_OVERHEAD_S = 4e-6

#: Queue-pair creation and registration cost per extra stream.
RDMA_SETUP_LATENCY_S = 1e-3

#: Raw bandwidth of the RDMA fabric on the evaluation nodes (bits/second).
RDMA_DEFAULT_BANDWIDTH_BPS = 100e9


def rdma_transport(
    single_stream_efficiency: float = RDMA_SINGLE_STREAM_EFFICIENCY,
    aggregate_efficiency: float = RDMA_AGGREGATE_EFFICIENCY,
) -> TransportModel:
    """Build the calibrated RDMA transport model."""
    return TransportModel(
        name="rdma",
        single_stream_efficiency=single_stream_efficiency,
        aggregate_efficiency=aggregate_efficiency,
        per_message_overhead_s=RDMA_PER_MESSAGE_OVERHEAD_S,
        setup_latency_s=RDMA_SETUP_LATENCY_S,
        gpu_direct=True,
    )


#: Default instance used throughout the library.
RDMA = rdma_transport()
