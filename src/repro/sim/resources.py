"""Shared-resource primitives for simulated processes.

Three primitives cover the library's needs:

:class:`Resource`
    A counting semaphore with FIFO queuing (GPU SM slots, CPU cores,
    communication-thread-pool slots).
:class:`Store`
    An unbounded FIFO channel of Python objects (message queues between the
    training worker and the MPI daemon, MPI mailboxes).
:class:`PriorityStore`
    A :class:`Store` whose items are retrieved smallest-first.
"""

from __future__ import annotations

import heapq
import itertools
import typing as t
from collections import deque

from repro.errors import SimulationError
from repro.sim.events import Event

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Resource:
    """A counting semaphore with FIFO fairness.

    Usage inside a process::

        yield resource.acquire()
        try:
            ...
        finally:
            resource.release()
    """

    def __init__(self, sim: "Simulator", capacity: int, name: str = "") -> None:
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.sim = sim
        self.capacity = capacity
        self.name = name or "resource"
        self.in_use = 0
        self._waiters: deque[tuple[Event, int]] = deque()
        # Double-entry grant/release ledger.  ``in_use`` must always equal
        # ``granted_slots - released_slots``; the invariant checker (when
        # attached to the simulator) verifies this after every mutation.
        self.granted_slots = 0
        self.released_slots = 0
        self.total_grants = 0
        self._checker = getattr(sim, "invariants", None)
        if self._checker is not None:
            self._checker.register_resource(self)

    @property
    def available(self) -> int:
        """Number of free slots."""
        return self.capacity - self.in_use

    @property
    def waiting_requests(self) -> int:
        """Number of queued (not yet granted) acquire requests."""
        return len(self._waiters)

    def _grant(self, count: int) -> None:
        """Record one all-or-nothing grant of ``count`` slots."""
        self.in_use += count
        self.granted_slots += count
        self.total_grants += 1

    def acquire(self, count: int = 1) -> Event:
        """Return an event firing once ``count`` slots are held atomically.

        Multi-slot requests are granted all-or-nothing in strict FIFO
        order (no bypass), so two half-satisfied requests can never
        deadlock each other.  Requests larger than the current capacity
        are granted when the pool is idle, holding the whole pool.
        """
        self._check_count(count)
        event = self.sim.event(name=f"{self.name}.acquire")
        if not self._waiters and self._fits(count):
            self._grant(count)
            self.sim._schedule_at(self.sim.now, event, None)
        else:
            self._waiters.append((event, count))
        if self._checker is not None:
            self._checker.check_resource(self)
        return event

    def try_acquire(self, count: int = 1) -> bool:
        """Take ``count`` slots immediately if available; never blocks."""
        self._check_count(count)
        if not self._waiters and self._fits(count):
            self._grant(count)
            if self._checker is not None:
                self._checker.check_resource(self)
            return True
        return False

    def release(self, count: int = 1) -> None:
        """Return ``count`` slots, waking waiters FIFO as capacity allows.

        Capacity-aware: after a shrinking :meth:`resize`, released slots
        are retired instead of handed to waiters until usage fits the new
        capacity.
        """
        self._check_count(count)
        if self.in_use < count:
            raise SimulationError(
                f"release({count}) exceeds held slots on {self.name!r}"
            )
        self.in_use -= count
        self.released_slots += count
        self._wake_waiters()
        if self._checker is not None:
            self._checker.check_resource(self)

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending :meth:`acquire` request.

        An interrupted process must not leave its acquire event queued:
        the grant would otherwise go to a dead request and leak slots
        forever.  Returns ``True`` when the request was still waiting
        (nothing was ever held); ``False`` when it had already been
        granted — the caller holds the slots and must :meth:`release`
        them.  The usual interrupt-safe pattern::

            request = resource.acquire()
            try:
                yield request
            except ProcessInterrupt:
                if not resource.cancel(request):
                    resource.release()
                raise
        """
        for index, (pending, _count) in enumerate(self._waiters):
            if pending is event:
                del self._waiters[index]
                # Removing a large request at the head may unblock the
                # smaller requests queued behind it.
                self._wake_waiters()
                return True
        return False

    def _fits(self, count: int) -> bool:
        """Whether a request for ``count`` slots can be granted now.

        Oversized requests (count > capacity) are granted only on an idle
        pool, so they make progress instead of waiting forever.
        """
        if self.in_use + count <= self.capacity:
            return True
        return self.in_use == 0 and count > self.capacity

    @staticmethod
    def _check_count(count: int) -> None:
        if count < 1:
            raise ValueError(f"count must be >= 1, got {count}")

    def resize(self, capacity: int) -> None:
        """Change the capacity (elastic pools, compute-aware streams).

        Growing wakes waiters immediately; shrinking never interrupts
        holders — usage drains down to the new capacity as slots are
        released.
        """
        if capacity < 1:
            raise ValueError(f"capacity must be >= 1, got {capacity}")
        self.capacity = capacity
        self._wake_waiters()

    def _wake_waiters(self) -> None:
        while self._waiters:
            event, count = self._waiters[0]
            if not self._fits(count):
                break
            self._waiters.popleft()
            self._grant(count)
            self.sim._schedule_at(self.sim.now, event, None)


class Store:
    """An unbounded FIFO channel between simulated processes."""

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name or "store"
        self._items: deque[object] = deque()
        self._getters: deque[Event] = deque()
        self._checker = getattr(sim, "invariants", None)

    def __len__(self) -> int:
        return len(self._items)

    def put(self, item: object) -> None:
        """Deposit an item, waking the oldest waiting getter if any."""
        if self._getters:
            event = self._getters.popleft()
            self.sim._schedule_at(self.sim.now, event, item)
        else:
            self._items.append(item)
        if self._checker is not None:
            self._checker.check_store(self)

    def get(self) -> Event:
        """Return an event whose value is the next item (FIFO order)."""
        event = self.sim.event(name=f"{self.name}.get")
        if self._items:
            self.sim._schedule_at(self.sim.now, event, self._items.popleft())
        else:
            self._getters.append(event)
        if self._checker is not None:
            self._checker.check_store(self)
        return event

    def try_get(self) -> tuple[bool, object]:
        """Non-blocking get; returns ``(True, item)`` or ``(False, None)``."""
        if self._items:
            return True, self._items.popleft()
        return False, None

    def cancel(self, event: Event) -> bool:
        """Withdraw a pending :meth:`get` request.

        Returns ``True`` when the getter was still queued; ``False``
        when an item was already dispatched to it (the caller owns that
        item).  Interrupted consumers use this so a later :meth:`put`
        does not hand an item to a dead process.
        """
        try:
            self._getters.remove(event)
        except ValueError:
            return False
        return True


class PriorityStore:
    """A store whose :meth:`get` returns the smallest item first.

    Items must be comparable; ties are broken by insertion order.
    """

    def __init__(self, sim: "Simulator", name: str = "") -> None:
        self.sim = sim
        self.name = name or "priority_store"
        self._heap: list[tuple[object, int, object]] = []
        self._counter = itertools.count()
        self._getters: deque[Event] = deque()

    def __len__(self) -> int:
        return len(self._heap)

    def put(self, item: object, priority: object | None = None) -> None:
        """Deposit ``item`` with ``priority`` (defaults to the item itself)."""
        key = item if priority is None else priority
        if self._getters:
            event = self._getters.popleft()
            self.sim._schedule_at(self.sim.now, event, item)
        else:
            heapq.heappush(self._heap, (key, next(self._counter), item))

    def get(self) -> Event:
        """Return an event whose value is the smallest-priority item."""
        event = self.sim.event(name=f"{self.name}.get")
        if self._heap:
            _, _, item = heapq.heappop(self._heap)
            self.sim._schedule_at(self.sim.now, event, item)
        else:
            self._getters.append(event)
        return event
