"""TCP/IP transport calibration.

The paper's evaluation platform connects nodes "via VPC with a TCP/IP
network bandwidth of 30 Gbps" and observes that "a single communication
stream can only utilize at most 30% of the bandwidth provided by the
TCP/IP link" (Section III).  The constants below encode those measurements.
"""

from __future__ import annotations

from repro.sim.transport import TransportModel

#: One TCP stream reaches "at most 30%" of the raw link rate (paper
#: §III); 25% is the calibrated steady-state value that reproduces the
#: paper's 75% Horovod scaling efficiency at 32 GPUs.
TCP_SINGLE_STREAM_EFFICIENCY = 0.25

#: Many concurrent streams together reach ≈96% of the raw rate; the
#: remainder is protocol framing and VPC virtualisation overhead.  This
#: bound yields the ≥0.96 scaling efficiency the paper reports for AIACC.
TCP_AGGREGATE_EFFICIENCY = 0.96

#: Per-message software overhead of the kernel TCP stack per ring step
#: (~25 µs: syscall and copy costs, partially pipelined with transmission).
TCP_PER_MESSAGE_OVERHEAD_S = 25e-6

#: Connection establishment plus communicator construction for one extra
#: stream; paid once per stream during warm-up.
TCP_SETUP_LATENCY_S = 2e-3


def tcp_transport(
    single_stream_efficiency: float = TCP_SINGLE_STREAM_EFFICIENCY,
    aggregate_efficiency: float = TCP_AGGREGATE_EFFICIENCY,
) -> TransportModel:
    """Build the calibrated TCP transport model.

    The efficiencies are parameters so experiments can explore alternative
    network stacks (e.g. a better-tuned kernel raising the single-stream
    share).
    """
    return TransportModel(
        name="tcp",
        single_stream_efficiency=single_stream_efficiency,
        aggregate_efficiency=aggregate_efficiency,
        per_message_overhead_s=TCP_PER_MESSAGE_OVERHEAD_S,
        setup_latency_s=TCP_SETUP_LATENCY_S,
    )


#: Default instance used throughout the library.
TCP = tcp_transport()
