"""Event-driven fault injection for the simulated AIACC runtime.

The paper sells AIACC-Training as a production library whose fault
tolerance, elastic deployment and restart-from-checkpoint support are
first-class features (§IV).  This module injects the failures those
features exist to survive, *inside* the discrete-event simulator rather
than as closed-form time corrections:

:class:`NodeCrash`
    A node dies at a simulated instant.  Its NIC and NVLink capacities
    collapse (in-flight flows stall), the cluster marks it failed (new
    collectives never complete), and any registered victim processes
    receive :class:`~repro.errors.ProcessInterrupt`.
:class:`LinkFlap`
    A node's NIC goes down for a bounded window, then recovers.
:class:`BandwidthDegradation`
    A node's NIC runs at a fraction of capacity for a window —
    the bursty cross-tenant traffic of §VII, but time-varying.
:class:`Straggler`
    A node's NIC slows by a factor for a window, modelling the
    slow-worker effect that motivates event-level (not average-rate)
    failure modelling in the S-SGD DAG literature.
:class:`NodeLeave`
    A *clean* scheduled departure: the node announces at ``at_s`` and is
    excised at the next membership-epoch boundary.  Unlike a crash its
    links stay healthy until then, so survivors continue from live
    parameters with no checkpoint restore.
:class:`NodeJoin`
    A node (a brand-new identity, or a previously crashed/departed one
    rejoining) requests admission at ``at_s``; it is admitted at the next
    epoch boundary via a pipelined live-parameter broadcast.

A :class:`FaultPlan` is an immutable, time-sorted schedule of faults;
a :class:`FaultInjector` arms the plan against a live simulator/cluster/
network triple and survives communicator rebuilds via :meth:`retarget`.

Faults are *delivered through the event queue* (`Simulator.interrupt`),
so injection is deterministic and ordered with all other simulation
activity.
"""

from __future__ import annotations

import dataclasses
import random
import typing as t

from repro.errors import FaultInjectionError
from repro.sim.kernel import Simulator
from repro.sim.network import FluidNetwork, Link
from repro.sim.process import Process
from repro.sim.topology import Cluster
from repro.sim.tracing import Trace

#: Capacity a dead node's links are squashed to.  The fluid network
#: requires strictly positive capacities; at 1e-3 bit/s any in-flight
#: flow's remaining transfer takes geological time, which is how a dead
#: NIC looks to its peers: the connection does not error, it stalls.
DEAD_LINK_BPS = 1e-3


@dataclasses.dataclass(frozen=True)
class Fault:
    """Base class for scheduled faults.

    ``at_s`` is the absolute simulated injection time; ``node`` is the
    index of the victim node *in the original cluster* (the injector
    keeps the mapping to post-rebuild indices).
    """

    at_s: float
    node: int

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise FaultInjectionError(
                f"fault time must be >= 0, got {self.at_s}"
            )
        if self.node < 0:
            raise FaultInjectionError(
                f"fault node must be >= 0, got {self.node}"
            )


@dataclasses.dataclass(frozen=True)
class NodeCrash(Fault):
    """The node dies permanently at ``at_s``."""


@dataclasses.dataclass(frozen=True)
class LinkFlap(Fault):
    """The node's NIC goes down at ``at_s`` and recovers after ``down_s``."""

    down_s: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.down_s <= 0:
            raise FaultInjectionError("down_s must be positive")


@dataclasses.dataclass(frozen=True)
class BandwidthDegradation(Fault):
    """The node's NIC runs at ``fraction`` of capacity for ``duration_s``."""

    fraction: float = 0.5
    duration_s: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.fraction <= 1:
            raise FaultInjectionError("fraction must be in (0, 1]")
        if self.duration_s <= 0:
            raise FaultInjectionError("duration_s must be positive")


@dataclasses.dataclass(frozen=True)
class Straggler(Fault):
    """The node's NIC slows by ``slowdown``x for ``duration_s`` seconds."""

    slowdown: float = 4.0
    duration_s: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.slowdown <= 1:
            raise FaultInjectionError("slowdown must be > 1")
        if self.duration_s <= 0:
            raise FaultInjectionError("duration_s must be positive")


@dataclasses.dataclass(frozen=True)
class NodeLeave(Fault):
    """The node departs cleanly at the next epoch boundary after ``at_s``."""


@dataclasses.dataclass(frozen=True)
class NodeJoin(Fault):
    """Node identity ``node`` asks to join at the next epoch boundary.

    ``node`` may name a brand-new identity (>= the initial cluster size)
    or a previously crashed/departed node rejoining at a later epoch.
    """


#: Fault kinds that change membership when *applied* (crash) or at the
#: next epoch boundary (leave/join).
MEMBERSHIP_FAULTS = (NodeCrash, NodeLeave, NodeJoin)


class FaultPlan:
    """An immutable, time-ordered schedule of faults."""

    def __init__(self, faults: t.Iterable[Fault]) -> None:
        self.faults: tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: (f.at_s, f.node))
        )
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise FaultInjectionError(
                    f"plan entries must be Fault instances, got {fault!r}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> t.Iterator[Fault]:
        return iter(self.faults)

    def validate_for(self, cluster: Cluster) -> None:
        """Up-front, typed validation of the whole schedule.

        Walks the plan in time order tracking the membership set it
        implies (crashes and leaves remove a node, joins add one) and
        rejects, with :class:`~repro.errors.FaultInjectionError` instead
        of a mid-run ``KeyError``:

        * crashes/leaves targeting a node that is not a member at that
          point of the schedule (out-of-range ranks included);
        * joins targeting a node that is already a member;
        * link-level faults (flap/degradation/straggler) targeting an
          identity the schedule never knows about — former members are
          allowed (the fault is a runtime no-op, like today);
        * overlapping NIC windows (flap/degradation/straggler) on the
          same node — the injector's capacity save/restore does not
          nest, so the first window's recovery would silently restore
          the link out from under the second;
        * any point where the group would drop below one worker.
        """
        self.membership_bounds(cluster.num_nodes)

    def membership_bounds(self, initial_nodes: int) -> tuple[int, int]:
        """Validate the schedule; return ``(min, final)`` member counts.

        ``initial_nodes`` is the size of the cluster the plan is armed
        against; node identities ``0..initial_nodes-1`` are the initial
        members.  Raises :class:`~repro.errors.FaultInjectionError` on
        the first inconsistency (see :meth:`validate_for`).
        """
        if initial_nodes < 1:
            raise FaultInjectionError("initial_nodes must be >= 1")
        members = set(range(initial_nodes))
        known = set(members)
        minimum = len(members)
        #: Per-node open NIC window: (end time, fault kind name).
        busy_until: dict[int, tuple[float, str]] = {}
        for fault in self.faults:
            name = type(fault).__name__
            if isinstance(fault, NodeJoin):
                if fault.node in members:
                    raise FaultInjectionError(
                        f"{name} at t={fault.at_s:g}s: node {fault.node} "
                        "is already a member"
                    )
                members.add(fault.node)
                known.add(fault.node)
            elif isinstance(fault, (NodeCrash, NodeLeave)):
                if fault.node not in members:
                    raise FaultInjectionError(
                        f"{name} at t={fault.at_s:g}s targets node "
                        f"{fault.node}, which is not a member at that "
                        "point of the schedule"
                    )
                members.discard(fault.node)
                if not members:
                    raise FaultInjectionError(
                        f"{name} at t={fault.at_s:g}s would drop the "
                        "group below one worker"
                    )
                minimum = min(minimum, len(members))
            else:
                if fault.node not in known:
                    raise FaultInjectionError(
                        f"{name} targets node {fault.node} but the "
                        f"schedule only ever knows nodes {sorted(known)}"
                    )
                if isinstance(fault, LinkFlap):
                    window_s: float | None = fault.down_s
                elif isinstance(fault, (BandwidthDegradation, Straggler)):
                    window_s = fault.duration_s
                else:
                    window_s = None
                if window_s is not None:
                    prior = busy_until.get(fault.node)
                    if prior is not None and fault.at_s < prior[0]:
                        raise FaultInjectionError(
                            f"{name} at t={fault.at_s:g}s overlaps the "
                            f"{prior[1]} window on node {fault.node}, "
                            f"which runs until t={prior[0]:g}s"
                        )
                    busy_until[fault.node] = (fault.at_s + window_s, name)
        return minimum, len(members)

    @property
    def crash_count(self) -> int:
        """Number of permanent node crashes in the plan."""
        return sum(1 for f in self.faults if isinstance(f, NodeCrash))

    @property
    def membership_event_count(self) -> int:
        """Scheduled crashes, leaves and joins (epoch-changing events)."""
        return sum(1 for f in self.faults
                   if isinstance(f, MEMBERSHIP_FAULTS))

    @classmethod
    def poisson(cls, mtbf_s: float, horizon_s: float, num_nodes: int,
                seed: int = 0, kinds: t.Sequence[type] = (NodeCrash,),
                ) -> "FaultPlan":
        """Draw a fault schedule from a Poisson process.

        Inter-arrival times are exponential with mean ``mtbf_s``; each
        arrival picks a uniform victim node and a uniform fault kind
        from ``kinds``.  Crashes never target an already-crashed node
        (the schedule is over distinct victims), and windowed NIC
        faults never overlap an open window on the same node (the draw
        is skipped instead), so a plan can be checked against the
        cluster size up front.
        """
        if mtbf_s <= 0:
            raise FaultInjectionError("mtbf_s must be positive")
        if horizon_s <= 0:
            raise FaultInjectionError("horizon_s must be positive")
        if num_nodes < 1:
            raise FaultInjectionError("num_nodes must be >= 1")
        rng = random.Random(seed)
        faults: list[Fault] = []
        crashed: set[int] = set()
        busy_until: dict[int, float] = {}
        clock = 0.0
        while True:
            clock += rng.expovariate(1.0 / mtbf_s)
            if clock >= horizon_s:
                break
            candidates = [n for n in range(num_nodes) if n not in crashed]
            if not candidates:
                break
            node = rng.choice(candidates)
            kind = kinds[rng.randrange(len(kinds))]
            if kind in (LinkFlap, BandwidthDegradation, Straggler) \
                    and clock < busy_until.get(node, 0.0):
                continue  # node's NIC window is still open; skip draw
            if kind is NodeCrash:
                crashed.add(node)
                faults.append(NodeCrash(at_s=clock, node=node))
            elif kind is LinkFlap:
                down_s = rng.uniform(0.2, 2.0)
                busy_until[node] = clock + down_s
                faults.append(LinkFlap(at_s=clock, node=node, down_s=down_s))
            elif kind is BandwidthDegradation:
                fraction = rng.uniform(0.2, 0.8)
                duration_s = rng.uniform(0.5, 5.0)
                busy_until[node] = clock + duration_s
                faults.append(BandwidthDegradation(
                    at_s=clock, node=node, fraction=fraction,
                    duration_s=duration_s))
            elif kind is Straggler:
                slowdown = rng.uniform(2.0, 8.0)
                duration_s = rng.uniform(0.5, 5.0)
                busy_until[node] = clock + duration_s
                faults.append(Straggler(at_s=clock, node=node,
                                        slowdown=slowdown,
                                        duration_s=duration_s))
            else:
                raise FaultInjectionError(f"unknown fault kind {kind!r}")
        return cls(faults)

    @classmethod
    def chaos(cls, seed: int, num_nodes: int, horizon_s: float,
              mtbf_s: float | None = None, min_nodes: int = 1,
              max_extra_nodes: int = 2,
              kinds: t.Sequence[type] | None = None) -> "FaultPlan":
        """Draw a membership-aware random schedule for chaos soaking.

        Like :meth:`poisson` but mixes *membership* events (crashes,
        clean leaves, joins of new or previously-lost identities) with
        link-level faults, while tracking the implied membership set so
        the resulting plan always passes :meth:`validate_for`: the group
        never drops below ``min_nodes``, joins never target a current
        member, and windowed NIC faults never overlap an open window on
        the same node.  ``max_extra_nodes`` bounds brand-new identities
        beyond the initial cluster.
        """
        if num_nodes < 1:
            raise FaultInjectionError("num_nodes must be >= 1")
        if horizon_s <= 0:
            raise FaultInjectionError("horizon_s must be positive")
        if not 1 <= min_nodes <= num_nodes:
            raise FaultInjectionError(
                "min_nodes must be within [1, num_nodes]")
        if max_extra_nodes < 0:
            raise FaultInjectionError("max_extra_nodes must be >= 0")
        kinds = tuple(kinds) if kinds is not None else (
            NodeCrash, LinkFlap, BandwidthDegradation, Straggler,
            NodeLeave, NodeJoin)
        rng = random.Random(seed)
        mean = mtbf_s if mtbf_s is not None else horizon_s / 6.0
        if mean <= 0:
            raise FaultInjectionError("mtbf_s must be positive")
        members = set(range(num_nodes))
        gone: set[int] = set()  # crashed or departed, eligible to rejoin
        next_new = num_nodes
        busy_until: dict[int, float] = {}
        faults: list[Fault] = []
        clock = 0.0
        while True:
            clock += rng.expovariate(1.0 / mean)
            if clock >= horizon_s:
                break
            kind = kinds[rng.randrange(len(kinds))]
            if kind in (NodeCrash, NodeLeave):
                if len(members) <= min_nodes:
                    continue  # would shrink below the floor; skip draw
                node = rng.choice(sorted(members))
                members.discard(node)
                gone.add(node)
                faults.append(kind(at_s=clock, node=node))
            elif kind is NodeJoin:
                fresh = next_new < num_nodes + max_extra_nodes
                candidates = sorted(gone) + ([next_new] if fresh else [])
                if not candidates:
                    continue
                node = rng.choice(candidates)
                if node == next_new:
                    next_new += 1
                gone.discard(node)
                members.add(node)
                faults.append(NodeJoin(at_s=clock, node=node))
            else:
                idle = [n for n in sorted(members)
                        if clock >= busy_until.get(n, 0.0)]
                if not idle:
                    continue  # every member's NIC window is open
                node = rng.choice(idle)
                if kind is LinkFlap:
                    down_s = rng.uniform(0.2, 2.0)
                    busy_until[node] = clock + down_s
                    faults.append(LinkFlap(at_s=clock, node=node,
                                           down_s=down_s))
                elif kind is BandwidthDegradation:
                    fraction = rng.uniform(0.2, 0.8)
                    duration_s = rng.uniform(0.5, 5.0)
                    busy_until[node] = clock + duration_s
                    faults.append(BandwidthDegradation(
                        at_s=clock, node=node, fraction=fraction,
                        duration_s=duration_s))
                else:
                    slowdown = rng.uniform(2.0, 8.0)
                    duration_s = rng.uniform(0.5, 5.0)
                    busy_until[node] = clock + duration_s
                    faults.append(Straggler(
                        at_s=clock, node=node, slowdown=slowdown,
                        duration_s=duration_s))
        return cls(faults)


class FaultInjector:
    """Arms a :class:`FaultPlan` against a live simulation.

    The injector owns the mapping from *original* node indices (the
    coordinates the plan is written in) to indices in the *current*
    cluster, which shrinks as crashed nodes are excised by elastic
    rebuilds.  After each rebuild the driver calls :meth:`retarget` with
    the new cluster/network; pending faults whose victim has already
    crashed become no-ops.
    """

    def __init__(self, sim: Simulator, cluster: Cluster,
                 network: FluidNetwork, trace: Trace | None = None) -> None:
        self.sim = sim
        self.cluster = cluster
        self.network = network
        self.trace = trace or Trace(enabled=False)
        #: Original node ids of the nodes present in the current cluster,
        #: in cluster order: ``_current[i]`` is the original identity of
        #: current node ``i``.
        self._current: list[int] = list(range(cluster.num_nodes))
        #: Original ids of permanently crashed nodes.
        self._crashed: set[int] = set()
        #: Original ids of nodes that departed cleanly (scale-down).
        self._departed: set[int] = set()
        #: Every identity the injector has ever known (initial members
        #: plus admitted joiners); joins of unknown ids extend it.
        self._known: set[int] = set(self._current)
        #: Crashes not yet consumed by the recovery driver
        #: (:meth:`take_pending_dead`), in original-node coordinates.
        self._pending_dead: list[int] = []
        #: Clean departures announced but not yet excised at an epoch
        #: boundary (:meth:`take_pending_leaves`).
        self._pending_leaves: list[int] = []
        #: Join requests awaiting admission at an epoch boundary
        #: (:meth:`take_pending_joins`).
        self._pending_joins: list[int] = []
        #: Injection time per crashed original node.
        self.crash_times: dict[int, float] = {}
        #: Announce time per departed original node.
        self.leave_times: dict[int, float] = {}
        #: Request time per joined original node (latest join wins).
        self.join_times: dict[int, float] = {}
        #: Processes to interrupt per original node id on crash.
        self._victims: dict[int, list[Process]] = {}
        #: Original capacities of links we have squashed, for restore.
        self._saved_caps: dict[Link, float] = {}

    # -- wiring ---------------------------------------------------------------

    def register_victim(self, node: int, process: Process) -> None:
        """Interrupt ``process`` (if interruptible) when ``node`` crashes."""
        self._victims.setdefault(node, []).append(process)

    def arm(self, plan: FaultPlan) -> None:
        """Schedule every fault in ``plan`` for delivery."""
        plan.validate_for(self.cluster)
        for fault in plan:
            self.sim.spawn(self._deliver(fault),
                           name=f"fault:{type(fault).__name__}@{fault.at_s:g}")

    def retarget(self, cluster: Cluster, network: FluidNetwork) -> None:
        """Point the injector at the post-rebuild cluster.

        Must be called with *no intervening sim-time advancement* after
        the new cluster is built, so no fault can land in between.  The
        surviving original node ids, in order, become the new cluster's
        node indices — the same survivor ordering the rebuild uses.
        Nodes excised by :meth:`depart` or added by :meth:`admit` are
        already reflected in the current membership.
        """
        survivors = [n for n in self._current if n not in self._crashed]
        if len(survivors) != cluster.num_nodes:
            raise FaultInjectionError(
                f"retarget: cluster has {cluster.num_nodes} nodes but "
                f"{len(survivors)} original nodes survive"
            )
        self._current = survivors
        self.cluster = cluster
        self.network = network
        self._saved_caps.clear()

    # -- membership transitions (epoch boundaries) ----------------------------

    @property
    def membership(self) -> tuple[int, ...]:
        """Current members, original ids, in cluster-index order."""
        return tuple(n for n in self._current if n not in self._crashed)

    def depart(self, nodes: t.Sequence[int]) -> None:
        """Excise cleanly departing ``nodes`` (original ids).

        Called by the elastic driver at an epoch boundary after draining
        :meth:`take_pending_leaves`; must be followed by a rebuild +
        :meth:`retarget` with no intervening simulated time.
        """
        for node in nodes:
            if node not in self._current:
                raise FaultInjectionError(
                    f"depart: node {node} is not a current member"
                )
            if node in self._crashed:
                raise FaultInjectionError(
                    f"depart: node {node} crashed; use the recovery path"
                )
            self._departed.add(node)
        self._current = [n for n in self._current if n not in set(nodes)]

    def admit(self, nodes: t.Sequence[int]) -> None:
        """Admit joining ``nodes`` (original ids) as new members.

        A previously crashed or departed identity may rejoin: its
        crashed/departed marks are cleared (the cluster-side equivalent
        is :meth:`repro.sim.topology.Cluster.uncrash`).  Joiners are
        appended after the survivors, so existing members keep their
        cluster indices.
        """
        for node in nodes:
            if node in self._current:
                raise FaultInjectionError(
                    f"admit: node {node} is already a member"
                )
            self._crashed.discard(node)
            self._departed.discard(node)
            self._known.add(node)
            self._current.append(node)

    @property
    def has_pending_dead(self) -> bool:
        """True when crashes await the recovery driver.

        The elastic driver polls this between boundary transitions: a
        crash landing mid-reconfigure hands the boundary back to the
        crash-recovery path (remaining leaves/joins are re-queued).
        """
        return bool(self._pending_dead)

    def requeue_leaves(self, nodes: t.Sequence[int]) -> None:
        """Put drained-but-unprocessed departures back at queue front."""
        self._pending_leaves = [n for n in nodes
                                if n not in self._pending_leaves] + \
            self._pending_leaves

    def requeue_joins(self, nodes: t.Sequence[int]) -> None:
        """Put drained-but-unprocessed join requests back at queue front."""
        self._pending_joins = [n for n in nodes
                               if n not in self._pending_joins] + \
            self._pending_joins

    def take_pending_dead(self) -> list[int]:
        """Return-and-clear crashes not yet consumed by recovery.

        Coordinates are original node ids; the recovery driver drains
        this after catching :class:`~repro.errors.PeerDeadError` to
        learn who actually died (possibly more than one node, if
        crashes landed close together).
        """
        dead, self._pending_dead = self._pending_dead, []
        return dead

    def take_pending_leaves(self) -> list[int]:
        """Return-and-clear announced clean departures (original ids).

        Drained by the elastic driver at iteration boundaries; nodes
        that crashed between the announcement and the boundary are
        dropped (the crash recovery path owns them).
        """
        leaves, self._pending_leaves = self._pending_leaves, []
        return [n for n in leaves
                if n not in self._crashed and n in self._current]

    def take_pending_joins(self) -> list[int]:
        """Return admissible join requests (original ids).

        A rejoin request for a node that crashed but has not been excised
        yet (its recovery is still pending) stays queued for a later
        boundary; a request for a node that is already a live member is
        dropped as a no-op.
        """
        joins, self._pending_joins = self._pending_joins, []
        ready = [n for n in joins if n not in self._current]
        self._pending_joins = [n for n in joins
                               if n in self._current and n in self._crashed]
        return ready

    # -- delivery -------------------------------------------------------------

    def _deliver(self, fault: Fault) -> t.Generator:
        delay = fault.at_s - self.sim.now
        if delay < 0:
            raise FaultInjectionError(
                f"fault at t={fault.at_s:g}s scheduled after that time passed"
            )
        yield self.sim.timeout(delay)
        self.apply(fault)

    def apply(self, fault: Fault) -> None:
        """Apply ``fault`` right now (normally called via :meth:`arm`)."""
        if isinstance(fault, NodeJoin):
            self._apply_join(fault)
            return
        if fault.node in self._crashed:
            return  # victim already dead; nothing left to break
        if fault.node not in self._current:
            return  # defensive: unknown identity after a retarget
        if isinstance(fault, NodeLeave):
            self._apply_leave(fault)
            return
        index = self._current.index(fault.node)
        if isinstance(fault, NodeCrash):
            self._apply_crash(fault, index)
        elif isinstance(fault, LinkFlap):
            self._apply_scaled(fault, index, scale=None,
                               duration_s=fault.down_s, kind="link_flap")
        elif isinstance(fault, BandwidthDegradation):
            self._apply_scaled(fault, index, scale=fault.fraction,
                               duration_s=fault.duration_s, kind="degrade")
        elif isinstance(fault, Straggler):
            self._apply_scaled(fault, index, scale=1.0 / fault.slowdown,
                               duration_s=fault.duration_s, kind="straggler")
        else:
            raise FaultInjectionError(f"unknown fault {fault!r}")

    def _node_links(self, index: int) -> list[Link]:
        links = [self.cluster.nic_out[index], self.cluster.nic_in[index],
                 self.cluster.nvlink[index]]
        return links

    def _apply_crash(self, fault: NodeCrash, index: int) -> None:
        self._crashed.add(fault.node)
        self._pending_dead.append(fault.node)
        self.crash_times[fault.node] = self.sim.now
        self.cluster.fail_node(index)
        for link in self._node_links(index):
            self._squash(link, DEAD_LINK_BPS)
        for victim in self._victims.get(fault.node, ()):
            if victim.can_interrupt:
                # Ensure the interrupt cannot hard-raise as an unwatched
                # process crash out of sim.step().
                victim.add_callback(lambda _ev: None)
                victim.interrupt(fault)
        self.trace.fault("inject", self.sim.now, fault="node_crash",
                         node=fault.node)

    def _apply_leave(self, fault: NodeLeave) -> None:
        """Announce a clean departure; excision waits for the boundary.

        The node keeps training (links healthy, collectives complete)
        until the elastic driver drains :meth:`take_pending_leaves` at
        the end of the current iteration — the live-state continuation
        that distinguishes scale-down from crash recovery.
        """
        if fault.node in self._pending_leaves:
            return  # duplicate announcement
        self._pending_leaves.append(fault.node)
        self.leave_times[fault.node] = self.sim.now
        self.trace.fault("leave", self.sim.now, node=fault.node)

    def _apply_join(self, fault: NodeJoin) -> None:
        """Record a join request; admission waits for the boundary."""
        if fault.node in self._current and fault.node not in self._crashed:
            return  # already a live member; nothing to admit
        if fault.node in self._pending_joins:
            return  # duplicate request
        self._pending_joins.append(fault.node)
        self.join_times[fault.node] = self.sim.now
        self.trace.fault("join", self.sim.now, node=fault.node)

    def _apply_scaled(self, fault: Fault, index: int, scale: float | None,
                      duration_s: float, kind: str) -> None:
        """Scale the node's NIC for a window, then restore.

        ``scale=None`` means "down hard" (:data:`DEAD_LINK_BPS`).
        """
        nic_links = [self.cluster.nic_out[index], self.cluster.nic_in[index]]
        original = fault.node
        restore: list[tuple[Link, float]] = []
        for link in nic_links:
            before = self._saved_caps.get(link, link.capacity_bps)
            restore.append((link, before))
            target = DEAD_LINK_BPS if scale is None else before * scale
            self._squash(link, target)
        self.trace.fault("inject", self.sim.now, fault=kind, node=original)

        def _recover() -> t.Generator:
            yield self.sim.timeout(duration_s)
            if original in self._crashed or original not in self._current:
                return  # node died/left during the window; stay squashed
            for link, capacity in restore:
                self.network.set_link_capacity(link, capacity)
                self._saved_caps.pop(link, None)
            self.trace.fault("recover", self.sim.now, fault=kind,
                             node=original)

        self.sim.spawn(_recover(), name=f"fault-recover:{kind}@{original}")

    def _squash(self, link: Link, capacity_bps: float) -> None:
        self._saved_caps.setdefault(link, link.capacity_bps)
        self.network.set_link_capacity(link, capacity_bps)
