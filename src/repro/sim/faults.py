"""Event-driven fault injection for the simulated AIACC runtime.

The paper sells AIACC-Training as a production library whose fault
tolerance, elastic deployment and restart-from-checkpoint support are
first-class features (§IV).  This module injects the failures those
features exist to survive, *inside* the discrete-event simulator rather
than as closed-form time corrections:

:class:`NodeCrash`
    A node dies at a simulated instant.  Its NIC and NVLink capacities
    collapse (in-flight flows stall), the cluster marks it failed (new
    collectives never complete), and any registered victim processes
    receive :class:`~repro.errors.ProcessInterrupt`.
:class:`LinkFlap`
    A node's NIC goes down for a bounded window, then recovers.
:class:`BandwidthDegradation`
    A node's NIC runs at a fraction of capacity for a window —
    the bursty cross-tenant traffic of §VII, but time-varying.
:class:`Straggler`
    A node's NIC slows by a factor for a window, modelling the
    slow-worker effect that motivates event-level (not average-rate)
    failure modelling in the S-SGD DAG literature.

A :class:`FaultPlan` is an immutable, time-sorted schedule of faults;
a :class:`FaultInjector` arms the plan against a live simulator/cluster/
network triple and survives communicator rebuilds via :meth:`retarget`.

Faults are *delivered through the event queue* (`Simulator.interrupt`),
so injection is deterministic and ordered with all other simulation
activity.
"""

from __future__ import annotations

import dataclasses
import random
import typing as t

from repro.errors import FaultInjectionError
from repro.sim.kernel import Simulator
from repro.sim.network import FluidNetwork, Link
from repro.sim.process import Process
from repro.sim.topology import Cluster
from repro.sim.tracing import Trace

#: Capacity a dead node's links are squashed to.  The fluid network
#: requires strictly positive capacities; at 1e-3 bit/s any in-flight
#: flow's remaining transfer takes geological time, which is how a dead
#: NIC looks to its peers: the connection does not error, it stalls.
DEAD_LINK_BPS = 1e-3


@dataclasses.dataclass(frozen=True)
class Fault:
    """Base class for scheduled faults.

    ``at_s`` is the absolute simulated injection time; ``node`` is the
    index of the victim node *in the original cluster* (the injector
    keeps the mapping to post-rebuild indices).
    """

    at_s: float
    node: int

    def __post_init__(self) -> None:
        if self.at_s < 0:
            raise FaultInjectionError(
                f"fault time must be >= 0, got {self.at_s}"
            )
        if self.node < 0:
            raise FaultInjectionError(
                f"fault node must be >= 0, got {self.node}"
            )


@dataclasses.dataclass(frozen=True)
class NodeCrash(Fault):
    """The node dies permanently at ``at_s``."""


@dataclasses.dataclass(frozen=True)
class LinkFlap(Fault):
    """The node's NIC goes down at ``at_s`` and recovers after ``down_s``."""

    down_s: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.down_s <= 0:
            raise FaultInjectionError("down_s must be positive")


@dataclasses.dataclass(frozen=True)
class BandwidthDegradation(Fault):
    """The node's NIC runs at ``fraction`` of capacity for ``duration_s``."""

    fraction: float = 0.5
    duration_s: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if not 0 < self.fraction < 1:
            raise FaultInjectionError("fraction must be in (0, 1)")
        if self.duration_s <= 0:
            raise FaultInjectionError("duration_s must be positive")


@dataclasses.dataclass(frozen=True)
class Straggler(Fault):
    """The node's NIC slows by ``slowdown``x for ``duration_s`` seconds."""

    slowdown: float = 4.0
    duration_s: float = 1.0

    def __post_init__(self) -> None:
        super().__post_init__()
        if self.slowdown <= 1:
            raise FaultInjectionError("slowdown must be > 1")
        if self.duration_s <= 0:
            raise FaultInjectionError("duration_s must be positive")


class FaultPlan:
    """An immutable, time-ordered schedule of faults."""

    def __init__(self, faults: t.Iterable[Fault]) -> None:
        self.faults: tuple[Fault, ...] = tuple(
            sorted(faults, key=lambda f: (f.at_s, f.node))
        )
        for fault in self.faults:
            if not isinstance(fault, Fault):
                raise FaultInjectionError(
                    f"plan entries must be Fault instances, got {fault!r}"
                )

    def __len__(self) -> int:
        return len(self.faults)

    def __iter__(self) -> t.Iterator[Fault]:
        return iter(self.faults)

    def validate_for(self, cluster: Cluster) -> None:
        """Check every fault targets a node that exists in ``cluster``."""
        for fault in self.faults:
            if fault.node >= cluster.num_nodes:
                raise FaultInjectionError(
                    f"{type(fault).__name__} targets node {fault.node} but "
                    f"the cluster has only {cluster.num_nodes} nodes"
                )

    @property
    def crash_count(self) -> int:
        """Number of permanent node crashes in the plan."""
        return sum(1 for f in self.faults if isinstance(f, NodeCrash))

    @classmethod
    def poisson(cls, mtbf_s: float, horizon_s: float, num_nodes: int,
                seed: int = 0, kinds: t.Sequence[type] = (NodeCrash,),
                ) -> "FaultPlan":
        """Draw a fault schedule from a Poisson process.

        Inter-arrival times are exponential with mean ``mtbf_s``; each
        arrival picks a uniform victim node and a uniform fault kind
        from ``kinds``.  Crashes never target an already-crashed node
        (the schedule is over distinct victims), so a plan can be
        checked against the cluster size up front.
        """
        if mtbf_s <= 0:
            raise FaultInjectionError("mtbf_s must be positive")
        if horizon_s <= 0:
            raise FaultInjectionError("horizon_s must be positive")
        if num_nodes < 1:
            raise FaultInjectionError("num_nodes must be >= 1")
        rng = random.Random(seed)
        faults: list[Fault] = []
        crashed: set[int] = set()
        clock = 0.0
        while True:
            clock += rng.expovariate(1.0 / mtbf_s)
            if clock >= horizon_s:
                break
            candidates = [n for n in range(num_nodes) if n not in crashed]
            if not candidates:
                break
            node = rng.choice(candidates)
            kind = kinds[rng.randrange(len(kinds))]
            if kind is NodeCrash:
                crashed.add(node)
                faults.append(NodeCrash(at_s=clock, node=node))
            elif kind is LinkFlap:
                faults.append(LinkFlap(at_s=clock, node=node,
                                       down_s=rng.uniform(0.2, 2.0)))
            elif kind is BandwidthDegradation:
                faults.append(BandwidthDegradation(
                    at_s=clock, node=node,
                    fraction=rng.uniform(0.2, 0.8),
                    duration_s=rng.uniform(0.5, 5.0)))
            elif kind is Straggler:
                faults.append(Straggler(at_s=clock, node=node,
                                        slowdown=rng.uniform(2.0, 8.0),
                                        duration_s=rng.uniform(0.5, 5.0)))
            else:
                raise FaultInjectionError(f"unknown fault kind {kind!r}")
        return cls(faults)


class FaultInjector:
    """Arms a :class:`FaultPlan` against a live simulation.

    The injector owns the mapping from *original* node indices (the
    coordinates the plan is written in) to indices in the *current*
    cluster, which shrinks as crashed nodes are excised by elastic
    rebuilds.  After each rebuild the driver calls :meth:`retarget` with
    the new cluster/network; pending faults whose victim has already
    crashed become no-ops.
    """

    def __init__(self, sim: Simulator, cluster: Cluster,
                 network: FluidNetwork, trace: Trace | None = None) -> None:
        self.sim = sim
        self.cluster = cluster
        self.network = network
        self.trace = trace or Trace(enabled=False)
        #: Original node ids of the nodes present in the current cluster,
        #: in cluster order: ``_current[i]`` is the original identity of
        #: current node ``i``.
        self._current: list[int] = list(range(cluster.num_nodes))
        #: Original ids of permanently crashed nodes.
        self._crashed: set[int] = set()
        #: Crashes not yet consumed by the recovery driver
        #: (:meth:`take_pending_dead`), in original-node coordinates.
        self._pending_dead: list[int] = []
        #: Injection time per crashed original node.
        self.crash_times: dict[int, float] = {}
        #: Processes to interrupt per original node id on crash.
        self._victims: dict[int, list[Process]] = {}
        #: Original capacities of links we have squashed, for restore.
        self._saved_caps: dict[Link, float] = {}

    # -- wiring ---------------------------------------------------------------

    def register_victim(self, node: int, process: Process) -> None:
        """Interrupt ``process`` (if interruptible) when ``node`` crashes."""
        self._victims.setdefault(node, []).append(process)

    def arm(self, plan: FaultPlan) -> None:
        """Schedule every fault in ``plan`` for delivery."""
        plan.validate_for(self.cluster)
        for fault in plan:
            self.sim.spawn(self._deliver(fault),
                           name=f"fault:{type(fault).__name__}@{fault.at_s:g}")

    def retarget(self, cluster: Cluster, network: FluidNetwork) -> None:
        """Point the injector at the post-rebuild cluster.

        Must be called with *no intervening sim-time advancement* after
        the new cluster is built, so no fault can land in between.  The
        surviving original node ids, in order, become the new cluster's
        node indices — the same survivor ordering the rebuild uses.
        """
        survivors = [n for n in self._current if n not in self._crashed]
        if len(survivors) != cluster.num_nodes:
            raise FaultInjectionError(
                f"retarget: cluster has {cluster.num_nodes} nodes but "
                f"{len(survivors)} original nodes survive"
            )
        self._current = survivors
        self.cluster = cluster
        self.network = network
        self._saved_caps.clear()

    def take_pending_dead(self) -> list[int]:
        """Return-and-clear crashes not yet consumed by recovery.

        Coordinates are original node ids; the recovery driver drains
        this after catching :class:`~repro.errors.PeerDeadError` to
        learn who actually died (possibly more than one node, if
        crashes landed close together).
        """
        dead, self._pending_dead = self._pending_dead, []
        return dead

    # -- delivery -------------------------------------------------------------

    def _deliver(self, fault: Fault) -> t.Generator:
        delay = fault.at_s - self.sim.now
        if delay < 0:
            raise FaultInjectionError(
                f"fault at t={fault.at_s:g}s scheduled after that time passed"
            )
        yield self.sim.timeout(delay)
        self.apply(fault)

    def apply(self, fault: Fault) -> None:
        """Apply ``fault`` right now (normally called via :meth:`arm`)."""
        if fault.node in self._crashed:
            return  # victim already dead; nothing left to break
        if fault.node not in self._current:
            return  # defensive: unknown identity after a retarget
        index = self._current.index(fault.node)
        if isinstance(fault, NodeCrash):
            self._apply_crash(fault, index)
        elif isinstance(fault, LinkFlap):
            self._apply_scaled(fault, index, scale=None,
                               duration_s=fault.down_s, kind="link_flap")
        elif isinstance(fault, BandwidthDegradation):
            self._apply_scaled(fault, index, scale=fault.fraction,
                               duration_s=fault.duration_s, kind="degrade")
        elif isinstance(fault, Straggler):
            self._apply_scaled(fault, index, scale=1.0 / fault.slowdown,
                               duration_s=fault.duration_s, kind="straggler")
        else:
            raise FaultInjectionError(f"unknown fault {fault!r}")

    def _node_links(self, index: int) -> list[Link]:
        links = [self.cluster.nic_out[index], self.cluster.nic_in[index],
                 self.cluster.nvlink[index]]
        return links

    def _apply_crash(self, fault: NodeCrash, index: int) -> None:
        self._crashed.add(fault.node)
        self._pending_dead.append(fault.node)
        self.crash_times[fault.node] = self.sim.now
        self.cluster.fail_node(index)
        for link in self._node_links(index):
            self._squash(link, DEAD_LINK_BPS)
        for victim in self._victims.get(fault.node, ()):
            if victim.can_interrupt:
                # Ensure the interrupt cannot hard-raise as an unwatched
                # process crash out of sim.step().
                victim.add_callback(lambda _ev: None)
                victim.interrupt(fault)
        self.trace.fault("inject", self.sim.now, fault="node_crash",
                         node=fault.node)

    def _apply_scaled(self, fault: Fault, index: int, scale: float | None,
                      duration_s: float, kind: str) -> None:
        """Scale the node's NIC for a window, then restore.

        ``scale=None`` means "down hard" (:data:`DEAD_LINK_BPS`).
        """
        nic_links = [self.cluster.nic_out[index], self.cluster.nic_in[index]]
        original = fault.node
        restore: list[tuple[Link, float]] = []
        for link in nic_links:
            before = self._saved_caps.get(link, link.capacity_bps)
            restore.append((link, before))
            target = DEAD_LINK_BPS if scale is None else before * scale
            self._squash(link, target)
        self.trace.fault("inject", self.sim.now, fault=kind, node=original)

        def _recover() -> t.Generator:
            yield self.sim.timeout(duration_s)
            if original in self._crashed:
                return  # node died during the window; stay squashed
            for link, capacity in restore:
                self.network.set_link_capacity(link, capacity)
                self._saved_caps.pop(link, None)
            self.trace.fault("recover", self.sim.now, fault=kind,
                             node=original)

        self.sim.spawn(_recover(), name=f"fault-recover:{kind}@{original}")

    def _squash(self, link: Link, capacity_bps: float) -> None:
        self._saved_caps.setdefault(link, link.capacity_bps)
        self.network.set_link_capacity(link, capacity_bps)
