"""Flow-level (fluid) network model with max-min fair bandwidth sharing.

This module reproduces the mechanism at the heart of the paper: a single
TCP (or RDMA) stream cannot use the full capacity of a physical link, so
concurrent streams are required to saturate it.

Each :class:`Flow` transfers a fixed number of bytes across a set of
:class:`Link` objects.  Rates are assigned by progressive filling (max-min
fairness) subject to an optional **per-flow rate cap** — the per-stream
efficiency limit of the transport protocol.  Whenever a flow starts or
finishes, the allocation is recomputed and every in-flight flow's progress
is advanced.

Capacities and rates are in **bits per second**, sizes in **bits**,
consistent with the rest of :mod:`repro.sim` (time in seconds).
"""

from __future__ import annotations

import itertools
import math
import typing as t

from repro.errors import NetworkError
from repro.sim.events import Event
from repro.sim.kernel import Simulator

#: Relative tolerance used when comparing rates during water-filling.
_EPS = 1e-9

#: A flow with less than half a bit outstanding is complete.  Transfers are
#: at least one byte, so this absorbs floating-point residue from progress
#: accounting without ever completing a fresh flow early.
_COMPLETE_BITS = 0.5


class Link:
    """A unidirectional network resource with finite capacity.

    A "link" may model a NIC transmit queue, a NIC receive queue, a switch
    uplink or an NVLink lane — anything whose capacity is shared by flows.
    """

    __slots__ = ("name", "capacity_bps", "latency_s", "flows")

    def __init__(self, name: str, capacity_bps: float, latency_s: float = 0.0) -> None:
        if capacity_bps <= 0:
            raise NetworkError(f"link {name!r} capacity must be positive")
        if latency_s < 0:
            raise NetworkError(f"link {name!r} latency must be non-negative")
        self.name = name
        self.capacity_bps = float(capacity_bps)
        self.latency_s = float(latency_s)
        # Insertion-ordered (dict-as-set): flows hash by identity, so a
        # plain set would iterate in an address-dependent order and leak
        # run-to-run nondeterminism into rate assignment and completion
        # scheduling.
        self.flows: dict["Flow", None] = {}

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        gbps = self.capacity_bps / 1e9
        return f"<Link {self.name} {gbps:.1f}Gbps {len(self.flows)} flows>"


class Flow:
    """A single in-flight data transfer across one or more links."""

    __slots__ = ("flow_id", "links", "size_bits", "remaining_bits",
                 "rate_cap_bps", "rate_bps", "done", "started_at",
                 "_last_update", "tail_latency_s")

    _ids = itertools.count()

    def __init__(self, links: t.Sequence[Link], size_bits: float,
                 rate_cap_bps: float | None, done: Event, now: float,
                 tail_latency_s: float = 0.0) -> None:
        if size_bits < 0:
            raise NetworkError(f"flow size must be non-negative, got {size_bits}")
        if not links:
            raise NetworkError("flow must traverse at least one link")
        if rate_cap_bps is not None and rate_cap_bps <= 0:
            raise NetworkError("flow rate cap must be positive when given")
        self.flow_id = next(Flow._ids)
        self.links = tuple(links)
        self.size_bits = float(size_bits)
        self.remaining_bits = float(size_bits)
        self.rate_cap_bps = rate_cap_bps
        self.rate_bps = 0.0
        self.done = done
        self.started_at = now
        self._last_update = now
        self.tail_latency_s = tail_latency_s

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow#{self.flow_id} {self.remaining_bits / 8e6:.2f}MB left "
                f"@ {self.rate_bps / 1e9:.2f}Gbps>")


class FluidNetwork:
    """Tracks active flows and assigns max-min fair rates with caps.

    Parameters
    ----------
    sim:
        Owning simulator.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        # Insertion-ordered for the same reason as Link.flows: every
        # traversal (progress debits, water-filling, completion sweeps)
        # must visit flows in creation order so that identical runs
        # schedule identical event sequences.
        self.flows: dict[Flow, None] = {}
        #: Monotonic token used to invalidate stale wakeup events.
        self._wakeup_token = 0
        #: Total bits delivered, for utilisation accounting.
        self.bits_delivered = 0.0
        #: Optional :class:`repro.obs.Observability`; when attached,
        #: every completed flow is recorded as a per-link timeline span
        #: with its achieved rate and bottleneck utilisation (Fig. 3's
        #: per-stream link-utilisation measurement), plus flow metrics.
        self.obs = None

    # -- public API -------------------------------------------------------

    def start_flow(self, links: t.Sequence[Link], size_bytes: float,
                   rate_cap_bps: float | None = None,
                   extra_delay_s: float = 0.0) -> Event:
        """Begin transferring ``size_bytes`` across ``links``.

        Returns an event that triggers when the last byte has drained plus
        the sum of the link latencies plus ``extra_delay_s``.  The event's
        value is the flow's transfer duration in seconds.
        """
        done = self.sim.event(name="flow.done")
        latency = sum(link.latency_s for link in links) + extra_delay_s
        if size_bytes <= 0:
            # Pure-latency "transfer" (e.g. a control message of negligible
            # size); never enters the rate allocator.
            self.sim._schedule_at(self.sim.now + latency, done, latency)
            return done
        flow = Flow(links, size_bytes * 8.0, rate_cap_bps, done, self.sim.now,
                    tail_latency_s=latency)
        self._advance_progress()
        self.flows[flow] = None
        for link in flow.links:
            link.flows[flow] = None
        self._reallocate()
        return done

    def utilization_of(self, link: Link) -> float:
        """Instantaneous fraction of ``link`` capacity currently in use."""
        used = sum(f.rate_bps for f in link.flows)
        return used / link.capacity_bps

    def set_link_capacity(self, link: Link, capacity_bps: float) -> None:
        """Change a link's capacity mid-simulation.

        The paper's auto-tuner exists partly because "the underlying
        network infrastructure ... can vary during runtime" (§I) — this
        is the hook that varies it.  In-flight flows are re-allocated
        immediately at the new capacity.
        """
        if capacity_bps <= 0:
            raise NetworkError(
                f"link {link.name!r} capacity must be positive"
            )
        self._advance_progress()
        link.capacity_bps = float(capacity_bps)
        self._reallocate()

    # -- engine -----------------------------------------------------------

    def _advance_progress(self) -> None:
        """Debit every active flow for the time elapsed at its current rate."""
        now = self.sim.now
        for flow in self.flows:
            elapsed = now - flow._last_update
            if elapsed > 0 and flow.rate_bps > 0:
                sent = min(flow.rate_bps * elapsed, flow.remaining_bits)
                flow.remaining_bits -= sent
                self.bits_delivered += sent
            flow._last_update = now

    def _reallocate(self) -> None:
        """Re-run water-filling and schedule the next completion wakeup.

        Finished flows are retired *before* rates are assigned so that their
        bandwidth is immediately redistributed to the survivors.
        """
        self._complete_finished()
        self._assign_rates()
        self._schedule_wakeup()

    def _assign_rates(self) -> None:
        """Progressive-filling max-min fair allocation with per-flow caps."""
        unassigned = dict.fromkeys(self.flows)
        residual = {link: link.capacity_bps
                    for flow in unassigned for link in flow.links}
        load = {link: 0 for link in residual}
        for flow in unassigned:
            for link in flow.links:
                load[link] += 1

        while unassigned:
            # Fair share currently offered by the most constrained link.
            share = math.inf
            for link, cap in residual.items():
                if load[link] > 0:
                    share = min(share, cap / load[link])
            if share is math.inf:  # pragma: no cover - defensive
                raise NetworkError("active flows traverse no loaded link")

            # Flows whose cap is below the fair share take their cap and
            # release the surplus to everyone else.
            capped = [f for f in unassigned
                      if f.rate_cap_bps is not None
                      and f.rate_cap_bps <= share * (1 + _EPS)]
            if capped:
                for flow in capped:
                    self._fix_rate(flow, flow.rate_cap_bps, unassigned,
                                   residual, load)
                continue

            # Otherwise freeze every flow crossing a bottleneck link.
            bottlenecked = [
                f for f in unassigned
                if any(load[l] > 0
                       and residual[l] / load[l] <= share * (1 + _EPS)
                       for l in f.links)
            ]
            for flow in bottlenecked:
                self._fix_rate(flow, share, unassigned, residual, load)

    @staticmethod
    def _fix_rate(flow: Flow, rate: float, unassigned: dict[Flow, None],
                  residual: dict[Link, float], load: dict[Link, int]) -> None:
        flow.rate_bps = max(0.0, rate)
        unassigned.pop(flow, None)
        for link in flow.links:
            residual[link] = max(0.0, residual[link] - flow.rate_bps)
            load[link] -= 1

    def _complete_finished(self) -> None:
        """Fire completion events for flows that have fully drained."""
        finished = [f for f in self.flows if f.remaining_bits <= _COMPLETE_BITS]
        for flow in finished:
            self.flows.pop(flow, None)
            for link in flow.links:
                link.flows.pop(flow, None)
            duration = self.sim.now - flow.started_at
            tail = flow.tail_latency_s
            if self.obs is not None:
                self._record_flow(flow, duration)
            self.sim._schedule_at(self.sim.now + tail, flow.done, duration + tail)

    def _record_flow(self, flow: Flow, duration: float) -> None:
        """Record one completed flow's telemetry (obs attached only)."""
        bottleneck = min(flow.links, key=lambda link: link.capacity_bps)
        rate = flow.size_bits / duration if duration > 0 \
            else bottleneck.capacity_bps
        utilisation = min(1.0, rate / bottleneck.capacity_bps)
        obs = self.obs
        from repro.obs.timeline import NETWORK_RANK

        obs.timeline.span(
            "flow", "net", NETWORK_RANK, flow.started_at, self.sim.now,
            lane=bottleneck.name, bytes=flow.size_bits / 8.0,
            rate_bps=rate, utilisation=utilisation,
            capped=flow.rate_cap_bps is not None)
        registry = obs.registry
        registry.counter(
            "network_flows_total",
            "Completed flows per bottleneck link").inc(
                link=bottleneck.name)
        registry.counter(
            "network_bytes_total",
            "Bytes delivered per bottleneck link").inc(
                flow.size_bits / 8.0, link=bottleneck.name)
        registry.histogram(
            "network_flow_utilisation",
            "Per-flow achieved rate over bottleneck link capacity",
            buckets=(0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 0.9, 1.0)).observe(
                utilisation, link=bottleneck.name)

    def _schedule_wakeup(self) -> None:
        """Schedule a kernel event at the earliest next flow completion."""
        self._wakeup_token += 1
        token = self._wakeup_token
        next_finish = math.inf
        for flow in self.flows:
            if flow.rate_bps > 0:
                next_finish = min(next_finish,
                                  flow.remaining_bits / flow.rate_bps)
        if next_finish is math.inf:
            if self.flows:
                raise NetworkError(
                    "active flows exist but none can make progress "
                    "(all rates are zero)"
                )
            return
        wakeup = self.sim.event(name="network.wakeup")
        wakeup.add_callback(lambda _ev: self._on_wakeup(token))
        self.sim._schedule_at(self.sim.now + next_finish, wakeup, None)

    def _on_wakeup(self, token: int) -> None:
        if token != self._wakeup_token:
            return  # a newer allocation superseded this wakeup
        self._advance_progress()
        self._reallocate()
