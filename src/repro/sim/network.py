"""Flow-level (fluid) network model with max-min fair bandwidth sharing.

This module reproduces the mechanism at the heart of the paper: a single
TCP (or RDMA) stream cannot use the full capacity of a physical link, so
concurrent streams are required to saturate it.

Each :class:`Flow` transfers a fixed number of bytes across a set of
:class:`Link` objects.  Rates are assigned by progressive filling (max-min
fairness) subject to an optional **per-flow rate cap** — the per-stream
efficiency limit of the transport protocol.  Whenever a flow starts or
finishes, the allocation is recomputed and every in-flight flow's progress
is advanced.

Scaling to 128–256-rank clusters relies on two hot-path properties:

* **Incremental recomputation.**  A flow arrival/departure (or a capacity
  change) only re-solves the *bottleneck component* it touches: the links
  reachable from the changed links by hopping through shared flows.  In a
  non-blocking fabric each NIC pair and each NVLink fabric is its own
  component, so a 32-node cluster re-solves ~1/64th of the flow set per
  event.  Component-local progressive filling performs the *identical*
  floating-point operation sequence a from-scratch global solve would
  (components never interact), so rates — and therefore event times and
  replay digests — are bit-for-bit unchanged.
  :func:`solve_rates_reference` keeps the from-scratch solver alive as the
  oracle for the property-based equivalence tests.

* **Weighted flows.**  ``start_flow(..., weight=k)`` models ``k``
  identical transport streams as one flow: the flow counts ``k`` toward
  every traversed link's load, receives ``k`` fair shares, and its
  ``rate_cap_bps`` applies per stream.  The timed collectives use this to
  aggregate the per-local-rank parallel rings of large hierarchical
  all-reduces (identical rate trajectories) into one flow each.

Capacities and rates are in **bits per second**, sizes in **bits**,
consistent with the rest of :mod:`repro.sim` (time in seconds).
"""

from __future__ import annotations

import itertools
import math
import typing as t

from repro.errors import NetworkError
from repro.sim.events import Event
from repro.sim.kernel import Simulator

#: Relative tolerance used when comparing rates during water-filling.
_EPS = 1e-9

#: A flow with less than half a bit outstanding is complete.  Transfers are
#: at least one byte, so this absorbs floating-point residue from progress
#: accounting without ever completing a fresh flow early.
_COMPLETE_BITS = 0.5

#: A capped flow counts as fabric-throttled only below this fraction of
#: its per-stream rate cap (see ``FluidNetwork._record_flow``).
THROTTLE_DEPTH = 0.5


class Link:
    """A unidirectional network resource with finite capacity.

    A "link" may model a NIC transmit queue, a NIC receive queue, a switch
    uplink or an NVLink lane — anything whose capacity is shared by flows.
    """

    __slots__ = ("name", "capacity_bps", "latency_s", "flows", "load")

    def __init__(self, name: str, capacity_bps: float, latency_s: float = 0.0) -> None:
        if capacity_bps <= 0:
            raise NetworkError(f"link {name!r} capacity must be positive")
        if latency_s < 0:
            raise NetworkError(f"link {name!r} latency must be non-negative")
        self.name = name
        self.capacity_bps = float(capacity_bps)
        self.latency_s = float(latency_s)
        # Insertion-ordered (dict-as-set): flows hash by identity, so a
        # plain set would iterate in an address-dependent order and leak
        # run-to-run nondeterminism into rate assignment and completion
        # scheduling.
        self.flows: dict["Flow", None] = {}
        #: Cached total stream weight of the flows on this link — the
        #: water-filling load seed, maintained on flow add/remove so the
        #: solver never rebuilds it from scratch.  Weights are integers,
        #: so the cache is exact regardless of update order.
        self.load: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        gbps = self.capacity_bps / 1e9
        return f"<Link {self.name} {gbps:.1f}Gbps {len(self.flows)} flows>"


class Flow:
    """A single in-flight data transfer across one or more links.

    ``weight`` models a bundle of identical transport streams: the flow
    takes ``weight`` shares of every traversed link and its per-stream
    rate cap scales accordingly (``rate_bps`` is the bundle total).
    """

    __slots__ = ("flow_id", "links", "size_bits", "remaining_bits",
                 "rate_cap_bps", "rate_bps", "done", "started_at",
                 "_last_update", "tail_latency_s", "weight", "_finish_s",
                 "label")

    _ids = itertools.count()

    def __init__(self, links: t.Sequence[Link], size_bits: float,
                 rate_cap_bps: float | None, done: Event, now: float,
                 tail_latency_s: float = 0.0, weight: int = 1,
                 label: str | None = None) -> None:
        if size_bits < 0:
            raise NetworkError(f"flow size must be non-negative, got {size_bits}")
        if not links:
            raise NetworkError("flow must traverse at least one link")
        if rate_cap_bps is not None and rate_cap_bps <= 0:
            raise NetworkError("flow rate cap must be positive when given")
        if not isinstance(weight, int) or weight < 1:
            raise NetworkError(
                f"flow weight must be a positive integer, got {weight!r}"
            )
        self.flow_id = next(Flow._ids)
        self.links = tuple(links)
        self.size_bits = float(size_bits)
        self.remaining_bits = float(size_bits)
        self.rate_cap_bps = rate_cap_bps
        self.rate_bps = 0.0
        self.done = done
        self.started_at = now
        self._last_update = now
        self.tail_latency_s = tail_latency_s
        self.weight = weight
        #: Optional provenance tag (e.g. the collective algorithm that
        #: placed this flow); surfaces in flow telemetry, never in rates.
        self.label = label
        #: Cached seconds-to-completion at the current (rate, remaining);
        #: ``inf`` while the rate is zero.  Kept equal to the division
        #: ``remaining_bits / rate_bps`` the wakeup scan used to perform
        #: per flow per event, so the scan degrades to a compare.
        self._finish_s = math.inf

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow#{self.flow_id} {self.remaining_bits / 8e6:.2f}MB left "
                f"@ {self.rate_bps / 1e9:.2f}Gbps x{self.weight}>")


def solve_rates_reference(flows: t.Iterable[Flow]) -> dict[Flow, float]:
    """From-scratch global max-min fair allocation (the oracle solver).

    This is the pre-incremental algorithm, kept verbatim (modulo weight
    support) as the reference the property-based tests compare the
    incremental solver against.  It does not mutate any flow; it returns
    the rate every active flow *should* carry given the current link
    capacities and memberships.
    """
    unassigned: dict[Flow, None] = dict.fromkeys(flows)
    residual = {link: link.capacity_bps
                for flow in unassigned for link in flow.links}
    load = {link: 0 for link in residual}
    for flow in unassigned:
        for link in flow.links:
            load[link] += flow.weight
    rates: dict[Flow, float] = {}

    def fix(flow: Flow, per_stream_rate: float) -> None:
        rate = max(0.0, per_stream_rate)
        rates[flow] = rate if flow.weight == 1 else rate * flow.weight
        unassigned.pop(flow, None)
        for link in flow.links:
            residual[link] = max(0.0, residual[link] - rates[flow])
            load[link] -= flow.weight

    while unassigned:
        share = math.inf
        for link, cap in residual.items():
            if load[link] > 0:
                share = min(share, cap / load[link])
        if share is math.inf:  # pragma: no cover - defensive
            raise NetworkError("active flows traverse no loaded link")
        capped = [f for f in unassigned
                  if f.rate_cap_bps is not None
                  and f.rate_cap_bps <= share * (1 + _EPS)]
        if capped:
            for flow in capped:
                fix(flow, flow.rate_cap_bps)
            continue
        bottlenecked = [
            f for f in unassigned
            if any(load[l] > 0
                   and residual[l] / load[l] <= share * (1 + _EPS)
                   for l in f.links)
        ]
        for flow in bottlenecked:
            fix(flow, share)
    return rates


class FluidNetwork:
    """Tracks active flows and assigns max-min fair rates with caps.

    Parameters
    ----------
    sim:
        Owning simulator.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        # Insertion-ordered for the same reason as Link.flows: every
        # traversal (progress debits, water-filling, completion sweeps)
        # must visit flows in creation order so that identical runs
        # schedule identical event sequences.
        self.flows: dict[Flow, None] = {}
        #: Links whose flow membership or capacity changed since the last
        #: rate assignment; the solver re-solves only the components
        #: reachable from these (insertion-ordered for reproducibility).
        self._dirty_links: dict[Link, None] = {}
        #: Monotonic token used to invalidate stale wakeup events.
        self._wakeup_token = 0
        #: Clock value of the last progress advance; lets same-instant
        #: re-advances (batched arrivals) skip the flow scan.
        self._progress_time = -1.0
        #: Raised when some flow may have crossed the completion
        #: threshold; gates the completion sweep in
        #: :meth:`_complete_finished`.
        self._maybe_finished = False
        #: Recycled wakeup :class:`Event` slots.  A wakeup is scheduled on
        #: every reallocation and most are superseded before firing; each
        #: is popped from the kernel heap exactly once and never escapes
        #: this class, so the object can be reset and reused instead of
        #: allocated fresh (see :meth:`Event._reset_for_reuse`).
        self._wakeup_pool: list[Event] = []
        #: Total bits delivered, for utilisation accounting.
        self.bits_delivered = 0.0
        #: Solver work counters (observability / benchmark forensics):
        #: rate assignments performed, and flows visited doing them.  A
        #: from-scratch solver visits ``len(self.flows)`` per event; the
        #: incremental solver visits only the dirty components.
        self.reallocations = 0
        self.solver_flow_visits = 0
        #: Optional :class:`repro.obs.Observability`; when attached,
        #: every completed flow is recorded as a per-link timeline span
        #: with its achieved rate and bottleneck utilisation (Fig. 3's
        #: per-stream link-utilisation measurement), plus flow metrics.
        self.obs = None
        #: Optional :class:`repro.obs.detectors.DetectorSuite`; when
        #: attached, the fluid model feeds it exact per-link utilisation
        #: intervals (rates are piecewise-constant between advances) and
        #: per-flow throttling verdicts.  Purely observational.
        self.diag = None
        #: Provenance tag stamped on every flow created while set (the
        #: timed collectives set it to the running algorithm's name so
        #: flow telemetry can be sliced per algorithm).  Purely
        #: observational: it never influences rate assignment.
        self.flow_label: str | None = None

    # -- public API -------------------------------------------------------

    def start_flow(self, links: t.Sequence[Link], size_bytes: float,
                   rate_cap_bps: float | None = None,
                   extra_delay_s: float = 0.0,
                   weight: int = 1) -> Event:
        """Begin transferring ``size_bytes`` across ``links``.

        ``weight`` bundles that many identical transport streams into one
        flow (see :class:`Flow`); ``size_bytes`` is the bundle total and
        ``rate_cap_bps`` stays per stream.

        Returns an event that triggers when the last byte has drained plus
        the sum of the link latencies plus ``extra_delay_s``.  The event's
        value is the flow's transfer duration in seconds.
        """
        done = self.sim.event(name="flow.done")
        latency = sum(link.latency_s for link in links) + extra_delay_s
        if size_bytes <= 0:
            # Pure-latency "transfer" (e.g. a control message of negligible
            # size); never enters the rate allocator.
            self.sim._schedule_at(self.sim.now + latency, done, latency)
            return done
        flow = Flow(links, size_bytes * 8.0, rate_cap_bps, done, self.sim.now,
                    tail_latency_s=latency, weight=weight,
                    label=self.flow_label)
        self._advance_progress()
        if flow.remaining_bits <= _COMPLETE_BITS:
            self._maybe_finished = True
        self.flows[flow] = None
        dirty = self._dirty_links
        for link in flow.links:
            link.flows[flow] = None
            link.load += weight
            dirty[link] = None
        self._reallocate()
        return done

    def start_flows(self, requests: t.Sequence[tuple[
            t.Sequence[Link], float, float | None, int]]) -> list[Event]:
        """Begin several transfers arriving at the same instant.

        ``requests`` is a sequence of ``(links, size_bytes, rate_cap_bps,
        weight)`` tuples.  Semantically identical to calling
        :meth:`start_flow` once per request — max-min rates are a pure
        function of the resulting flow set, and no simulated time passes
        between same-instant arrivals — but the allocator runs **once**
        for the whole batch instead of once per flow.  Large collectives
        use this to insert their per-hop flow fan-out (2·nodes flows per
        ring unit at 128 ranks) without quadratic reallocation churn.

        Note the event-schedule difference: per-flow insertion leaves one
        superseded wakeup event per intermediate allocation in the kernel
        heap, batch insertion does not.  Callers that must preserve a
        historical replay digest keep using :meth:`start_flow` (see
        ``AGGREGATE_MIN_FLOWS`` in :mod:`repro.collectives.timed`).
        """
        events: list[Event] = []
        flows: list[Flow] = []
        now = self.sim.now
        for links, size_bytes, rate_cap_bps, weight in requests:
            done = self.sim.event(name="flow.done")
            events.append(done)
            latency = sum(link.latency_s for link in links)
            if size_bytes <= 0:
                self.sim._schedule_at(now + latency, done, latency)
                continue
            flows.append(Flow(links, size_bytes * 8.0, rate_cap_bps, done,
                              now, tail_latency_s=latency, weight=weight,
                              label=self.flow_label))
        if not flows:
            return events
        self._advance_progress()
        dirty = self._dirty_links
        for flow in flows:
            self.flows[flow] = None
            if flow.remaining_bits <= _COMPLETE_BITS:
                self._maybe_finished = True
            weight = flow.weight
            for link in flow.links:
                link.flows[flow] = None
                link.load += weight
                dirty[link] = None
        self._reallocate()
        return events

    def utilization_of(self, link: Link) -> float:
        """Instantaneous fraction of ``link`` capacity currently in use."""
        used = sum(f.rate_bps for f in link.flows)
        return used / link.capacity_bps

    def set_link_capacity(self, link: Link, capacity_bps: float) -> None:
        """Change a link's capacity mid-simulation.

        The paper's auto-tuner exists partly because "the underlying
        network infrastructure ... can vary during runtime" (§I) — this
        is the hook that varies it.  In-flight flows are re-allocated
        immediately at the new capacity.
        """
        if capacity_bps <= 0:
            raise NetworkError(
                f"link {link.name!r} capacity must be positive"
            )
        self._advance_progress()
        link.capacity_bps = float(capacity_bps)
        self._dirty_links[link] = None
        self._reallocate()

    # -- engine -----------------------------------------------------------

    def _advance_progress(self) -> None:
        """Debit every active flow for the time elapsed at its current rate.

        If the clock has not moved since the last advance, every flow's
        ``_last_update`` already equals ``now`` (flows created since were
        stamped with it), so the whole scan is a no-op and is skipped —
        this is the common case for batched same-instant arrivals.
        """
        now = self.sim.now
        if now == self._progress_time:
            return
        if self.diag is not None and self._progress_time >= 0.0 and self.flows:
            # Rates were constant over the elapsed interval, so this
            # samples link utilisation exactly (no polling error).
            self.diag.link_sampler.observe_interval(
                now - self._progress_time, self.flows)
        self._progress_time = now
        for flow in self.flows:
            elapsed = now - flow._last_update
            if elapsed > 0 and flow.rate_bps > 0:
                remaining = flow.remaining_bits
                sent = flow.rate_bps * elapsed
                if sent > remaining:
                    sent = remaining
                remaining -= sent
                flow.remaining_bits = remaining
                self.bits_delivered += sent
                # Same division the wakeup scan used to redo per event.
                flow._finish_s = remaining / flow.rate_bps
                if remaining <= _COMPLETE_BITS:
                    self._maybe_finished = True
            flow._last_update = now

    def _reallocate(self) -> None:
        """Re-run water-filling and schedule the next completion wakeup.

        Finished flows are retired *before* rates are assigned so that their
        bandwidth is immediately redistributed to the survivors.
        """
        self._complete_finished()
        self._assign_rates()
        self._schedule_wakeup()

    def _assign_rates(self) -> None:
        """Incremental progressive-filling max-min fair allocation.

        Only the components reachable from the dirty links are re-solved;
        every other flow keeps its cached rate, which equals what a
        from-scratch solve would assign (components are independent, and
        component-local filling performs the identical float operations).
        """
        if not self._dirty_links:
            return
        self.reallocations += 1
        dirty = self._dirty_links
        self._dirty_links = {}
        # Expand each dirty link to its bottleneck component — the links
        # reachable by hopping through shared flows — and solve every
        # component separately.  Components are independent by
        # construction, so per-component filling performs the identical
        # float operations a merged solve would, while each filling
        # round scans only that component's links and flows (a batched
        # ring fan-out dirties dozens of *disjoint* NIC-pair components
        # at once; merging them would make every round quadratic).
        links_seen: dict[Link, None] = {}
        for start in dirty:
            if start in links_seen:
                continue
            links_seen[start] = None
            flows_seen: dict[Flow, None] = {}
            frontier: list[Link] = [start]
            while frontier:
                link = frontier.pop()
                for flow in link.flows:
                    if flow in flows_seen:
                        continue
                    flows_seen[flow] = None
                    for other in flow.links:
                        if other not in links_seen:
                            links_seen[other] = None
                            frontier.append(other)
            if flows_seen:
                self.solver_flow_visits += len(flows_seen)
                self._solve_component(flows_seen)

    def _solve_component(self, flows_seen: dict[Flow, None]) -> None:
        """Water-fill one bottleneck component (in flow-creation order)."""
        if len(flows_seen) == 1:
            # Fast path: a flow alone on its links (the common case on a
            # non-blocking fabric, where every NIC pair is its own
            # component).  Performs the same divisions/comparisons the
            # general loop would — ``residual/load`` is
            # ``capacity_bps / weight`` here — so rates are bit-equal.
            (flow,) = flows_seen
            weight = flow.weight
            share = math.inf
            for link in flow.links:
                per_stream = link.capacity_bps / weight
                if per_stream < share:
                    share = per_stream
            cap = flow.rate_cap_bps
            if cap is not None and cap <= share * (1 + _EPS):
                share = cap
            rate = share if share > 0.0 else 0.0
            if weight != 1:
                rate *= weight
            flow.rate_bps = rate
            flow._finish_s = flow.remaining_bits / rate if rate > 0 \
                else math.inf
            return
        # Global creation order makes the per-link arithmetic match a
        # from-scratch global solve exactly.
        component = sorted(flows_seen, key=lambda f: f.flow_id)
        unassigned: dict[Flow, None] = dict.fromkeys(component)
        residual: dict[Link, float] = {}
        load: dict[Link, int] = {}
        for flow in unassigned:
            for link in flow.links:
                if link not in residual:
                    residual[link] = link.capacity_bps
                    load[link] = link.load
        fix_rate = self._fix_rate

        while unassigned:
            # Fair share currently offered by the most constrained link.
            share = math.inf
            for link, cap in residual.items():
                if load[link] > 0:
                    share = min(share, cap / load[link])
            if share is math.inf:  # pragma: no cover - defensive
                raise NetworkError("active flows traverse no loaded link")

            # Flows whose cap is below the fair share take their cap and
            # release the surplus to everyone else.
            capped = [f for f in unassigned
                      if f.rate_cap_bps is not None
                      and f.rate_cap_bps <= share * (1 + _EPS)]
            if capped:
                for flow in capped:
                    fix_rate(flow, flow.rate_cap_bps, unassigned,
                             residual, load)
                continue

            # Otherwise freeze every flow crossing a bottleneck link.
            bottlenecked = [
                f for f in unassigned
                if any(load[l] > 0
                       and residual[l] / load[l] <= share * (1 + _EPS)
                       for l in f.links)
            ]
            for flow in bottlenecked:
                fix_rate(flow, share, unassigned, residual, load)

    @staticmethod
    def _fix_rate(flow: Flow, per_stream_rate: float,
                  unassigned: dict[Flow, None],
                  residual: dict[Link, float], load: dict[Link, int]) -> None:
        rate = per_stream_rate if per_stream_rate > 0.0 else 0.0
        if flow.weight != 1:
            rate *= flow.weight
        flow.rate_bps = rate
        flow._finish_s = flow.remaining_bits / rate if rate > 0 else math.inf
        unassigned.pop(flow, None)
        for link in flow.links:
            left = residual[link] - rate
            residual[link] = left if left > 0.0 else 0.0
            load[link] -= flow.weight

    def _complete_finished(self) -> None:
        """Fire completion events for flows that have fully drained.

        A flow can only cross the completion threshold inside
        :meth:`_advance_progress` (or arrive already sub-threshold), and
        both paths raise ``_maybe_finished`` — so when the flag is down
        the full-flow-set scan is skipped entirely.
        """
        if not self._maybe_finished:
            return
        self._maybe_finished = False
        finished = [f for f in self.flows if f.remaining_bits <= _COMPLETE_BITS]
        if not finished:
            return
        dirty = self._dirty_links
        for flow in finished:
            self.flows.pop(flow, None)
            for link in flow.links:
                link.flows.pop(flow, None)
                link.load -= flow.weight
                dirty[link] = None
            duration = self.sim.now - flow.started_at
            tail = flow.tail_latency_s
            if self.obs is not None:
                self._record_flow(flow, duration)
            self.sim._schedule_at(self.sim.now + tail, flow.done, duration + tail)

    def _record_flow(self, flow: Flow, duration: float) -> None:
        """Record one completed flow's telemetry (obs attached only)."""
        bottleneck = min(flow.links, key=lambda link: link.capacity_bps)
        rate = flow.size_bits / duration if duration > 0 \
            else bottleneck.capacity_bps
        utilisation = min(1.0, rate / bottleneck.capacity_bps)
        # A flow is *throttled* when its per-stream achieved rate landed
        # below half its per-stream cap: the fabric, not the endpoint,
        # was the limiter.  The depth threshold separates pathology from
        # healthy multi-stream NIC saturation — N concurrent streams
        # fair-sharing their own NIC sit shallowly below cap by design
        # (that is the multi-stream point), while an oversubscribed
        # shared spine cuts each stream to a fraction of it.
        throttled = (flow.rate_cap_bps is not None and duration > 0
                     and rate / flow.weight
                     < flow.rate_cap_bps * THROTTLE_DEPTH)
        if self.diag is not None:
            self.diag.observe_flow(
                [link.name for link in flow.links], flow.label,
                flow.size_bits / 8.0, duration, throttled)
        obs = self.obs
        from repro.obs.timeline import NETWORK_RANK

        span_meta: dict[str, object] = dict(
            lane=bottleneck.name, bytes=flow.size_bits / 8.0,
            rate_bps=rate, utilisation=utilisation,
            capped=flow.rate_cap_bps is not None, throttled=throttled)
        metric_labels: dict[str, str] = {"link": bottleneck.name}
        if flow.label is not None:
            span_meta["algorithm"] = flow.label
            metric_labels["algorithm"] = flow.label
        obs.timeline.span(
            "flow", "net", NETWORK_RANK, flow.started_at, self.sim.now,
            **span_meta)
        registry = obs.registry
        registry.counter(
            "network_flows_total",
            "Completed flows per bottleneck link").inc(**metric_labels)
        registry.counter(
            "network_bytes_total",
            "Bytes delivered per bottleneck link").inc(
                flow.size_bits / 8.0, **metric_labels)
        registry.histogram(
            "network_flow_utilisation",
            "Per-flow achieved rate over bottleneck link capacity",
            buckets=(0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 0.9, 1.0)).observe(
                utilisation, link=bottleneck.name)

    def _schedule_wakeup(self) -> None:
        """Schedule a kernel event at the earliest next flow completion."""
        self._wakeup_token += 1
        token = self._wakeup_token
        next_finish = math.inf
        for flow in self.flows:
            finish = flow._finish_s
            if finish < next_finish:
                next_finish = finish
        if next_finish is math.inf:
            if self.flows:
                raise NetworkError(
                    "active flows exist but none can make progress "
                    "(all rates are zero)"
                )
            return
        if self._wakeup_pool:
            wakeup = self._wakeup_pool.pop()
            wakeup._reset_for_reuse()
        else:
            wakeup = self.sim.event(name="network.wakeup")
        wakeup.add_callback(lambda ev: self._on_wakeup(token, ev))
        self.sim._schedule_at(self.sim.now + next_finish, wakeup, None)

    def _on_wakeup(self, token: int, wakeup: Event) -> None:
        self._wakeup_pool.append(wakeup)
        if token != self._wakeup_token:
            return  # a newer allocation superseded this wakeup
        self._advance_progress()
        self._reallocate()
