"""Flow-level (fluid) network model with max-min fair bandwidth sharing.

This module reproduces the mechanism at the heart of the paper: a single
TCP (or RDMA) stream cannot use the full capacity of a physical link, so
concurrent streams are required to saturate it.

Each :class:`Flow` transfers a fixed number of bytes across a set of
:class:`Link` objects.  Rates are assigned by progressive filling (max-min
fairness) subject to an optional **per-flow rate cap** — the per-stream
efficiency limit of the transport protocol.  Whenever a flow starts or
finishes, the allocation is recomputed and every in-flight flow's progress
is advanced.

Scaling to 1024–4096-rank clusters relies on three hot-path properties:

* **Incremental recomputation.**  A flow arrival/departure (or a capacity
  change) only re-solves the *bottleneck component* it touches: the links
  reachable from the changed links by hopping through shared flows.  In a
  non-blocking fabric each NIC pair and each NVLink fabric is its own
  component, so a 32-node cluster re-solves ~1/64th of the flow set per
  event.  Component-local progressive filling performs the *identical*
  floating-point operation sequence a from-scratch global solve would
  (components never interact), so rates — and therefore event times and
  replay digests — are bit-for-bit unchanged.
  :func:`solve_rates_reference` keeps the from-scratch solver alive as the
  oracle for the property-based equivalence tests.

* **Vectorized hot state.**  Every flow's mutable solver state — bits
  remaining, assigned rate, seconds-to-completion — lives in one
  structure-of-arrays table (:class:`_FlowTable`) indexed by a stable
  *slot* id assigned in creation order.  Progress advancement, the
  next-completion scan and the completion sweep are single numpy
  expressions over contiguous ``float64`` arrays instead of per-object
  Python attribute churn, and components above
  ``VECTOR_SOLVE_MIN_FLOWS`` flows water-fill over array slices.  IEEE
  754 elementwise array arithmetic performs bit-identical operations to
  the scalar loops it replaces (min/minimum are order-independent, and
  every division/multiplication maps one-to-one), so replay digests are
  unchanged at every scale — the vector paths need no gating.

* **Flow bundling.**  A symmetric collective fan-out (one identical flow
  per node pair, pairwise-disjoint links) collapses into a single
  :class:`GroupFlow` solver entity: only the *representative* member's
  links enter the solver, the remaining members' links carry claim
  markers, and one completion event stands for the whole fan-out.  Any
  operation that would break the symmetry — a foreign flow or a capacity
  change touching a claimed link — first splits the bundle back into
  per-member flows, so rates stay exact under faults and congestion.
  Bundling changes the *event schedule* (fewer wakeups and completions),
  so the timed collectives gate it to scales far above every pinned
  golden digest (see ``RING_BUNDLE_MIN_NODES`` in
  :mod:`repro.collectives.timed`).

``start_flow(..., weight=k)`` models ``k`` identical transport streams as
one flow: the flow counts ``k`` toward every traversed link's load,
receives ``k`` fair shares, and its ``rate_cap_bps`` applies per stream.

Capacities and rates are in **bits per second**, sizes in **bits**,
consistent with the rest of :mod:`repro.sim` (time in seconds).
"""

from __future__ import annotations

import itertools
import math
import typing as t

import numpy as np

from repro.errors import NetworkError
from repro.sim.events import Event
from repro.sim.kernel import Simulator

#: Relative tolerance used when comparing rates during water-filling.
_EPS = 1e-9

#: A flow with less than half a bit outstanding is complete.  Transfers are
#: at least one byte, so this absorbs floating-point residue from progress
#: accounting without ever completing a fresh flow early.
_COMPLETE_BITS = 0.5

#: A capped flow counts as fabric-throttled only below this fraction of
#: its per-stream rate cap (see ``FluidNetwork._record_flow``).
THROTTLE_DEPTH = 0.5

#: Component size from which water-filling switches from the scalar
#: dict-based loop to the vectorized array solver.  A pure performance
#: switch: both paths perform bit-identical float operations (the
#: differential property tests force the vector path onto tiny
#: components and compare against :func:`solve_rates_reference`), so the
#: threshold needs no digest gating — it only balances numpy dispatch
#: overhead against Python loop cost.
VECTOR_SOLVE_MIN_FLOWS = 24


class Link:
    """A unidirectional network resource with finite capacity.

    A "link" may model a NIC transmit queue, a NIC receive queue, a switch
    uplink or an NVLink lane — anything whose capacity is shared by flows.
    """

    __slots__ = ("name", "capacity_bps", "latency_s", "flows", "load")

    def __init__(self, name: str, capacity_bps: float, latency_s: float = 0.0) -> None:
        if capacity_bps <= 0:
            raise NetworkError(f"link {name!r} capacity must be positive")
        if latency_s < 0:
            raise NetworkError(f"link {name!r} latency must be non-negative")
        self.name = name
        self.capacity_bps = float(capacity_bps)
        self.latency_s = float(latency_s)
        # Insertion-ordered (dict-as-set): flows hash by identity, so a
        # plain set would iterate in an address-dependent order and leak
        # run-to-run nondeterminism into rate assignment and completion
        # scheduling.
        self.flows: dict["Flow", None] = {}
        #: Cached total stream weight of the flows on this link — the
        #: water-filling load seed, maintained on flow add/remove so the
        #: solver never rebuilds it from scratch.  Weights are integers,
        #: so the cache is exact regardless of update order.
        self.load: int = 0

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        gbps = self.capacity_bps / 1e9
        return f"<Link {self.name} {gbps:.1f}Gbps {len(self.flows)} flows>"


class _FlowTable:
    """Structure-of-arrays hot state for every in-flight flow.

    Slots are assigned strictly in creation order and never reused until
    :meth:`compact` packs the live entries down (preserving their
    relative order), so **ascending slot order is creation order** — the
    iteration-order invariant every sweep relies on for replay
    determinism.  Dead slots are neutral elements for every vector
    operation: rate 0 (no progress), remaining 0, finish ``inf`` (never
    the next completion), multiplier 0 (no delivered-bits credit),
    ``live`` False (excluded from completion sweeps).
    """

    __slots__ = ("remaining", "rate", "finish", "mult", "live",
                 "size", "dead", "flow_by_slot")

    _INITIAL = 64
    #: Compact once at least this many dead slots have accumulated…
    _COMPACT_MIN_DEAD = 64
    #: …and the dead fraction exceeds half the table.

    def __init__(self) -> None:
        n = self._INITIAL
        self.remaining = np.zeros(n)
        self.rate = np.zeros(n)
        self.finish = np.full(n, math.inf)
        self.mult = np.zeros(n)
        self.live = np.zeros(n, dtype=bool)
        #: Slots in use (high-water mark), including dead ones.
        self.size = 0
        self.dead = 0
        self.flow_by_slot: list["Flow | None"] = []

    def add(self, flow: "Flow", remaining_bits: float, mult: float) -> int:
        slot = self.size
        if slot == len(self.rate):
            self._grow()
        self.size = slot + 1
        self.remaining[slot] = remaining_bits
        self.rate[slot] = 0.0
        self.finish[slot] = math.inf
        self.mult[slot] = mult
        self.live[slot] = True
        self.flow_by_slot.append(flow)
        return slot

    def free(self, slot: int) -> None:
        self.live[slot] = False
        self.rate[slot] = 0.0
        self.remaining[slot] = 0.0
        self.finish[slot] = math.inf
        self.mult[slot] = 0.0
        self.flow_by_slot[slot] = None
        self.dead += 1
        if self.dead >= self._COMPACT_MIN_DEAD and self.dead * 2 >= self.size:
            self.compact()

    def _grow(self) -> None:
        n = len(self.rate)
        grown = n * 2
        for name in ("remaining", "rate", "finish", "mult", "live"):
            old = getattr(self, name)
            fresh = np.empty(grown, dtype=old.dtype)
            fresh[:n] = old
            if name == "finish":
                fresh[n:] = math.inf
            else:
                fresh[n:] = 0
            setattr(self, name, fresh)

    def compact(self) -> None:
        """Pack live entries to the front, preserving creation order."""
        keep = [f for f in self.flow_by_slot if f is not None]
        index = np.array([f._slot for f in keep], dtype=np.intp)
        n = len(keep)
        old_size = self.size
        for name in ("remaining", "rate", "finish", "mult", "live"):
            arr = getattr(self, name)
            arr[:n] = arr[index]
            if name == "finish":
                arr[n:old_size] = math.inf
            else:
                arr[n:old_size] = 0
        for slot, flow in enumerate(keep):
            flow._slot = slot
        self.flow_by_slot = t.cast("list[Flow | None]", keep)
        self.size = n
        self.dead = 0


class Flow:
    """A single in-flight data transfer across one or more links.

    ``weight`` models a bundle of identical transport streams: the flow
    takes ``weight`` shares of every traversed link and its per-stream
    rate cap scales accordingly (``rate_bps`` is the bundle total).

    Mutable solver state (``remaining_bits``, ``rate_bps``, the cached
    seconds-to-completion) lives in the owning :class:`_FlowTable`; the
    attribute-style accessors below delegate to the flow's table slot
    and return plain Python floats, so scalar code paths (and external
    consumers such as the diagnosis samplers) are unaffected by the
    array-backed storage.
    """

    __slots__ = ("flow_id", "links", "size_bits", "rate_cap_bps", "done",
                 "started_at", "tail_latency_s", "weight", "label", "job",
                 "_table", "_slot")

    _ids = itertools.count()

    def __init__(self, table: _FlowTable, links: t.Sequence[Link],
                 size_bits: float, rate_cap_bps: float | None, done: Event,
                 now: float, tail_latency_s: float = 0.0, weight: int = 1,
                 label: str | None = None, job: str | None = None) -> None:
        if size_bits < 0:
            raise NetworkError(f"flow size must be non-negative, got {size_bits}")
        if not links:
            raise NetworkError("flow must traverse at least one link")
        if rate_cap_bps is not None and rate_cap_bps <= 0:
            raise NetworkError("flow rate cap must be positive when given")
        if not isinstance(weight, int) or weight < 1:
            raise NetworkError(
                f"flow weight must be a positive integer, got {weight!r}"
            )
        self.flow_id = next(Flow._ids)
        self.links = tuple(links)
        self.size_bits = float(size_bits)
        self.rate_cap_bps = rate_cap_bps
        self.done = done
        self.started_at = now
        self.tail_latency_s = tail_latency_s
        self.weight = weight
        #: Optional provenance tag (e.g. the collective algorithm that
        #: placed this flow); surfaces in flow telemetry, never in rates.
        self.label = label
        #: Owning tenant (``job_id``) on a shared multi-job fabric.
        #: Unlike ``label`` this *does* shape rate assignment: when a
        #: bottleneck component mixes flows of two or more jobs, the
        #: solver switches to two-level fairness (between jobs first,
        #: weighted by :attr:`FluidNetwork.job_priorities`, then among
        #: each job's flows).  ``None`` everywhere keeps the classic
        #: single-tenant solver paths bit-identical.
        self.job = job
        self._table = table
        self._slot = table.add(self, self.size_bits, 1.0)

    # -- table-backed hot state -------------------------------------------

    @property
    def remaining_bits(self) -> float:
        return self._table.remaining.item(self._slot)

    @remaining_bits.setter
    def remaining_bits(self, value: float) -> None:
        self._table.remaining[self._slot] = value

    @property
    def rate_bps(self) -> float:
        return self._table.rate.item(self._slot)

    @rate_bps.setter
    def rate_bps(self, value: float) -> None:
        self._table.rate[self._slot] = value

    @property
    def _finish_s(self) -> float:
        """Cached seconds-to-completion (``inf`` while the rate is zero)."""
        return self._table.finish.item(self._slot)

    @_finish_s.setter
    def _finish_s(self, value: float) -> None:
        self._table.finish[self._slot] = value

    def member_link_sets(self) -> tuple[tuple[Link, ...], ...]:
        """Link sets of the transfers this entity stands for.

        A plain flow stands for itself; a :class:`GroupFlow` yields one
        link set per bundled member.  Telemetry (completion records, the
        diagnosis link sampler) iterates these so per-link accounting is
        identical whether or not a fan-out was bundled.
        """
        return (self.links,)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<Flow#{self.flow_id} {self.remaining_bits / 8e6:.2f}MB left "
                f"@ {self.rate_bps / 1e9:.2f}Gbps x{self.weight}>")


class GroupFlow(Flow):
    """A bundle of identical member transfers on pairwise-disjoint links.

    Only the representative member (``member_links[0]``) participates in
    rate solving; by construction every other member would see exactly
    the same capacities and competitors (competing entities on a bundled
    link are themselves aligned group members), so the representative's
    rate trajectory is exact for all members.  ``size_bits`` and
    ``rate_bps`` are **per member**; the table's delivered-bits
    multiplier accounts for the full fan-out.

    ``member_links`` passed as a tuple is trusted to already be a tuple
    of link tuples (the canonical form) so that repeated launches off a
    cached :class:`FlowBundle` skip the per-member normalisation.
    """

    __slots__ = ("member_links", "_channel")

    def __init__(self, table: _FlowTable,
                 member_links: t.Sequence[t.Sequence[Link]],
                 size_bits: float, rate_cap_bps: float | None, done: Event,
                 now: float, tail_latency_s: float = 0.0, weight: int = 1,
                 label: str | None = None, job: str | None = None) -> None:
        members = member_links if isinstance(member_links, tuple) \
            else tuple(tuple(links) for links in member_links)
        if len(members) < 2:
            raise NetworkError("a flow group needs at least two members")
        self.member_links = members
        #: The :class:`_BundleChannel` whose claim this group rides
        #: (set by the network right after construction).
        self._channel: "_BundleChannel | None" = None
        super().__init__(table, members[0], size_bits, rate_cap_bps, done,
                         now, tail_latency_s=tail_latency_s, weight=weight,
                         label=label, job=job)
        table.mult[self._slot] = float(len(members))

    def member_link_sets(self) -> tuple[tuple[Link, ...], ...]:
        return self.member_links

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return (f"<GroupFlow#{self.flow_id} x{len(self.member_links)} members "
                f"{self.remaining_bits / 8e6:.2f}MB left each "
                f"@ {self.rate_bps / 1e9:.2f}Gbps>")


class FlowBundle:
    """Reusable handle for the member structure of one bundled fan-out.

    Created once by :meth:`FluidNetwork.bundle` (which performs the
    *structural* half of bundling validation — member shape and pairwise
    link disjointness, neither of which can change at runtime) and then
    passed to :meth:`FluidNetwork.start_flow_group` on every launch.
    The *dynamic* half — identical capacity profiles and unoccupied
    links — is checked when the handle first registers a claim channel,
    and the claim then persists across launches: a steady-state ring
    unit relaunches in O(representative links) instead of revalidating
    all members each step.
    """

    __slots__ = ("members", "_channel")

    def __init__(self, members: tuple[tuple[Link, ...], ...]) -> None:
        self.members = members
        self._channel: _BundleChannel | None = None


class _BundleChannel:
    """Live claim on one bundle's link set, shared by aligned handles.

    One channel owns each claimed link exclusively (channels are
    link-disjoint by registration), so a foreign touch on any claimed
    link identifies exactly the set of groups whose symmetry it breaks:
    the channel's.  ``claimed`` drops when the channel is deregistered;
    handles pointing at a dead channel re-register on their next launch.
    """

    __slots__ = ("members", "groups", "claimed")

    def __init__(self, members: tuple[tuple[Link, ...], ...]) -> None:
        self.members = members
        #: Live groups riding this claim, in creation order.
        self.groups: dict[GroupFlow, None] = {}
        self.claimed = True


def solve_rates_reference(flows: t.Iterable[Flow]) -> dict[Flow, float]:
    """From-scratch global max-min fair allocation (the oracle solver).

    This is the pre-incremental algorithm, kept verbatim (modulo weight
    support) as the reference the property-based tests compare the
    incremental solver against.  It does not mutate any flow; it returns
    the rate every active flow *should* carry given the current link
    capacities and memberships.
    """
    unassigned: dict[Flow, None] = dict.fromkeys(flows)
    residual = {link: link.capacity_bps
                for flow in unassigned for link in flow.links}
    load = {link: 0 for link in residual}
    for flow in unassigned:
        for link in flow.links:
            load[link] += flow.weight
    rates: dict[Flow, float] = {}

    def fix(flow: Flow, per_stream_rate: float) -> None:
        rate = max(0.0, per_stream_rate)
        rates[flow] = rate if flow.weight == 1 else rate * flow.weight
        unassigned.pop(flow, None)
        for link in flow.links:
            residual[link] = max(0.0, residual[link] - rates[flow])
            load[link] -= flow.weight

    while unassigned:
        share = math.inf
        for link, cap in residual.items():
            if load[link] > 0:
                share = min(share, cap / load[link])
        if share is math.inf:  # pragma: no cover - defensive
            raise NetworkError("active flows traverse no loaded link")
        capped = [f for f in unassigned
                  if f.rate_cap_bps is not None
                  and f.rate_cap_bps <= share * (1 + _EPS)]
        if capped:
            for flow in capped:
                fix(flow, flow.rate_cap_bps)
            continue
        bottlenecked = [
            f for f in unassigned
            if any(load[l] > 0
                   and residual[l] / load[l] <= share * (1 + _EPS)
                   for l in f.links)
        ]
        for flow in bottlenecked:
            fix(flow, share)
    return rates


class FluidNetwork:
    """Tracks active flows and assigns max-min fair rates with caps.

    Parameters
    ----------
    sim:
        Owning simulator.
    """

    def __init__(self, sim: Simulator) -> None:
        self.sim = sim
        # Insertion-ordered for the same reason as Link.flows: every
        # traversal (progress debits, water-filling, completion sweeps)
        # must visit flows in creation order so that identical runs
        # schedule identical event sequences.
        self.flows: dict[Flow, None] = {}
        #: Array-backed hot state of every flow in ``self.flows``.
        self._table = _FlowTable()
        #: Links whose flow membership or capacity changed since the last
        #: rate assignment; the solver re-solves only the components
        #: reachable from these (insertion-ordered for reproducibility).
        self._dirty_links: dict[Link, None] = {}
        #: ``link -> channel`` claim markers for every link a bundled
        #: fan-out stands on (representative links included).  Each link
        #: is owned by at most one :class:`_BundleChannel`; any foreign
        #: touch on a claimed link splits the channel's groups back into
        #: per-member flows and releases the claim.
        self._claims: dict[Link, _BundleChannel] = {}
        #: Monotonic token used to invalidate stale wakeup events.
        self._wakeup_token = 0
        #: Clock value of the last progress advance.  All flows advance
        #: in lockstep — every public operation advances before mutating
        #: the flow set — so one scalar timestamp replaces the per-flow
        #: ``_last_update`` field the scalar engine carried.
        self._progress_time = -1.0
        #: Raised when some flow may have crossed the completion
        #: threshold; gates the completion sweep in
        #: :meth:`_complete_finished`.
        self._maybe_finished = False
        #: Total bits delivered, for utilisation accounting.
        self.bits_delivered = 0.0
        #: Solver work counters (observability / benchmark forensics):
        #: rate assignments performed, and flows visited doing them.  A
        #: from-scratch solver visits ``len(self.flows)`` per event; the
        #: incremental solver visits only the dirty components.
        self.reallocations = 0
        self.solver_flow_visits = 0
        #: Optional :class:`repro.obs.Observability`; when attached,
        #: every completed flow is recorded as a per-link timeline span
        #: with its achieved rate and bottleneck utilisation (Fig. 3's
        #: per-stream link-utilisation measurement), plus flow metrics.
        self.obs = None
        #: Optional :class:`repro.obs.detectors.DetectorSuite`; when
        #: attached, the fluid model feeds it exact per-link utilisation
        #: intervals (rates are piecewise-constant between advances) and
        #: per-flow throttling verdicts.  Purely observational.
        self.diag = None
        #: Provenance tag stamped on every flow created while set (the
        #: timed collectives set it to the running algorithm's name so
        #: flow telemetry can be sliced per algorithm).  Purely
        #: observational: it never influences rate assignment.
        self.flow_label: str | None = None
        #: Tenant tag stamped on every flow created while set (the
        #: cluster runtime sets it around each job's launches).  Flows
        #: of different jobs meeting on a shared link are rate-split by
        #: two-level fairness — see :meth:`_solve_component_jobs`.
        self.flow_job: str | None = None
        #: ``job_id -> priority weight`` for inter-job fairness at
        #: shared links.  Jobs absent from the map (and untagged flows,
        #: which pool under one pseudo-job) weigh 1.0.
        self.job_priorities: dict[str, float] = {}

    # -- public API -------------------------------------------------------

    def start_flow(self, links: t.Sequence[Link], size_bytes: float,
                   rate_cap_bps: float | None = None,
                   extra_delay_s: float = 0.0,
                   weight: int = 1) -> Event:
        """Begin transferring ``size_bytes`` across ``links``.

        ``weight`` bundles that many identical transport streams into one
        flow (see :class:`Flow`); ``size_bytes`` is the bundle total and
        ``rate_cap_bps`` stays per stream.

        Returns an event that triggers when the last byte has drained plus
        the sum of the link latencies plus ``extra_delay_s``.  The event's
        value is the flow's transfer duration in seconds.
        """
        done = self.sim.event(name="flow.done")
        latency = sum(link.latency_s for link in links) + extra_delay_s
        if size_bytes <= 0:
            # Pure-latency "transfer" (e.g. a control message of negligible
            # size); never enters the rate allocator.
            self.sim._schedule_at(self.sim.now + latency, done, latency)
            return done
        if self._claims:
            self._split_claimed(links)
        self._advance_progress()
        flow = Flow(self._table, links, size_bytes * 8.0, rate_cap_bps, done,
                    self.sim.now, tail_latency_s=latency, weight=weight,
                    label=self.flow_label, job=self.flow_job)
        if flow.size_bits <= _COMPLETE_BITS:
            self._maybe_finished = True
        self.flows[flow] = None
        dirty = self._dirty_links
        for link in flow.links:
            link.flows[flow] = None
            link.load += weight
            dirty[link] = None
        self._reallocate()
        return done

    def start_flows(self, requests: t.Sequence[tuple[
            t.Sequence[Link], float, float | None, int]]) -> list[Event]:
        """Begin several transfers arriving at the same instant.

        ``requests`` is a sequence of ``(links, size_bytes, rate_cap_bps,
        weight)`` tuples.  Semantically identical to calling
        :meth:`start_flow` once per request — max-min rates are a pure
        function of the resulting flow set, and no simulated time passes
        between same-instant arrivals — but the allocator runs **once**
        for the whole batch instead of once per flow.  Large collectives
        use this to insert their per-hop flow fan-out (2·nodes flows per
        ring unit at 128 ranks) without quadratic reallocation churn.

        Note the event-schedule difference: per-flow insertion leaves one
        superseded wakeup event per intermediate allocation in the kernel
        heap, batch insertion does not.  Callers that must preserve a
        historical replay digest keep using :meth:`start_flow` (see
        ``AGGREGATE_MIN_FLOWS`` in :mod:`repro.collectives.timed`).
        """
        if self._claims:
            self._split_claimed(
                link for links, _size, _cap, _weight in requests
                for link in links)
        self._advance_progress()
        events: list[Event] = []
        flows: list[Flow] = []
        now = self.sim.now
        for links, size_bytes, rate_cap_bps, weight in requests:
            done = self.sim.event(name="flow.done")
            events.append(done)
            latency = sum(link.latency_s for link in links)
            if size_bytes <= 0:
                self.sim._schedule_at(now + latency, done, latency)
                continue
            flows.append(Flow(self._table, links, size_bytes * 8.0,
                              rate_cap_bps, done, now,
                              tail_latency_s=latency, weight=weight,
                              label=self.flow_label, job=self.flow_job))
        if not flows:
            return events
        dirty = self._dirty_links
        for flow in flows:
            self.flows[flow] = None
            if flow.size_bits <= _COMPLETE_BITS:
                self._maybe_finished = True
            weight = flow.weight
            for link in flow.links:
                link.flows[flow] = None
                link.load += weight
                dirty[link] = None
        self._reallocate()
        return events

    def bundle(self, member_links: t.Sequence[t.Sequence[Link]]
               ) -> FlowBundle | None:
        """Precompute a reusable :class:`FlowBundle` handle for a fan-out.

        Performs the structural half of bundling validation — at least
        two members, equal member lengths, pairwise-disjoint links —
        which depends only on the (immutable) topology, so callers that
        relaunch the same fan-out every step (the timed collectives'
        wire plans) pay it once.  Returns ``None`` when the structure
        can never bundle (e.g. every member shares an oversubscribed
        core link); such fan-outs always take the per-member path.
        """
        members = member_links if isinstance(member_links, tuple) \
            else tuple(tuple(links) for links in member_links)
        if len(members) < 2:
            return None
        rep_len = len(members[0])
        seen: set[Link] = set()
        for links in members:
            if len(links) != rep_len:
                return None
            for link in links:
                if link in seen:
                    return None
                seen.add(link)
        return FlowBundle(members)

    def start_flow_group(self,
                         member_links: "FlowBundle | t.Sequence[t.Sequence[Link]]",
                         size_bytes: float,
                         rate_cap_bps: float | None = None,
                         weight: int = 1) -> Event:
        """Begin one identical ``size_bytes`` transfer per member link set.

        The symmetric fan-out of a large collective — one flow per node
        pair, all the same size/cap/weight on pairwise-disjoint,
        capacity-identical paths — enters the solver as a **single**
        :class:`GroupFlow` entity when bundling is exact (structure via
        :meth:`bundle`, capacity profile and link occupancy via the
        claim channel); otherwise this falls back to per-member flows
        through the batched path, so the returned event's timing is
        identical either way.  ``member_links`` may be a
        :class:`FlowBundle` from :meth:`bundle`, in which case the
        steady-state relaunch costs O(representative links) only.
        Returns one event that triggers when every member has drained
        plus the link latencies; its value is the member transfer
        duration plus tail latency.
        """
        if isinstance(member_links, FlowBundle):
            handle: FlowBundle | None = member_links
            members = member_links.members
        else:
            members = tuple(tuple(links) for links in member_links)
            if not members:
                raise NetworkError("a flow group needs at least one member")
            handle = self.bundle(members)
        if len(members) == 1:
            return self.start_flow(members[0], size_bytes,
                                   rate_cap_bps=rate_cap_bps, weight=weight)
        rep = members[0]
        latency = sum(link.latency_s for link in rep)
        if size_bytes <= 0:
            done = self.sim.event(name="flowgroup.done")
            self.sim._schedule_at(self.sim.now + latency, done, latency)
            return done
        channel = handle._channel if handle is not None else None
        if channel is None or not channel.claimed:
            channel = self._register_bundle(handle) \
                if handle is not None else None
            if handle is not None:
                handle._channel = channel
        if channel is None:
            # Fall back to per-member flows (splitting any bundles the
            # members' links belong to happens inside start_flows); a
            # countdown joins the member completions into the single
            # event this API promises.
            done = self.sim.event(name="flowgroup.done")
            events = self.start_flows(
                [(links, size_bytes, rate_cap_bps, weight)
                 for links in members])
            pending = [len(events)]

            def _member_done(ev: Event) -> None:
                pending[0] -= 1
                if pending[0] == 0:
                    done.succeed(ev.value)

            for event in events:
                event.add_callback(_member_done)
            return done
        self._advance_progress()
        done = self.sim.event(name="flowgroup.done")
        group = GroupFlow(self._table, members, size_bytes * 8.0,
                          rate_cap_bps, done, self.sim.now,
                          tail_latency_s=latency, weight=weight,
                          label=self.flow_label, job=self.flow_job)
        group._channel = channel
        channel.groups[group] = None
        if group.size_bits <= _COMPLETE_BITS:
            self._maybe_finished = True
        self.flows[group] = None
        dirty = self._dirty_links
        for link in rep:
            link.flows[group] = None
            link.load += weight
            dirty[link] = None
        self._reallocate()
        return done

    def cancel_flow(self, done: Event) -> bool:
        """Abort the in-flight transfer whose completion event is ``done``.

        The fault-injection hook: an interrupted worker's transfers stop
        consuming bandwidth immediately, and their completion events are
        simply never fired (matching a hung NCCL collective, which is
        detected by timeout, not by an error).  Bandwidth is
        re-allocated to the survivors at once.  Returns ``False`` when no
        in-flight flow owns ``done`` (already completed, zero-byte, or
        never started) — cancelling twice is a harmless no-op.

        Superseded wakeup events left in the kernel heap by the
        cancelled allocation are *not* recycled here: they still hold
        pending heap entries, and :meth:`Simulator.release_event`
        refuses them (see the event-pool regression tests), so they die
        naturally when popped instead of resurrecting into the pool.
        """
        for flow in self.flows:
            if flow.done is done:
                break
        else:
            return False
        self._advance_progress()
        self._retire_flow(flow)
        self._reallocate()
        return True

    def utilization_of(self, link: Link) -> float:
        """Instantaneous fraction of ``link`` capacity currently in use."""
        used = sum(f.rate_bps for f in link.flows)
        channel = self._claims.get(link)
        if channel is not None:
            # Non-representative bundled members do not sit in
            # ``link.flows``; credit their per-member rates explicitly.
            for group in channel.groups:
                if link not in group.links:
                    used += group.rate_bps
        return used / link.capacity_bps

    def set_link_capacity(self, link: Link, capacity_bps: float) -> None:
        """Change a link's capacity mid-simulation.

        The paper's auto-tuner exists partly because "the underlying
        network infrastructure ... can vary during runtime" (§I) — this
        is the hook that varies it.  In-flight flows are re-allocated
        immediately at the new capacity.
        """
        if capacity_bps <= 0:
            raise NetworkError(
                f"link {link.name!r} capacity must be positive"
            )
        if self._claims:
            # A capacity change on any bundled member's link breaks the
            # symmetry bundling relies on; split first so the degraded
            # member is solved individually.
            self._split_claimed((link,))
        self._advance_progress()
        link.capacity_bps = float(capacity_bps)
        self._dirty_links[link] = None
        self._reallocate()

    # -- bundling ----------------------------------------------------------

    def _register_bundle(self, handle: FlowBundle) -> _BundleChannel | None:
        """Claim a handle's links, validating the dynamic exactness half.

        Exactness conditions beyond the structural ones :meth:`bundle`
        already pinned: every member traverses the same capacity/latency
        profile as the representative, and every link is otherwise
        unoccupied — except by an **aligned** channel (identical member
        partition), whose representatives share the same links and
        therefore keep the symmetry exact; such a channel is adopted so
        concurrent aligned launches (multi-stream pipelining) share one
        claim.  Stale claims of idle misaligned channels are evicted.
        Runs once per handle lifetime in the steady state; returns
        ``None`` when bundling is not exact right now.
        """
        members = handle.members
        profile = tuple((link.capacity_bps, link.latency_s)
                        for link in members[0])
        for links in members:
            if tuple((link.capacity_bps, link.latency_s)
                     for link in links) != profile:
                return None
        claims = self._claims
        channels: dict[int, _BundleChannel] = {}
        for links in members:
            for link in links:
                existing = claims.get(link)
                if existing is not None:
                    channels[id(existing)] = existing
                elif link.flows:
                    return None
        adopted: _BundleChannel | None = None
        for existing in channels.values():
            if existing.members == members:
                adopted = existing
            elif existing.groups:
                return None
            else:
                self._deregister_channel(existing)
        channel = adopted if adopted is not None else _BundleChannel(members)
        for links in members:
            for link in links:
                claims[link] = channel
        return channel

    def _deregister_channel(self, channel: _BundleChannel) -> None:
        """Release a channel's link claims; its handles re-register later."""
        claims = self._claims
        for links in channel.members:
            for link in links:
                if claims.get(link) is channel:
                    del claims[link]
        channel.claimed = False

    def _split_claimed(self, links: t.Iterable[Link]) -> None:
        """Split every bundle whose symmetry ``links`` would break.

        Channels are link-disjoint and a channel's split flows land only
        on its own links, so the split set is exactly the touched
        channels' groups — no transitive closure across channels is
        possible.  Splits apply in flow-creation order (deterministic
        regardless of discovery order).
        """
        claims = self._claims
        if not claims:
            return
        channels: dict[int, _BundleChannel] = {}
        for link in links:
            channel = claims.get(link)
            if channel is not None:
                channels[id(channel)] = channel
        if not channels:
            return
        groups = [group for channel in channels.values()
                  for group in channel.groups]
        for channel in channels.values():
            self._deregister_channel(channel)
        for group in sorted(groups, key=lambda g: g.flow_id):
            self._split_group(group)

    def _split_group(self, group: GroupFlow) -> None:
        """Replace one bundle with per-member flows, mid-transfer.

        The members inherit the bundle's progress (identical by
        symmetry), its start time and its tail latency; a countdown
        joins their completions into the group's original public event,
        so callers holding it observe nothing.  The caller is expected
        to continue its own operation and re-allocate once.
        """
        self._advance_progress()
        remaining = group.remaining_bits
        self._retire_flow(group)
        pending = [len(group.member_links)]
        public = group.done

        def _member_done(ev: Event) -> None:
            pending[0] -= 1
            if pending[0] == 0:
                public.succeed(ev.value)

        dirty = self._dirty_links
        for links in group.member_links:
            inner = self.sim.event(name="flow.done")
            inner.add_callback(_member_done)
            flow = Flow(self._table, links, group.size_bits,
                        group.rate_cap_bps, inner, group.started_at,
                        tail_latency_s=group.tail_latency_s,
                        weight=group.weight, label=group.label,
                        job=group.job)
            flow.remaining_bits = remaining
            if remaining <= _COMPLETE_BITS:
                self._maybe_finished = True
            self.flows[flow] = None
            for link in links:
                link.flows[flow] = None
                link.load += group.weight
                dirty[link] = None

    # -- engine -----------------------------------------------------------

    def _advance_progress(self) -> None:
        """Debit every active flow for the time elapsed at its current rate.

        One vector expression over the flow table: every public
        operation advances before mutating the flow set, so all flows
        share the same elapsed interval.  If the clock has not moved
        since the last advance the whole update is skipped — the common
        case for batched same-instant arrivals.
        """
        now = self.sim.now
        if now == self._progress_time:
            return
        elapsed = now - self._progress_time
        if self.diag is not None and self._progress_time >= 0.0 and self.flows:
            # Rates were constant over the elapsed interval, so this
            # samples link utilisation exactly (no polling error).
            self.diag.link_sampler.observe_interval(elapsed, self.flows)
        self._progress_time = now
        table = self._table
        n = table.size
        if n == 0:
            return
        remaining = table.remaining[:n]
        rate = table.rate[:n]
        sent = rate * elapsed
        np.minimum(sent, remaining, out=sent)
        remaining -= sent
        self.bits_delivered += float(sent @ table.mult[:n])
        # Same division the wakeup scan used to redo per flow per event;
        # zero-rate (and dead) slots keep their current ``inf``.
        np.divide(remaining, rate, out=table.finish[:n], where=rate > 0.0)
        if bool(((remaining <= _COMPLETE_BITS) & table.live[:n]).any()):
            self._maybe_finished = True

    def _reallocate(self) -> None:
        """Re-run water-filling and schedule the next completion wakeup.

        Finished flows are retired *before* rates are assigned so that their
        bandwidth is immediately redistributed to the survivors.
        """
        self._complete_finished()
        self._assign_rates()
        self._schedule_wakeup()

    def _assign_rates(self) -> None:
        """Incremental progressive-filling max-min fair allocation.

        Only the components reachable from the dirty links are re-solved;
        every other flow keeps its cached rate, which equals what a
        from-scratch solve would assign (components are independent, and
        component-local filling performs the identical float operations).
        """
        if not self._dirty_links:
            return
        self.reallocations += 1
        dirty = self._dirty_links
        self._dirty_links = {}
        # Expand each dirty link to its bottleneck component — the links
        # reachable by hopping through shared flows — and solve every
        # component separately.  Components are independent by
        # construction, so per-component filling performs the identical
        # float operations a merged solve would, while each filling
        # round scans only that component's links and flows (a batched
        # ring fan-out dirties dozens of *disjoint* NIC-pair components
        # at once; merging them would make every round quadratic).
        links_seen: dict[Link, None] = {}
        for start in dirty:
            if start in links_seen:
                continue
            links_seen[start] = None
            flows_seen: dict[Flow, None] = {}
            frontier: list[Link] = [start]
            while frontier:
                link = frontier.pop()
                for flow in link.flows:
                    if flow in flows_seen:
                        continue
                    flows_seen[flow] = None
                    for other in flow.links:
                        if other not in links_seen:
                            links_seen[other] = None
                            frontier.append(other)
            if flows_seen:
                self.solver_flow_visits += len(flows_seen)
                self._solve_component(flows_seen)

    def _solve_component(self, flows_seen: dict[Flow, None]) -> None:
        """Water-fill one bottleneck component (in flow-creation order)."""
        table = self._table
        if len(flows_seen) == 1:
            # Fast path: a flow alone on its links (the common case on a
            # non-blocking fabric, where every NIC pair is its own
            # component).  Performs the same divisions/comparisons the
            # general loop would — ``residual/load`` is
            # ``capacity_bps / weight`` here — so rates are bit-equal.
            (flow,) = flows_seen
            weight = flow.weight
            share = math.inf
            for link in flow.links:
                per_stream = link.capacity_bps / weight
                if per_stream < share:
                    share = per_stream
            cap = flow.rate_cap_bps
            if cap is not None and cap <= share * (1 + _EPS):
                share = cap
            rate = share if share > 0.0 else 0.0
            if weight != 1:
                rate *= weight
            slot = flow._slot
            table.rate[slot] = rate
            table.finish[slot] = (table.remaining.item(slot) / rate
                                  if rate > 0 else math.inf)
            return
        # Global creation order makes the per-link arithmetic match a
        # from-scratch global solve exactly.
        component = sorted(flows_seen, key=lambda f: f.flow_id)
        jobs = {flow.job for flow in component}
        if len(jobs) > 1:
            # The component mixes tenants: rates come from two-level
            # fairness (between jobs first, then within each job).
            # Single-tenant and untagged components never reach this
            # branch, so the classic paths below stay bit-identical.
            self._solve_component_jobs(component)
            return
        if len(component) >= VECTOR_SOLVE_MIN_FLOWS:
            self._solve_component_vector(component)
            return
        unassigned: dict[Flow, None] = dict.fromkeys(component)
        residual: dict[Link, float] = {}
        load: dict[Link, int] = {}
        for flow in unassigned:
            for link in flow.links:
                if link not in residual:
                    residual[link] = link.capacity_bps
                    load[link] = link.load
        fix_rate = self._fix_rate

        while unassigned:
            # Fair share currently offered by the most constrained link.
            share = math.inf
            for link, cap in residual.items():
                if load[link] > 0:
                    share = min(share, cap / load[link])
            if share is math.inf:  # pragma: no cover - defensive
                raise NetworkError("active flows traverse no loaded link")

            # Flows whose cap is below the fair share take their cap and
            # release the surplus to everyone else.
            capped = [f for f in unassigned
                      if f.rate_cap_bps is not None
                      and f.rate_cap_bps <= share * (1 + _EPS)]
            if capped:
                for flow in capped:
                    fix_rate(flow, flow.rate_cap_bps, unassigned,
                             residual, load)
                continue

            # Otherwise freeze every flow crossing a bottleneck link.
            bottlenecked = [
                f for f in unassigned
                if any(load[l] > 0
                       and residual[l] / load[l] <= share * (1 + _EPS)
                       for l in f.links)
            ]
            for flow in bottlenecked:
                fix_rate(flow, share, unassigned, residual, load)

    def _solve_component_jobs(self, component: list[Flow]) -> None:
        """Two-level (inter-job, then intra-job) water-fill.

        On a shared multi-tenant fabric, fairness must hold *between
        jobs* at every shared link, not between individual flows: a job
        that opens 16 streams must not crowd out a neighbour running 2.
        Each filling round offers every unassigned flow a per-stream
        rate derived hierarchically — the link's residual capacity is
        split between the jobs present (proportional to
        :attr:`job_priorities`, default 1.0; untagged flows pool under
        one pseudo-job), and each job's share is split over its own
        streams by flow weight.  Flows whose per-stream cap sits below
        their offer take the cap; otherwise the flows at the lowest
        offer (their bottleneck is exhausted at that level) are frozen
        and their bandwidth debited.  Each round fixes at least one
        flow, and released surplus is re-offered to the survivors in
        later rounds, so the filling is work-conserving.

        Only components whose flows span two or more distinct job tags
        are solved here; everything else takes the classic paths, which
        keeps all single-tenant replay digests bit-identical.
        """
        priorities = self.job_priorities
        unassigned: dict[Flow, None] = dict.fromkeys(component)
        residual: dict[Link, float] = {}
        for flow in unassigned:
            for link in flow.links:
                if link not in residual:
                    residual[link] = link.capacity_bps

        while unassigned:
            # Per-link hierarchy over the surviving flows: which jobs
            # are present, and each job's total stream weight there.
            link_jobs: dict[Link, dict[str, float]] = {}
            for flow in unassigned:
                tenant = flow.job if flow.job is not None else "-"
                for link in flow.links:
                    weights = link_jobs.setdefault(link, {})
                    weights[tenant] = weights.get(tenant, 0.0) + flow.weight
            prio_sum: dict[Link, float] = {
                link: sum(priorities.get(tenant, 1.0) for tenant in weights)
                for link, weights in link_jobs.items()
            }
            offers: dict[Flow, float] = {}
            for flow in unassigned:
                tenant = flow.job if flow.job is not None else "-"
                prio = priorities.get(tenant, 1.0)
                offer = math.inf
                for link in flow.links:
                    weights = link_jobs[link]
                    per_stream = (residual[link] * prio / prio_sum[link]
                                  / weights[tenant])
                    if per_stream < offer:
                        offer = per_stream
                offers[flow] = offer

            capped = [f for f in unassigned
                      if f.rate_cap_bps is not None
                      and f.rate_cap_bps <= offers[f] * (1 + _EPS)]
            if capped:
                for flow in capped:
                    self._fix_rate_hierarchical(flow, flow.rate_cap_bps,
                                                unassigned, residual)
                continue
            floor = min(offers.values())
            frozen = [f for f in unassigned
                      if offers[f] <= floor * (1 + _EPS)]
            for flow in frozen:
                self._fix_rate_hierarchical(flow, offers[flow],
                                            unassigned, residual)

    @staticmethod
    def _fix_rate_hierarchical(flow: Flow, per_stream_rate: float,
                               unassigned: dict[Flow, None],
                               residual: dict[Link, float]) -> None:
        """Freeze one flow's rate in the two-level filling.

        Like :meth:`_fix_rate`, but the hierarchical solver rebuilds
        its per-link job weights every round instead of carrying the
        integer load cache (per-job shares are not expressible as a
        single load count).
        """
        rate = per_stream_rate if per_stream_rate > 0.0 else 0.0
        if flow.weight != 1:
            rate *= flow.weight
        flow.rate_bps = rate
        flow._finish_s = flow.remaining_bits / rate if rate > 0 else math.inf
        unassigned.pop(flow, None)
        for link in flow.links:
            left = residual[link] - rate
            residual[link] = left if left > 0.0 else 0.0

    def _solve_component_vector(self, component: list[Flow]) -> None:
        """Array water-fill of one component, bit-identical to the scalar.

        Per-round float operations map one-to-one onto the scalar loop:
        the fair share is a min over the identical per-link divisions
        (min is order-independent), fixing a set of flows subtracts the
        identical rates from the identical residuals (clamping once
        after a batch of monotone non-negative subtractions lands on the
        same value as clamping after each — both floor at 0 as soon as
        any intermediate goes negative, and exact subtraction chains are
        associativity-free), and the final ``remaining/rate`` divisions
        match the scalar ``_fix_rate``.  Only the *bookkeeping* — who is
        unassigned, which link is a bottleneck — moves into arrays.
        """
        nf = len(component)
        weight_f = np.empty(nf)
        cap_f = np.full(nf, math.inf)
        has_cap = np.zeros(nf, dtype=bool)
        link_index: dict[Link, int] = {}
        links: list[Link] = []
        inc_flow: list[int] = []
        inc_link: list[int] = []
        for fi, flow in enumerate(component):
            weight_f[fi] = flow.weight
            cap = flow.rate_cap_bps
            if cap is not None:
                has_cap[fi] = True
                cap_f[fi] = cap
            for link in flow.links:
                li = link_index.get(link)
                if li is None:
                    li = link_index[link] = len(links)
                    links.append(link)
                inc_flow.append(fi)
                inc_link.append(li)
        nl = len(links)
        residual = np.array([link.capacity_bps for link in links])
        # Integer loads stored as float64: weights are small integers, so
        # every subtraction below is exact and ``load > 0`` stays crisp.
        load = np.array([float(link.load) for link in links])
        inc_flow_a = np.asarray(inc_flow, dtype=np.intp)
        inc_link_a = np.asarray(inc_link, dtype=np.intp)
        unassigned = np.ones(nf, dtype=bool)
        rates = np.zeros(nf)
        ratio = np.empty(nl)

        while bool(unassigned.any()):
            loaded = load > 0.0
            ratio.fill(math.inf)
            np.divide(residual, load, out=ratio, where=loaded)
            share = float(ratio.min())
            if share == math.inf:  # pragma: no cover - defensive
                raise NetworkError("active flows traverse no loaded link")
            threshold = share * (1 + _EPS)
            fixed = unassigned & has_cap & (cap_f <= threshold)
            if bool(fixed.any()):
                np.multiply(cap_f, weight_f, out=rates, where=fixed)
            else:
                hit = np.zeros(nf, dtype=bool)
                hit[inc_flow_a[(ratio <= threshold)[inc_link_a]]] = True
                fixed = unassigned & hit
                if not bool(fixed.any()):  # pragma: no cover - defensive
                    raise NetworkError(
                        "water-filling round fixed no flow; the fair "
                        "share is inconsistent with every link"
                    )
                per_stream = share if share > 0.0 else 0.0
                np.multiply(per_stream, weight_f, out=rates, where=fixed)
            member_fixed = fixed[inc_flow_a]
            sub_links = inc_link_a[member_fixed]
            sub_flows = inc_flow_a[member_fixed]
            np.subtract.at(residual, sub_links, rates[sub_flows])
            np.maximum(residual, 0.0, out=residual)
            np.subtract.at(load, sub_links, weight_f[sub_flows])
            unassigned &= ~fixed

        table = self._table
        slots = np.array([flow._slot for flow in component], dtype=np.intp)
        table.rate[slots] = rates
        finish = np.full(nf, math.inf)
        np.divide(table.remaining[slots], rates, out=finish,
                  where=rates > 0.0)
        table.finish[slots] = finish

    @staticmethod
    def _fix_rate(flow: Flow, per_stream_rate: float,
                  unassigned: dict[Flow, None],
                  residual: dict[Link, float], load: dict[Link, int]) -> None:
        rate = per_stream_rate if per_stream_rate > 0.0 else 0.0
        if flow.weight != 1:
            rate *= flow.weight
        flow.rate_bps = rate
        flow._finish_s = flow.remaining_bits / rate if rate > 0 else math.inf
        unassigned.pop(flow, None)
        for link in flow.links:
            left = residual[link] - rate
            residual[link] = left if left > 0.0 else 0.0
            load[link] -= flow.weight

    def _retire_flow(self, flow: Flow) -> None:
        """Remove one entity from the flow set, links and table.

        A retiring group leaves its channel's claim in place: the
        steady-state relaunch next step reuses it for O(1) validation,
        and an idle claim is evicted lazily by the first foreign touch.
        """
        self.flows.pop(flow, None)
        self._table.free(flow._slot)
        dirty = self._dirty_links
        weight = flow.weight
        for link in flow.links:
            link.flows.pop(flow, None)
            link.load -= weight
            dirty[link] = None
        if isinstance(flow, GroupFlow):
            channel = flow._channel
            if channel is not None:
                channel.groups.pop(flow, None)

    def _complete_finished(self) -> None:
        """Fire completion events for flows that have fully drained.

        A flow can only cross the completion threshold inside
        :meth:`_advance_progress` (or arrive already sub-threshold), and
        both paths raise ``_maybe_finished`` — so when the flag is down
        the table scan is skipped entirely.  The scan itself is one
        vector compare; ascending slot order is creation order, matching
        the flow-dict iteration the scalar engine performed.
        """
        if not self._maybe_finished:
            return
        self._maybe_finished = False
        table = self._table
        n = table.size
        finished = np.nonzero(
            (table.remaining[:n] <= _COMPLETE_BITS) & table.live[:n])[0]
        if finished.size == 0:
            return
        flows_done = [table.flow_by_slot[slot] for slot in finished]
        now = self.sim.now
        for flow in flows_done:
            flow = t.cast(Flow, flow)
            self._retire_flow(flow)
            duration = now - flow.started_at
            tail = flow.tail_latency_s
            if self.obs is not None:
                self._record_flow(flow, duration)
            self.sim._schedule_at(now + tail, flow.done, duration + tail)

    def _record_flow(self, flow: Flow, duration: float) -> None:
        """Record one completed entity's telemetry (obs attached only).

        Bundled groups are unrolled: one record per member, each against
        its own links and bottleneck, so per-link counters, spans and
        diagnosis state are identical whether or not the fan-out was
        bundled (the bundled-diagnosis equivalence tests pin this).
        """
        obs = self.obs
        from repro.obs.timeline import NETWORK_RANK

        for links in flow.member_link_sets():
            bottleneck = min(links, key=lambda link: link.capacity_bps)
            rate = flow.size_bits / duration if duration > 0 \
                else bottleneck.capacity_bps
            utilisation = min(1.0, rate / bottleneck.capacity_bps)
            # A flow is *throttled* when its per-stream achieved rate
            # landed below half its per-stream cap: the fabric, not the
            # endpoint, was the limiter.  The depth threshold separates
            # pathology from healthy multi-stream NIC saturation — N
            # concurrent streams fair-sharing their own NIC sit
            # shallowly below cap by design (that is the multi-stream
            # point), while an oversubscribed shared spine cuts each
            # stream to a fraction of it.
            throttled = (flow.rate_cap_bps is not None and duration > 0
                         and rate / flow.weight
                         < flow.rate_cap_bps * THROTTLE_DEPTH)
            if self.diag is not None:
                self.diag.observe_flow(
                    [link.name for link in links], flow.label,
                    flow.size_bits / 8.0, duration, throttled,
                    job=flow.job)
            span_meta: dict[str, object] = dict(
                lane=bottleneck.name, bytes=flow.size_bits / 8.0,
                rate_bps=rate, utilisation=utilisation,
                capped=flow.rate_cap_bps is not None, throttled=throttled)
            metric_labels: dict[str, str] = {"link": bottleneck.name}
            if flow.label is not None:
                span_meta["algorithm"] = flow.label
                metric_labels["algorithm"] = flow.label
            if flow.job is not None:
                span_meta["job"] = flow.job
                metric_labels["job"] = flow.job
            obs.timeline.span(
                "flow", "net", NETWORK_RANK, flow.started_at, self.sim.now,
                **span_meta)
            registry = obs.registry
            registry.counter(
                "network_flows_total",
                "Completed flows per bottleneck link").inc(**metric_labels)
            registry.counter(
                "network_bytes_total",
                "Bytes delivered per bottleneck link").inc(
                    flow.size_bits / 8.0, **metric_labels)
            registry.histogram(
                "network_flow_utilisation",
                "Per-flow achieved rate over bottleneck link capacity",
                buckets=(0.05, 0.1, 0.2, 0.3, 0.5, 0.75, 0.9, 1.0)).observe(
                    utilisation, link=bottleneck.name)

    def _schedule_wakeup(self) -> None:
        """Schedule a kernel event at the earliest next flow completion.

        The next completion is one vector min over the cached
        seconds-to-completion column (dead slots hold ``inf``).  Wakeup
        events are recycled through the kernel's event pool; the cast to
        a Python float keeps numpy scalars out of the kernel heap (their
        ``repr`` differs, which would corrupt replay digests).
        """
        self._wakeup_token += 1
        token = self._wakeup_token
        table = self._table
        n = table.size
        next_finish = math.inf if n == 0 else float(table.finish[:n].min())
        if next_finish == math.inf:
            if self.flows:
                raise NetworkError(
                    "active flows exist but none can make progress "
                    "(all rates are zero)"
                )
            return
        wakeup = self.sim.pooled_event("network.wakeup")
        wakeup.add_callback(lambda ev: self._on_wakeup(token, ev))
        self.sim._schedule_at(self.sim.now + next_finish, wakeup, None)

    def _on_wakeup(self, token: int, wakeup: Event) -> None:
        self.sim.release_event(wakeup)
        if token != self._wakeup_token:
            return  # a newer allocation superseded this wakeup
        self._advance_progress()
        self._reallocate()
