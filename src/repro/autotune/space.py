"""The communication-parameter search space (paper §VI).

"Hyperparameters like the all-reduce unit size, the number of CUDA
streams used and the all-reduce algorithm can have an impact on the
communication efficiency.  The combination of possible parameter values
results in a large optimization space."

Streams span 2–24 (the range the paper observes chosen in production);
granularities are power-of-two unit sizes from 1 MB to 128 MB; the
algorithm is ring or hierarchical.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as t

import numpy as np

from repro.errors import AutotuneError

#: Default candidate values.
DEFAULT_STREAMS = (2, 4, 8, 12, 16, 20, 24)
DEFAULT_GRANULARITIES_MB = (1, 2, 4, 8, 16, 32, 64, 128)
DEFAULT_ALGORITHMS = ("ring", "hierarchical")

#: Candidate set extended with the planner-synthesized backends
#: (:mod:`repro.collectives.planner`).  Opt-in — pass it explicitly as
#: ``SearchSpace(algorithms=EXTENDED_ALGORITHMS)`` — so existing
#: deployments keep the paper's two-algorithm grid; note that
#: halving-doubling only runs on power-of-two node counts (the
#: evaluator charges an infeasibility penalty elsewhere).
EXTENDED_ALGORITHMS = DEFAULT_ALGORITHMS + (
    "halving-doubling", "multi-tree", "ina")


@dataclasses.dataclass(frozen=True, order=True)
class ParameterPoint:
    """One candidate communication-parameter setting."""

    num_streams: int
    granularity_bytes: float
    algorithm: str

    def encode(self, space: "SearchSpace") -> np.ndarray:
        """Normalised numeric vector (for the Bayesian surrogate)."""
        return np.array([
            space.streams.index(self.num_streams) /
            max(1, len(space.streams) - 1),
            space.granularities.index(self.granularity_bytes) /
            max(1, len(space.granularities) - 1),
            space.algorithms.index(self.algorithm) /
            max(1, len(space.algorithms) - 1),
        ])


class SearchSpace:
    """Finite grid of candidate parameter points."""

    def __init__(self,
                 streams: t.Sequence[int] = DEFAULT_STREAMS,
                 granularities_mb: t.Sequence[float]
                 = DEFAULT_GRANULARITIES_MB,
                 algorithms: t.Sequence[str] = DEFAULT_ALGORITHMS) -> None:
        if not streams or not granularities_mb or not algorithms:
            raise AutotuneError("search space dimensions must be non-empty")
        self.streams = sorted(set(streams))
        self.granularities = sorted(g * 1e6 for g in set(granularities_mb))
        self.algorithms = list(dict.fromkeys(algorithms))

    def __len__(self) -> int:
        return (len(self.streams) * len(self.granularities)
                * len(self.algorithms))

    def __contains__(self, point: ParameterPoint) -> bool:
        return (point.num_streams in self.streams
                and point.granularity_bytes in self.granularities
                and point.algorithm in self.algorithms)

    def all_points(self) -> list[ParameterPoint]:
        """Every point, in a deterministic order."""
        return [
            ParameterPoint(s, g, a)
            for s, g, a in itertools.product(
                self.streams, self.granularities, self.algorithms)
        ]

    def random_point(self, rng: np.random.Generator) -> ParameterPoint:
        """Uniform sample from the grid."""
        return ParameterPoint(
            num_streams=self.streams[rng.integers(len(self.streams))],
            granularity_bytes=self.granularities[
                rng.integers(len(self.granularities))],
            algorithm=self.algorithms[rng.integers(len(self.algorithms))],
        )

    def neighbors(self, point: ParameterPoint) -> list[ParameterPoint]:
        """Points one grid step away (PBT perturbations)."""
        if point not in self:
            raise AutotuneError(f"{point} is not in the search space")
        found = []
        s_idx = self.streams.index(point.num_streams)
        g_idx = self.granularities.index(point.granularity_bytes)
        for delta in (-1, 1):
            if 0 <= s_idx + delta < len(self.streams):
                found.append(dataclasses.replace(
                    point, num_streams=self.streams[s_idx + delta]))
            if 0 <= g_idx + delta < len(self.granularities):
                found.append(dataclasses.replace(
                    point,
                    granularity_bytes=self.granularities[g_idx + delta]))
        for algorithm in self.algorithms:
            if algorithm != point.algorithm:
                found.append(dataclasses.replace(point, algorithm=algorithm))
        return found
