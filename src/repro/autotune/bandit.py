"""The multi-armed-bandit meta solver (paper §VI).

"Our meta solver is a MAB with a sliding window, area under the curve
(AUC) credit assignment algorithm ... the meta solver aims to maximize:

    argmax_t ( AUC_t + C * sqrt( 2 * lg|H| / H_t ) )

where t is a search technique, |H| the length of a sliding history
window, H_t how often the technique was used in that window, C (0.2 by
default) the exploration constant, and AUC_t the credit assignment term.
We compute the AUC curve by looking at the history of a technique.  If
the technique delivered a new global best, we draw an upward line on the
AUC curve.  Otherwise, we draw a flat line.  We then compute the area
under the AUC curve."
"""

from __future__ import annotations

import math
import typing as t
from collections import deque

from repro.errors import AutotuneError


class AUCBandit:
    """Sliding-window AUC credit assignment over technique names."""

    def __init__(self, techniques: t.Sequence[str], window: int = 20,
                 exploration: float = 0.2) -> None:
        if not techniques:
            raise AutotuneError("bandit needs at least one technique")
        if len(set(techniques)) != len(techniques):
            raise AutotuneError("technique names must be unique")
        if window < 1:
            raise AutotuneError("window must be >= 1")
        self.techniques = list(techniques)
        self.window = window
        self.exploration = exploration
        #: (technique, delivered_new_global_best) events, oldest first.
        self.history: deque[tuple[str, bool]] = deque(maxlen=window)

    # -- credit assignment ---------------------------------------------------

    def auc(self, technique: str) -> float:
        """Normalised area under the technique's improvement curve.

        Improvement events draw an upward segment, others a flat one, and
        the area is accumulated from the *end* of the window backwards:
        the ``i``-th event (oldest first, out of ``k``) contributes
        ``i + 1`` when it improved, so a recent improvement carries area
        under every later step while an old one has mostly fallen off.
        Normalised by the maximal possible area (``k (k+1) / 2``) so the
        result lies in [0, 1] — recency-weighted credit, matching the
        paper's sliding-window intent.
        """
        events = [improved for name, improved in self.history
                  if name == technique]
        if not events:
            return 0.0
        area = sum(index + 1.0
                   for index, improved in enumerate(events) if improved)
        max_area = len(events) * (len(events) + 1) / 2
        return area / max_area

    def usage(self, technique: str) -> int:
        """How often the technique appears in the window (H_t)."""
        return sum(1 for name, _ in self.history if name == technique)

    def score(self, technique: str) -> float:
        """AUC_t + C * sqrt(2 lg|H| / H_t); unused techniques score inf."""
        used = self.usage(technique)
        if used == 0:
            return math.inf
        size = max(2, len(self.history))
        return self.auc(technique) + self.exploration * math.sqrt(
            2.0 * math.log2(size) / used)

    # -- bandit interface -------------------------------------------------------

    def select(self) -> str:
        """Pick the technique for the next warm-up iteration."""
        return max(self.techniques, key=self.score)

    def reward(self, technique: str, new_global_best: bool) -> None:
        """Record the outcome of one pull."""
        if technique not in self.techniques:
            raise AutotuneError(f"unknown technique {technique!r}")
        self.history.append((technique, new_global_best))
