"""Hyperband technique (Li et al., 2017).

Successive halving adapted to the tuner's one-iteration-per-pull budget
model: a bracket starts with ``n`` random configurations; each *rung*
re-evaluates the surviving configurations (more pulls = more measurement
resolution) and keeps the best ``1/eta`` fraction for the next rung.
Re-evaluation matters on real deployments where one iteration is a noisy
cost sample; the default ``eta`` is aggressive (4) so most of the budget
goes to fresh configurations rather than repeats.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autotune.space import ParameterPoint, SearchSpace
from repro.autotune.techniques import SearchTechnique


class Hyperband(SearchTechnique):
    """Successive-halving brackets over random configurations."""

    name = "hyperband"

    def __init__(self, space: SearchSpace, bracket_size: int = 8,
                 eta: int = 4, seed: int = 0) -> None:
        super().__init__(space)
        if bracket_size < eta or eta < 2:
            raise ValueError("need bracket_size >= eta >= 2")
        self.bracket_size = bracket_size
        self.eta = eta
        self.rng = np.random.default_rng(seed)
        self._start_bracket()

    def _start_bracket(self) -> None:
        self._rung: list[ParameterPoint] = [
            self.space.random_point(self.rng)
            for _ in range(self.bracket_size)
        ]
        self._costs: dict[ParameterPoint, list[float]] = {
            p: [] for p in self._rung}
        self._cursor = 0

    def propose(self) -> ParameterPoint:
        return self._rung[self._cursor]

    def _observe(self, point: ParameterPoint, cost: float) -> None:
        self._costs.setdefault(point, []).append(cost)
        self._cursor += 1
        if self._cursor < len(self._rung):
            return
        # Rung complete: halve.
        survivors = max(1, len(set(self._rung)) // self.eta)
        ranked = sorted(set(self._rung),
                        key=lambda p: math.fsum(self._costs[p]) /
                        len(self._costs[p]))
        if survivors == 1 or len(ranked) == 1:
            self._start_bracket()
            return
        self._rung = ranked[:survivors]
        self._cursor = 0
