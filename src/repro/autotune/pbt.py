"""Population-based training (Jaderberg et al., 2017) technique.

A small population of parameter points is evaluated round-robin; after
each generation the bottom half *exploits* (copies) the top half and
*explores* by perturbing one grid step — matching PBT's
exploit-and-explore loop on our discrete space.
"""

from __future__ import annotations

import math

import numpy as np

from repro.autotune.space import ParameterPoint, SearchSpace
from repro.autotune.techniques import SearchTechnique


class PopulationBasedTraining(SearchTechnique):
    """Exploit/explore evolution of a point population."""

    name = "pbt"

    def __init__(self, space: SearchSpace, population_size: int = 8,
                 seed: int = 0) -> None:
        super().__init__(space)
        if population_size < 2:
            raise ValueError("population_size must be >= 2")
        self.rng = np.random.default_rng(seed)
        self.population = [space.random_point(self.rng)
                           for _ in range(population_size)]
        self._scores: list[float | None] = [None] * population_size
        self._cursor = 0

    def propose(self) -> ParameterPoint:
        return self.population[self._cursor]

    def _observe(self, point: ParameterPoint, cost: float) -> None:
        self._scores[self._cursor] = cost
        self._cursor += 1
        if self._cursor == len(self.population):
            self._evolve()
            self._cursor = 0

    def _evolve(self) -> None:
        """Bottom half copies the top half, then perturbs one step."""
        scored = sorted(range(len(self.population)),
                        key=lambda i: math.inf if self._scores[i] is None
                        else self._scores[i])
        half = len(self.population) // 2
        for loser_rank in range(half, len(self.population)):
            loser = scored[loser_rank]
            winner = scored[loser_rank - half]
            candidate = self.population[winner]
            neighbors = self.space.neighbors(candidate)
            self.population[loser] = neighbors[
                self.rng.integers(len(neighbors))]
        self._scores = [None] * len(self.population)
