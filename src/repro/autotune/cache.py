"""Best-setting cache keyed by deployment similarity (paper §VI).

"When used in a GPU cloud, AIACC-Training also stores the
previously-found best parameter setting for a given DNN computation
graph, cloud instance and network topology.  It then uses this setting as
a starting point for a similar cloud instance deployment to boost the
search."
"""

from __future__ import annotations

import dataclasses
import json
import logging
import pathlib

import networkx as nx

from repro.errors import AutotuneError
from repro.autotune.graph_distance import deployment_distance
from repro.autotune.space import ParameterPoint
from repro.ioutil import atomic_write_text
from repro.models.base import ModelSpec

logger = logging.getLogger(__name__)


@dataclasses.dataclass(frozen=True)
class CacheEntry:
    """One remembered deployment and its tuned parameters."""

    label: str
    model: ModelSpec
    topology: nx.Graph
    best_point: ParameterPoint
    best_cost_s: float


class SettingsCache:
    """Nearest-deployment lookup of previously tuned parameters."""

    def __init__(self, max_entries: int = 256) -> None:
        if max_entries < 1:
            raise AutotuneError("max_entries must be >= 1")
        self.max_entries = max_entries
        self._entries: list[CacheEntry] = []
        #: Corrupt persisted entries :meth:`load` skipped, as
        #: ``(entry_payload, reason)`` pairs — quarantined, not fatal.
        self.quarantined: list[tuple[object, str]] = []

    def __len__(self) -> int:
        return len(self._entries)

    def store(self, label: str, model: ModelSpec, topology: nx.Graph,
              best_point: ParameterPoint, best_cost_s: float) -> None:
        """Remember a tuned deployment (oldest evicted beyond capacity)."""
        self._entries.append(CacheEntry(
            label=label, model=model, topology=topology,
            best_point=best_point, best_cost_s=best_cost_s))
        if len(self._entries) > self.max_entries:
            self._entries.pop(0)

    def lookup(self, model: ModelSpec, topology: nx.Graph,
               max_distance: float | None = None
               ) -> tuple[CacheEntry, float] | None:
        """Most similar remembered deployment (entry, distance), or None.

        ``max_distance`` rejects matches that are too far away to be a
        useful warm start.
        """
        best: CacheEntry | None = None
        best_distance = float("inf")
        for entry in self._entries:
            distance = deployment_distance(
                model, topology, entry.model, entry.topology)
            if distance < best_distance:
                best, best_distance = entry, distance
        if best is None:
            return None
        if max_distance is not None and best_distance > max_distance:
            return None
        return best, best_distance

    def starting_point(self, model: ModelSpec, topology: nx.Graph,
                       max_distance: float | None = None
                       ) -> ParameterPoint | None:
        """The warm-start point for a new deployment, if any."""
        found = self.lookup(model, topology, max_distance=max_distance)
        return found[0].best_point if found else None

    # -- persistence ---------------------------------------------------------

    def save(self, path: str | pathlib.Path) -> None:
        """Persist the cache as JSON (the production library stores tuned
        settings per cloud deployment so repeated jobs warm-start)."""
        payload = []
        for entry in self._entries:
            payload.append({
                "label": entry.label,
                "model": _model_fingerprint(entry.model),
                "topology": nx.node_link_data(entry.topology, edges="links"),
                "best_point": {
                    "num_streams": entry.best_point.num_streams,
                    "granularity_bytes": entry.best_point.granularity_bytes,
                    "algorithm": entry.best_point.algorithm,
                },
                "best_cost_s": entry.best_cost_s,
            })
        # Atomic: a tuner killed mid-save must leave either the previous
        # cache or the new one, never a truncated JSON file.
        atomic_write_text(path, json.dumps(payload, indent=2))

    @classmethod
    def load(cls, path: str | pathlib.Path,
             max_entries: int = 256) -> "SettingsCache":
        """Restore a cache written by :meth:`save`.

        Model specs are restored as lightweight fingerprints that carry
        exactly the layer-size structure the similarity metric uses.

        A corrupt *entry* (missing keys, wrong types, an unparsable
        topology) is quarantined into :attr:`quarantined` and logged
        instead of poisoning the whole cache: losing one remembered
        deployment costs a warm start, losing the cache on every load
        costs the tuner its memory entirely.  An unreadable or
        non-JSON *file* still raises :class:`AutotuneError`.
        """
        try:
            payload = json.loads(pathlib.Path(path).read_text())
        except (OSError, ValueError) as exc:
            raise AutotuneError(f"cannot load settings cache: {exc}") \
                from exc
        if not isinstance(payload, list):
            raise AutotuneError(
                f"settings cache {path} is not a list of entries")
        cache = cls(max_entries=max_entries)
        for item in payload:
            try:
                cache.store(
                    label=item["label"],
                    model=_model_from_fingerprint(item["model"]),
                    topology=nx.node_link_graph(item["topology"],
                                                edges="links"),
                    best_point=ParameterPoint(**item["best_point"]),
                    best_cost_s=float(item["best_cost_s"]),
                )
            except Exception as exc:  # corrupt entry: quarantine it
                cache.quarantined.append((item, str(exc)))
                logger.warning(
                    "settings cache %s: quarantined corrupt entry "
                    "(%s): %r", path, exc, item)
        return cache


def _model_fingerprint(model: ModelSpec) -> dict:
    """The communication-relevant skeleton of a model, JSON-safe."""
    return {
        "name": model.name,
        "layer_sizes": [layer.num_parameters for layer in model.layers],
        "layer_flops": [layer.forward_flops for layer in model.layers],
        "compute_occupancy": model.compute_occupancy,
    }


def _model_from_fingerprint(data: dict) -> ModelSpec:
    """Rebuild a similarity-equivalent ModelSpec from a fingerprint."""
    from repro.models.base import LayerSpec, ParameterSpec

    layers = tuple(
        LayerSpec(
            name=f"layer{i}",
            parameters=(ParameterSpec(f"layer{i}.p", max(1, int(size))),),
            forward_flops=float(flops),
        )
        for i, (size, flops) in enumerate(
            zip(data["layer_sizes"], data["layer_flops"]))
    )
    return ModelSpec(
        name=data["name"],
        layers=layers,
        compute_occupancy=data["compute_occupancy"],
    )
