"""Bayesian optimization technique.

A Gaussian-process surrogate with an RBF kernel models iteration cost
over the encoded parameter space; candidates are scored by *expected
improvement*.  The implementation is numpy/scipy only — no external BO
library — and falls back to random sampling until enough observations
exist to fit the surrogate.
"""

from __future__ import annotations

import numpy as np
from scipy import linalg
from scipy.stats import norm

from repro.autotune.space import ParameterPoint, SearchSpace
from repro.autotune.techniques import SearchTechnique

#: Observations required before the surrogate takes over from random.
_MIN_OBSERVATIONS = 5


class BayesianOptimization(SearchTechnique):
    """GP + expected-improvement search over the encoded grid."""

    name = "bayesian"

    def __init__(self, space: SearchSpace, length_scale: float = 0.3,
                 noise: float = 1e-4, seed: int = 0) -> None:
        super().__init__(space)
        self.length_scale = length_scale
        self.noise = noise
        self.rng = np.random.default_rng(seed)
        self._observed_x: list[np.ndarray] = []
        self._observed_y: list[float] = []
        self._seen: set[ParameterPoint] = set()

    # -- GP machinery ------------------------------------------------------

    def _kernel(self, a: np.ndarray, b: np.ndarray) -> np.ndarray:
        sq = ((a[:, None, :] - b[None, :, :]) ** 2).sum(-1)
        return np.exp(-0.5 * sq / self.length_scale ** 2)

    def _posterior(self, candidates: np.ndarray
                   ) -> tuple[np.ndarray, np.ndarray]:
        """GP posterior mean and stddev at ``candidates``."""
        train_x = np.stack(self._observed_x)
        train_y = np.asarray(self._observed_y)
        mean_y = train_y.mean()
        centered = train_y - mean_y
        gram = self._kernel(train_x, train_x) + \
            self.noise * np.eye(len(train_x))
        factor = linalg.cho_factor(gram)
        k_star = self._kernel(candidates, train_x)
        mu = mean_y + k_star @ linalg.cho_solve(factor, centered)
        v = linalg.cho_solve(factor, k_star.T)
        var = 1.0 - np.einsum("ij,ji->i", k_star, v)
        return mu, np.sqrt(np.clip(var, 1e-12, None))

    # -- SearchTechnique interface ----------------------------------------------

    def propose(self) -> ParameterPoint:
        pool = [p for p in self.space.all_points() if p not in self._seen]
        if not pool:
            pool = self.space.all_points()
        if len(self._observed_y) < _MIN_OBSERVATIONS:
            return pool[self.rng.integers(len(pool))]
        encoded = np.stack([p.encode(self.space) for p in pool])
        mu, sigma = self._posterior(encoded)
        best = min(self._observed_y)
        # Expected improvement for minimisation.
        gamma = (best - mu) / sigma
        ei = sigma * (gamma * norm.cdf(gamma) + norm.pdf(gamma))
        return pool[int(np.argmax(ei))]

    def _observe(self, point: ParameterPoint, cost: float) -> None:
        self._seen.add(point)
        self._observed_x.append(point.encode(self.space))
        self._observed_y.append(cost)
