"""Grid search technique.

Enumerates the space in a *coarse-to-fine* order: a stride-based sweep
visits well-spread points first, so even a small iteration budget samples
every region of the grid before refinement fills the gaps.
"""

from __future__ import annotations

from repro.autotune.space import ParameterPoint, SearchSpace
from repro.autotune.techniques import SearchTechnique


class GridSearch(SearchTechnique):
    """Deterministic coarse-to-fine sweep of the whole grid."""

    name = "grid"

    def __init__(self, space: SearchSpace) -> None:
        super().__init__(space)
        self._order = self._coarse_to_fine(space.all_points())
        self._cursor = 0

    @staticmethod
    def _coarse_to_fine(points: list[ParameterPoint]) -> list[ParameterPoint]:
        """Reorder so early proposals are spread across the space."""
        ordered: list[ParameterPoint] = []
        seen: set[ParameterPoint] = set()
        stride = len(points)
        while stride >= 1:
            for index in range(0, len(points), stride):
                point = points[index]
                if point not in seen:
                    seen.add(point)
                    ordered.append(point)
            stride //= 2
        return ordered

    def propose(self) -> ParameterPoint:
        point = self._order[self._cursor % len(self._order)]
        self._cursor += 1
        return point
