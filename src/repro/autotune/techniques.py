"""The search-technique interface shared by the tuner's ensemble.

"Our current search ensemble considers four established search
techniques: grid-search, population based training (PBT), Bayesian
optimization, and Hyperband, but other search techniques can be added"
(paper §VI).  Every technique implements propose/observe; the meta solver
(:mod:`repro.autotune.bandit`) decides which technique gets each of the
warm-up training iterations.
"""

from __future__ import annotations

import abc

from repro.autotune.space import ParameterPoint, SearchSpace


class SearchTechnique(abc.ABC):
    """One member of the auto-tuning ensemble."""

    #: Technique label used by the meta solver and reports.
    name: str = "abstract"

    def __init__(self, space: SearchSpace) -> None:
        self.space = space
        self.evaluations = 0

    @abc.abstractmethod
    def propose(self) -> ParameterPoint:
        """Return the next candidate to evaluate."""

    def observe(self, point: ParameterPoint, cost: float) -> None:
        """Feed back the measured cost (iteration seconds; lower better)."""
        self.evaluations += 1
        self._observe(point, cost)

    def _observe(self, point: ParameterPoint, cost: float) -> None:
        """Technique-specific bookkeeping; default is stateless."""

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} after {self.evaluations} evals>"
