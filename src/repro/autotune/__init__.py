"""Auto-tuning of communication parameters (paper Section VI).

A multi-armed-bandit meta solver (sliding-window AUC credit assignment)
allocates a warm-up budget of training iterations across an ensemble of
four search techniques — grid search, population-based training, Bayesian
optimization and Hyperband — to choose the number of communication
streams, the all-reduce unit granularity and the all-reduce algorithm.
Tuned settings are cached and reused for similar deployments via graph
edit distance.
"""

from repro.autotune.bandit import AUCBandit
from repro.autotune.bayesian import BayesianOptimization
from repro.autotune.cache import CacheEntry, SettingsCache
from repro.autotune.graph_distance import (
    deployment_distance,
    graph_edit_distance,
    model_graph,
    signature_distance,
)
from repro.autotune.grid import GridSearch
from repro.autotune.hyperband import Hyperband
from repro.autotune.pbt import PopulationBasedTraining
from repro.autotune.space import (
    EXTENDED_ALGORITHMS,
    ParameterPoint,
    SearchSpace,
)
from repro.autotune.techniques import SearchTechnique
from repro.autotune.tuner import (
    AutoTuner,
    Trial,
    TuneResult,
    default_ensemble,
    make_evaluator,
)

__all__ = [
    "AUCBandit",
    "AutoTuner",
    "BayesianOptimization",
    "CacheEntry",
    "EXTENDED_ALGORITHMS",
    "GridSearch",
    "Hyperband",
    "ParameterPoint",
    "PopulationBasedTraining",
    "SearchSpace",
    "SearchTechnique",
    "SettingsCache",
    "Trial",
    "TuneResult",
    "default_ensemble",
    "deployment_distance",
    "graph_edit_distance",
    "make_evaluator",
    "model_graph",
    "signature_distance",
]
