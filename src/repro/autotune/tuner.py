"""The warm-up auto-tuner (paper §VI).

"Given a budget of n training iterations and k search techniques (k = 4
and n = 100 by default in our current implementation), the meta solver
allocates the training iterations among search techniques to test their
effectiveness.  After n iterations, we choose the best performing
parameters to use for the remaining training iterations.  Crucially, the
results of parameter search also contribute to the final training
outcome, so no computation cycle is wasted."

Evaluating a candidate = running one (simulated) training iteration with
those parameters and measuring its duration; :func:`make_evaluator`
builds that measurement function for a deployment.
"""

from __future__ import annotations

import dataclasses
import logging
import typing as t

from repro.errors import AutotuneError
from repro.autotune.bandit import AUCBandit
from repro.autotune.bayesian import BayesianOptimization
from repro.autotune.grid import GridSearch
from repro.autotune.hyperband import Hyperband
from repro.autotune.pbt import PopulationBasedTraining
from repro.autotune.space import ParameterPoint, SearchSpace
from repro.autotune.techniques import SearchTechnique
from repro.obs import Observability


logger = logging.getLogger("repro.autotune")


@dataclasses.dataclass(frozen=True)
class Trial:
    """One warm-up iteration: who proposed what, and how it fared."""

    index: int
    technique: str
    point: ParameterPoint
    cost_s: float
    new_global_best: bool


@dataclasses.dataclass(frozen=True)
class TuneResult:
    """Outcome of a tuning run."""

    best_point: ParameterPoint
    best_cost_s: float
    trials: tuple[Trial, ...]

    @property
    def technique_usage(self) -> dict[str, int]:
        usage: dict[str, int] = {}
        for trial in self.trials:
            usage[trial.technique] = usage.get(trial.technique, 0) + 1
        return usage


def default_ensemble(space: SearchSpace, seed: int = 0
                     ) -> list[SearchTechnique]:
    """The paper's four-technique ensemble."""
    return [
        GridSearch(space),
        PopulationBasedTraining(space, seed=seed),
        BayesianOptimization(space, seed=seed + 1),
        Hyperband(space, seed=seed + 2),
    ]


class AutoTuner:
    """MAB-scheduled ensemble search within a warm-up budget."""

    def __init__(self, space: SearchSpace | None = None,
                 techniques: t.Sequence[SearchTechnique] | None = None,
                 budget: int = 100, window: int = 20,
                 exploration: float = 0.2, seed: int = 0,
                 initial_point: ParameterPoint | None = None,
                 obs: Observability | None = None) -> None:
        if budget < 1:
            raise AutotuneError("budget must be >= 1")
        #: Observability sink for trial/bandit-credit telemetry.
        self.obs = obs or Observability.disabled()
        registry = self.obs.registry
        self._m_trials = registry.counter(
            "autotune_trials_total", "Warm-up trials per search technique")
        self._m_credit = registry.counter(
            "autotune_bandit_credit_total",
            "Bandit rewards (new global bests) per search technique")
        self._m_trial_cost = registry.histogram(
            "autotune_trial_cost_seconds",
            "Measured iteration cost of each warm-up trial",
            buckets=(1e-3, 1e-2, 0.1, 0.5, 1.0, 5.0, 30.0))
        self._m_best_cost = registry.gauge(
            "autotune_best_cost_seconds",
            "Best iteration cost found so far")
        self.space = space or SearchSpace()
        self.techniques = list(techniques) if techniques is not None \
            else default_ensemble(self.space, seed=seed)
        if not self.techniques:
            raise AutotuneError("need at least one search technique")
        self.budget = budget
        self.bandit = AUCBandit([t_.name for t_ in self.techniques],
                                window=window, exploration=exploration)
        #: Starting point from the settings cache (paper: previously found
        #: best for a similar deployment "to boost the search").
        self.initial_point = initial_point

    def tune(self, evaluate: t.Callable[[ParameterPoint], float]
             ) -> TuneResult:
        """Run the warm-up phase; returns the best point found."""
        by_name = {t_.name: t_ for t_ in self.techniques}
        best_point: ParameterPoint | None = None
        best_cost = float("inf")
        trials: list[Trial] = []

        def record(index: int, name: str, point: ParameterPoint,
                   cost: float) -> None:
            nonlocal best_point, best_cost
            if cost < 0:
                raise AutotuneError(
                    f"evaluator returned negative cost {cost}"
                )
            improved = cost < best_cost
            if improved:
                best_point, best_cost = point, cost
                self._m_credit.inc(technique=name)
                self._m_best_cost.set(cost)
            if name in self.bandit.techniques:
                self.bandit.reward(name, improved)
            self._m_trials.inc(technique=name)
            self._m_trial_cost.observe(cost, technique=name)
            if self.obs.diag is not None:
                self.obs.diag.observe_tuner_trial(index, name, cost)
            trials.append(Trial(index, name, point, cost, improved))
            if improved:
                logger.debug(
                    "trial %d (%s): new best %.4fs at %d streams / "
                    "%.0f MB / %s", index, name, cost,
                    point.num_streams, point.granularity_bytes / 1e6,
                    point.algorithm)

        start = 0
        if self.initial_point is not None:
            # The cached setting gets the first iteration: a good prior
            # becomes the early global best the ensemble must beat.
            record(0, "cache", self.initial_point,
                   evaluate(self.initial_point))
            start = 1

        for index in range(start, self.budget):
            name = self.bandit.select()
            technique = by_name[name]
            point = technique.propose()
            cost = evaluate(point)
            technique.observe(point, cost)
            record(index, name, point, cost)

        assert best_point is not None  # budget >= 1 guarantees a trial
        return TuneResult(best_point=best_point, best_cost_s=best_cost,
                          trials=tuple(trials))


#: Cost charged to a candidate whose algorithm cannot run on the
#: deployment's shape (e.g. halving-doubling on a non-power-of-two node
#: count).  Large but finite so surrogate models stay well-conditioned
#: while the point can never become the global best.
INFEASIBLE_COST_S = 1e6


def make_evaluator(model: str, num_gpus: int,
                   batch_per_gpu: int | None = None,
                   transport: t.Any = None,
                   nic_bandwidth_bps: float = 30e9,
                   core_oversubscription: float = 1.0
                   ) -> t.Callable[[ParameterPoint], float]:
    """Build the cost function: one simulated iteration's duration.

    Each call constructs a fresh deployment with the candidate's
    parameters and measures a single steady-state training iteration —
    the analogue of the paper's measure-one-warm-up-iteration protocol.
    ``core_oversubscription > 1`` evaluates candidates on a cluster with
    a shared leaf-spine core, where congestion-aware algorithm choice
    (multi-tree, in-network aggregation) pays off.
    """
    from repro.errors import CollectiveError
    from repro.core.runtime import AIACCConfig
    from repro.frameworks import make_backend
    from repro.sim.tcp import TCP
    from repro.training.trainer import run_training

    def evaluate(point: ParameterPoint) -> float:
        config = AIACCConfig(
            num_streams=point.num_streams,
            granularity_bytes=point.granularity_bytes,
            algorithm=point.algorithm,
        )
        try:
            result = run_training(
                model, make_backend("aiacc", config=config), num_gpus,
                batch_per_gpu=batch_per_gpu,
                measure_iterations=1, warmup_iterations=0,
                transport=transport or TCP,
                nic_bandwidth_bps=nic_bandwidth_bps,
                core_oversubscription=core_oversubscription,
            )
        except CollectiveError:
            return INFEASIBLE_COST_S
        return result.mean_iteration_s

    return evaluate
