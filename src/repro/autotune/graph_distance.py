"""Graph similarity for the settings cache (paper §VI).

"To quantify the similarity of a DDL deployment and a previously seen
one, we measure the similarity of the DNN computation graph and the
network topology ... We use the graph edit distance to measure graph
similarities."

Exact graph edit distance (GED) is exponential; for the small graphs the
cache compares (tens of nodes) we run networkx's optimized GED
approximation, and beyond a size threshold we fall back to a
degree/attribute-signature lower bound — both metrics are admissible for
nearest-neighbour lookup, which is all the cache needs.
"""

from __future__ import annotations


import networkx as nx
import numpy as np

from repro.models.base import ModelSpec

#: Above this node count, exact-ish GED is replaced by the signature bound.
GED_EXACT_NODE_LIMIT = 12


def model_graph(spec: ModelSpec) -> nx.Graph:
    """The DNN computation graph used for similarity: a layer chain.

    Nodes carry a log-scale parameter-size bucket so that two models with
    the same depth but very different tensor sizes are distant.
    """
    graph = nx.Graph()
    for index, layer in enumerate(spec.layers):
        bucket = int(np.log10(max(layer.num_parameters, 1)))
        graph.add_node(index, size_bucket=bucket)
        if index:
            graph.add_edge(index - 1, index)
    return graph


def _signature(graph: nx.Graph, node_attr: str | None) -> np.ndarray:
    """Sorted degree + attribute histogram signature of a graph."""
    degrees = sorted(d for _, d in graph.degree())
    histogram = np.zeros(16)
    if node_attr:
        for _, data in graph.nodes(data=True):
            bucket = int(data.get(node_attr, 0)) % 16
            histogram[bucket] += 1
    return np.concatenate([
        [graph.number_of_nodes(), graph.number_of_edges()],
        np.bincount(np.asarray(degrees, dtype=int) if degrees else
                    np.zeros(0, dtype=int), minlength=8)[:8],
        histogram,
    ])


def signature_distance(a: nx.Graph, b: nx.Graph,
                       node_attr: str | None = None) -> float:
    """L1 distance between graph signatures — a cheap GED lower bound."""
    return float(np.abs(_signature(a, node_attr)
                        - _signature(b, node_attr)).sum())


def graph_edit_distance(a: nx.Graph, b: nx.Graph,
                        node_attr: str | None = None) -> float:
    """GED between two graphs (approximate beyond the size limit)."""
    if max(a.number_of_nodes(), b.number_of_nodes()) > GED_EXACT_NODE_LIMIT:
        return signature_distance(a, b, node_attr)

    def node_match(x: dict, y: dict) -> bool:
        if node_attr is None:
            return True
        return x.get(node_attr) == y.get(node_attr)

    # networkx returns an upper-bound sequence; take the first (fast)
    # solution — a valid edit path, hence an admissible distance.
    for cost in nx.optimize_graph_edit_distance(a, b,
                                                node_match=node_match):
        return float(cost)
    return signature_distance(a, b, node_attr)  # pragma: no cover


def deployment_distance(model_a: ModelSpec, topo_a: nx.Graph,
                        model_b: ModelSpec, topo_b: nx.Graph) -> float:
    """Combined (model graph, topology graph) deployment distance."""
    model_term = signature_distance(model_graph(model_a),
                                    model_graph(model_b),
                                    node_attr="size_bucket")
    topo_term = graph_edit_distance(topo_a, topo_b)
    # Topology differences dominate: a new cluster shape changes optimal
    # parameters more than a few extra layers do.
    return model_term + 4.0 * topo_term
