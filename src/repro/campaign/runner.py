"""Campaign orchestrator: fans grid cells out across a process pool.

The orchestrator is deliberately **stateless against the store**: it
claims eligible runs (atomic, token-guarded), submits them to a
``concurrent.futures`` process pool, and otherwise just watches.  All
durable progress is recorded by the workers themselves, so the
orchestrator can die at any instant — ``python -m repro campaign
resume <id>`` starts a fresh orchestrator that claims whatever is left.

Failure handling:

* **worker SIGKILL / OOM** — the pool raises
  :class:`~concurrent.futures.process.BrokenProcessPool`; the
  orchestrator releases still-``claimed`` (never started) runs
  immediately, rebuilds the pool, and lets ``running`` runs age out via
  their lease before reclaiming them;
* **orchestrator kill -9** — claimed/running rows keep their lease; the
  next orchestrator's :meth:`~repro.campaign.store.CampaignStore.
  reclaim_expired` re-queues them once the lease passes;
* **crash-looping cells** — the reclaim path quarantines cells that
  burn the whole attempt budget without ever reporting an error.
"""

from __future__ import annotations

import concurrent.futures
import multiprocessing
import os
import time
import typing as t

from repro.campaign.grid import (
    CampaignGrid,
    expand_grids,
    grids_payload,
)
from repro.campaign.policy import RetryPolicy
from repro.campaign.store import CampaignStore, RunRow
from repro.campaign.worker import execute_run
from repro.errors import CampaignError

#: progress callback: counts dict after every state change wave.
ProgressFn = t.Callable[[dict[str, int]], None]


def submit_campaign(store: CampaignStore, grids: t.Sequence[CampaignGrid],
                    name: str = "campaign") -> int:
    """Register a campaign and its expanded cells; returns the id."""
    specs = expand_grids(grids)
    campaign_id = store.create_campaign(name, grids_payload(grids))
    store.add_runs(campaign_id, specs)
    return campaign_id


class CampaignRunner:
    """Drive one campaign in the store to completion."""

    def __init__(self, store_path: str | os.PathLike[str],
                 campaign_id: int,
                 max_workers: int = 2,
                 lease_s: float = 10.0,
                 poll_s: float = 0.1,
                 policy: RetryPolicy | None = None,
                 mp_start_method: str = "spawn") -> None:
        if max_workers < 1:
            raise CampaignError("max_workers must be >= 1")
        if lease_s <= 0:
            raise CampaignError("lease_s must be > 0")
        self.store_path = os.fspath(store_path)
        self.campaign_id = campaign_id
        self.max_workers = max_workers
        self.lease_s = lease_s
        self.poll_s = poll_s
        self.policy = policy or RetryPolicy()
        #: Consecutive broken-pool rebuilds tolerated before giving up.
        self.max_pool_rebuilds = 8
        # ``spawn`` keeps workers free of inherited SQLite connections
        # and other fork-unsafe state; ``fork`` is allowed for tests
        # that need fast in-process iteration.
        self._mp_context = multiprocessing.get_context(mp_start_method)
        self._claimant = f"orchestrator-{os.getpid()}"

    # -- pool plumbing ---------------------------------------------------------

    def _new_pool(self) -> concurrent.futures.ProcessPoolExecutor:
        return concurrent.futures.ProcessPoolExecutor(
            max_workers=self.max_workers, mp_context=self._mp_context)

    def run(self, progress: ProgressFn | None = None,
            max_wall_s: float | None = None) -> dict[str, int]:
        """Run until no run is pending/claimed/running; returns counts.

        ``max_wall_s`` bounds the orchestrator's wall clock (CI safety
        net); exceeding it raises :class:`~repro.errors.CampaignError`
        after the pool is torn down — the campaign itself stays
        resumable.
        """
        store = CampaignStore(self.store_path)
        store.campaign(self.campaign_id)  # typed error if unknown
        pool = self._new_pool()
        inflight: dict[concurrent.futures.Future, RunRow] = {}
        deadline = (time.monotonic() + max_wall_s
                    if max_wall_s is not None else None)
        # Consecutive pool breakages without a single completed future:
        # a worker environment that cannot even start (bad interpreter,
        # unimportable package) would otherwise claim/release forever.
        broken_streak = 0
        try:
            while True:
                if deadline is not None and time.monotonic() > deadline:
                    raise CampaignError(
                        f"campaign {self.campaign_id} exceeded its "
                        f"{max_wall_s:g}s wall-clock budget; "
                        f"resume to continue")
                now = time.time()
                store.reclaim_expired(self.campaign_id, self.policy,
                                      now=now)
                # Fill free pool slots with fresh claims.
                submitted = False
                while len(inflight) < self.max_workers:
                    row = store.claim_next(self.campaign_id,
                                           self._claimant, self.lease_s,
                                           now=now)
                    if row is None:
                        break
                    future = pool.submit(
                        execute_run, self.store_path, self.campaign_id,
                        row.spec_id, t.cast(str, row.claim_token),
                        self.lease_s, self.policy.to_payload())
                    inflight[future] = row
                    submitted = True
                if submitted and progress is not None:
                    progress(store.counts(self.campaign_id))

                if not inflight:
                    if store.active_count(self.campaign_id) == 0:
                        break
                    # Nothing claimable right now: sleep to the nearest
                    # backoff gate / lease expiry instead of spinning.
                    wake = store.next_wakeup(self.campaign_id)
                    delay = self.poll_s
                    if wake is not None:
                        delay = min(max(self.poll_s, wake - time.time()),
                                    max(self.poll_s, self.lease_s))
                    time.sleep(delay)
                    continue

                done, _pending = concurrent.futures.wait(
                    inflight, timeout=self.poll_s,
                    return_when=concurrent.futures.FIRST_COMPLETED)
                for future in done:
                    row = inflight.pop(future)
                    try:
                        future.result()
                        broken_streak = 0
                    except concurrent.futures.BrokenExecutor:
                        # BrokenProcessPool: a worker process died
                        # abruptly (SIGKILL/OOM) and poisoned the pool.
                        broken_streak += 1
                        if broken_streak > self.max_pool_rebuilds:
                            raise CampaignError(
                                f"process pool broke "
                                f"{broken_streak} times in a row "
                                f"without completing a single run; "
                                f"the worker environment looks "
                                f"unusable") from None
                        pool, inflight = self._recover_broken_pool(
                            store, pool, inflight, row)
                        break
                if done and progress is not None:
                    progress(store.counts(self.campaign_id))
            counts = store.counts(self.campaign_id)
            if progress is not None:
                progress(counts)
            return counts
        finally:
            pool.shutdown(wait=False, cancel_futures=True)
            store.close()

    def _recover_broken_pool(
        self, store: CampaignStore,
        pool: concurrent.futures.ProcessPoolExecutor,
        inflight: dict[concurrent.futures.Future, RunRow],
        failed_row: RunRow,
    ) -> tuple[concurrent.futures.ProcessPoolExecutor,
               dict[concurrent.futures.Future, RunRow]]:
        """A worker died abruptly; rebuild the pool and release claims.

        Every inflight future is now poisoned.  Runs still in
        ``claimed`` never reached a worker and are released for
        immediate re-claim; runs in ``running`` may have been executing
        in the dead process (or may still be finishing elsewhere), so
        they are left to their lease — the token guard makes either
        outcome safe.
        """
        pool.shutdown(wait=False, cancel_futures=True)
        for row in [failed_row, *inflight.values()]:
            if row.claim_token is not None:
                store.release_claim(self.campaign_id, row.spec_id,
                                    row.claim_token)
        return self._new_pool(), {}
