"""Campaign worker: executes one grid cell inside a pool process.

:func:`execute_run` is the process-pool entry point.  Its contract with
the orchestrator is deliberately thin — everything durable goes through
the store, from *inside the worker process*:

* the worker marks the run ``running``, heartbeats its claim lease from
  a background thread (so long cells are not falsely declared dead),
  and records ``done``/``failed``/``quarantined`` itself;
* the orchestrator merely schedules; if it is ``kill -9``-ed the moment
  a worker finishes, the finished cell is already recorded and a resume
  will not re-run it;
* if the *worker* dies mid-run (SIGKILL, OOM), nothing is recorded, the
  heartbeat stops, and the lease expiry re-queues the cell.

Runners are looked up by name in :data:`RUNNERS` so specs stay plain
JSON across the process boundary and across store restarts.  Paper
runners (``measure``, ``hybrid``, ``chaos``) regenerate evaluation
cells; injection runners (``sleep``, ``flaky``, ``broken``,
``alternating``, ``kamikaze``) exist to prove the robustness contract
in tests and CI.
"""

from __future__ import annotations

import dataclasses
import os
import signal
import threading
import time
import traceback
import typing as t

from repro.campaign.policy import RetryPolicy
from repro.campaign.store import CampaignStore
from repro.errors import CampaignError, ReproError, TransientWorkerError


class InjectedFailure(ReproError):
    """Deterministic failure raised by the ``broken`` test runner."""


@dataclasses.dataclass(frozen=True)
class RunContext:
    """Execution context handed to every runner."""

    #: 1-based attempt number (incremented at claim time).
    attempt: int
    spec_id: str
    campaign_id: int


Runner = t.Callable[[dict, RunContext], t.Mapping[str, object]]


# --------------------------------------------------------------------------
# Paper runners
# --------------------------------------------------------------------------

def _aiacc_overrides(params: t.Mapping[str, object]) -> dict:
    overrides: dict[str, object] = {}
    if params.get("streams") is not None:
        overrides["num_streams"] = int(t.cast(int, params["streams"]))
    if params.get("granularity_mb") is not None:
        overrides["granularity_bytes"] = \
            float(t.cast(float, params["granularity_mb"])) * 1e6
    if params.get("algorithm") is not None:
        overrides["algorithm"] = str(params["algorithm"])
    return overrides


def measure_runner(params: dict, _ctx: RunContext) -> dict:
    """One throughput cell: model x backend x gpus (x stream tuning).

    ``"diagnose": true`` in the cell parameters runs the cell under a
    full observability bundle with streaming detectors attached and
    records the typed findings (plus their canonical digest) in the
    durable result, so a campaign doubles as a regression sweep.  Cells
    without the flag record exactly the pre-diagnosis result payload —
    existing campaign digests are stable.
    """
    from repro.frameworks import make_backend
    from repro.harness.experiments import tuned_aiacc_config
    from repro.sim.rdma import RDMA, RDMA_DEFAULT_BANDWIDTH_BPS
    from repro.sim.tcp import TCP
    from repro.training.trainer import run_training

    model = str(params["model"])
    gpus = int(t.cast(int, params["gpus"]))
    backend_name = str(params.get("backend", "aiacc"))
    rdma = bool(params.get("rdma", False))
    backend: t.Any = backend_name
    if backend_name == "aiacc":
        config = tuned_aiacc_config(model, gpus)
        overrides = _aiacc_overrides(params)
        if overrides:
            config = config.replace(**overrides)
        backend = make_backend("aiacc", config=config)
    obs = None
    if params.get("diagnose"):
        from repro.obs import Observability

        obs = Observability(enabled=True)
        obs.attach_detectors()
    result = run_training(
        model, backend, gpus,
        batch_per_gpu=(int(t.cast(int, params["batch_per_gpu"]))
                       if params.get("batch_per_gpu") is not None else None),
        measure_iterations=int(t.cast(int, params.get("iterations", 3))),
        warmup_iterations=1,
        transport=RDMA if rdma else TCP,
        nic_bandwidth_bps=(RDMA_DEFAULT_BANDWIDTH_BPS if rdma else 30e9),
        obs=obs)
    payload: dict[str, object] = {
        "model": result.model,
        "backend": result.backend,
        "gpus": result.num_gpus,
        "batch_per_gpu": result.batch_per_gpu,
        "mean_iteration_s": result.mean_iteration_s,
        "throughput": result.throughput,
        "scaling_efficiency": result.scaling_efficiency,
        "exposed_comm_s": result.exposed_comm_s,
    }
    if obs is not None:
        from repro.obs.diagnosis import diagnose

        report = diagnose(obs)
        payload["findings"] = [f.record() for f in report.findings]
        payload["findings_digest"] = report.findings_digest
    return payload


def hybrid_runner(params: dict, _ctx: RunContext) -> dict:
    """Fig. 13 cell: hybrid data+model parallelism throughput."""
    from repro.harness.experiments import tuned_aiacc_config
    from repro.training.hybrid import run_hybrid_training

    model = str(params["model"])
    gpus = int(t.cast(int, params["gpus"]))
    backend = str(params.get("backend", "aiacc"))
    options = None
    if backend == "aiacc":
        options = {"config": tuned_aiacc_config(model, gpus)}
    result = run_hybrid_training(
        model, backend, gpus,
        model_parallel_degree=int(
            t.cast(int, params.get("model_parallel_degree", 2))),
        measure_iterations=3, warmup_iterations=1,
        backend_options=options)
    return {
        "model": model,
        "backend": backend,
        "gpus": gpus,
        "throughput": result.throughput,
        "mean_iteration_s": result.mean_iteration_s,
    }


def parse_fault_plan(text: str) -> dict[str, float]:
    """``"chaos:mtbf=0.35,horizon=2.5"`` -> its keyword arguments."""
    kind, _, body = text.partition(":")
    if kind != "chaos":
        raise CampaignError(f"unknown fault plan {text!r}")
    kwargs: dict[str, float] = {}
    if body:
        for item in body.split(","):
            key, _, value = item.partition("=")
            if not _ or not key:
                raise CampaignError(f"malformed fault plan {text!r}")
            try:
                kwargs[key] = float(value)
            except ValueError as exc:
                raise CampaignError(
                    f"malformed fault plan {text!r}: {exc}") from exc
    return kwargs


def chaos_runner(params: dict, _ctx: RunContext) -> dict:
    """One chaos-soak seed as a durable campaign cell."""
    from repro.harness.chaos import run_chaos_case

    plan = parse_fault_plan(str(params.get("fault_plan", "chaos:")))
    outcome, _result = run_chaos_case(
        int(t.cast(int, params.get("seed", 0))),
        num_gpus=int(t.cast(int, params.get("gpus", 8))),
        gpus_per_node=int(t.cast(int, params.get("gpus_per_node", 2))),
        total_iterations=int(t.cast(int, params.get("iterations", 12))),
        horizon_s=plan.get("horizon", 2.5),
        mtbf_s=plan.get("mtbf", 0.35))
    return {
        "seed": outcome.seed,
        "status": outcome.status,
        "error": outcome.error,
        "outcome_digest": outcome.outcome_digest(),
        "final_world": outcome.final_world,
        "final_epoch": outcome.final_epoch,
        "epoch_transitions": outcome.epoch_transitions,
        "recoveries": outcome.recoveries,
    }


# --------------------------------------------------------------------------
# Injection runners (robustness tests and CI smoke)
# --------------------------------------------------------------------------

def sleep_runner(params: dict, ctx: RunContext) -> dict:
    """Hold the cell busy; the knob that makes crash windows testable."""
    time.sleep(float(t.cast(float, params.get("duration_s", 0.1))))
    return {"slept_s": params.get("duration_s", 0.1),
            "cell": params.get("cell")}


def flaky_runner(params: dict, ctx: RunContext) -> dict:
    """Transient failure: raises until attempt ``succeed_at`` is reached."""
    succeed_at = int(t.cast(int, params.get("succeed_at", 2)))
    if ctx.attempt < succeed_at:
        raise TransientWorkerError(
            f"injected transient failure on attempt {ctx.attempt}")
    return {"cell": params.get("cell"), "succeeded_on_attempt_ge":
            succeed_at}


def broken_runner(params: dict, ctx: RunContext) -> dict:
    """Deterministic failure: the same error class on every attempt."""
    raise InjectedFailure(
        f"injected deterministic failure (cell {params.get('cell')})")


def alternating_runner(params: dict, ctx: RunContext) -> dict:
    """A different error class each attempt: never looks deterministic,
    so the retry budget (not the quarantine heuristic) must stop it."""
    if ctx.attempt % 2:
        raise TransientWorkerError(
            f"odd-attempt failure (attempt {ctx.attempt})")
    raise InjectedFailure(f"even-attempt failure (attempt {ctx.attempt})")


def kamikaze_runner(params: dict, ctx: RunContext) -> dict:
    """SIGKILL the worker process mid-run for ``die_attempts`` attempts.

    Models a hard worker loss (OOM killer, spot preemption): nothing is
    recorded, the heartbeat stops, and the lease-expiry reclaim must
    re-queue the cell; later attempts complete deterministically.
    """
    if ctx.attempt <= int(t.cast(int, params.get("die_attempts", 1))):
        os.kill(os.getpid(), signal.SIGKILL)
    return {"cell": params.get("cell"), "survived_attempt": True}


#: Runner registry: spec ``runner`` name -> callable.
RUNNERS: dict[str, Runner] = {
    "measure": measure_runner,
    "hybrid": hybrid_runner,
    "chaos": chaos_runner,
    "sleep": sleep_runner,
    "flaky": flaky_runner,
    "broken": broken_runner,
    "alternating": alternating_runner,
    "kamikaze": kamikaze_runner,
}


# --------------------------------------------------------------------------
# Pool entry point
# --------------------------------------------------------------------------

class _HeartbeatThread(threading.Thread):
    """Extends the claim lease every ``lease_s / 3`` over its own store
    connection until stopped (or until the claim goes stale)."""

    def __init__(self, store_path: str, campaign_id: int, spec_id: str,
                 claim_token: str, lease_s: float) -> None:
        super().__init__(daemon=True, name=f"heartbeat-{spec_id}")
        self._args = (campaign_id, spec_id, claim_token, lease_s)
        self._store_path = store_path
        self._stop = threading.Event()
        #: Set when the store rejected a heartbeat: the lease was
        #: reclaimed and this worker's result will be dropped as stale.
        self.stale = threading.Event()

    def run(self) -> None:
        campaign_id, spec_id, token, lease_s = self._args
        interval = max(0.05, lease_s / 3.0)
        try:
            with CampaignStore(self._store_path) as store:
                while not self._stop.wait(interval):
                    if not store.heartbeat(campaign_id, spec_id, token,
                                           lease_s):
                        self.stale.set()
                        return
        except ReproError:  # pragma: no cover - store teardown race
            pass

    def stop(self) -> None:
        self._stop.set()


def execute_run(store_path: str, campaign_id: int, spec_id: str,
                claim_token: str, lease_s: float,
                policy_payload: dict) -> str:
    """Execute one claimed run and durably record its terminal state.

    Returns the resulting state name (for orchestrator logging only —
    the store already holds the truth).  Never raises for run
    failures; only infrastructure problems (store unreachable)
    propagate to the pool.
    """
    policy = RetryPolicy.from_payload(policy_payload)
    with CampaignStore(store_path) as store:
        row = store.run(campaign_id, spec_id)
        if row.claim_token != claim_token:
            return "stale"
        if not store.mark_running(campaign_id, spec_id, claim_token):
            return "stale"
        try:
            runner = RUNNERS[row.runner]
        except KeyError:
            state = store.record_failure(
                campaign_id, spec_id, claim_token, policy,
                error_class="UnknownRunner",
                error=f"no runner named {row.runner!r}",
                traceback_text="", wall_time_s=0.0)
            return state or "stale"

        heartbeat = _HeartbeatThread(store_path, campaign_id, spec_id,
                                     claim_token, lease_s)
        heartbeat.start()
        context = RunContext(attempt=row.attempt, spec_id=spec_id,
                             campaign_id=campaign_id)
        started = time.perf_counter()
        try:
            result = runner(dict(row.params), context)
        except Exception as exc:
            wall = time.perf_counter() - started
            heartbeat.stop()
            state = store.record_failure(
                campaign_id, spec_id, claim_token, policy,
                error_class=type(exc).__name__, error=str(exc),
                traceback_text=traceback.format_exc(), wall_time_s=wall)
            return state or "stale"
        wall = time.perf_counter() - started
        heartbeat.stop()
        if store.record_done(campaign_id, spec_id, claim_token,
                             dict(result), wall_time_s=wall):
            return "done"
        return "stale"
