"""Parameter-grid expansion into deterministic run specs.

A campaign is a set of **cells**: every combination of the grid's axes
(model x ranks x streams x algorithm x fault plan x seed, plus whatever
else a runner understands), each executed by a named runner from
:mod:`repro.campaign.worker`.  Cells are identified by a deterministic
``spec_id`` — a digest of the runner name and the cell's parameters — so
resubmitting the same grid into a store is idempotent and an interrupted
campaign resumes against exactly the same cell set.
"""

from __future__ import annotations

import dataclasses
import hashlib
import itertools
import json
import typing as t

from repro.errors import CampaignError

#: JSON-safe scalar types allowed as axis values / cell parameters.
Scalar = t.Union[str, int, float, bool, None]


def _require_scalar(axis: str, value: object) -> Scalar:
    if value is not None and not isinstance(value, (str, int, float, bool)):
        raise CampaignError(
            f"axis {axis!r} value {value!r} is not a JSON-safe scalar")
    return t.cast(Scalar, value)


@dataclasses.dataclass(frozen=True)
class RunSpec:
    """One grid cell: a runner name plus its JSON-safe parameters."""

    runner: str
    params: t.Mapping[str, Scalar]

    @property
    def spec_id(self) -> str:
        """Deterministic identity of this cell (stable across sessions)."""
        payload = json.dumps({"runner": self.runner,
                              "params": dict(sorted(self.params.items()))},
                             sort_keys=True)
        return hashlib.blake2b(payload.encode(), digest_size=8).hexdigest()

    def to_json(self) -> str:
        return json.dumps({"runner": self.runner,
                           "params": dict(sorted(self.params.items()))},
                          sort_keys=True)

    @classmethod
    def from_json(cls, text: str) -> "RunSpec":
        try:
            data = json.loads(text)
            return cls(runner=data["runner"], params=dict(data["params"]))
        except (ValueError, KeyError, TypeError) as exc:
            raise CampaignError(f"corrupt run spec: {exc}") from exc


@dataclasses.dataclass(frozen=True)
class CampaignGrid:
    """A cross-product of axes executed by one runner.

    ``base`` parameters are merged into every cell (axes win on
    conflict only if the axis redefines the same name, which is
    rejected — one source of truth per parameter).
    """

    runner: str = "measure"
    axes: t.Mapping[str, t.Sequence[Scalar]] = \
        dataclasses.field(default_factory=dict)
    base: t.Mapping[str, Scalar] = dataclasses.field(default_factory=dict)

    def __post_init__(self) -> None:
        if not self.runner:
            raise CampaignError("grid needs a runner name")
        overlap = set(self.axes) & set(self.base)
        if overlap:
            raise CampaignError(
                f"parameters {sorted(overlap)} appear both as an axis and "
                f"as a base value")
        for axis, values in self.axes.items():
            if not values:
                raise CampaignError(f"axis {axis!r} has no values")
            for value in values:
                _require_scalar(axis, value)
        for name, value in self.base.items():
            _require_scalar(name, value)

    def expand(self) -> list[RunSpec]:
        """Every cell of the grid, in deterministic axis-sorted order."""
        names = sorted(self.axes)
        specs: list[RunSpec] = []
        for combo in itertools.product(*(self.axes[name]
                                         for name in names)):
            params = dict(self.base)
            params.update(zip(names, combo))
            specs.append(RunSpec(runner=self.runner, params=params))
        return specs

    def to_payload(self) -> dict:
        return {"runner": self.runner,
                "axes": {name: list(values)
                         for name, values in sorted(self.axes.items())},
                "base": dict(sorted(self.base.items()))}

    @classmethod
    def from_payload(cls, data: t.Mapping[str, t.Any]) -> "CampaignGrid":
        try:
            return cls(runner=data.get("runner", "measure"),
                       axes={str(k): tuple(v)
                             for k, v in dict(data.get("axes", {})).items()},
                       base=dict(data.get("base", {})))
        except (TypeError, ValueError, AttributeError) as exc:
            raise CampaignError(f"corrupt grid payload: {exc}") from exc


def expand_grids(grids: t.Sequence[CampaignGrid]) -> list[RunSpec]:
    """Expand several grids into one deduplicated, ordered cell list.

    Duplicate cells (same runner + params, hence same ``spec_id``) are
    collapsed — two figures sharing a (model, backend, gpus) point
    measure it once and both read the same durable result.
    """
    if not grids:
        raise CampaignError("campaign needs at least one grid")
    seen: dict[str, RunSpec] = {}
    for grid in grids:
        for spec in grid.expand():
            seen.setdefault(spec.spec_id, spec)
    return list(seen.values())


def grids_payload(grids: t.Sequence[CampaignGrid]) -> str:
    return json.dumps([grid.to_payload() for grid in grids], sort_keys=True)


def grids_from_payload(text: str) -> list[CampaignGrid]:
    try:
        data = json.loads(text)
    except ValueError as exc:
        raise CampaignError(f"corrupt campaign grid JSON: {exc}") from exc
    if not isinstance(data, list):
        raise CampaignError("campaign grid JSON must be a list of grids")
    return [CampaignGrid.from_payload(item) for item in data]


# --------------------------------------------------------------------------
# Named grids
# --------------------------------------------------------------------------

def figures_grids() -> list[CampaignGrid]:
    """The paper's Fig. 9-13 sweeps as one campaign.

    Axes come from :data:`repro.harness.experiments.FIGURE_SWEEPS` — the
    same declaration the in-process harness figures use — so the
    campaign regenerates exactly the published cells.
    """
    from repro.harness.experiments import FIGURE_SWEEPS

    grids = []
    for figure, sweep in sorted(FIGURE_SWEEPS.items()):
        grids.append(CampaignGrid(
            runner=sweep.get("runner", "measure"),
            axes={"model": tuple(sweep["models"]),
                  "backend": tuple(sweep["backends"]),
                  "gpus": tuple(sweep["gpus"])},
            base={"figure": figure, "seed": 0,
                  **sweep.get("base", {})},
        ))
    return grids


def smoke_grids() -> list[CampaignGrid]:
    """A tiny deterministic grid for CI smoke and local sanity runs."""
    return [CampaignGrid(
        runner="measure",
        axes={"model": ("resnet50",),
              "backend": ("aiacc", "horovod"),
              "gpus": (8, 16)},
        base={"figure": "smoke", "seed": 0},
    )]


def chaos_grids(seeds: int = 4) -> list[CampaignGrid]:
    """Fault-plan sweep: chaos soak seeds as independent durable cells."""
    return [CampaignGrid(
        runner="chaos",
        axes={"seed": tuple(range(seeds))},
        base={"fault_plan": "chaos:mtbf=0.35,horizon=2.5",
              "gpus": 8, "gpus_per_node": 2, "iterations": 12},
    )]


#: name -> zero-arg factory of the campaign's grids.
NAMED_GRIDS: dict[str, t.Callable[[], list[CampaignGrid]]] = {
    "figures": figures_grids,
    "smoke": smoke_grids,
    "chaos": chaos_grids,
}


def named_grids(name: str) -> list[CampaignGrid]:
    """Resolve a named campaign grid (``figures``/``smoke``/``chaos``)."""
    try:
        factory = NAMED_GRIDS[name]
    except KeyError:
        raise CampaignError(
            f"unknown grid {name!r}; available: "
            f"{', '.join(sorted(NAMED_GRIDS))}") from None
    return factory()
