"""Retry/quarantine policy for failed campaign runs.

Two failure families need opposite handling:

* **transient** — a flaky environment condition (worker OOM-killed,
  store briefly locked, injected chaos): retry the cell with capped
  exponential backoff so a burst of failures cannot hot-loop.
* **deterministic** — the cell itself is broken (bad parameter combo,
  reproducible simulation error): retrying re-derives the same failure
  forever.  The policy's heuristic: the **same error class twice in a
  row on the same spec** is deterministic, and the cell is quarantined
  so the rest of the campaign completes instead of looping.

The policy is a pure function of ``(attempt, error_class,
previous_error_class)`` and is applied *inside the store's atomic
failure transition* (:meth:`repro.campaign.store.CampaignStore.
record_failure`), so a crash between "decide" and "record" cannot
split the decision from the state.
"""

from __future__ import annotations

import dataclasses

from repro.errors import CampaignError

#: Terminal decision kinds.
RETRY = "retry"
FAIL = "fail"
QUARANTINE = "quarantine"


@dataclasses.dataclass(frozen=True)
class Decision:
    """What to do with a just-failed run."""

    action: str          #: one of RETRY / FAIL / QUARANTINE
    delay_s: float = 0.0  #: backoff before the retry becomes claimable
    reason: str = ""


@dataclasses.dataclass(frozen=True)
class RetryPolicy:
    """Capped exponential backoff with deterministic-failure quarantine."""

    #: Maximum times a cell may be *started* (first try included).
    max_attempts: int = 4
    #: Backoff before retry ``n`` is ``base * multiplier**(n-1)``...
    base_backoff_s: float = 0.5
    multiplier: float = 2.0
    #: ...capped here, so a long campaign never sleeps unboundedly.
    max_backoff_s: float = 30.0
    #: Quarantine when the same error class repeats on the same spec.
    quarantine_repeated_class: bool = True

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise CampaignError("max_attempts must be >= 1")
        if self.base_backoff_s < 0 or self.max_backoff_s < 0:
            raise CampaignError("backoff times must be >= 0")
        if self.multiplier < 1.0:
            raise CampaignError("multiplier must be >= 1")

    def backoff_s(self, attempt: int) -> float:
        """Backoff after the ``attempt``-th start (1-based) failed."""
        raw = self.base_backoff_s * self.multiplier ** max(0, attempt - 1)
        return min(self.max_backoff_s, raw)

    def decide(self, attempt: int, error_class: str,
               previous_error_class: str | None) -> Decision:
        """Policy outcome for a failure on the ``attempt``-th start."""
        if (self.quarantine_repeated_class
                and previous_error_class is not None
                and error_class == previous_error_class):
            return Decision(
                QUARANTINE,
                reason=f"error class {error_class!r} repeated on "
                       f"attempts {attempt - 1} and {attempt}: "
                       f"deterministic failure")
        if attempt >= self.max_attempts:
            return Decision(
                FAIL,
                reason=f"retry budget exhausted after {attempt} attempts")
        return Decision(RETRY, delay_s=self.backoff_s(attempt),
                        reason=f"transient {error_class!r}; retrying")

    # -- (de)serialization across the process-pool boundary -------------------

    def to_payload(self) -> dict:
        return dataclasses.asdict(self)

    @classmethod
    def from_payload(cls, data: dict) -> "RetryPolicy":
        return cls(**data)
