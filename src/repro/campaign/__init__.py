"""Crash-safe experiment-campaign service (durable grid execution).

The paper's evaluation is a large grid of model x world-size x
stream-count x algorithm runs; regenerating it through ad-hoc in-process
loops means one crash, bad seed or OOM loses the whole sweep.  This
package makes campaign execution a fault-tolerant subsystem:

* :mod:`repro.campaign.grid` expands a parameter grid into deterministic
  :class:`~repro.campaign.grid.RunSpec` cells;
* :mod:`repro.campaign.store` records every run in a durable
  SQLite-backed :class:`~repro.campaign.store.CampaignStore` with atomic
  ``pending -> claimed -> running -> done | failed | quarantined``
  transitions, claim leases and heartbeats;
* :mod:`repro.campaign.policy` retries transient failures with capped
  exponential backoff and quarantines deterministic ones;
* :mod:`repro.campaign.worker` executes one cell inside a pool process
  and records its terminal state durably *from the worker*, so an
  orchestrator crash never loses finished work;
* :mod:`repro.campaign.runner` fans cells out across a process pool,
  reclaims expired leases, and survives ``kill -9`` of workers or the
  orchestrator itself (``python -m repro campaign resume``);
* :mod:`repro.campaign.report` renders the durable results, computes
  the resume-invariant report digest, and diffs two stores cell by cell
  (``python -m repro campaign diff``).

Driven by ``python -m repro campaign`` (submit/run/status/resume/report).
"""

from repro.campaign.grid import (
    CampaignGrid,
    RunSpec,
    expand_grids,
    named_grids,
)
from repro.campaign.policy import RetryPolicy
from repro.campaign.report import (
    CampaignReport,
    CellDiff,
    diff_reports,
    load_report,
)
from repro.campaign.runner import CampaignRunner
from repro.campaign.store import STATES, CampaignStore, RunRow

__all__ = [
    "CampaignGrid",
    "CampaignReport",
    "CampaignRunner",
    "CampaignStore",
    "CellDiff",
    "RetryPolicy",
    "RunRow",
    "RunSpec",
    "STATES",
    "diff_reports",
    "expand_grids",
    "load_report",
    "named_grids",
]
