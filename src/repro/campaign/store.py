"""Durable SQLite-backed campaign results store.

Every run of every campaign lives in one SQLite database (WAL mode, so
the orchestrator and every pool worker read/write concurrently).  The
store is the single source of truth for campaign state; orchestrators
and workers are stateless against it, which is what makes ``kill -9``
of either side recoverable.

Run-state machine::

    pending -> claimed -> running -> done
                   \\          \\---> failed       (retry budget exhausted)
                    \\          \\--> quarantined  (deterministic failure)
                     \\
                      +<-- expired-lease reclaim (claimed/running whose
                           lease passed; back to pending, or quarantined
                           once the attempt budget is burned)

Robustness contracts:

* **Idempotent claims** — claiming is a single ``UPDATE ... WHERE
  state='pending'`` with a fresh ``claim_token``; two racing claimants
  can never both own a run because only one UPDATE matches.
* **Exactly-once completion** — terminal transitions are guarded by
  ``claim_token``; a worker whose lease was reclaimed (it looked dead
  but was only slow) gets its stale result rejected instead of
  double-recording the cell.
* **Crash detection via leases** — claimants heartbeat
  ``lease_expires_at``; :meth:`reclaim_expired` re-queues runs whose
  lease passed (their worker is presumed dead) and quarantines runs
  that keep burning attempts without ever reporting an error (a
  crash-looping cell).
* **Policy inside the transition** — :meth:`record_failure` applies the
  :class:`~repro.campaign.policy.RetryPolicy` within the same immediate
  transaction that reads the previous error class, so retry/quarantine
  decisions are atomic with the state they depend on.
"""

from __future__ import annotations

import dataclasses
import json
import os
import pathlib
import sqlite3
import time
import typing as t
import uuid

from repro.campaign.grid import RunSpec
from repro.campaign.policy import FAIL, QUARANTINE, RETRY, RetryPolicy
from repro.errors import CampaignStoreError

#: Every legal run state.
STATES = ("pending", "claimed", "running", "done", "failed", "quarantined")

#: States a run can still leave.
ACTIVE_STATES = ("pending", "claimed", "running")

#: States a run never leaves.
TERMINAL_STATES = ("done", "failed", "quarantined")

_SCHEMA = """
CREATE TABLE IF NOT EXISTS campaigns (
    id          INTEGER PRIMARY KEY AUTOINCREMENT,
    name        TEXT NOT NULL,
    grid_json   TEXT NOT NULL,
    created_at  REAL NOT NULL
);
CREATE TABLE IF NOT EXISTS runs (
    campaign_id      INTEGER NOT NULL,
    spec_id          TEXT NOT NULL,
    runner           TEXT NOT NULL,
    params_json      TEXT NOT NULL,
    state            TEXT NOT NULL DEFAULT 'pending',
    attempt          INTEGER NOT NULL DEFAULT 0,
    not_before       REAL NOT NULL DEFAULT 0,
    claim_token      TEXT,
    claimed_by       TEXT,
    claimed_at       REAL,
    heartbeat_at     REAL,
    lease_expires_at REAL,
    started_at       REAL,
    finished_at      REAL,
    wall_time_s      REAL,
    error_class      TEXT,
    last_error_class TEXT,
    error            TEXT,
    traceback        TEXT,
    result_json      TEXT,
    PRIMARY KEY (campaign_id, spec_id)
);
CREATE INDEX IF NOT EXISTS runs_by_state
    ON runs (campaign_id, state, not_before);
"""


@dataclasses.dataclass(frozen=True)
class RunRow:
    """One run as recorded in the store."""

    campaign_id: int
    spec_id: str
    runner: str
    params: dict
    state: str
    attempt: int
    not_before: float
    claim_token: str | None
    claimed_by: str | None
    heartbeat_at: float | None
    lease_expires_at: float | None
    wall_time_s: float | None
    error_class: str | None
    error: str | None
    traceback: str | None
    result: dict | None

    @classmethod
    def from_sql(cls, row: sqlite3.Row) -> "RunRow":
        return cls(
            campaign_id=row["campaign_id"],
            spec_id=row["spec_id"],
            runner=row["runner"],
            params=json.loads(row["params_json"]),
            state=row["state"],
            attempt=row["attempt"],
            not_before=row["not_before"],
            claim_token=row["claim_token"],
            claimed_by=row["claimed_by"],
            heartbeat_at=row["heartbeat_at"],
            lease_expires_at=row["lease_expires_at"],
            wall_time_s=row["wall_time_s"],
            error_class=row["error_class"],
            error=row["error"],
            traceback=row["traceback"],
            result=(json.loads(row["result_json"])
                    if row["result_json"] else None),
        )


@dataclasses.dataclass(frozen=True)
class CampaignInfo:
    id: int
    name: str
    grid_json: str
    created_at: float


class CampaignStore:
    """One SQLite connection to the durable campaign database.

    Instances are cheap and single-threaded by design: the orchestrator,
    each pool worker and each heartbeat thread open their own store on
    the same path and coordinate purely through SQLite's locking.
    """

    def __init__(self, path: str | pathlib.Path,
                 create: bool = True,
                 busy_timeout_s: float = 10.0) -> None:
        self.path = pathlib.Path(path)
        if not create and not self.path.exists():
            raise CampaignStoreError(f"no campaign store at {self.path}")
        if create:
            self.path.parent.mkdir(parents=True, exist_ok=True)
        try:
            self._conn = sqlite3.connect(
                self.path, timeout=busy_timeout_s,
                isolation_level=None)  # autocommit; explicit BEGIN below
            self._conn.row_factory = sqlite3.Row
            self._conn.execute("PRAGMA journal_mode=WAL")
            self._conn.execute("PRAGMA synchronous=NORMAL")
            self._conn.execute(
                f"PRAGMA busy_timeout={int(busy_timeout_s * 1000)}")
            self._conn.executescript(_SCHEMA)
        except sqlite3.Error as exc:
            raise CampaignStoreError(
                f"cannot open campaign store {self.path}: {exc}") from exc

    def close(self) -> None:
        self._conn.close()

    def __enter__(self) -> "CampaignStore":
        return self

    def __exit__(self, *_exc: object) -> None:
        self.close()

    # -- transaction helper ----------------------------------------------------

    def _immediate(self) -> "_Txn":
        return _Txn(self._conn)

    # -- campaigns -------------------------------------------------------------

    def create_campaign(self, name: str, grid_json: str = "[]",
                        now: float | None = None) -> int:
        """Register a campaign; returns its integer id."""
        now = time.time() if now is None else now
        try:
            with self._immediate() as conn:
                cursor = conn.execute(
                    "INSERT INTO campaigns (name, grid_json, created_at) "
                    "VALUES (?, ?, ?)", (name, grid_json, now))
                return int(t.cast(int, cursor.lastrowid))
        except sqlite3.Error as exc:
            raise CampaignStoreError(f"cannot create campaign: {exc}") \
                from exc

    def campaign(self, campaign_id: int) -> CampaignInfo:
        row = self._query(
            "SELECT * FROM campaigns WHERE id = ?", (campaign_id,)
        ).fetchone()
        if row is None:
            raise CampaignStoreError(
                f"no campaign {campaign_id} in {self.path}")
        return CampaignInfo(id=row["id"], name=row["name"],
                            grid_json=row["grid_json"],
                            created_at=row["created_at"])

    def campaigns(self) -> list[CampaignInfo]:
        rows = self._query("SELECT * FROM campaigns ORDER BY id").fetchall()
        return [CampaignInfo(id=r["id"], name=r["name"],
                             grid_json=r["grid_json"],
                             created_at=r["created_at"]) for r in rows]

    def _query(self, sql: str, args: tuple = ()) -> sqlite3.Cursor:
        try:
            return self._conn.execute(sql, args)
        except sqlite3.Error as exc:
            raise CampaignStoreError(
                f"campaign store {self.path} query failed: {exc}") from exc

    # -- run registration ------------------------------------------------------

    def add_runs(self, campaign_id: int,
                 specs: t.Sequence[RunSpec]) -> int:
        """Insert cells idempotently; returns how many were new.

        Resubmitting a grid into an existing campaign is a no-op for
        cells already present (whatever their state) — resume must
        never reset recorded work.
        """
        inserted = 0
        try:
            with self._immediate() as conn:
                for spec in specs:
                    cursor = conn.execute(
                        "INSERT OR IGNORE INTO runs "
                        "(campaign_id, spec_id, runner, params_json) "
                        "VALUES (?, ?, ?, ?)",
                        (campaign_id, spec.spec_id, spec.runner,
                         json.dumps(dict(sorted(spec.params.items())),
                                    sort_keys=True)))
                    inserted += cursor.rowcount
        except sqlite3.Error as exc:
            raise CampaignStoreError(f"cannot add runs: {exc}") from exc
        return inserted

    # -- claims and leases -----------------------------------------------------

    def claim_next(self, campaign_id: int, claimed_by: str,
                   lease_s: float, now: float | None = None
                   ) -> RunRow | None:
        """Atomically claim one eligible pending run, or return None.

        The claim is a single UPDATE guarded by ``state='pending'``:
        concurrent claimants (several orchestrators, or an orchestrator
        racing its own previous incarnation) can never both win the
        same run.
        """
        now = time.time() if now is None else now
        token = uuid.uuid4().hex
        try:
            with self._immediate() as conn:
                row = conn.execute(
                    "SELECT spec_id FROM runs WHERE campaign_id = ? AND "
                    "state = 'pending' AND not_before <= ? "
                    "ORDER BY spec_id LIMIT 1",
                    (campaign_id, now)).fetchone()
                if row is None:
                    return None
                cursor = conn.execute(
                    "UPDATE runs SET state = 'claimed', "
                    "attempt = attempt + 1, claim_token = ?, "
                    "claimed_by = ?, claimed_at = ?, heartbeat_at = ?, "
                    "lease_expires_at = ?, error_class = NULL, "
                    "error = NULL, traceback = NULL "
                    "WHERE campaign_id = ? AND spec_id = ? AND "
                    "state = 'pending'",
                    (token, claimed_by, now, now, now + lease_s,
                     campaign_id, row["spec_id"]))
                if cursor.rowcount != 1:  # pragma: no cover - race window
                    return None
                claimed = conn.execute(
                    "SELECT * FROM runs WHERE campaign_id = ? AND "
                    "spec_id = ?", (campaign_id, row["spec_id"])).fetchone()
        except sqlite3.Error as exc:
            raise CampaignStoreError(f"claim failed: {exc}") from exc
        return RunRow.from_sql(claimed)

    def mark_running(self, campaign_id: int, spec_id: str,
                     claim_token: str, now: float | None = None) -> bool:
        """claimed -> running (token-guarded); False if the claim is stale."""
        now = time.time() if now is None else now
        cursor = self._transition(
            "UPDATE runs SET state = 'running', started_at = ?, "
            "heartbeat_at = ? "
            "WHERE campaign_id = ? AND spec_id = ? AND claim_token = ? "
            "AND state = 'claimed'",
            (now, now, campaign_id, spec_id, claim_token))
        return cursor.rowcount == 1

    def heartbeat(self, campaign_id: int, spec_id: str, claim_token: str,
                  lease_s: float, now: float | None = None) -> bool:
        """Extend the claim lease; False once the claim was reclaimed."""
        now = time.time() if now is None else now
        cursor = self._transition(
            "UPDATE runs SET heartbeat_at = ?, lease_expires_at = ? "
            "WHERE campaign_id = ? AND spec_id = ? AND claim_token = ? "
            "AND state IN ('claimed', 'running')",
            (now, now + lease_s, campaign_id, spec_id, claim_token))
        return cursor.rowcount == 1

    def release_claim(self, campaign_id: int, spec_id: str,
                      claim_token: str) -> bool:
        """claimed -> pending for a run that never started executing.

        Used by the orchestrator when its process pool breaks before a
        dispatched run reached the worker: the run can be re-queued
        immediately instead of waiting out the lease.  Only the
        ``claimed`` state is eligible — a ``running`` run may still be
        executing somewhere, so it must age out via its lease.
        """
        cursor = self._transition(
            "UPDATE runs SET state = 'pending', claim_token = NULL, "
            "claimed_by = NULL, claimed_at = NULL, heartbeat_at = NULL, "
            "lease_expires_at = NULL, attempt = attempt - 1 "
            "WHERE campaign_id = ? AND spec_id = ? AND claim_token = ? "
            "AND state = 'claimed'",
            (campaign_id, spec_id, claim_token))
        return cursor.rowcount == 1

    def reclaim_expired(self, campaign_id: int, policy: RetryPolicy,
                        now: float | None = None) -> list[str]:
        """Re-queue claimed/running runs whose lease expired.

        The claimant is presumed dead (worker SIGKILL, orchestrator
        ``kill -9``, machine loss).  Runs still inside their attempt
        budget go back to ``pending``; runs that already burned the
        budget without ever reporting a typed error are quarantined as
        crash-looping.  Returns the re-queued spec ids.
        """
        now = time.time() if now is None else now
        reclaimed: list[str] = []
        try:
            with self._immediate() as conn:
                rows = conn.execute(
                    "SELECT spec_id, attempt FROM runs "
                    "WHERE campaign_id = ? AND "
                    "state IN ('claimed', 'running') AND "
                    "lease_expires_at < ? ORDER BY spec_id",
                    (campaign_id, now)).fetchall()
                for row in rows:
                    if row["attempt"] >= policy.max_attempts:
                        conn.execute(
                            "UPDATE runs SET state = 'quarantined', "
                            "claim_token = NULL, finished_at = ?, "
                            "error_class = 'WorkerCrash', "
                            "error = ? "
                            "WHERE campaign_id = ? AND spec_id = ? AND "
                            "state IN ('claimed', 'running')",
                            (now,
                             f"lease expired on every one of "
                             f"{row['attempt']} attempts; claimant keeps "
                             f"dying without reporting an error",
                             campaign_id, row["spec_id"]))
                    else:
                        conn.execute(
                            "UPDATE runs SET state = 'pending', "
                            "claim_token = NULL, claimed_by = NULL, "
                            "claimed_at = NULL, heartbeat_at = NULL, "
                            "lease_expires_at = NULL "
                            "WHERE campaign_id = ? AND spec_id = ? AND "
                            "state IN ('claimed', 'running')",
                            (campaign_id, row["spec_id"]))
                        reclaimed.append(row["spec_id"])
        except sqlite3.Error as exc:
            raise CampaignStoreError(f"lease reclaim failed: {exc}") from exc
        return reclaimed

    # -- terminal transitions --------------------------------------------------

    def record_done(self, campaign_id: int, spec_id: str, claim_token: str,
                    result: t.Mapping[str, object], wall_time_s: float,
                    now: float | None = None) -> bool:
        """running -> done (token-guarded, exactly-once).

        Returns False when the claim went stale — the run was reclaimed
        and belongs to a newer attempt, so this result is dropped.
        """
        now = time.time() if now is None else now
        cursor = self._transition(
            "UPDATE runs SET state = 'done', result_json = ?, "
            "wall_time_s = ?, finished_at = ?, claim_token = NULL, "
            "error_class = NULL, error = NULL, traceback = NULL "
            "WHERE campaign_id = ? AND spec_id = ? AND claim_token = ? "
            "AND state IN ('claimed', 'running')",
            (json.dumps(dict(result), sort_keys=True), wall_time_s, now,
             campaign_id, spec_id, claim_token))
        return cursor.rowcount == 1

    def record_failure(self, campaign_id: int, spec_id: str,
                       claim_token: str, policy: RetryPolicy,
                       error_class: str, error: str, traceback_text: str,
                       wall_time_s: float,
                       now: float | None = None) -> str | None:
        """Apply the retry policy to a failed attempt, atomically.

        Reads the previous error class and the attempt count, decides
        retry / fail / quarantine, and performs the matching transition
        — all in one immediate transaction guarded by the claim token.
        Returns the resulting state (``pending``/``failed``/
        ``quarantined``) or None when the claim was stale.
        """
        now = time.time() if now is None else now
        try:
            with self._immediate() as conn:
                row = conn.execute(
                    "SELECT attempt, last_error_class FROM runs "
                    "WHERE campaign_id = ? AND spec_id = ? AND "
                    "claim_token = ? AND state IN ('claimed', 'running')",
                    (campaign_id, spec_id, claim_token)).fetchone()
                if row is None:
                    return None
                decision = policy.decide(row["attempt"], error_class,
                                         row["last_error_class"])
                if decision.action == RETRY:
                    conn.execute(
                        "UPDATE runs SET state = 'pending', "
                        "claim_token = NULL, claimed_by = NULL, "
                        "not_before = ?, last_error_class = ?, "
                        "error_class = ?, error = ?, traceback = ?, "
                        "wall_time_s = ? "
                        "WHERE campaign_id = ? AND spec_id = ?",
                        (now + decision.delay_s, error_class, error_class,
                         error, traceback_text, wall_time_s,
                         campaign_id, spec_id))
                    return "pending"
                state = ("quarantined" if decision.action == QUARANTINE
                         else "failed")
                assert decision.action in (FAIL, QUARANTINE)
                conn.execute(
                    "UPDATE runs SET state = ?, claim_token = NULL, "
                    "finished_at = ?, last_error_class = ?, "
                    "error_class = ?, error = ?, traceback = ?, "
                    "wall_time_s = ? "
                    "WHERE campaign_id = ? AND spec_id = ?",
                    (state, now, error_class, error_class,
                     f"{error} [{decision.reason}]", traceback_text,
                     wall_time_s, campaign_id, spec_id))
                return state
        except sqlite3.Error as exc:
            raise CampaignStoreError(
                f"failure transition failed: {exc}") from exc

    def _transition(self, sql: str, args: tuple) -> sqlite3.Cursor:
        try:
            with self._immediate() as conn:
                return conn.execute(sql, args)
        except sqlite3.Error as exc:
            raise CampaignStoreError(
                f"campaign store transition failed: {exc}") from exc

    # -- inspection ------------------------------------------------------------

    def run(self, campaign_id: int, spec_id: str) -> RunRow:
        row = self._query(
            "SELECT * FROM runs WHERE campaign_id = ? AND spec_id = ?",
            (campaign_id, spec_id)).fetchone()
        if row is None:
            raise CampaignStoreError(
                f"no run {spec_id} in campaign {campaign_id}")
        return RunRow.from_sql(row)

    def runs(self, campaign_id: int,
             states: t.Sequence[str] | None = None) -> list[RunRow]:
        if states:
            marks = ",".join("?" for _ in states)
            rows = self._query(
                f"SELECT * FROM runs WHERE campaign_id = ? AND "
                f"state IN ({marks}) ORDER BY spec_id",
                (campaign_id, *states)).fetchall()
        else:
            rows = self._query(
                "SELECT * FROM runs WHERE campaign_id = ? ORDER BY spec_id",
                (campaign_id,)).fetchall()
        return [RunRow.from_sql(row) for row in rows]

    def counts(self, campaign_id: int) -> dict[str, int]:
        """State -> run count, with every state present (zero included)."""
        rows = self._query(
            "SELECT state, COUNT(*) AS n FROM runs "
            "WHERE campaign_id = ? GROUP BY state", (campaign_id,))
        counts = {state: 0 for state in STATES}
        for row in rows:
            counts[row["state"]] = row["n"]
        return counts

    def active_count(self, campaign_id: int) -> int:
        row = self._query(
            "SELECT COUNT(*) AS n FROM runs WHERE campaign_id = ? AND "
            "state IN ('pending', 'claimed', 'running')",
            (campaign_id,)).fetchone()
        return int(row["n"])

    def next_wakeup(self, campaign_id: int) -> float | None:
        """Earliest future instant at which new work can appear.

        The minimum over pending ``not_before`` gates and outstanding
        lease expiries; None when nothing is time-gated.
        """
        row = self._query(
            "SELECT MIN(x) AS wake FROM ("
            "  SELECT not_before AS x FROM runs WHERE campaign_id = ? "
            "    AND state = 'pending'"
            "  UNION ALL "
            "  SELECT lease_expires_at AS x FROM runs "
            "    WHERE campaign_id = ? AND state IN ('claimed', 'running')"
            ")", (campaign_id, campaign_id)).fetchone()
        return row["wake"] if row and row["wake"] is not None else None


class _Txn:
    """BEGIN IMMEDIATE transaction scope (commit/rollback on exit)."""

    def __init__(self, conn: sqlite3.Connection) -> None:
        self._conn = conn

    def __enter__(self) -> sqlite3.Connection:
        self._conn.execute("BEGIN IMMEDIATE")
        return self._conn

    def __exit__(self, exc_type: object, *_rest: object) -> None:
        if exc_type is None:
            self._conn.execute("COMMIT")
        else:
            self._conn.execute("ROLLBACK")


def open_store_readonly(path: str | pathlib.Path) -> CampaignStore:
    """Open an existing store, with typed errors for missing/corrupt files.

    ``python -m repro report --from-campaign`` and ``campaign
    status``/``report`` go through here so a missing database or a file
    that is not SQLite surfaces as a :class:`CampaignStoreError` (a
    :class:`~repro.errors.ReproError`) instead of a traceback.
    """
    store = CampaignStore(path, create=False)
    try:
        store._conn.execute("SELECT id FROM campaigns LIMIT 1").fetchone()
    except sqlite3.Error as exc:
        store.close()
        raise CampaignStoreError(
            f"{path} is not a campaign store (corrupt or wrong file): "
            f"{exc}") from exc
    return store
