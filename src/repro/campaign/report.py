"""Campaign reporting: tables, artifacts and the resume-invariant digest.

The **report digest** is the campaign's correctness witness: it hashes
every cell's terminal outcome — ``spec_id``, state, the result payload
for ``done`` cells, the error *class* for failed/quarantined ones — and
deliberately excludes wall times, attempt counts and timestamps.  A
campaign that was ``kill -9``-ed and resumed therefore produces a digest
bit-identical to an uninterrupted run of the same grid and seeds, which
is exactly the invariant the robustness tests and the CI smoke job
assert.

Artifacts (all written atomically via :mod:`repro.ioutil`):

* ``summary.md`` — state counts, per-figure tables, the digest;
* ``runs.jsonl`` — one self-describing record per cell;
* ``metrics.prom`` — campaign metrics through the standard obs
  exporter (:func:`repro.obs.exporters.prometheus_text`).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import typing as t

from repro.campaign.store import (
    STATES,
    CampaignStore,
    RunRow,
    open_store_readonly,
)
from repro.errors import CampaignStoreError, ReportInputError
from repro.ioutil import atomic_write_jsonl, atomic_write_text

#: Result keys surfaced into the per-figure tables, in display order.
_TABLE_RESULT_KEYS = ("throughput", "scaling_efficiency",
                      "mean_iteration_s", "status", "outcome_digest")


@dataclasses.dataclass(frozen=True)
class CampaignReport:
    """A campaign's durable outcome, loaded from the store."""

    campaign_id: int
    name: str
    counts: dict[str, int]
    rows: tuple[RunRow, ...]

    @property
    def total(self) -> int:
        return len(self.rows)

    @property
    def complete(self) -> bool:
        """Every cell reached a terminal state."""
        return all(self.counts[state] == 0
                   for state in ("pending", "claimed", "running"))

    def digest(self) -> str:
        """Deterministic digest of every cell's terminal outcome.

        Invariant under interruption + resume: excludes wall time,
        attempts, timestamps and error text (which may embed times) —
        only (spec, state, result payload | error class) contribute.
        """
        payload = {
            row.spec_id: {
                "state": row.state,
                "result": row.result if row.state == "done" else None,
                "error_class": (row.error_class
                                if row.state in ("failed", "quarantined")
                                else None),
            }
            for row in self.rows
        }
        blob = json.dumps(payload, sort_keys=True)
        return hashlib.blake2b(blob.encode(), digest_size=16).hexdigest()

    # -- table rows ------------------------------------------------------------

    def summary_rows(self) -> list[dict]:
        return [{"state": state, "runs": self.counts[state]}
                for state in STATES]

    def result_rows(self) -> list[dict]:
        """One flat row per cell: parameters + headline results."""
        rows = []
        for row in self.rows:
            flat: dict[str, object] = {"spec": row.spec_id,
                                       "state": row.state,
                                       "attempts": row.attempt}
            flat.update(sorted(row.params.items()))
            if row.result:
                for key in _TABLE_RESULT_KEYS:
                    if key in row.result:
                        flat[key] = row.result[key]
            if row.state in ("failed", "quarantined"):
                flat["error_class"] = row.error_class
            rows.append(flat)
        return rows

    def figure_groups(self) -> dict[str, list[dict]]:
        """Result rows grouped by their ``figure`` parameter."""
        groups: dict[str, list[dict]] = {}
        for flat in self.result_rows():
            figure = str(flat.get("figure", "ungrouped"))
            groups.setdefault(figure, []).append(flat)
        return groups


def load_report(store: CampaignStore,
                campaign_id: int | None = None) -> CampaignReport:
    """Build a report from the store (latest campaign when id is None)."""
    if campaign_id is None:
        campaigns = store.campaigns()
        if not campaigns:
            raise CampaignStoreError(
                f"store {store.path} has no campaigns")
        campaign_id = campaigns[-1].id
    info = store.campaign(campaign_id)
    rows = tuple(store.runs(campaign_id))
    return CampaignReport(campaign_id=info.id, name=info.name,
                          counts=store.counts(campaign_id), rows=rows)


def load_report_from_path(path: str | pathlib.Path,
                          campaign_id: int | None = None) -> CampaignReport:
    """Report straight from a store file, with typed input errors.

    Raises :class:`~repro.errors.ReportInputError` when the file is
    missing or not a campaign store — the contract the report CLIs
    expose instead of an unhandled traceback.
    """
    try:
        with open_store_readonly(path) as store:
            return load_report(store, campaign_id)
    except CampaignStoreError as exc:
        raise ReportInputError(str(exc)) from exc


@dataclasses.dataclass(frozen=True)
class CellDiff:
    """One divergent cell between two campaign reports."""

    spec_id: str
    #: ``missing`` (cell absent on one side), ``state``, ``result`` or
    #: ``error_class`` — the first field that differs.
    field: str
    a: object
    b: object

    def render(self) -> str:
        return f"{self.spec_id}: {self.field} differs " \
               f"({self.a!r} vs {self.b!r})"


def diff_reports(a: CampaignReport, b: CampaignReport) -> list[CellDiff]:
    """Cell-by-cell comparison of two campaigns' terminal outcomes.

    Compares exactly what :meth:`CampaignReport.digest` hashes — state,
    ``done`` result payload, failed/quarantined error class — so two
    reports diff clean if and only if their digests match.  Returns the
    divergent cells sorted by spec id (empty when identical).
    """
    def payload(report: CampaignReport) -> dict[str, dict]:
        return {
            row.spec_id: {
                "state": row.state,
                "result": row.result if row.state == "done" else None,
                "error_class": (row.error_class
                                if row.state in ("failed", "quarantined")
                                else None),
            }
            for row in report.rows
        }

    cells_a, cells_b = payload(a), payload(b)
    diffs: list[CellDiff] = []
    for spec_id in sorted(set(cells_a) | set(cells_b)):
        if spec_id not in cells_a:
            diffs.append(CellDiff(spec_id, "missing", None,
                                  cells_b[spec_id]["state"]))
            continue
        if spec_id not in cells_b:
            diffs.append(CellDiff(spec_id, "missing",
                                  cells_a[spec_id]["state"], None))
            continue
        cell_a, cell_b = cells_a[spec_id], cells_b[spec_id]
        for field in ("state", "result", "error_class"):
            if cell_a[field] != cell_b[field]:
                diffs.append(CellDiff(spec_id, field, cell_a[field],
                                      cell_b[field]))
                break
    return diffs


def render_report(report: CampaignReport) -> str:
    """Markdown rendering: summary, per-figure tables, digest."""
    from repro.harness.report import format_table

    sections = [
        f"# Campaign {report.campaign_id}: {report.name}",
        "",
        format_table(report.summary_rows(), title="run states"),
        "",
    ]
    for figure, rows in sorted(report.figure_groups().items()):
        columns = _stable_columns(rows)
        sections.append(format_table(rows, columns=columns,
                                     title=f"{figure} ({len(rows)} cells)"))
        sections.append("")
    sections.append(f"report digest: `{report.digest()}`")
    sections.append(f"complete: {'yes' if report.complete else 'no'}")
    return "\n".join(sections)


def _stable_columns(rows: t.Sequence[dict]) -> list[str]:
    """Union of row keys in first-seen order (rows may differ by state)."""
    columns: dict[str, None] = {}
    for row in rows:
        for key in row:
            columns.setdefault(key)
    return list(columns)


def build_metrics(report: CampaignReport) -> t.Any:
    """Fold the campaign outcome into a standard obs MetricsRegistry."""
    from repro.obs.metrics import MetricsRegistry

    registry = MetricsRegistry()
    states = registry.counter(
        "repro_campaign_runs_total",
        help="campaign runs by terminal/in-flight state")
    attempts = registry.counter(
        "repro_campaign_attempts_total",
        help="attempts started across all runs")
    wall = registry.histogram(
        "repro_campaign_run_wall_time_s",
        help="per-run wall time of recorded attempts",
        buckets=(0.1, 0.5, 1.0, 5.0, 30.0, 120.0))
    for state, count in report.counts.items():
        if count:
            states.inc(count, state=state)
    for row in report.rows:
        if row.attempt:
            attempts.inc(row.attempt, runner=row.runner)
        if row.wall_time_s is not None:
            wall.observe(row.wall_time_s, runner=row.runner)
    return registry


def run_records(report: CampaignReport) -> t.Iterator[dict]:
    """Self-describing JSONL records (``kind`` field) for every cell."""
    yield {"kind": "campaign", "id": report.campaign_id,
           "name": report.name, "digest": report.digest(),
           "counts": report.counts}
    for row in report.rows:
        yield {"kind": "run", "spec": row.spec_id, "runner": row.runner,
               "state": row.state, "attempts": row.attempt,
               "params": dict(sorted(row.params.items())),
               "result": row.result, "error_class": row.error_class,
               "wall_time_s": row.wall_time_s}


def write_report_artifacts(directory: str | pathlib.Path,
                           report: CampaignReport
                           ) -> dict[str, pathlib.Path]:
    """Persist summary.md / runs.jsonl / metrics.prom atomically."""
    from repro.obs.exporters import prometheus_text

    out_dir = pathlib.Path(directory)
    written = {
        "summary": atomic_write_text(out_dir / "summary.md",
                                     render_report(report) + "\n"),
        "jsonl": atomic_write_jsonl(out_dir / "runs.jsonl",
                                    run_records(report)),
        "prometheus": atomic_write_text(
            out_dir / "metrics.prom",
            prometheus_text(build_metrics(report))),
    }
    return written
