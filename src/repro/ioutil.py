"""Crash-safe file writes shared across the library.

Artifacts that downstream tooling parses (JSONL timelines, checkpoint
metadata, persisted caches, campaign reports) must never be observable
half-written: a reader racing a writer, or a writer killed mid-write,
must see either the complete previous content or the complete new
content.  POSIX gives exactly that for a write-to-temp-then-
``os.replace`` sequence on the same filesystem, which is what
:func:`atomic_write_text` implements.

The temp file lives next to the target (same directory, hence same
filesystem) and carries a leading dot plus a ``.tmp-`` prefix so no
artifact glob (``*.jsonl``, ``*.md``, ``ckpt-*.npz``) ever matches a
partial file.
"""

from __future__ import annotations

import json
import os
import pathlib
import tempfile
import typing as t


def atomic_write_text(path: str | pathlib.Path, text: str,
                      encoding: str = "utf-8") -> pathlib.Path:
    """Write ``text`` to ``path`` atomically; returns the path.

    The content is flushed and fsynced to a sibling temp file first and
    then moved over the target with :func:`os.replace`, so a crash at
    any instant leaves either the old file or the new file — never a
    truncated mix.  Parent directories are created as needed.
    """
    target = pathlib.Path(path)
    target.parent.mkdir(parents=True, exist_ok=True)
    fd, tmp_name = tempfile.mkstemp(
        prefix=f".tmp-{target.name}-", dir=target.parent)
    tmp = pathlib.Path(tmp_name)
    try:
        with os.fdopen(fd, "w", encoding=encoding) as handle:
            handle.write(text)
            handle.flush()
            os.fsync(handle.fileno())
        os.replace(tmp, target)
    except BaseException:
        tmp.unlink(missing_ok=True)
        raise
    return target


def atomic_write_json(path: str | pathlib.Path, payload: object,
                      **dumps_kwargs: t.Any) -> pathlib.Path:
    """Atomically serialize ``payload`` as JSON to ``path``."""
    return atomic_write_text(path, json.dumps(payload, **dumps_kwargs))


def atomic_write_jsonl(path: str | pathlib.Path,
                       records: t.Iterable[object]) -> pathlib.Path:
    """Atomically write one JSON document per line.

    Dict records are serialized with sorted keys so repeated runs of a
    deterministic producer yield byte-identical artifacts; pre-encoded
    strings pass through untouched.
    """
    lines = [record if isinstance(record, str)
             else json.dumps(record, sort_keys=True)
             for record in records]
    return atomic_write_text(path, "\n".join(lines) + ("\n" if lines else ""))
