"""Placement scheduling with conservative admission control.

The scheduler answers one question per attempt: *can this job start
right now without destabilizing the tenants already running?*  The
check is deliberately conservative — free node slots AND a worst-case
core-bandwidth budget — because the cost of a wrong "yes" (every
tenant's SLO degrades) dwarfs the cost of a wrong "no" (one job waits
one backoff interval).

A job that does not fit queues with capped exponential backoff; the
runtime converts exhaustion of the admission deadline into the typed
:class:`~repro.errors.AdmissionRejected`.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ClusterError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.cluster.fabric import SharedFabric
    from repro.cluster.jobs import JobSpec

#: First retry delay after a failed admission attempt (seconds).
BACKOFF_BASE_S = 0.25
#: Ceiling on the exponential backoff (seconds).
BACKOFF_CAP_S = 4.0


def backoff_delay_s(attempt: int) -> float:
    """Capped exponential backoff: 0.25, 0.5, 1, 2, 4, 4, ... seconds."""
    if attempt < 0:
        raise ClusterError("attempt must be >= 0")
    return min(BACKOFF_BASE_S * (2.0 ** attempt), BACKOFF_CAP_S)


@dataclasses.dataclass(frozen=True)
class Placement:
    """Granted node slots for one admitted job."""

    job_id: str
    nodes: tuple[int, ...]
    #: Conservative core-bandwidth demand reserved for the job (bps).
    core_demand_bps: float


class PlacementScheduler:
    """Slot + bandwidth admission over one shared fabric."""

    def __init__(self, fabric: "SharedFabric") -> None:
        self.fabric = fabric
        #: Free node indices, ascending — placement is deterministic.
        self._free = list(range(fabric.num_nodes))
        self._placements: dict[str, Placement] = {}

    @property
    def free_nodes(self) -> tuple[int, ...]:
        return tuple(self._free)

    @property
    def placements(self) -> dict[str, Placement]:
        return dict(self._placements)

    def core_demand_bps(self, spec: "JobSpec", streams: int) -> float:
        """Worst-case spine demand of one job's ring traffic.

        Every member pushes one hop through the core at up to the
        per-stream cap times its stream count, bounded by its NIC — the
        peak the job could ever present, not its average.
        """
        per_member = min(self.fabric.nic_bps,
                         streams * self.fabric.stream_cap_bps)
        return spec.num_nodes * per_member

    def reserved_core_bps(self) -> float:
        """Core bandwidth already promised to admitted tenants."""
        return sum(p.core_demand_bps for p in self._placements.values())

    def try_admit(self, spec: "JobSpec",
                  streams: int) -> tuple[Placement | None, str]:
        """One admission attempt: a placement, or ``(None, reason)``."""
        if spec.job_id in self._placements:
            raise ClusterError(f"job {spec.job_id!r} is already placed")
        if spec.num_nodes > self.fabric.num_nodes:
            return None, (f"needs {spec.num_nodes} nodes but the fabric "
                          f"only has {self.fabric.num_nodes}")
        if spec.num_nodes > len(self._free):
            return None, (f"needs {spec.num_nodes} free nodes, "
                          f"{len(self._free)} available")
        demand = self.core_demand_bps(spec, streams)
        reserved = self.reserved_core_bps()
        if reserved + demand > self.fabric.core_bps:
            return None, (
                f"core budget exhausted: {reserved / 1e9:.2f} Gbps "
                f"reserved + {demand / 1e9:.2f} Gbps demanded exceeds "
                f"{self.fabric.core_bps / 1e9:.2f} Gbps")
        nodes = tuple(self._free[:spec.num_nodes])
        del self._free[:spec.num_nodes]
        placement = Placement(job_id=spec.job_id, nodes=nodes,
                              core_demand_bps=demand)
        self._placements[spec.job_id] = placement
        return placement, "admitted"

    def release(self, job_id: str) -> None:
        """Return a job's nodes to the free pool (preempt/complete)."""
        placement = self._placements.pop(job_id, None)
        if placement is None:
            raise ClusterError(f"job {job_id!r} holds no placement")
        self._free = sorted(self._free + list(placement.nodes))

    def shrink_reservation(self, job_id: str, streams: int,
                           spec: "JobSpec") -> None:
        """Re-price a degraded job's core reservation at fewer streams."""
        placement = self._placements.get(job_id)
        if placement is None:
            raise ClusterError(f"job {job_id!r} holds no placement")
        self._placements[job_id] = dataclasses.replace(
            placement, core_demand_bps=self.core_demand_bps(spec, streams))
