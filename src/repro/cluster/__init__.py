"""Multi-tenant shared-fabric runtime (admission, isolation, SLA).

Public surface of the cluster subsystem::

    from repro.cluster import (
        ClusterConfig, ClusterResult, ClusterRuntime,
        JobSpec, JobState, NumericTrainer,
        PlacementScheduler, SharedFabric, three_job_scenario,
    )

See ``docs/cluster.md`` for the scheduler, the degradation ladder and
the isolation contract.
"""

from repro.cluster.fabric import SharedFabric
from repro.cluster.jobs import JOB_STATES, JobSpec, JobState, NumericTrainer
from repro.cluster.runtime import (
    ClusterConfig,
    ClusterResult,
    ClusterRuntime,
    three_job_scenario,
)
from repro.cluster.scheduler import (
    BACKOFF_BASE_S,
    BACKOFF_CAP_S,
    Placement,
    PlacementScheduler,
    backoff_delay_s,
)

__all__ = [
    "BACKOFF_BASE_S",
    "BACKOFF_CAP_S",
    "JOB_STATES",
    "ClusterConfig",
    "ClusterResult",
    "ClusterRuntime",
    "JobSpec",
    "JobState",
    "NumericTrainer",
    "Placement",
    "PlacementScheduler",
    "SharedFabric",
    "backoff_delay_s",
    "three_job_scenario",
]
