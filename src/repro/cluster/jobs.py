"""Job identity and per-tenant state for the multi-tenant fabric.

A :class:`JobSpec` is everything the cluster needs to know about one
tenant up front: its identity, shape (nodes, streams), traffic profile
and priority.  :class:`JobState` is the scheduler's mutable view of the
same job as it moves through ``queued -> running -> completed`` (with
``degraded``/``preempted``/``rejected`` detours).

Each job also trains a real (tiny, pure-numpy) model as it steps:
:class:`NumericTrainer` advances one synchronous data-parallel update
per simulated step.  The parameter digest after ``k`` steps is a pure
function of ``(seed, k, world size)`` — *never* of simulated time — so
cross-job isolation ("chaos in job A leaves job B's convergence
bit-identical") holds by construction and is verified, not assumed, by
the harness tests.
"""

from __future__ import annotations

import dataclasses
import hashlib
import typing as t

import numpy as np

from repro.errors import ClusterError
from repro.training.numeric import TinyMLP, make_synthetic_task
from repro.training.optimizer import SGD

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.core.elastic import EpochTransition
    from repro.sim.faults import FaultPlan

#: Job lifecycle states (``JobState.status`` is always one of these).
JOB_STATES = ("queued", "running", "degraded", "preempted",
              "completed", "rejected")


@dataclasses.dataclass(frozen=True)
class JobSpec:
    """One tenant's identity, shape and traffic profile."""

    job_id: str
    #: Model-zoo name, used for settings-cache similarity matching.
    model: str = "resnet50"
    num_nodes: int = 2
    #: Inter-job fair-share weight at shared links (>= jobs of weight 1).
    priority: float = 1.0
    #: Simulated submission time.
    arrival_s: float = 0.0
    steps: int = 8
    #: Requested communication streams per flow (the tuner may shrink).
    num_streams: int = 4
    seed: int = 0
    #: Per-step backward-compute duration (seconds).
    compute_s: float = 0.05
    #: Gradient payload all-reduced each step (bytes).
    bytes_per_step: float = 64e6
    #: Hidden width of the job's numeric model.
    hidden_dim: int = 32
    #: Global minibatch size, sharded across ``num_nodes`` workers.
    batch_size: int = 64

    def __post_init__(self) -> None:
        if not self.job_id:
            raise ClusterError("job_id must be non-empty")
        if self.num_nodes < 1:
            raise ClusterError(
                f"job {self.job_id!r}: num_nodes must be >= 1")
        if self.priority <= 0:
            raise ClusterError(
                f"job {self.job_id!r}: priority must be positive")
        if self.arrival_s < 0:
            raise ClusterError(
                f"job {self.job_id!r}: arrival_s must be >= 0")
        if self.steps < 1:
            raise ClusterError(f"job {self.job_id!r}: steps must be >= 1")
        if self.num_streams < 1:
            raise ClusterError(
                f"job {self.job_id!r}: num_streams must be >= 1")
        if self.compute_s <= 0 or self.bytes_per_step <= 0:
            raise ClusterError(
                f"job {self.job_id!r}: compute_s and bytes_per_step "
                f"must be positive")
        if self.batch_size % self.num_nodes != 0:
            raise ClusterError(
                f"job {self.job_id!r}: batch_size {self.batch_size} is "
                f"not divisible by num_nodes {self.num_nodes}")


class NumericTrainer:
    """Synchronous data-parallel training of a job's tiny model.

    One :meth:`advance` call is one global step: the fixed-order global
    minibatch is sharded across ``num_nodes`` workers, per-shard
    gradients are averaged (the all-reduce the fabric simulates the
    *timing* of), and one optimizer update is applied.  Lockstep workers
    with averaged gradients are state-identical to this single-model
    form, so one parameter set suffices.
    """

    def __init__(self, spec: JobSpec) -> None:
        self.spec = spec
        self.model = TinyMLP(input_dim=16, hidden_dim=spec.hidden_dim,
                             num_classes=4, seed=spec.seed)
        self.task = make_synthetic_task(seed=spec.seed)
        self.optimizer = SGD(lr=0.1, momentum=0.9)
        self.losses: list[float] = []
        self._batches = self.task.batches(spec.batch_size)

    def advance(self) -> float:
        """Run one data-parallel step; returns the mean loss."""
        try:
            inputs, labels = next(self._batches)
        except StopIteration:
            self._batches = self.task.batches(self.spec.batch_size)
            inputs, labels = next(self._batches)
        shard = len(inputs) // self.spec.num_nodes
        total_loss = 0.0
        summed: dict[str, np.ndarray] | None = None
        for worker in range(self.spec.num_nodes):
            lo = worker * shard
            loss, grads = self.model.loss_and_grads(
                self.model.parameters, inputs[lo:lo + shard],
                labels[lo:lo + shard])
            total_loss += loss
            if summed is None:
                summed = grads
            else:
                for key in summed:
                    summed[key] = summed[key] + grads[key]
        assert summed is not None
        averaged = {key: value / self.spec.num_nodes
                    for key, value in summed.items()}
        self.optimizer.step(self.model.parameters, averaged)
        mean_loss = total_loss / self.spec.num_nodes
        self.losses.append(mean_loss)
        return mean_loss

    def digest(self) -> str:
        """blake2b over the exact parameter bytes (bit-level identity)."""
        h = hashlib.blake2b(digest_size=16)
        for key in sorted(self.model.parameters):
            h.update(key.encode())
            h.update(np.ascontiguousarray(
                self.model.parameters[key]).tobytes())
        return h.hexdigest()


@dataclasses.dataclass
class JobState:
    """The runtime's mutable view of one submitted job."""

    spec: JobSpec
    status: str = "queued"
    #: Fabric node indices currently held (empty while queued/preempted).
    nodes: tuple[int, ...] = ()
    #: Live stream count (starts at the spec's or the warm-start's).
    streams: int = 0
    #: Per-stream cap multiplier the overload controller may lower.
    cap_scale: float = 1.0
    steps_done: int = 0
    step_times: list[float] = dataclasses.field(default_factory=list)
    #: Degradation-ladder stage reached: 0 none, 1 stream shrink,
    #: 2 cap throttle, 3 preempted at least once.
    ladder_stage: int = 0
    admission_attempts: int = 0
    admitted_at_s: float | None = None
    #: Settings-cache entry label this job warm-started from, if any.
    warm_start: str | None = None
    transitions: list["EpochTransition"] = dataclasses.field(
        default_factory=list)
    #: The typed rejection, when admission timed out.
    rejection: str | None = None
    chaos: "FaultPlan | None" = None
    trainer: NumericTrainer | None = None

    def __post_init__(self) -> None:
        if self.status not in JOB_STATES:
            raise ClusterError(f"unknown job status {self.status!r}")

    @property
    def numeric_digest(self) -> str | None:
        return self.trainer.digest() if self.trainer is not None else None

    def record(self) -> dict[str, object]:
        """JSON-safe summary (the cluster digest folds these)."""
        return {
            "job_id": self.spec.job_id,
            "status": self.status,
            "steps_done": self.steps_done,
            "streams": self.streams,
            "cap_scale": self.cap_scale,
            "ladder_stage": self.ladder_stage,
            "admission_attempts": self.admission_attempts,
            "admitted_at_s": self.admitted_at_s,
            "warm_start": self.warm_start,
            "rejection": self.rejection,
            "step_times": list(self.step_times),
            "transitions": [
                {"epoch": tr.epoch, "at_s": tr.at_s, "kind": tr.kind,
                 "world_before": tr.world_before,
                 "world_after": tr.world_after}
                for tr in self.transitions],
            "numeric_digest": self.numeric_digest,
        }
