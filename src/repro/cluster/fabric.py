"""The shared physical fabric every tenant's traffic traverses.

One :class:`SharedFabric` owns the per-node NIC links and the single
oversubscribed spine (``core``) link of the datacenter, plus the
:class:`~repro.sim.network.FluidNetwork` that assigns max-min fair
rates.  Jobs never talk to the network directly: :meth:`allreduce`
stamps every launched flow with the calling job's identity
(``FluidNetwork.flow_job``), which is what routes contention through
the solver's *inter-job* weighted fairness at shared links.

Chaos hooks (:meth:`scale_node_nic` / :meth:`restore_node_nic`) scale a
node's NIC pair against its *base* capacity, so windows restore exactly
and never compound.
"""

from __future__ import annotations

import typing as t

from repro.errors import ClusterError
from repro.sim.kernel import Simulator
from repro.sim.network import FluidNetwork, Link

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.events import Event

#: Capacity of a flapped (hard-down) NIC — mirrors the fault injector's
#: convention of "nearly dead, never zero" so in-flight flows drain.
DEAD_NIC_FRACTION = 1e-4


class SharedFabric:
    """Per-node NIC pairs plus one shared oversubscribed core link."""

    def __init__(self, sim: Simulator, num_nodes: int,
                 nic_bps: float = 10e9,
                 core_oversubscription: float = 2.0,
                 stream_cap_fraction: float = 0.25) -> None:
        if num_nodes < 2:
            raise ClusterError("a shared fabric needs >= 2 nodes")
        if nic_bps <= 0:
            raise ClusterError("nic_bps must be positive")
        if core_oversubscription < 1.0:
            raise ClusterError("core_oversubscription must be >= 1")
        if not 0 < stream_cap_fraction <= 1:
            raise ClusterError("stream_cap_fraction must be in (0, 1]")
        self.sim = sim
        self.num_nodes = num_nodes
        self.nic_bps = float(nic_bps)
        #: Single-transport-stream ceiling on a NIC (the paper's <=30%
        #: single-stream efficiency is the motivating regime).
        self.stream_cap_bps = float(nic_bps) * stream_cap_fraction
        self.network = FluidNetwork(sim)
        self.nic_out = [Link(f"node{n}.nic.out", nic_bps)
                        for n in range(num_nodes)]
        self.nic_in = [Link(f"node{n}.nic.in", nic_bps)
                       for n in range(num_nodes)]
        self.core_bps = num_nodes * nic_bps / core_oversubscription
        #: The contended spine: every inter-node hop crosses it, so it
        #: is where inter-job fairness and interference play out.
        self.core = Link("core", self.core_bps)

    # -- tenant traffic ------------------------------------------------------

    def allreduce(self, job_id: str, nodes: t.Sequence[int],
                  nbytes: float, streams: int,
                  cap_scale: float = 1.0,
                  label: str = "ring") -> "Event":
        """Launch one ring all-reduce for a job; fires when it completes.

        Ring traffic: each of the ``m`` members forwards
        ``2 (m-1)/m x nbytes`` to its successor, split over ``streams``
        transport streams (one weighted flow per hop; the per-stream cap
        scaled by the overload controller's ``cap_scale``).
        """
        members = list(nodes)
        if len(members) < 2:
            # Single-node jobs reduce over NVLink only; on this fabric
            # that is effectively instantaneous next to NIC transfers.
            return self.sim.timeout(0.0)
        if streams < 1:
            raise ClusterError(f"job {job_id!r}: streams must be >= 1")
        if not 0 < cap_scale <= 1:
            raise ClusterError(
                f"job {job_id!r}: cap_scale must be in (0, 1]")
        hop_bytes = 2.0 * (len(members) - 1) / len(members) * nbytes
        cap = self.stream_cap_bps * cap_scale
        network = self.network
        previous_job = network.flow_job
        previous_label = network.flow_label
        network.flow_job = job_id
        network.flow_label = label
        try:
            events = [
                network.start_flow(
                    [self.nic_out[src], self.core, self.nic_in[dst]],
                    hop_bytes, rate_cap_bps=cap, weight=streams)
                for src, dst in zip(members,
                                    members[1:] + members[:1])]
        finally:
            network.flow_job = previous_job
            network.flow_label = previous_label
        return self.sim.all_of(events)

    # -- chaos hooks ---------------------------------------------------------

    def scale_node_nic(self, node: int, fraction: float) -> None:
        """Degrade a node's NIC pair to ``fraction`` of base capacity."""
        self._check_node(node)
        if not 0 < fraction <= 1:
            raise ClusterError("NIC scale fraction must be in (0, 1]")
        for link in (self.nic_out[node], self.nic_in[node]):
            self.network.set_link_capacity(link, self.nic_bps * fraction)

    def flap_node_nic(self, node: int) -> None:
        """Take a node's NIC pair hard down (a link flap)."""
        self.scale_node_nic(node, DEAD_NIC_FRACTION)

    def restore_node_nic(self, node: int) -> None:
        """Restore a node's NIC pair to base capacity."""
        self._check_node(node)
        for link in (self.nic_out[node], self.nic_in[node]):
            self.network.set_link_capacity(link, self.nic_bps)

    def _check_node(self, node: int) -> None:
        if not 0 <= node < self.num_nodes:
            raise ClusterError(
                f"node {node} out of range for {self.num_nodes} nodes")
