"""The multi-tenant cluster runtime: N jobs, one fabric, hard isolation.

Ties the package together: jobs arrive over simulated time, the
:class:`~repro.cluster.scheduler.PlacementScheduler` admits or queues
them, admitted jobs step (compute + ring all-reduce on the shared
fabric, every flow job-tagged), and an overload controller watches each
tenant's SLO sentinel (:func:`repro.obs.slo.job_slos`).  Sustained
breach walks the graceful-degradation ladder::

    stage 1   shrink the job's stream count (auto-tuner over a
              restricted search space, warm-started like paper §VI)
    stage 2   halve the job's per-stream rate caps
    stage 3   preempt at the current step boundary and requeue
              (recorded as ``preempt``/``resume`` epoch transitions)

Isolation contract: a job's numeric convergence digest is a pure
function of its ``(seed, steps, world size)`` — chaos injected into a
neighbor shifts its *timing*, never its *arithmetic* — and the whole
run is replay-deterministic under :attr:`ClusterResult.cluster_digest`.
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import typing as t

import networkx as nx

from repro.autotune.grid import GridSearch
from repro.autotune.space import ParameterPoint, SearchSpace
from repro.autotune.tuner import AutoTuner
from repro.autotune.cache import SettingsCache
from repro.cluster.fabric import SharedFabric
from repro.cluster.jobs import JobSpec, JobState, NumericTrainer
from repro.cluster.scheduler import PlacementScheduler, backoff_delay_s
from repro.core.elastic import EpochTransition
from repro.errors import AdmissionRejected, ClusterError
from repro.models.zoo import get_model
from repro.obs import Observability
from repro.obs.detectors import Severity
from repro.obs.diagnosis import Finding, findings_digest
from repro.obs.slo import evaluate_slos, job_slos
from repro.sim.faults import (
    BandwidthDegradation,
    FaultPlan,
    LinkFlap,
    NodeCrash,
    Straggler,
)
from repro.sim.kernel import Simulator

#: Candidate stream counts the degradation tuner may shrink into.
SHRINK_STREAMS = (1, 2, 4, 8, 12, 16, 20, 24)
#: Per-stream setup/bookkeeping cost charged by the shrink tuner's
#: closed-form model (what makes fewer streams win once the fair share,
#: not the stream count, is the bandwidth bottleneck).
STREAM_OVERHEAD_S = 2e-4


@dataclasses.dataclass(frozen=True)
class ClusterConfig:
    """Fabric shape + controller policy for one cluster run."""

    num_nodes: int = 6
    nic_bps: float = 10e9
    core_oversubscription: float = 1.5
    stream_cap_fraction: float = 0.25
    #: Queueing deadline before a typed :class:`AdmissionRejected`.
    admission_deadline_s: float = 20.0
    #: SLO slack: a tenant absorbs this much contention before the
    #: degradation ladder engages.
    slo_slack: float = 1.6
    #: Step-time window the sentinel averages over.
    slo_window: int = 2
    #: Consecutive breached evaluations before the next ladder stage.
    breach_patience: int = 2
    #: Simulated cost of one crash-restart (checkpoint reload etc.).
    restart_overhead_s: float = 1.0
    #: Delay before a preempted job re-enters the admission queue.
    preempt_requeue_s: float = 1.0
    #: Preemptions allowed per job before it just stays degraded.
    max_preemptions: int = 1
    #: Settings-cache similarity ceiling for warm starts.
    warm_start_max_distance: float = 8.0

    def __post_init__(self) -> None:
        if self.slo_window < 1 or self.breach_patience < 1:
            raise ClusterError(
                "slo_window and breach_patience must be >= 1")
        if self.admission_deadline_s <= 0:
            raise ClusterError("admission_deadline_s must be positive")


@dataclasses.dataclass(frozen=True)
class ClusterResult:
    """Everything one cluster run produced, digestable."""

    jobs: dict[str, dict[str, object]]
    findings: tuple[Finding, ...]
    obs: Observability

    @property
    def findings_digest(self) -> str:
        return findings_digest(self.findings)

    @property
    def cluster_digest(self) -> str:
        """blake2b over every job's outcome + every finding.

        Pure function of the run's event sequence: two replays of the
        same schedule produce the same hex digest bit for bit.
        """
        payload = json.dumps(
            {"jobs": self.jobs,
             "findings": [f.record() for f in self.findings]},
            sort_keys=True)
        return hashlib.blake2b(payload.encode(),
                               digest_size=16).hexdigest()

    def job_digest(self, job_id: str) -> str | None:
        """One tenant's numeric convergence digest."""
        if job_id not in self.jobs:
            raise ClusterError(f"unknown job {job_id!r}")
        return t.cast("str | None", self.jobs[job_id]["numeric_digest"])

    def to_json(self) -> str:
        return json.dumps(
            {"jobs": self.jobs,
             "findings": [f.record() for f in self.findings],
             "findings_digest": self.findings_digest,
             "cluster_digest": self.cluster_digest},
            sort_keys=True, indent=2) + "\n"


def _finding_order(finding: Finding) -> tuple:
    return (-int(finding.severity), finding.component, finding.kind,
            finding.subject, finding.time_s)


class ClusterRuntime:
    """Drives one shared-fabric schedule of N jobs to completion."""

    def __init__(self, specs: t.Sequence[JobSpec],
                 config: ClusterConfig | None = None,
                 chaos: t.Mapping[str, FaultPlan] | None = None,
                 settings_cache: SettingsCache | None = None,
                 obs: Observability | None = None) -> None:
        self.config = config or ClusterConfig()
        if not specs:
            raise ClusterError("a cluster run needs at least one job")
        ids = [spec.job_id for spec in specs]
        if len(set(ids)) != len(ids):
            raise ClusterError(f"duplicate job ids in {ids}")
        self.specs = list(specs)
        self.chaos = dict(chaos or {})
        for job_id, plan in self.chaos.items():
            if job_id not in ids:
                raise ClusterError(
                    f"chaos plan targets unknown job {job_id!r}")
            spec = next(s for s in self.specs if s.job_id == job_id)
            for fault in plan.faults:
                if not 0 <= fault.node < spec.num_nodes:
                    raise ClusterError(
                        f"chaos for job {job_id!r} targets local node "
                        f"{fault.node}, outside its {spec.num_nodes} "
                        f"node(s)")
        self.obs = obs if obs is not None else Observability(enabled=True)
        if self.obs.diag is None:
            self.obs.attach_detectors()
        self.sim = Simulator()
        self.fabric = SharedFabric(
            self.sim, self.config.num_nodes, self.config.nic_bps,
            self.config.core_oversubscription,
            self.config.stream_cap_fraction)
        self.fabric.network.obs = self.obs
        self.fabric.network.diag = self.obs.diag
        self.scheduler = PlacementScheduler(self.fabric)
        self.cache = settings_cache if settings_cache is not None \
            else SettingsCache()
        self.states: dict[str, JobState] = {}
        self.findings: list[Finding] = []
        for spec in self.specs:
            self.fabric.network.job_priorities[spec.job_id] = spec.priority
        self._m_steps = self.obs.registry.counter(
            "cluster_job_steps_total", "Completed steps per tenant")
        self._m_step_s = self.obs.registry.histogram(
            "cluster_job_step_seconds", "Per-tenant step durations",
            buckets=(0.05, 0.1, 0.2, 0.5, 1.0, 2.0, 5.0))
        self._m_streams = self.obs.registry.gauge(
            "cluster_job_streams", "Live stream count per tenant")
        self._m_admission = self.obs.registry.counter(
            "cluster_admission_attempts_total",
            "Admission attempts per tenant")
        self._m_degradations = self.obs.registry.counter(
            "cluster_degradations_total",
            "Degradation-ladder activations per tenant and stage")

    # -- the run -------------------------------------------------------------

    def run(self) -> ClusterResult:
        processes = [
            self.sim.spawn(self._job_process(spec),
                           name=f"job:{spec.job_id}")
            for spec in self.specs]
        self.sim.run(self.sim.all_of(processes))
        # Drain chaos restore windows etc. so link state settles.
        self.sim.run()
        self._interference_findings()
        self.findings.sort(key=_finding_order)
        return ClusterResult(
            jobs={job_id: state.record()
                  for job_id, state in sorted(self.states.items())},
            findings=tuple(self.findings),
            obs=self.obs)

    # -- per-job process -----------------------------------------------------

    def _job_process(self, spec: JobSpec) -> t.Generator:
        state = JobState(spec=spec, streams=spec.num_streams,
                         chaos=self.chaos.get(spec.job_id),
                         trainer=NumericTrainer(spec))
        self.states[spec.job_id] = state
        yield self.sim.timeout(spec.arrival_s)
        try:
            yield from self._admit(state,
                                   deadline_s=self.config.admission_deadline_s)
        except AdmissionRejected as exc:
            state.status = "rejected"
            state.rejection = str(exc)
            self._finding(Severity.ERROR, "admission-rejected",
                          spec.job_id, str(exc))
            return
        self._warm_start(state)
        crash_done: set[int] = set()
        breach_streak = 0
        preemptions = 0
        while state.steps_done < spec.steps:
            step = state.steps_done
            step_start = self.sim.now
            # -- chaos at the step boundary: crashes pay their restart.
            for index, fault in enumerate(self._job_faults(state,
                                                           NodeCrash)):
                if index in crash_done or fault.at_s > self.sim.now:
                    continue
                crash_done.add(index)
                self.obs.timeline.instant(
                    "fault.inject", "fault", state.nodes[fault.node],
                    self.sim.now, job=spec.job_id, kind="crash")
                yield self.sim.timeout(self.config.restart_overhead_s)
                self.obs.timeline.instant(
                    "fault.restore", "fault", state.nodes[fault.node],
                    self.sim.now, job=spec.job_id, kind="crash")
                self._finding(
                    Severity.WARN, "job-crash", spec.job_id,
                    f"rank on node {fault.node} crashed; restarted in "
                    f"{self.config.restart_overhead_s:g}s",
                    evidence=(("local_node", fault.node),
                              ("restart_s",
                               self.config.restart_overhead_s)))
            compute_s = spec.compute_s * self._straggler_factor(state)
            compute_start = self.sim.now
            yield self.sim.timeout(compute_s)
            self.obs.timeline.span(
                "job-compute", "cluster", state.nodes[0], compute_start,
                self.sim.now, job=spec.job_id, step=step, phase="compute")
            comm_start = self.sim.now
            yield self.fabric.allreduce(
                spec.job_id, state.nodes, spec.bytes_per_step,
                state.streams, state.cap_scale,
                label=f"ring/step{step}")
            self.obs.timeline.span(
                "job-allreduce", "cluster", state.nodes[0], comm_start,
                self.sim.now, job=spec.job_id, step=step, phase="comm")
            step_time = self.sim.now - step_start
            state.step_times.append(step_time)
            state.steps_done += 1
            state.trainer.advance()
            self._m_steps.inc(job=spec.job_id)
            self._m_step_s.observe(step_time, job=spec.job_id)
            # -- SLO sentinel + degradation ladder.
            if self._slo_breached(state):
                breach_streak += 1
            else:
                breach_streak = 0
            if breach_streak >= self.config.breach_patience \
                    and state.steps_done < spec.steps:
                breach_streak = 0
                if state.ladder_stage == 0:
                    self._shrink_streams(state)
                elif state.ladder_stage == 1:
                    self._throttle_caps(state)
                elif preemptions < self.config.max_preemptions:
                    preemptions += 1
                    yield from self._preempt_and_requeue(state)
        self.scheduler.release(spec.job_id)
        state.status = "completed"
        state.nodes = ()
        self._store_settings(state)

    # -- admission -----------------------------------------------------------

    def _admit(self, state: JobState, deadline_s: float,
               resuming: bool = False) -> t.Generator:
        """Admission loop with capped backoff; raises on deadline."""
        spec = state.spec
        queued_at = self.sim.now
        attempt = 0
        while True:
            placement, reason = self.scheduler.try_admit(
                spec, state.streams)
            state.admission_attempts += 1
            self._m_admission.inc(job=spec.job_id)
            if placement is not None:
                state.nodes = placement.nodes
                state.status = "degraded" if state.ladder_stage else \
                    "running"
                if state.admitted_at_s is None:
                    state.admitted_at_s = self.sim.now
                self._m_streams.set(state.streams, job=spec.job_id)
                self.obs.timeline.instant(
                    "cluster.admit", "cluster", placement.nodes[0],
                    self.sim.now, job=spec.job_id,
                    nodes=list(placement.nodes), resuming=resuming)
                if not resuming:
                    self._arm_link_chaos(state)
                return
            delay = backoff_delay_s(attempt)
            if not resuming and \
                    self.sim.now + delay > queued_at + deadline_s:
                raise AdmissionRejected(
                    spec.job_id, deadline_s, reason, attempt + 1)
            attempt += 1
            yield self.sim.timeout(delay)

    def _warm_start(self, state: JobState) -> None:
        """Seed stream count from the most similar remembered tenant."""
        found = self.cache.lookup(
            get_model(state.spec.model), self._job_topology(state.spec),
            max_distance=self.config.warm_start_max_distance)
        if found is None:
            return
        entry, _distance = found
        state.warm_start = entry.label
        state.streams = max(1, min(entry.best_point.num_streams,
                                   state.spec.num_streams))
        self._m_streams.set(state.streams, job=state.spec.job_id)

    def _store_settings(self, state: JobState) -> None:
        if not state.step_times:
            return
        mean_step = sum(state.step_times) / len(state.step_times)
        self.cache.store(
            label=state.spec.job_id, model=get_model(state.spec.model),
            topology=self._job_topology(state.spec),
            best_point=ParameterPoint(
                num_streams=state.streams, granularity_bytes=4_000_000,
                algorithm="ring"),
            best_cost_s=mean_step)

    def _job_topology(self, spec: JobSpec) -> nx.Graph:
        """Similarity key for the settings cache: the job's sub-fabric."""
        graph = nx.Graph()
        for node in range(spec.num_nodes):
            graph.add_node(node, gpus=1, gpu="V100")
        for a in range(spec.num_nodes):
            for b in range(a + 1, spec.num_nodes):
                graph.add_edge(a, b, bandwidth=self.config.nic_bps)
        return graph

    # -- SLO sentinel + ladder ----------------------------------------------

    def _baseline_step_s(self, state: JobState) -> float:
        """Analytic uncontended step time (anchors the job's SLO)."""
        spec = state.spec
        if spec.num_nodes < 2:
            return spec.compute_s
        hop_bits = 2.0 * (spec.num_nodes - 1) / spec.num_nodes \
            * spec.bytes_per_step * 8.0
        rate = min(self.fabric.nic_bps,
                   spec.num_streams * self.fabric.stream_cap_bps,
                   self.fabric.core_bps / spec.num_nodes)
        return spec.compute_s + hop_bits / rate

    def _slo_breached(self, state: JobState) -> bool:
        window = self.config.slo_window
        if len(state.step_times) < window:
            return False
        spec = state.spec
        observed = sum(state.step_times[-window:]) / window
        slos = job_slos(spec.job_id, self._baseline_step_s(state),
                        slack_ratio=self.config.slo_slack)
        results = evaluate_slos(
            slos, {f"job:{spec.job_id}:step_time_s": observed})
        breached = [r for r in results if r.breached]
        if breached:
            self._finding(
                Severity.WARN, "job-slo-breach", spec.job_id,
                f"windowed step time {observed:.6g}s exceeds "
                f"{breached[0].limit:.6g}s",
                evidence=(("observed_s", observed),
                          ("limit_s", breached[0].limit),
                          ("window", window)))
        return bool(breached)

    def _shrink_streams(self, state: JobState) -> None:
        """Ladder stage 1: tuner-driven stream shrink."""
        spec = state.spec
        candidates = [s for s in SHRINK_STREAMS if s < state.streams] \
            or [1]
        space = SearchSpace(streams=candidates, granularities_mb=(4,),
                            algorithms=("ring",))
        tuner = AutoTuner(space, techniques=[GridSearch(space)],
                          budget=len(space), seed=spec.seed,
                          obs=self.obs)
        fair_core = self._fair_core_share_bps(spec)
        hop_bits = 2.0 * max(1, spec.num_nodes - 1) / spec.num_nodes \
            * spec.bytes_per_step * 8.0

        def evaluate(point: ParameterPoint) -> float:
            rate = min(self.fabric.nic_bps,
                       point.num_streams * self.fabric.stream_cap_bps
                       * state.cap_scale,
                       fair_core)
            return (spec.compute_s + hop_bits / rate
                    + point.num_streams * STREAM_OVERHEAD_S)

        best = tuner.tune(evaluate).best_point
        previous = state.streams
        state.streams = best.num_streams
        state.ladder_stage = 1
        state.status = "degraded"
        self.scheduler.shrink_reservation(spec.job_id, state.streams,
                                          spec)
        self._m_streams.set(state.streams, job=spec.job_id)
        self._m_degradations.inc(job=spec.job_id, stage="streams")
        self._finding(
            Severity.WARN, "degrade-streams", spec.job_id,
            f"sustained SLO breach: stream count {previous} -> "
            f"{state.streams} (tuner-selected)",
            evidence=(("streams_before", previous),
                      ("streams_after", state.streams)))

    def _throttle_caps(self, state: JobState) -> None:
        """Ladder stage 2: halve the job's per-stream rate caps."""
        state.cap_scale *= 0.5
        state.ladder_stage = 2
        state.status = "degraded"
        self._m_degradations.inc(job=state.spec.job_id, stage="caps")
        self._finding(
            Severity.WARN, "degrade-caps", state.spec.job_id,
            f"sustained SLO breach persists: per-stream caps scaled "
            f"to {state.cap_scale:g}x",
            evidence=(("cap_scale", state.cap_scale),))

    def _preempt_and_requeue(self, state: JobState) -> t.Generator:
        """Ladder stage 3: quiescent-boundary preemption + readmission."""
        spec = state.spec
        state.ladder_stage = 3
        departed = state.nodes
        state.transitions.append(EpochTransition(
            epoch=len(state.transitions) + 1, at_s=self.sim.now,
            kind="preempt", departed=departed, joined=(),
            world_before=spec.num_nodes, world_after=spec.num_nodes,
            live_continuation=True, broadcast_identical=None,
            resumed_iteration=state.steps_done, lr_scale=1.0,
            reconfigure_time_s=self.config.preempt_requeue_s))
        self.scheduler.release(spec.job_id)
        state.nodes = ()
        state.status = "preempted"
        self._m_degradations.inc(job=spec.job_id, stage="preempt")
        self.obs.timeline.instant(
            "cluster.preempt", "cluster", departed[0], self.sim.now,
            job=spec.job_id, step=state.steps_done)
        self._finding(
            Severity.ERROR, "preempt", spec.job_id,
            f"degradation exhausted at step {state.steps_done}: "
            f"preempted at the step boundary and requeued",
            evidence=(("step", state.steps_done),
                      ("nodes", list(departed))))
        yield self.sim.timeout(self.config.preempt_requeue_s)
        yield from self._admit(state, deadline_s=float("inf"),
                               resuming=True)
        state.transitions.append(EpochTransition(
            epoch=len(state.transitions) + 1, at_s=self.sim.now,
            kind="resume", departed=(), joined=state.nodes,
            world_before=spec.num_nodes, world_after=spec.num_nodes,
            live_continuation=True, broadcast_identical=None,
            resumed_iteration=state.steps_done, lr_scale=1.0,
            reconfigure_time_s=0.0))
        self._finding(
            Severity.INFO, "resume", spec.job_id,
            f"readmitted on nodes {list(state.nodes)} at "
            f"t={self.sim.now:.6g}s",
            evidence=(("nodes", list(state.nodes)),))

    def _fair_core_share_bps(self, spec: JobSpec) -> float:
        """The spine bandwidth this job's priority entitles it to now."""
        active = [s for s in self.specs
                  if self.states.get(s.job_id) is not None
                  and self.states[s.job_id].nodes]
        total_priority = sum(s.priority for s in active) or spec.priority
        share = self.fabric.core_bps * spec.priority / total_priority
        return share / max(1, spec.num_nodes)

    # -- chaos ---------------------------------------------------------------

    def _job_faults(self, state: JobState, kind: type) -> list:
        if state.chaos is None:
            return []
        return [f for f in state.chaos.faults if isinstance(f, kind)]

    def _straggler_factor(self, state: JobState) -> float:
        factor = 1.0
        for fault in self._job_faults(state, Straggler):
            if fault.at_s <= self.sim.now < fault.at_s + fault.duration_s:
                factor *= fault.slowdown
        return factor

    def _arm_link_chaos(self, state: JobState) -> None:
        """Spawn restore-after-window processes for link faults."""
        for fault in self._job_faults(state, LinkFlap):
            self.sim.spawn(
                self._link_window(state, fault.node, None, fault.at_s,
                                  fault.down_s),
                name=f"chaos:flap:{state.spec.job_id}@{fault.node}")
        for fault in self._job_faults(state, BandwidthDegradation):
            self.sim.spawn(
                self._link_window(state, fault.node, fault.fraction,
                                  fault.at_s, fault.duration_s),
                name=f"chaos:degrade:{state.spec.job_id}@{fault.node}")

    def _link_window(self, state: JobState, local_node: int,
                     fraction: float | None, at_s: float,
                     duration_s: float) -> t.Generator:
        if at_s > self.sim.now:
            yield self.sim.timeout(at_s - self.sim.now)
        if not state.nodes:
            return  # preempted before the window opened
        node = state.nodes[local_node]
        if fraction is None:
            self.fabric.flap_node_nic(node)
        else:
            self.fabric.scale_node_nic(node, fraction)
        self.obs.timeline.instant(
            "fault.inject", "fault", node, self.sim.now,
            job=state.spec.job_id,
            kind="flap" if fraction is None else "degrade")
        yield self.sim.timeout(duration_s)
        self.fabric.restore_node_nic(node)
        self.obs.timeline.instant(
            "fault.restore", "fault", node, self.sim.now,
            job=state.spec.job_id,
            kind="flap" if fraction is None else "degrade")

    # -- findings ------------------------------------------------------------

    def _finding(self, severity: Severity, kind: str, job_id: str,
                 message: str,
                 evidence: tuple[tuple[str, object], ...] = ()) -> None:
        self.findings.append(Finding(
            severity=severity, component="cluster", kind=kind,
            subject=f"job {job_id}", message=message,
            time_s=self.sim.now,
            evidence=evidence + (("job", job_id),)))

    def _interference_findings(self) -> None:
        """Cross-job interference: victims vs their spine entitlement."""
        suite = self.obs.diag
        if suite is None:
            return
        core_bytes: dict[str, float] = {}
        for (link, job, _algo), nbytes in suite.job_link_bytes().items():
            if link == self.fabric.core.name:
                core_bytes[job] = core_bytes.get(job, 0.0) + nbytes
        total = sum(core_bytes.values())
        if total <= 0:
            return
        victims = {state.spec.job_id for state in self.states.values()
                   if state.ladder_stage > 0}
        for job_id in sorted(victims):
            others = sorted(job for job in core_bytes if job != job_id)
            if not others:
                continue
            share = core_bytes.get(job_id, 0.0) / total
            self._finding(
                Severity.WARN, "interference", job_id,
                f"degraded while sharing the spine with "
                f"{', '.join(others)} (carried {share:.1%} of core "
                f"bytes)",
                evidence=(("core_share", share),
                          ("neighbors", others)))


# -- canonical scenario -------------------------------------------------------


def three_job_scenario(chaos: bool = True,
                       config: ClusterConfig | None = None
                       ) -> ClusterRuntime:
    """The committed 3-job contention scenario (CI smoke + tests).

    Three tenants share a six-node fabric with a 1.5x-oversubscribed
    spine.  With ``chaos=True``, tenant A additionally suffers a crash,
    a long straggler window and a bandwidth degradation — enough
    sustained SLO breach to walk the full degradation ladder — while B
    and C must come through numerically untouched.
    """
    specs = [
        JobSpec(job_id="jobA", model="resnet50", num_nodes=2,
                priority=1.0, arrival_s=0.0, steps=16, num_streams=8,
                seed=0, compute_s=0.04, bytes_per_step=48e6),
        JobSpec(job_id="jobB", model="vgg16", num_nodes=2,
                priority=2.0, arrival_s=0.1, steps=10, num_streams=4,
                seed=1, compute_s=0.04, bytes_per_step=48e6),
        JobSpec(job_id="jobC", model="resnet50", num_nodes=2,
                priority=1.0, arrival_s=0.2, steps=8, num_streams=2,
                seed=2, compute_s=0.05, bytes_per_step=32e6),
    ]
    plans = {}
    if chaos:
        plans["jobA"] = FaultPlan([
            Straggler(at_s=0.2, node=0, slowdown=6.0, duration_s=12.0),
            NodeCrash(at_s=1.0, node=1),
            BandwidthDegradation(at_s=2.0, node=0, fraction=0.3,
                                 duration_s=4.0),
        ])
    return ClusterRuntime(specs, config=config, chaos=plans)
