"""Rule-based diagnosis: detector events + attributions -> findings.

The diagnosis engine is the interpreting layer the ISSUE calls for: it
consumes the :class:`~repro.obs.detectors.DetectorSuite`'s canonical
event tuple plus the critical-path attributions and the recorded fault
lifecycle, and emits typed :class:`Finding`\\ s — severity, component,
machine-readable evidence, human-readable explanation — rendered as a
markdown report, JSONL records, and Perfetto instant annotations.

Determinism contract: findings are sorted canonically and their digest
(:attr:`DiagnosisReport.findings_digest`) is a SHA-256 over the
sorted-keys JSON of the finding records only, so the same run — live,
or re-diagnosed from recorded artifacts — produces a bit-identical
digest (pinned in the golden determinism matrix).
"""

from __future__ import annotations

import dataclasses
import hashlib
import json
import pathlib
import typing as t

from repro.errors import ReproError
from repro.ioutil import atomic_write_text
from repro.obs.critical_path import StepAttribution, attribute_all
from repro.obs.detectors import (
    DetectorConfig,
    DetectorEvent,
    DetectorSuite,
    Severity,
)
from repro.obs.exporters import write_artifacts
from repro.obs.metrics import HistogramState, _label_key
from repro.obs.timeline import StepTimeline, TimelineFlowPoint

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs import Observability
    from repro.obs.slo import SLOResult

#: Detector kind -> diagnosed component.
_COMPONENT_OF = {
    "straggler": "runtime",
    "stream-imbalance": "streams",
    "congestion": "network",
    "negotiation-overhead": "sync",
    "tuner-regression": "autotune",
    "interference": "cluster",
}

#: Fault instants that close a recovery episode.
_RECOVERY_CLOSERS = ("fault.restore", "fault.recover")


@dataclasses.dataclass(frozen=True)
class Finding:
    """One diagnosed condition, typed and evidence-backed."""

    severity: Severity
    component: str
    kind: str
    subject: str
    message: str
    time_s: float
    #: Machine-readable evidence as ordered ``(key, value)`` pairs.
    evidence: tuple[tuple[str, object], ...] = ()

    def record(self) -> dict[str, object]:
        """JSON-safe dict form (severity by *name*, not number)."""
        return {
            "severity": self.severity.name,
            "component": self.component,
            "kind": self.kind,
            "subject": self.subject,
            "message": self.message,
            "time_s": self.time_s,
            "evidence": {key: value for key, value in self.evidence},
        }


def _finding_sort_key(finding: Finding) -> tuple:
    return (-int(finding.severity), finding.component, finding.kind,
            finding.subject, finding.time_s)


def findings_digest(findings: t.Sequence[Finding]) -> str:
    """SHA-256 over the canonical JSON of the findings alone."""
    payload = json.dumps([f.record() for f in findings], sort_keys=True)
    return hashlib.sha256(payload.encode()).hexdigest()


@dataclasses.dataclass(frozen=True)
class DiagnosisReport:
    """Findings + raw detector events + SLO verdicts for one run."""

    findings: tuple[Finding, ...]
    events: tuple[DetectorEvent, ...] = ()
    measurements: t.Mapping[str, float] = dataclasses.field(
        default_factory=dict)
    slo_results: tuple["SLOResult", ...] = ()

    @property
    def findings_digest(self) -> str:
        return findings_digest(self.findings)

    @property
    def worst_severity(self) -> Severity | None:
        if not self.findings:
            return None
        return max(finding.severity for finding in self.findings)

    def findings_at(self, floor: Severity) -> tuple[Finding, ...]:
        return tuple(f for f in self.findings if f.severity >= floor)

    @property
    def breached_slos(self) -> tuple["SLOResult", ...]:
        return tuple(r for r in self.slo_results if r.breached)

    # -- rendering -----------------------------------------------------------

    def jsonl_records(self) -> t.Iterator[dict[str, object]]:
        # "record" discriminates the line type; findings keep their own
        # "kind" field (the detector kind, e.g. "straggler").
        for finding in self.findings:
            yield {"record": "finding", **finding.record()}
        for result in self.slo_results:
            yield {"record": "slo", **result.record()}

    def to_markdown(self) -> str:
        lines = ["# Diagnosis report", ""]
        if self.findings:
            lines += [f"## Findings ({len(self.findings)})", "",
                      "| severity | component | kind | subject | message |",
                      "| --- | --- | --- | --- | --- |"]
            for finding in self.findings:
                lines.append(
                    f"| {finding.severity.name} | {finding.component} "
                    f"| {finding.kind} | {finding.subject} "
                    f"| {finding.message} |")
        else:
            lines.append("No findings: every detector is quiet.")
        lines.append("")
        if self.slo_results:
            lines += ["## SLOs", "",
                      "| slo | observed | limit | verdict |",
                      "| --- | --- | --- | --- |"]
            for result in self.slo_results:
                lines.append(
                    f"| {result.slo.name} | {result.observed_text} "
                    f"| {result.limit_text} | {result.verdict} |")
            lines.append("")
        if self.measurements:
            lines += ["## Measurements", ""]
            for key in sorted(self.measurements):
                lines.append(f"- `{key}` = {self.measurements[key]!r}")
            lines.append("")
        lines.append(f"findings digest: `{self.findings_digest}`")
        lines.append("")
        return "\n".join(lines)

    def annotate(self, timeline: StepTimeline) -> None:
        """Add one ``diagnosis`` instant per finding to a timeline.

        Renders in Perfetto as flagged instants at the finding's time,
        so the report and the trace cross-reference each other.
        """
        for finding in self.findings:
            timeline.instant(
                f"finding.{finding.kind}", "diagnosis", 0, finding.time_s,
                severity=finding.severity.name, component=finding.component,
                subject=finding.subject, message=finding.message)


def _recovery_findings(timeline: StepTimeline) -> list[Finding]:
    """Pair ``fault.inject`` instants with their recovery closers."""
    faults = sorted(
        (i for i in timeline.instants if i.cat == "fault"),
        key=lambda i: (i.time, i.name))
    findings: list[Finding] = []
    open_inject = None
    for instant in faults:
        if instant.name == "fault.inject":
            if open_inject is not None:
                findings.append(_unrecovered(open_inject))
            open_inject = instant
        elif instant.name in _RECOVERY_CLOSERS and open_inject is not None:
            recovery_s = instant.time - open_inject.time
            findings.append(Finding(
                severity=Severity.WARN, component="resilience",
                kind="crash-recovery",
                subject=f"rank {open_inject.rank}",
                message=(f"injected fault at t={open_inject.time:.6g}s "
                         f"recovered in {recovery_s:.6g}s"),
                time_s=instant.time,
                evidence=(("injected_at_s", open_inject.time),
                          ("recovered_at_s", instant.time),
                          ("recovery_s", recovery_s))))
            open_inject = None
    if open_inject is not None:
        findings.append(_unrecovered(open_inject))
    return findings


def _unrecovered(instant) -> Finding:
    return Finding(
        severity=Severity.ERROR, component="resilience",
        kind="unrecovered-fault", subject=f"rank {instant.rank}",
        message=(f"fault injected at t={instant.time:.6g}s has no "
                 f"recorded recovery"),
        time_s=instant.time,
        evidence=(("injected_at_s", instant.time),))


def _event_finding(event: DetectorEvent) -> Finding:
    return Finding(
        severity=event.severity,
        component=_COMPONENT_OF.get(event.detector, "runtime"),
        kind=event.kind, subject=event.subject, message=event.detail,
        time_s=event.time_s,
        evidence=(("value", event.value), ("threshold", event.threshold),
                  ("detector", event.detector)))


def timeline_measurements(timeline: StepTimeline) -> dict[str, float]:
    """Derive SLO-relevant measurements from a recorded timeline."""
    measurements: dict[str, float] = {}
    durations = sorted(end - start
                       for _rank, _step, start, end in timeline.steps())
    if durations:
        # Exact nearest-rank p99 (no bucket interpolation error).
        index = max(0, -(-99 * len(durations) // 100) - 1)
        measurements["step_time_p99_s"] = durations[index]
    recoveries = [
        f.time_s - dict(f.evidence)["injected_at_s"]
        for f in _recovery_findings(timeline) if f.kind == "crash-recovery"]
    if recoveries:
        measurements["recovery_time_s"] = max(
            t.cast(float, r) for r in recoveries)
    return measurements


def diagnose(obs: "Observability",
             attributions: t.Sequence[StepAttribution] | None = None,
             config: DetectorConfig | None = None) -> DiagnosisReport:
    """Diagnose one run's observability bundle.

    Uses the live :class:`DetectorSuite` when one is attached
    (``obs.diag``); otherwise reconstructs an equivalent suite from the
    recorded registry + timeline (the ``--from-artifacts`` path).  Both
    roads produce bit-identical findings for the same run.
    """
    suite = getattr(obs, "diag", None)
    if suite is None:
        suite = DetectorSuite(config)
        suite.seed_from_registry(obs.registry)
        suite.replay_timeline(obs.timeline)
    if attributions is None:
        attributions = attribute_all(obs.timeline)
    events = suite.finalize(attributions or None)
    findings = [_event_finding(event) for event in events]
    findings.extend(_recovery_findings(obs.timeline))
    findings.sort(key=_finding_sort_key)
    return DiagnosisReport(
        findings=tuple(findings), events=events,
        measurements=timeline_measurements(obs.timeline))


# -- artifact round-trip -----------------------------------------------------


def load_artifacts(directory: str | pathlib.Path) -> "Observability":
    """Rebuild an :class:`Observability` bundle from ``timeline.jsonl``.

    Inverse of :func:`repro.obs.exporters.write_artifacts` for the JSONL
    artifact (which carries both registry and timeline): counters,
    gauges, histogram states, step windows, spans, instants and flow
    points all round-trip exactly — JSON floats are lossless.
    """
    from repro.obs import Observability

    path = pathlib.Path(directory)
    jsonl = path / "timeline.jsonl" if path.is_dir() else path
    if not jsonl.exists():
        raise ReproError(f"no timeline.jsonl under {path} — "
                         f"was this directory written by write_artifacts?")
    obs = Observability(enabled=True)
    registry, timeline = obs.registry, obs.timeline
    for line_no, line in enumerate(jsonl.read_text().splitlines(), 1):
        if not line.strip():
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError as exc:
            raise ReproError(
                f"{jsonl}:{line_no}: corrupt JSONL record: {exc}") from exc
        kind = record.get("kind")
        if kind == "counter":
            registry.counter(record["name"]).samples[
                _label_key(record["labels"])] = record["value"]
        elif kind == "gauge":
            registry.gauge(record["name"]).samples[
                _label_key(record["labels"])] = record["value"]
        elif kind == "histogram":
            metric = registry.histogram(record["name"],
                                        buckets=record["buckets"])
            metric.samples[_label_key(record["labels"])] = HistogramState(
                bucket_counts=list(record["bucket_counts"]),
                count=record["count"], sum=record["sum"])
        elif kind == "step":
            timeline.begin_step(record["rank"], record["step"],
                                record["start_s"])
            timeline.end_step(record["rank"], record["step"],
                              record["end_s"])
        elif kind == "span":
            timeline.span(record["name"], record["cat"], record["rank"],
                          record["start_s"], record["end_s"],
                          stream=record["stream"], **record["meta"])
        elif kind == "instant":
            timeline.instant(record["name"], record["cat"], record["rank"],
                             record["time_s"], **record["meta"])
        elif kind == "flow":
            timeline.flow_points.append(TimelineFlowPoint(
                record["id"], record["phase"], record["name"],
                record["rank"], record["time_s"], record["stream"]))
        else:
            raise ReproError(
                f"{jsonl}:{line_no}: unknown record kind {kind!r}")
    return obs


def write_diagnosis_artifacts(directory: str | pathlib.Path,
                              report: DiagnosisReport,
                              obs: "Observability | None" = None
                              ) -> dict[str, pathlib.Path]:
    """Persist a diagnosis under a directory (atomically, like obs).

    Writes ``findings.md`` / ``findings.jsonl`` / ``measurements.json``;
    with an observability bundle, also annotates its timeline with the
    findings and writes the standard obs artifacts next to them, so the
    Perfetto trace carries the diagnosis instants.
    """
    out = pathlib.Path(directory)
    written = {
        "findings_md": atomic_write_text(
            out / "findings.md", report.to_markdown()),
        "findings_jsonl": atomic_write_text(
            out / "findings.jsonl",
            "".join(json.dumps(record, sort_keys=True) + "\n"
                    for record in report.jsonl_records())),
        "measurements": atomic_write_text(
            out / "measurements.json",
            json.dumps({"measurements": dict(report.measurements),
                        "findings_digest": report.findings_digest},
                       sort_keys=True, indent=2) + "\n"),
    }
    if obs is not None:
        report.annotate(obs.timeline)
        written.update(write_artifacts(out, obs.registry, obs.timeline))
    return written
