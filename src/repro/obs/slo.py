"""Declarative SLOs and the regression sentinel that evaluates them.

An :class:`SLO` binds one measurement key (``step_time_p99_s``,
``scaling_efficiency``, ``recovery_time_s``, ``obs_overhead_frac``) to
absolute bounds and/or a *relative* bound against a baseline value
(e.g. ``<= 1.10 x`` the ``simulated_step_s`` pinned in
``BENCH_simulator.json``).  :func:`evaluate_slos` turns measurements +
an optional :class:`~repro.obs.baselines.Baseline` into
:class:`SLOResult` verdicts; an unmeasurable objective is *skipped*
(with a reason), never silently passed or failed.

SLO files are JSON: ``{"slos": [{"name": ..., "metric": ...,
"max_value": ..., "min_value": ..., "baseline_key": ...,
"baseline_ratio": ...}, ...]}`` — see ``docs/observability.md``.
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as t

from repro.errors import ReproError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.baselines import Baseline
    from repro.obs.metrics import MetricsRegistry


@dataclasses.dataclass(frozen=True)
class SLO:
    """One declarative objective over one measurement."""

    name: str
    #: Key into the measurements mapping.
    metric: str
    #: Absolute upper bound (breach when observed exceeds it).
    max_value: float | None = None
    #: Absolute lower bound (breach when observed falls below it).
    min_value: float | None = None
    #: Baseline value key + ratio: relative upper bound
    #: ``baseline[baseline_key] * baseline_ratio``.
    baseline_key: str | None = None
    baseline_ratio: float | None = None
    #: Histogram fallback: when the measurement key is absent, read this
    #: quantile of this histogram family from the registry instead.
    histogram: str | None = None
    quantile: float | None = None
    description: str = ""

    def __post_init__(self) -> None:
        if (self.max_value is None and self.min_value is None
                and (self.baseline_key is None
                     or self.baseline_ratio is None)):
            raise ReproError(
                f"SLO {self.name!r} declares no bound: set max_value, "
                f"min_value, or baseline_key + baseline_ratio")


@dataclasses.dataclass(frozen=True)
class SLOResult:
    """The sentinel's verdict on one SLO."""

    slo: SLO
    observed: float | None
    #: Effective upper limit after folding baseline + absolute bounds.
    limit: float | None
    breached: bool
    skipped: bool = False
    reason: str = ""

    @property
    def verdict(self) -> str:
        if self.skipped:
            return f"SKIP ({self.reason})"
        return "BREACH" if self.breached else "ok"

    @property
    def observed_text(self) -> str:
        return "-" if self.observed is None else f"{self.observed:.6g}"

    @property
    def limit_text(self) -> str:
        parts = []
        if self.limit is not None:
            parts.append(f"<= {self.limit:.6g}")
        if self.slo.min_value is not None:
            parts.append(f">= {self.slo.min_value:.6g}")
        return " and ".join(parts) if parts else "-"

    def record(self) -> dict[str, object]:
        return {
            "name": self.slo.name, "metric": self.slo.metric,
            "observed": self.observed, "limit": self.limit,
            "min_value": self.slo.min_value, "breached": self.breached,
            "skipped": self.skipped, "reason": self.reason,
        }


#: The sentinel's stock objectives.  ``step_time_p99_s`` is relative to
#: the benchmark baseline; the rest are absolute envelopes sized to the
#: committed scenario suite.
DEFAULT_SLOS: tuple[SLO, ...] = (
    SLO(name="step_time_p99", metric="step_time_p99_s",
        baseline_key="simulated_step_s", baseline_ratio=1.10,
        histogram="aiacc_step_seconds", quantile=0.99,
        description="p99 simulated step time within 10% of the pinned "
                    "benchmark baseline"),
    SLO(name="scaling_efficiency", metric="scaling_efficiency",
        min_value=0.5,
        description="measured scaling efficiency vs the single-GPU ideal"),
    SLO(name="recovery_time", metric="recovery_time_s", max_value=60.0,
        description="worst crash-to-resume recovery latency (the restart "
                    "overhead alone is 30 simulated seconds)"),
    SLO(name="obs_overhead", metric="obs_overhead_frac", max_value=1.5,
        description="wall-clock overhead factor of full observability + "
                    "detectors vs a disabled-obs run"),
)


def job_slos(job_id: str, baseline_step_s: float,
             slack_ratio: float = 1.25) -> tuple[SLO, ...]:
    """Per-tenant step-time objectives for one job on a shared fabric.

    The cluster overload controller evaluates these against the job's
    own measurements (keys are namespaced ``job:<id>:...``): the step
    time of a healthy, uncontended run of the same job anchors the
    limit, and ``slack_ratio`` is the contention the tenant is expected
    to absorb before the degradation ladder engages.
    """
    if baseline_step_s <= 0:
        raise ReproError(
            f"job {job_id!r}: baseline_step_s must be positive")
    if slack_ratio <= 1.0:
        raise ReproError(
            f"job {job_id!r}: slack_ratio must exceed 1.0")
    return (
        SLO(name=f"job:{job_id}:step_time",
            metric=f"job:{job_id}:step_time_s",
            max_value=baseline_step_s * slack_ratio,
            description=f"job {job_id} per-step latency within "
                        f"{slack_ratio:g}x its uncontended baseline"),
    )


def evaluate_slos(slos: t.Sequence[SLO],
                  measurements: t.Mapping[str, float],
                  baseline: "Baseline | None" = None,
                  registry: "MetricsRegistry | None" = None
                  ) -> tuple[SLOResult, ...]:
    """Evaluate every SLO; unmeasurable objectives are skipped."""
    results = []
    for slo in slos:
        observed = measurements.get(slo.metric)
        if observed is None and slo.histogram and registry is not None:
            metric = registry.get(slo.histogram)
            if metric is not None and hasattr(metric, "quantile"):
                observed = metric.quantile(slo.quantile or 0.99)
        limits = []
        if slo.max_value is not None:
            limits.append(slo.max_value)
        if slo.baseline_key is not None and slo.baseline_ratio is not None:
            if baseline is not None:
                base = baseline.values.get(slo.baseline_key)
                if base is not None:
                    limits.append(base * slo.baseline_ratio)
        limit = min(limits) if limits else None
        if observed is None:
            results.append(SLOResult(
                slo=slo, observed=None, limit=limit, breached=False,
                skipped=True, reason=f"no measurement for {slo.metric!r}"))
            continue
        if limit is None and slo.min_value is None:
            reason = ("baseline value missing"
                      if slo.baseline_key is not None else "no bound")
            results.append(SLOResult(
                slo=slo, observed=observed, limit=None, breached=False,
                skipped=True, reason=reason))
            continue
        breached = bool(
            (limit is not None and observed > limit)
            or (slo.min_value is not None and observed < slo.min_value))
        results.append(SLOResult(
            slo=slo, observed=observed, limit=limit, breached=breached))
    return tuple(results)


def load_slos(path: str | pathlib.Path) -> tuple[SLO, ...]:
    """Load SLOs from a JSON file (typed errors on any malformation)."""
    slo_path = pathlib.Path(path)
    if not slo_path.exists():
        raise ReproError(f"SLO file not found: {slo_path}")
    try:
        payload = json.loads(slo_path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(f"corrupt SLO file {slo_path}: {exc}") from exc
    entries = payload.get("slos") if isinstance(payload, dict) else payload
    if not isinstance(entries, list):
        raise ReproError(
            f"SLO file {slo_path} must hold a list (or {{'slos': [...]}})")
    slos = []
    valid = {field.name for field in dataclasses.fields(SLO)}
    for index, entry in enumerate(entries):
        if not isinstance(entry, dict):
            raise ReproError(f"{slo_path}: SLO #{index} is not an object")
        unknown = set(entry) - valid
        if unknown:
            raise ReproError(
                f"{slo_path}: SLO #{index} has unknown keys "
                f"{sorted(unknown)}")
        try:
            slos.append(SLO(**entry))
        except TypeError as exc:
            raise ReproError(
                f"{slo_path}: SLO #{index} is malformed: {exc}") from exc
    return tuple(slos)
