"""Builds the ``python -m repro report`` attribution report.

Runs one fully-instrumented message-level AIACC iteration (a real
simulated process per worker, real readiness messages, real per-unit
rings on the cluster links) and distils the recorded timeline into:

* a per-rank step-time attribution table (compute / negotiate / network
  / straggler, summing to the measured step time);
* a per-stream lane summary (how each rank's CUDA streams were used);
* a per-link flow summary whose single-stream utilisation reproduces
  the paper's §III observation that one TCP stream reaches ≤30% of the
  link bandwidth.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.obs import Observability
from repro.obs.critical_path import StepAttribution, attribute_all
from repro.obs.timeline import NETWORK_RANK, StepTimeline

if t.TYPE_CHECKING:  # pragma: no cover
    from repro.core.runtime import AIACCConfig


@dataclasses.dataclass(frozen=True)
class ObsReport:
    """Everything the report CLI renders and persists."""

    model: str
    world_size: int
    iteration_time_s: float
    attributions: tuple[StepAttribution, ...]
    stream_rows: tuple[dict, ...]
    link_rows: tuple[dict, ...]
    obs: Observability

    @property
    def max_conservation_error(self) -> float:
        """Worst relative |sum(components) - step_time| across ranks."""
        worst = 0.0
        for attribution in self.attributions:
            if attribution.step_time_s <= 0:
                continue
            error = abs(attribution.total_s - attribution.step_time_s) \
                / attribution.step_time_s
            worst = max(worst, error)
        return worst


def link_utilisation_rows(timeline: StepTimeline) -> list[dict]:
    """Summarize per-flow network spans, grouped by (link, algorithm).

    ``utilisation`` is the duration-weighted mean of each flow's
    achieved rate over its bottleneck link capacity — the per-stream
    share of the physical link, which the TCP transport caps at the
    paper's single-stream efficiency (≤30%).  Flows placed by a named
    collective algorithm (the planner backends stamp
    ``FluidNetwork.flow_label``) get their own row per link, so a
    planner run attributes each link's busy-time per algorithm;
    unlabelled flows group under ``"-"``.
    """
    grouped: dict[tuple[str, str], list] = {}
    for span in timeline.spans:
        if span.rank != NETWORK_RANK or span.cat != "net":
            continue
        key = (str(span.meta.get("lane", "?")),
               str(span.meta.get("algorithm", "-")))
        grouped.setdefault(key, []).append(span)
    rows = []
    for lane, algorithm in sorted(grouped):
        spans = grouped[(lane, algorithm)]
        total_duration = sum(s.duration for s in spans)
        weighted = sum(
            float(t.cast(float, s.meta["utilisation"])) * s.duration
            for s in spans)
        rows.append({
            "link": lane,
            "algorithm": algorithm,
            "flows": len(spans),
            "mbytes": sum(float(t.cast(float, s.meta["bytes"]))
                          for s in spans) / 1e6,
            "utilisation": weighted / total_duration
            if total_duration > 0 else 0.0,
            "peak_utilisation": max(
                float(t.cast(float, s.meta["utilisation"]))
                for s in spans),
            "capped": any(bool(s.meta.get("capped")) for s in spans),
        })
    return rows


def job_link_rows(timeline: StepTimeline) -> list[dict]:
    """Per-(link, job) traffic summary of network-category spans.

    The multi-tenant fabric stamps ``job`` into every flow span's meta
    (see ``FluidNetwork.flow_job``); this groups the recorded spans by
    shared link and tenant so a cluster run can report how each job's
    bytes and busy-time split across contended links.  Spans without a
    job tag group under ``"-"``.
    """
    grouped: dict[tuple[str, str], list] = {}
    for span in timeline.spans:
        if span.rank != NETWORK_RANK or span.cat != "net":
            continue
        key = (str(span.meta.get("lane", "?")),
               str(span.meta.get("job", "-")))
        grouped.setdefault(key, []).append(span)
    rows = []
    for link, job in sorted(grouped):
        spans = grouped[(link, job)]
        rows.append({
            "link": link,
            "job": job,
            "flows": len(spans),
            "mbytes": sum(float(t.cast(float, s.meta["bytes"]))
                          for s in spans) / 1e6,
            "busy_ms": sum(s.duration for s in spans) * 1e3,
            "throttled": any(bool(s.meta.get("capped")) for s in spans),
        })
    return rows


def stream_lane_rows(timeline: StepTimeline) -> list[dict]:
    """Per-(rank, stream) occupancy summary of network-category spans."""
    grouped: dict[tuple[int, int], list] = {}
    for span in timeline.spans:
        if span.stream is None or span.rank == NETWORK_RANK:
            continue
        grouped.setdefault((span.rank, span.stream), []).append(span)
    rows = []
    for (rank, stream), spans in sorted(grouped.items()):
        rows.append({
            "rank": rank,
            "stream": stream,
            "units": len(spans),
            "busy_ms": sum(s.duration for s in spans) * 1e3,
            "mbytes": sum(float(t.cast(float, s.meta.get("bytes", 0.0)))
                          for s in spans) / 1e6,
        })
    return rows


def build_step_report(model: str = "resnet50", num_nodes: int = 2,
                      gpus_per_node: int = 2,
                      config: "AIACCConfig | None" = None,
                      batch_per_gpu: int | None = None,
                      seed: int = 0,
                      obs: Observability | None = None,
                      compute_skew: t.Mapping[int, float] | None = None
                      ) -> ObsReport:
    """Run one instrumented message-level iteration and distil it.

    Pass a prepared ``obs`` (e.g. with a detector suite attached via
    :meth:`Observability.attach_detectors`) to diagnose the run;
    ``compute_skew`` scales one or more ranks' backward duration (the
    straggler scenario — see ``run_message_level_iteration``).
    """
    from repro.core.message_engine import run_message_level_iteration
    from repro.core.runtime import AIACCConfig
    from repro.models.base import ModelSpec
    from repro.models.zoo import get_model
    from repro.sim.cuda import GPUDevice, V100

    spec = get_model(model) if isinstance(model, str) \
        else t.cast(ModelSpec, model)
    config = config or AIACCConfig()
    batch = batch_per_gpu or spec.default_batch_size
    # Spread the gradient schedule over a realistic backward duration so
    # overlap (and therefore attribution) is meaningful.
    compute_time_s = GPUDevice(V100).compute_time_s(
        spec.backward_flops * batch)

    obs = obs if obs is not None else Observability(enabled=True)
    result = run_message_level_iteration(
        spec, num_nodes=num_nodes, gpus_per_node=gpus_per_node,
        config=config, compute_time_s=compute_time_s, seed=seed, obs=obs,
        compute_skew=compute_skew)

    return ObsReport(
        model=spec.name,
        world_size=num_nodes * gpus_per_node,
        iteration_time_s=result.iteration_time_s,
        attributions=tuple(attribute_all(obs.timeline)),
        stream_rows=tuple(stream_lane_rows(obs.timeline)),
        link_rows=tuple(link_utilisation_rows(obs.timeline)),
        obs=obs,
    )
