"""Streaming anomaly detectors over the observability hooks.

The paper's evaluation is a catalogue of communication pathologies —
per-stream link-utilisation skew (Fig. 3), negotiation overhead at
scale, congested spines, tuner mis-convergence.  This module turns the
passive instruments of :mod:`repro.obs` into *online* detectors: the
engines, the stream pools, the fluid network and the auto-tuner feed a
:class:`DetectorSuite` a few floats per event, the suite keeps O(1)
aggregate state per rank / stream / link, and :meth:`DetectorSuite.
finalize` folds that state into a canonical tuple of
:class:`DetectorEvent`\\ s the diagnosis engine turns into findings.

Determinism contract: the suite stores only sums and counts keyed by
stable identifiers, folds them in *sorted-key* order at finalize time,
and round-trips exactly through the metrics registry
(:meth:`DetectorSuite.publish` / :meth:`DetectorSuite.
seed_from_registry`) — JSON serialises floats losslessly, so
re-diagnosing recorded artifacts is bit-identical to diagnosing live.
"""

from __future__ import annotations

import collections
import dataclasses
import enum
import typing as t

from repro.errors import ReproError

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.obs.metrics import MetricsRegistry
    from repro.obs.timeline import StepTimeline


class Severity(enum.IntEnum):
    """Ordered finding severity (numeric gaps leave room for levels)."""

    INFO = 10
    WARN = 20
    ERROR = 30
    CRITICAL = 40


def parse_severity(name: str) -> Severity:
    """Parse a severity by (case-insensitive) name."""
    try:
        return Severity[name.upper()]
    except KeyError:
        valid = ", ".join(s.name for s in Severity)
        raise ReproError(
            f"unknown severity {name!r} (valid: {valid})") from None


@dataclasses.dataclass(frozen=True)
class DetectorEvent:
    """One detector's verdict about one subject."""

    detector: str
    kind: str
    severity: Severity
    #: What the event is about: ``rank 2``, ``link core``, ``tuner``...
    subject: str
    time_s: float
    #: Observed value that tripped (or characterises) the detector.
    value: float
    #: The threshold it was compared against.
    threshold: float
    detail: str = ""


@dataclasses.dataclass(frozen=True)
class DetectorConfig:
    """Thresholds for every streaming detector.

    Defaults are deliberately conservative: a clean, balanced run of any
    committed scenario must produce *zero* events (the CI healthy gate
    enforces this), so each bound sits well outside the envelope healthy
    runs occupy and inside what the seeded fault scenarios produce.
    """

    #: A rank whose attributed compute exceeds the cohort median by this
    #: factor (plus the absolute margin) is a straggler.
    straggler_ratio: float = 1.25
    straggler_margin_s: float = 1e-3
    #: A stream carrying more than this share of its rank's total
    #: stream busy time (with >= 2 streams configured) is imbalance —
    #: the paper's Fig. 3 failure mode, one lane hauling everything.
    imbalance_share: float = 0.75
    imbalance_min_busy_s: float = 1e-3
    #: ...and only when the busiest stream was busy for at least this
    #: fraction of the run.  Serialized dispatch legitimately lands
    #: every unit on the lowest free stream id; that is only the
    #: paper's Fig. 3 pathology when communication dominates wall time.
    imbalance_busy_frac: float = 0.25
    #: Link utilisation at or above this fraction of capacity counts as
    #: saturated for the interval sampler.
    congestion_saturation: float = 0.9
    #: Fraction of observed (flow-active) time a link must spend
    #: saturated to be congestion-suspect...
    congestion_sustained: float = 0.5
    #: ...and the fraction of its bytes carried by flows that finished
    #: below their per-stream rate cap (i.e. actually throttled).  Both
    #: conditions must hold: a link running hot at full per-stream rate
    #: is healthy pipelining, not congestion.
    congestion_throttled_frac: float = 0.3
    #: Exposed negotiation above this fraction of total step time is a
    #: blowup (the paper hides negotiation behind backward compute).
    negotiate_frac: float = 0.35
    #: Tuner regression: recent mean trial cost must beat the
    #: SettingsCache warm-start cost within this relative margin.
    tuner_margin: float = 0.05
    #: Trailing trial window folded into the recent mean.
    tuner_window: int = 8
    #: Minimum recorded trials before the tuner rule may fire.
    tuner_min_trials: int = 3


#: Escalate WARN -> ERROR when the observed value reaches this multiple
#: of its threshold.
_ESCALATION_FACTOR = 2.0


def _severity_for(value: float, threshold: float) -> Severity:
    if threshold > 0 and value >= _ESCALATION_FACTOR * threshold:
        return Severity.ERROR
    return Severity.WARN


def _fmt(value: float) -> str:
    """Deterministic human-ish float formatting for detail strings."""
    return f"{value:.6g}"


class LinkUtilisationSampler:
    """Exact per-link utilisation integral from the fluid network.

    Between two ``_advance_progress`` calls the flow set *and* every
    flow's rate are constant, so sampling at each advance integrates
    utilisation exactly — no polling, no approximation.  State per link
    is three floats: flow-active observed seconds, saturated seconds
    (utilisation >= the saturation bound), and the utilisation-weighted
    second integral (for mean utilisation).
    """

    __slots__ = ("saturation", "links")

    def __init__(self, saturation: float = 0.9) -> None:
        self.saturation = saturation
        #: ``link name -> [observed_s, saturated_s, util_weighted_s]``.
        self.links: dict[str, list[float]] = {}

    def observe_interval(self, elapsed: float, flows: t.Iterable) -> None:
        """Credit one constant-rate interval of the fluid model.

        Bundled flow groups are unrolled member by member
        (:meth:`~repro.sim.network.Flow.member_link_sets`): each member's
        links are credited at the per-member rate, so the per-link
        integrals are identical whether or not the network bundled the
        fan-out.
        """
        if elapsed <= 0:
            return
        loads: dict[object, float] = {}
        for flow in flows:
            rate = flow.rate_bps
            if rate <= 0:
                continue
            for links in flow.member_link_sets():
                for link in links:
                    loads[link] = loads.get(link, 0.0) + rate
        for link, rate in loads.items():
            state = self.links.get(link.name)
            if state is None:
                state = [0.0, 0.0, 0.0]
                self.links[link.name] = state
            utilisation = min(1.0, rate / link.capacity_bps)
            state[0] += elapsed
            if utilisation >= self.saturation:
                state[1] += elapsed
            state[2] += elapsed * utilisation


class DetectorSuite:
    """All streaming detectors of one run, behind O(1)-state hooks.

    Hook methods are called from simulation hot paths and must stay
    cheap: a dict upsert of a few floats each.  All interpretation —
    cohort comparisons, ratios, thresholds — happens once, in
    :meth:`finalize`.
    """

    def __init__(self, config: DetectorConfig | None = None) -> None:
        self.config = config if config is not None else DetectorConfig()
        self.link_sampler = LinkUtilisationSampler(
            saturation=self.config.congestion_saturation)
        #: ``step -> {rank: (duration_s, end_s)}``.
        self._steps: dict[int, dict[int, tuple[float, float]]] = {}
        #: Raw (possibly overlapped) negotiation seconds per rank.
        self._negotiate: dict[int, float] = {}
        #: ``(rank, stream) -> [busy_s, bytes, units]``.
        self._streams: dict[tuple[int, int], list[float]] = {}
        #: ``link -> [bytes, throttled_bytes, flows, throttled_flows]``.
        self._link_flows: dict[str, list[float]] = {}
        #: ``(link, algorithm) -> bytes`` for per-algorithm attribution.
        self._link_algorithm_bytes: dict[tuple[str, str], float] = {}
        #: ``(link, job, label) -> bytes`` for per-tenant attribution on
        #: a shared fabric (populated only for job-tagged flows).
        self._link_job_bytes: dict[tuple[str, str, str], float] = {}
        self._tuner_warm_cost: float | None = None
        self._tuner_best_cost: float | None = None
        self._tuner_trials = 0
        self._tuner_recent: collections.deque[float] = collections.deque(
            maxlen=self.config.tuner_window)
        #: Latest simulated time any hook has seen (event timestamping).
        self._last_time = 0.0

    # -- hot-path hooks ------------------------------------------------------

    def observe_step(self, rank: int, step: int, duration_s: float,
                     end_s: float) -> None:
        self._steps.setdefault(step, {})[rank] = (duration_s, end_s)
        if end_s > self._last_time:
            self._last_time = end_s

    def observe_negotiation(self, rank: int, duration_s: float) -> None:
        self._negotiate[rank] = self._negotiate.get(rank, 0.0) + duration_s

    def observe_stream_span(self, rank: int, stream: int, busy_s: float,
                            nbytes: float) -> None:
        state = self._streams.get((rank, stream))
        if state is None:
            state = [0.0, 0.0, 0.0]
            self._streams[(rank, stream)] = state
        state[0] += busy_s
        state[1] += nbytes
        state[2] += 1.0

    def observe_flow(self, link_names: t.Sequence[str],
                     label: str | None, nbytes: float, duration_s: float,
                     throttled: bool, job: str | None = None) -> None:
        for name in link_names:
            state = self._link_flows.get(name)
            if state is None:
                state = [0.0, 0.0, 0.0, 0.0]
                self._link_flows[name] = state
            state[0] += nbytes
            state[2] += 1.0
            if throttled:
                state[1] += nbytes
                state[3] += 1.0
            key = (name, label if label is not None else "-")
            self._link_algorithm_bytes[key] = \
                self._link_algorithm_bytes.get(key, 0.0) + nbytes
            if job is not None:
                job_key = (name, job, label if label is not None else "-")
                self._link_job_bytes[job_key] = \
                    self._link_job_bytes.get(job_key, 0.0) + nbytes

    def observe_tuner_trial(self, index: int, name: str,
                            cost_s: float) -> None:
        if name == "cache" and self._tuner_warm_cost is None:
            self._tuner_warm_cost = cost_s
            return
        self._tuner_trials += 1
        self._tuner_recent.append(cost_s)
        if self._tuner_best_cost is None or cost_s < self._tuner_best_cost:
            self._tuner_best_cost = cost_s

    def job_link_bytes(self) -> dict[tuple[str, str, str], float]:
        """``(link, job, label) -> bytes`` for job-tagged flows.

        The cluster runtime's cross-job interference rule reads this to
        compare each tenant's achieved share of a shared link against
        its priority-weighted entitlement.
        """
        return dict(self._link_job_bytes)

    # -- registry round-trip -------------------------------------------------

    def publish(self, registry: "MetricsRegistry") -> None:
        """Persist the non-timeline detector state as ``diag_*`` gauges.

        Step windows, negotiation spans and stream spans replay exactly
        from the timeline (:meth:`replay_timeline`); link-utilisation
        integrals and tuner trials exist nowhere else, so they ride the
        registry.  Gauge ``set`` makes republishing idempotent.
        """
        observed = registry.gauge(
            "diag_link_observed_seconds",
            "Flow-active seconds per link (detector state)")
        saturated = registry.gauge(
            "diag_link_saturated_seconds",
            "Seconds per link at or above the saturation bound")
        weighted = registry.gauge(
            "diag_link_utilisation_weighted_seconds",
            "Integral of link utilisation over flow-active time")
        for name, (obs_s, sat_s, util_s) in self.link_sampler.links.items():
            observed.set(obs_s, link=name)
            saturated.set(sat_s, link=name)
            weighted.set(util_s, link=name)
        flow_bytes = registry.gauge(
            "diag_link_bytes", "Bytes across each traversed link")
        throttled_bytes = registry.gauge(
            "diag_link_throttled_bytes",
            "Bytes of flows that finished below their stream rate cap")
        flow_count = registry.gauge(
            "diag_link_flows", "Flows across each traversed link")
        throttled_count = registry.gauge(
            "diag_link_throttled_flows", "Throttled flows per link")
        for name, state in self._link_flows.items():
            flow_bytes.set(state[0], link=name)
            throttled_bytes.set(state[1], link=name)
            flow_count.set(state[2], link=name)
            throttled_count.set(state[3], link=name)
        algo_bytes = registry.gauge(
            "diag_link_algorithm_bytes",
            "Bytes per link per placing collective algorithm")
        for (name, algorithm), nbytes in self._link_algorithm_bytes.items():
            algo_bytes.set(nbytes, link=name, algorithm=algorithm)
        if self._link_job_bytes:
            job_bytes = registry.gauge(
                "diag_link_job_bytes",
                "Bytes per link per owning job (shared-fabric tenancy)")
            for (name, job, label), nbytes in self._link_job_bytes.items():
                job_bytes.set(nbytes, link=name, job=job, algorithm=label)
        if self._tuner_warm_cost is not None:
            registry.gauge(
                "diag_tuner_warm_cost_seconds",
                "SettingsCache warm-start trial cost").set(
                    self._tuner_warm_cost)
        if self._tuner_best_cost is not None:
            registry.gauge(
                "diag_tuner_best_cost_seconds",
                "Best non-warm-start trial cost").set(self._tuner_best_cost)
        registry.gauge(
            "diag_tuner_trials",
            "Non-warm-start tuner trials recorded").set(
                float(self._tuner_trials))
        trial_cost = registry.gauge(
            "diag_tuner_trial_cost_seconds",
            "Trailing tuner trial costs (slot = window position)")
        for slot, cost in enumerate(self._tuner_recent):
            trial_cost.set(cost, slot=slot)

    def seed_from_registry(self, registry: "MetricsRegistry") -> None:
        """Inverse of :meth:`publish`: rebuild state from ``diag_*`` gauges."""

        def gauge_samples(name: str) -> t.Iterator[tuple[dict, float]]:
            metric = registry.get(name)
            if metric is None:
                return
            yield from metric.labelled()

        for labels, value in gauge_samples("diag_link_observed_seconds"):
            self.link_sampler.links.setdefault(
                labels["link"], [0.0, 0.0, 0.0])[0] = value
        for labels, value in gauge_samples("diag_link_saturated_seconds"):
            self.link_sampler.links.setdefault(
                labels["link"], [0.0, 0.0, 0.0])[1] = value
        for labels, value in gauge_samples(
                "diag_link_utilisation_weighted_seconds"):
            self.link_sampler.links.setdefault(
                labels["link"], [0.0, 0.0, 0.0])[2] = value
        field_by_name = {"diag_link_bytes": 0, "diag_link_throttled_bytes": 1,
                         "diag_link_flows": 2, "diag_link_throttled_flows": 3}
        for name, field in field_by_name.items():
            for labels, value in gauge_samples(name):
                self._link_flows.setdefault(
                    labels["link"], [0.0, 0.0, 0.0, 0.0])[field] = value
        for labels, value in gauge_samples("diag_link_algorithm_bytes"):
            self._link_algorithm_bytes[
                (labels["link"], labels["algorithm"])] = value
        for labels, value in gauge_samples("diag_link_job_bytes"):
            self._link_job_bytes[
                (labels["link"], labels["job"], labels["algorithm"])] = value
        for _labels, value in gauge_samples("diag_tuner_warm_cost_seconds"):
            self._tuner_warm_cost = value
        for _labels, value in gauge_samples("diag_tuner_best_cost_seconds"):
            self._tuner_best_cost = value
        for _labels, value in gauge_samples("diag_tuner_trials"):
            self._tuner_trials = int(value)
        recent = sorted(
            (int(labels["slot"]), value) for labels, value
            in gauge_samples("diag_tuner_trial_cost_seconds"))
        for _slot, cost in recent:
            self._tuner_recent.append(cost)

    def replay_timeline(self, timeline: "StepTimeline") -> None:
        """Re-feed a recorded timeline through the step/sync/stream hooks.

        Matches the live hook points exactly: step windows, worker-side
        ``negotiate`` spans, and stream-bound ``network`` spans — so a
        fresh suite fed a recorded run reaches the same state the live
        suite held (link/tuner state comes from the registry instead,
        via :meth:`seed_from_registry`).
        """
        from repro.obs.timeline import NETWORK_RANK

        for rank, step, start, end in timeline.steps():
            self.observe_step(rank, step, end - start, end)
        for span in timeline.spans:
            if span.rank == NETWORK_RANK:
                continue
            if span.cat == "negotiate":
                self.observe_negotiation(span.rank, span.duration)
            elif span.cat == "network" and span.stream is not None:
                self.observe_stream_span(
                    span.rank, span.stream, span.duration,
                    float(t.cast(float, span.meta.get("bytes", 0.0))))

    # -- finalize ------------------------------------------------------------

    def finalize(self, attributions: t.Sequence | None = None
                 ) -> tuple[DetectorEvent, ...]:
        """Fold all streamed state into a canonical event tuple.

        Deterministic by construction: every aggregate is folded in
        sorted-key order, so live and replayed diagnoses of the same run
        produce bit-identical events.
        """
        events: list[DetectorEvent] = []
        stragglers = self._straggler_events(attributions)
        events.extend(stragglers)
        events.extend(self._imbalance_events())
        events.extend(self._congestion_events())
        if not stragglers:
            # Root-cause suppression: a straggler stalls every peer's
            # sync round, inflating exposed negotiation as a *symptom*.
            # The negotiation rule only speaks when no straggler already
            # explains the wait.
            events.extend(self._negotiation_events(attributions))
        events.extend(self._tuner_events())
        events.sort(key=lambda e: (e.detector, e.kind, e.subject, e.time_s))
        return tuple(events)

    # Each rule below folds its aggregate in sorted-key order and emits
    # at most one event per subject.

    def _straggler_events(self, attributions: t.Sequence | None
                          ) -> list[DetectorEvent]:
        cfg = self.config
        per_rank: dict[int, float] = {}
        if attributions:
            # Primary signal: attributed per-rank compute.  Collectives
            # synchronise ranks, so raw step windows equalise even with
            # a straggler — but the slow rank's *compute* share shows.
            for attribution in sorted(attributions,
                                      key=lambda a: (a.rank, a.step)):
                per_rank[attribution.rank] = \
                    per_rank.get(attribution.rank, 0.0) \
                    + attribution.compute_s
        else:
            # Fallback (no attributions available): raw step durations.
            for step in sorted(self._steps):
                for rank in sorted(self._steps[step]):
                    duration, _end = self._steps[step][rank]
                    per_rank[rank] = per_rank.get(rank, 0.0) + duration
        if len(per_rank) < 2:
            return []
        values = sorted(per_rank.values())
        median = values[len(values) // 2] if len(values) % 2 else \
            (values[len(values) // 2 - 1] + values[len(values) // 2]) / 2.0
        threshold = median * cfg.straggler_ratio + cfg.straggler_margin_s
        events = []
        for rank in sorted(per_rank):
            value = per_rank[rank]
            if value > threshold:
                events.append(DetectorEvent(
                    detector="straggler", kind="straggler",
                    severity=_severity_for(value, threshold),
                    subject=f"rank {rank}", time_s=self._last_time,
                    value=value, threshold=threshold,
                    detail=(f"rank {rank} compute {_fmt(value)}s vs cohort "
                            f"median {_fmt(median)}s "
                            f"(x{_fmt(value / median if median else 0.0)})")))
        return events

    def _imbalance_events(self) -> list[DetectorEvent]:
        cfg = self.config
        by_rank: dict[int, dict[int, float]] = {}
        for (rank, stream) in sorted(self._streams):
            by_rank.setdefault(rank, {})[stream] = \
                self._streams[(rank, stream)][0]
        significant = max(cfg.imbalance_min_busy_s,
                          cfg.imbalance_busy_frac * self._last_time)
        events = []
        for rank in sorted(by_rank):
            streams = by_rank[rank]
            if len(streams) < 2:
                continue
            busiest = max(streams.values())
            total = sum(streams[stream] for stream in sorted(streams))
            if busiest < significant or total <= 0:
                continue
            share = busiest / total
            if share > cfg.imbalance_share:
                shares = ", ".join(
                    f"s{stream}={_fmt(streams[stream])}s"
                    for stream in sorted(streams))
                # Escalate only when one lane is essentially alone.
                severity = Severity.ERROR if share >= 0.95 else Severity.WARN
                events.append(DetectorEvent(
                    detector="stream-imbalance", kind="stream-imbalance",
                    severity=severity,
                    subject=f"rank {rank}", time_s=self._last_time,
                    value=share, threshold=cfg.imbalance_share,
                    detail=(f"one stream carries {_fmt(share * 100)}% of "
                            f"rank {rank}'s stream busy time: {shares}")))
        return events

    def _congestion_events(self) -> list[DetectorEvent]:
        cfg = self.config
        events = []
        for name in sorted(self.link_sampler.links):
            observed_s, saturated_s, _util_s = self.link_sampler.links[name]
            if observed_s <= 0:
                continue
            sustained = saturated_s / observed_s
            if sustained < cfg.congestion_sustained:
                continue
            flow_state = self._link_flows.get(name)
            if flow_state is None or flow_state[0] <= 0:
                continue
            throttled_frac = flow_state[1] / flow_state[0]
            if throttled_frac < cfg.congestion_throttled_frac:
                continue
            algorithms = sorted(
                (algo, nbytes) for (link, algo), nbytes
                in self._link_algorithm_bytes.items() if link == name)
            by_algo = ", ".join(
                f"{algo}={_fmt(nbytes / 1e6)}MB"
                for algo, nbytes in algorithms)
            events.append(DetectorEvent(
                detector="congestion", kind="congestion",
                severity=_severity_for(sustained, cfg.congestion_sustained),
                subject=f"link {name}", time_s=self._last_time,
                value=sustained, threshold=cfg.congestion_sustained,
                detail=(f"link {name} saturated {_fmt(sustained * 100)}% of "
                        f"flow-active time; {_fmt(throttled_frac * 100)}% of "
                        f"bytes throttled below their stream rate cap"
                        + (f" (by algorithm: {by_algo})" if by_algo else ""))))
        return events

    def _negotiation_events(self, attributions: t.Sequence | None
                            ) -> list[DetectorEvent]:
        # Raw negotiate sums overlap with compute (that overlap is the
        # paper's design goal), so only *exposed* negotiation from the
        # critical-path attribution is trustworthy here.
        if not attributions:
            return []
        cfg = self.config
        negotiate_s = 0.0
        total_s = 0.0
        for attribution in sorted(attributions,
                                  key=lambda a: (a.rank, a.step)):
            negotiate_s += attribution.negotiate_s
            total_s += attribution.step_time_s
        if total_s <= 0:
            return []
        fraction = negotiate_s / total_s
        if fraction <= cfg.negotiate_frac:
            return []
        return [DetectorEvent(
            detector="negotiation-overhead", kind="negotiation-overhead",
            severity=_severity_for(fraction, cfg.negotiate_frac),
            subject="sync", time_s=self._last_time,
            value=fraction, threshold=cfg.negotiate_frac,
            detail=(f"exposed negotiation is {_fmt(fraction * 100)}% of "
                    f"total step time ({_fmt(negotiate_s)}s of "
                    f"{_fmt(total_s)}s)"))]

    def _tuner_events(self) -> list[DetectorEvent]:
        cfg = self.config
        if self._tuner_warm_cost is None or self._tuner_warm_cost <= 0:
            return []
        if self._tuner_trials < cfg.tuner_min_trials or not self._tuner_recent:
            return []
        recent_mean = sum(self._tuner_recent) / len(self._tuner_recent)
        threshold = self._tuner_warm_cost * (1.0 + cfg.tuner_margin)
        if recent_mean <= threshold:
            return []
        return [DetectorEvent(
            detector="tuner-regression", kind="tuner-regression",
            severity=_severity_for(recent_mean, threshold),
            subject="tuner", time_s=self._last_time,
            value=recent_mean, threshold=threshold,
            detail=(f"recent tuner trials average {_fmt(recent_mean)}s vs "
                    f"SettingsCache warm start {_fmt(self._tuner_warm_cost)}s "
                    f"(+{_fmt(cfg.tuner_margin * 100)}% margin) over "
                    f"{len(self._tuner_recent)} trials"))]
