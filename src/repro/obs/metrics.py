"""Labeled metrics registry: counters, gauges and histograms.

The registry is the quantitative half of :mod:`repro.obs` (the
:mod:`~repro.obs.timeline` is the temporal half).  Components create
their metric handles once — at construction or warm-up — and record
against the handle on the hot path.  Every record method starts with a
single ``enabled`` branch, so a disabled registry costs one predictable
comparison per call and nothing else: no label-key allocation, no dict
lookup.

Labels follow the Prometheus model: a metric name identifies a family,
and each distinct label combination (``rank``, ``stream``, ``unit``,
``technique``, ...) owns an independent sample.  Exporters render the
same registry as Prometheus text or self-describing JSONL
(:mod:`repro.obs.exporters`).
"""

from __future__ import annotations

import dataclasses
import re
import typing as t

from repro.errors import ReproError

#: Prometheus-compatible metric/label name charset.
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")

#: A concrete label set, canonicalized to a sorted tuple of pairs.
LabelKey = t.Tuple[t.Tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-ish decades; callers
#: with byte-sized observations pass their own).
DEFAULT_BUCKETS = (1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0)


def _label_key(labels: t.Mapping[str, object]) -> LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class Metric:
    """Base class: a named family of labelled samples."""

    kind = "untyped"

    __slots__ = ("name", "help", "enabled", "samples")

    def __init__(self, name: str, help: str = "", enabled: bool = True) -> None:
        if not _NAME_RE.match(name):
            raise ReproError(f"invalid metric name {name!r}")
        self.name = name
        self.help = help
        #: Toggled by the owning registry; every record method checks
        #: this exactly once before doing any work.
        self.enabled = enabled
        self.samples: dict[LabelKey, t.Any] = {}

    def labelled(self) -> t.Iterator[tuple[dict[str, str], t.Any]]:
        """Iterate ``(labels, value)`` pairs in first-recorded order."""
        for key, value in self.samples.items():
            yield dict(key), value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ({len(self.samples)})>"


class Counter(Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self.enabled:
            return
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        self.samples[key] = self.samples.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return float(self.samples.get(_label_key(labels), 0.0))


class Gauge(Metric):
    """A value that can move both ways per label set."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        self.samples[_label_key(labels)] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        self.samples[key] = self.samples.get(key, 0.0) + amount

    def value(self, **labels: object) -> float:
        return float(self.samples.get(_label_key(labels), 0.0))


@dataclasses.dataclass
class HistogramState:
    """Cumulative distribution of one label set's observations."""

    bucket_counts: list[int]
    count: int = 0
    sum: float = 0.0


class Histogram(Metric):
    """Bucketed distribution (Prometheus-style cumulative buckets)."""

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(self, name: str, help: str = "", enabled: bool = True,
                 buckets: t.Sequence[float] = DEFAULT_BUCKETS) -> None:
        super().__init__(name, help, enabled)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ReproError(f"histogram {name} needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        state = self.samples.get(key)
        if state is None:
            state = HistogramState([0] * len(self.buckets))
            self.samples[key] = state
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                state.bucket_counts[index] += 1
                break
        state.count += 1
        state.sum += value

    def state(self, **labels: object) -> HistogramState | None:
        return self.samples.get(_label_key(labels))


class MetricsRegistry:
    """Holds every metric of one run, in registration order.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers the family, later calls return the same handle (and
    reject a kind mismatch).  Disabling the registry flips every
    handle's ``enabled`` flag, so already-distributed handles go quiet
    without their holders re-checking anything but their own single
    branch.
    """

    def __init__(self, enabled: bool = True) -> None:
        self._metrics: dict[str, Metric] = {}
        self._enabled = bool(enabled)

    @property
    def enabled(self) -> bool:
        return self._enabled

    def set_enabled(self, enabled: bool) -> None:
        self._enabled = bool(enabled)
        for metric in self._metrics.values():
            metric.enabled = self._enabled

    # -- family registration -------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return t.cast(Counter, self._get_or_create(Counter, name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return t.cast(Gauge, self._get_or_create(Gauge, name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: t.Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        existing = self._metrics.get(name)
        if existing is None:
            metric = Histogram(name, help, enabled=self._enabled,
                               buckets=buckets)
            self._metrics[name] = metric
            return metric
        if not isinstance(existing, Histogram):
            raise ReproError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        return existing

    def _get_or_create(self, cls: type, name: str, help: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is None:
            metric = t.cast(Metric, cls(name, help, enabled=self._enabled))
            self._metrics[name] = metric
            return metric
        if type(existing) is not cls:
            raise ReproError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        return existing

    # -- inspection ----------------------------------------------------------

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def collect(self) -> t.Iterator[Metric]:
        """Iterate every registered metric in registration order."""
        yield from self._metrics.values()

    def __len__(self) -> int:
        return len(self._metrics)
