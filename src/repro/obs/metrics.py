"""Labeled metrics registry: counters, gauges and histograms.

The registry is the quantitative half of :mod:`repro.obs` (the
:mod:`~repro.obs.timeline` is the temporal half).  Components create
their metric handles once — at construction or warm-up — and record
against the handle on the hot path.  Every record method starts with a
single ``enabled`` branch, so a disabled registry costs one predictable
comparison per call and nothing else: no label-key allocation, no dict
lookup.

Labels follow the Prometheus model: a metric name identifies a family,
and each distinct label combination (``rank``, ``stream``, ``unit``,
``technique``, ...) owns an independent sample.  Exporters render the
same registry as Prometheus text or self-describing JSONL
(:mod:`repro.obs.exporters`).
"""

from __future__ import annotations

import dataclasses
import logging
import re
import typing as t

from repro.errors import ReproError

logger = logging.getLogger("repro.obs")

#: Prometheus-compatible metric/label name charset.
_NAME_RE = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*\Z")

#: A concrete label set, canonicalized to a sorted tuple of pairs.
LabelKey = t.Tuple[t.Tuple[str, str], ...]

#: Default histogram bucket upper bounds (seconds-ish decades; callers
#: with byte-sized observations pass their own).
DEFAULT_BUCKETS = (1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0, 100.0)

#: Denser decade subdivision for step-time histograms (1 ms .. 100 s,
#: ~10 buckets per decade).  The default decade buckets are too coarse
#: for the SLO engine's quantile fallback: a p99 read from a x10-wide
#: bucket cannot support a 1.10x regression bound.
STEP_TIME_BUCKETS = tuple(
    round(mantissa * 10.0 ** exponent, 6)
    for exponent in range(-3, 2)
    for mantissa in (1.0, 1.25, 1.6, 2.0, 2.5, 3.2, 4.0, 5.0, 6.3, 8.0)
) + (100.0,)

#: Default per-family cardinality bound.  Sized for the 1024-4096-rank
#: roadmap item (per-rank labels) with headroom; a runaway label source
#: (e.g. a value accidentally used as a label) trips the guard instead
#: of exhausting memory.
DEFAULT_MAX_LABEL_SETS = 8192


def _label_key(labels: t.Mapping[str, object]) -> LabelKey:
    return tuple(sorted((name, str(value)) for name, value in labels.items()))


class Metric:
    """Base class: a named family of labelled samples."""

    kind = "untyped"

    __slots__ = ("name", "help", "enabled", "samples", "max_label_sets",
                 "dropped_label_sets", "_cardinality_warned")

    def __init__(self, name: str, help: str = "", enabled: bool = True,
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        if not _NAME_RE.match(name):
            raise ReproError(f"invalid metric name {name!r}")
        if max_label_sets < 1:
            raise ReproError(
                f"metric {name!r} needs max_label_sets >= 1")
        self.name = name
        self.help = help
        #: Toggled by the owning registry; every record method checks
        #: this exactly once before doing any work.
        self.enabled = enabled
        self.samples: dict[LabelKey, t.Any] = {}
        #: Cardinality guard: new label sets beyond this bound are
        #: dropped (existing sets keep recording) with a single warning.
        self.max_label_sets = max_label_sets
        #: New label sets refused by the guard so far.
        self.dropped_label_sets = 0
        self._cardinality_warned = False

    def _admit(self, key: LabelKey) -> bool:
        """May a *new* label set join this family?  (Guard, warn-once.)"""
        if len(self.samples) < self.max_label_sets:
            return True
        self.dropped_label_sets += 1
        if not self._cardinality_warned:
            self._cardinality_warned = True
            logger.warning(
                "metric %s hit its label-set bound (%d); new label sets "
                "are dropped from here on (first dropped: %r)",
                self.name, self.max_label_sets, dict(key))
        return False

    def labelled(self) -> t.Iterator[tuple[dict[str, str], t.Any]]:
        """Iterate ``(labels, value)`` pairs in first-recorded order."""
        for key, value in self.samples.items():
            yield dict(key), value

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name} ({len(self.samples)})>"


class Counter(Metric):
    """A monotonically increasing sum per label set."""

    kind = "counter"
    __slots__ = ()

    def inc(self, amount: float = 1.0, **labels: object) -> None:
        if not self.enabled:
            return
        if amount < 0:
            raise ReproError(f"counter {self.name} cannot decrease")
        key = _label_key(labels)
        current = self.samples.get(key)
        if current is None:
            if not self._admit(key):
                return
            current = 0.0
        self.samples[key] = current + amount

    def value(self, **labels: object) -> float:
        return float(self.samples.get(_label_key(labels), 0.0))


class Gauge(Metric):
    """A value that can move both ways per label set."""

    kind = "gauge"
    __slots__ = ()

    def set(self, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        if key not in self.samples and not self._admit(key):
            return
        self.samples[key] = float(value)

    def add(self, amount: float, **labels: object) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        current = self.samples.get(key)
        if current is None:
            if not self._admit(key):
                return
            current = 0.0
        self.samples[key] = current + amount

    def value(self, **labels: object) -> float:
        return float(self.samples.get(_label_key(labels), 0.0))


@dataclasses.dataclass
class HistogramState:
    """Cumulative distribution of one label set's observations."""

    bucket_counts: list[int]
    count: int = 0
    sum: float = 0.0


class Histogram(Metric):
    """Bucketed distribution (Prometheus-style cumulative buckets)."""

    kind = "histogram"
    __slots__ = ("buckets",)

    def __init__(self, name: str, help: str = "", enabled: bool = True,
                 buckets: t.Sequence[float] = DEFAULT_BUCKETS,
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        super().__init__(name, help, enabled, max_label_sets=max_label_sets)
        bounds = tuple(sorted(float(b) for b in buckets))
        if not bounds:
            raise ReproError(f"histogram {name} needs at least one bucket")
        self.buckets = bounds

    def observe(self, value: float, **labels: object) -> None:
        if not self.enabled:
            return
        key = _label_key(labels)
        state = self.samples.get(key)
        if state is None:
            if not self._admit(key):
                return
            state = HistogramState([0] * len(self.buckets))
            self.samples[key] = state
        for index, bound in enumerate(self.buckets):
            if value <= bound:
                state.bucket_counts[index] += 1
                break
        state.count += 1
        state.sum += value

    def state(self, **labels: object) -> HistogramState | None:
        return self.samples.get(_label_key(labels))

    def quantile(self, q: float, **labels: object) -> float | None:
        """Estimate the ``q``-quantile for one label set from bucket state.

        Linear interpolation inside the containing bucket (Prometheus
        ``histogram_quantile`` semantics); observations above the last
        finite bound clamp to it.  Deterministic: reads only the stored
        integer bucket counts.  Returns ``None`` when the label set has
        no observations.
        """
        if not 0.0 <= q <= 1.0:
            raise ReproError(
                f"histogram {self.name}: quantile {q} outside [0, 1]")
        state = self.samples.get(_label_key(labels))
        if state is None or state.count == 0:
            return None
        target = q * state.count
        cumulative = 0
        previous = 0.0
        for bound, count in zip(self.buckets, state.bucket_counts):
            if count and cumulative + count >= target:
                fraction = (target - cumulative) / count
                return previous + (bound - previous) * max(0.0, fraction)
            cumulative += count
            previous = bound
        # Overflow observations (> last bound) clamp to the last bound.
        return self.buckets[-1]


class MetricsRegistry:
    """Holds every metric of one run, in registration order.

    ``counter`` / ``gauge`` / ``histogram`` are get-or-create: the first
    call registers the family, later calls return the same handle (and
    reject a kind mismatch).  Disabling the registry flips every
    handle's ``enabled`` flag, so already-distributed handles go quiet
    without their holders re-checking anything but their own single
    branch.
    """

    def __init__(self, enabled: bool = True,
                 max_label_sets: int = DEFAULT_MAX_LABEL_SETS) -> None:
        self._metrics: dict[str, Metric] = {}
        self._enabled = bool(enabled)
        self._max_label_sets = max_label_sets

    @property
    def enabled(self) -> bool:
        return self._enabled

    @property
    def dropped_label_sets(self) -> int:
        """Total label sets refused by cardinality guards, all families."""
        return sum(m.dropped_label_sets for m in self._metrics.values())

    def set_enabled(self, enabled: bool) -> None:
        self._enabled = bool(enabled)
        for metric in self._metrics.values():
            metric.enabled = self._enabled

    # -- family registration -------------------------------------------------

    def counter(self, name: str, help: str = "") -> Counter:
        return t.cast(Counter, self._get_or_create(Counter, name, help))

    def gauge(self, name: str, help: str = "") -> Gauge:
        return t.cast(Gauge, self._get_or_create(Gauge, name, help))

    def histogram(self, name: str, help: str = "",
                  buckets: t.Sequence[float] = DEFAULT_BUCKETS) -> Histogram:
        existing = self._metrics.get(name)
        if existing is None:
            metric = Histogram(name, help, enabled=self._enabled,
                               buckets=buckets,
                               max_label_sets=self._max_label_sets)
            self._metrics[name] = metric
            return metric
        if not isinstance(existing, Histogram):
            raise ReproError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        return existing

    def _get_or_create(self, cls: type, name: str, help: str) -> Metric:
        existing = self._metrics.get(name)
        if existing is None:
            metric = t.cast(Metric, cls(
                name, help, enabled=self._enabled,
                max_label_sets=self._max_label_sets))
            self._metrics[name] = metric
            return metric
        if type(existing) is not cls:
            raise ReproError(
                f"metric {name!r} already registered as {existing.kind}"
            )
        return existing

    # -- inspection ----------------------------------------------------------

    def get(self, name: str) -> Metric | None:
        return self._metrics.get(name)

    def collect(self) -> t.Iterator[Metric]:
        """Iterate every registered metric in registration order."""
        yield from self._metrics.values()

    def __len__(self) -> int:
        return len(self._metrics)
