"""Step-time attribution along the critical path.

Shi et al.'s DAG model of synchronous SGD decomposes a training step
into compute and communication tasks whose longest chain bounds step
time.  This analyzer recovers that decomposition from a recorded
:class:`~repro.obs.timeline.StepTimeline`: each instant of a rank's step
window is attributed to exactly one component, so the per-component
durations **sum to the measured step time** by construction.

Attribution rule (a priority sweep over the span coverage):

1. ``compute`` — any compute/pack/apply span covers the instant; work
   the GPU would do regardless of communication.
2. ``negotiate`` — otherwise, a readiness-synchronization span covers
   it; the decentralized bit-vector round exposed outside compute.
3. ``network`` — otherwise, an all-reduce unit / staging / flow span
   covers it; gradient bytes serializing on the wire.
4. ``straggler`` — nothing covers it: the rank is waiting on peers, a
   free stream, or recovery — exposed wait, the paper's scaling killer.

Overlap therefore never double-counts: negotiation hidden behind
backward compute is *not* charged (it is off the critical path, exactly
the paper's design goal), and only exposed network time is charged to
the network.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ReproError
from repro.obs.timeline import StepTimeline, TimelineSpan

#: Attribution components, highest priority first (``straggler`` is the
#: residual and has no spans of its own).
COMPONENTS = ("compute", "negotiate", "network", "straggler")

#: Span category -> attribution component.
CATEGORY_MAP: dict[str, str] = {
    "compute": "compute",
    "pack": "compute",
    "apply": "compute",
    "negotiate": "negotiate",
    "network": "network",
    "staging": "network",
    "net": "network",
}


@dataclasses.dataclass(frozen=True)
class StepAttribution:
    """One rank's step time, partitioned over the four components."""

    rank: int
    step: int
    start: float
    end: float
    compute_s: float
    negotiate_s: float
    network_s: float
    straggler_s: float

    @property
    def step_time_s(self) -> float:
        return self.end - self.start

    @property
    def total_s(self) -> float:
        """Sum of the components; equals :attr:`step_time_s` by design."""
        return (self.compute_s + self.negotiate_s + self.network_s
                + self.straggler_s)

    def as_row(self) -> dict[str, object]:
        """Row-dict form for :func:`repro.harness.format_table`."""
        return {
            "rank": self.rank,
            "step": self.step,
            "step_ms": self.step_time_s * 1e3,
            "compute_ms": self.compute_s * 1e3,
            "negotiate_ms": self.negotiate_s * 1e3,
            "network_ms": self.network_s * 1e3,
            "straggler_ms": self.straggler_s * 1e3,
        }


def _component_of(span: TimelineSpan) -> str | None:
    return CATEGORY_MAP.get(span.cat)


def attribute_window(timeline: StepTimeline, rank: int, start: float,
                     end: float, step: int = 0) -> StepAttribution:
    """Attribute an arbitrary ``[start, end]`` window of one rank."""
    if end < start:
        raise ReproError("attribution window ends before it starts")
    by_component: dict[str, list[tuple[float, float]]] = {
        "compute": [], "negotiate": [], "network": []}
    boundaries = {start, end}
    for span in timeline.spans:
        component = _component_of(span)
        if component is None or span.rank != rank:
            continue
        lo, hi = max(span.start, start), min(span.end, end)
        if hi <= lo:
            continue
        by_component[component].append((lo, hi))
        boundaries.add(lo)
        boundaries.add(hi)

    totals = {"compute": 0.0, "negotiate": 0.0, "network": 0.0}
    cuts = sorted(boundaries)
    for lo, hi in zip(cuts, cuts[1:]):
        if hi <= lo:
            continue
        mid = (lo + hi) / 2.0
        for component in ("compute", "negotiate", "network"):
            if any(s <= mid < e for s, e in by_component[component]):
                totals[component] += hi - lo
                break
    covered = totals["compute"] + totals["negotiate"] + totals["network"]
    straggler = max(0.0, (end - start) - covered)
    return StepAttribution(
        rank=rank, step=step, start=start, end=end,
        compute_s=totals["compute"], negotiate_s=totals["negotiate"],
        network_s=totals["network"], straggler_s=straggler,
    )


def attribute_step(timeline: StepTimeline, rank: int,
                   step: int) -> StepAttribution:
    """Attribute one recorded step of one rank."""
    start, end = timeline.step_window(rank, step)
    return attribute_window(timeline, rank, start, end, step=step)


def attribute_all(timeline: StepTimeline) -> list[StepAttribution]:
    """Attribute every completed step window, ordered by (step, rank)."""
    rows = [attribute_step(timeline, rank, step)
            for rank, step, _start, _end in timeline.steps()]
    rows.sort(key=lambda a: (a.step, a.rank))
    return rows
