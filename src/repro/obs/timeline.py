"""The step timeline: a per-rank, per-stream record of simulated time.

Where the :mod:`~repro.obs.metrics` registry answers *how much*, the
timeline answers *when and where*: every span carries its rank, an
optional CUDA-stream index, and a category (``compute`` / ``pack`` /
``negotiate`` / ``network`` / ``staging`` / ``apply`` / ...).  The
critical-path analyzer (:mod:`repro.obs.critical_path`) partitions each
recorded step over these categories, and the exporters render the same
record as a multi-track Perfetto trace (pid = rank, tid = stream or
activity lane) or JSONL.

Fault-lifecycle events (inject / suspect / confirm / rebuild / restore)
arrive through :meth:`StepTimeline.fault_event` — usually forwarded by
:meth:`repro.sim.tracing.Trace.fault` — and are chained into *flow*
episodes so a recovery reads as one connected arrow across the trace.

Every record method begins with a single ``enabled`` branch; a disabled
timeline is one comparison per call.
"""

from __future__ import annotations

import dataclasses
import itertools
import typing as t

from repro.errors import ReproError

#: Pseudo-rank used for fabric-level records (per-flow network spans)
#: that belong to no worker; exporters render it as a "network" process.
NETWORK_RANK = -1

#: Fault kinds that open a new recovery episode / close the open one.
#: ``leave``/``join`` announcements open a membership episode that the
#: next epoch advance (or ``restore``/``recover``) closes.
_EPISODE_OPENERS = frozenset({"inject", "leave", "join"})
_EPISODE_CLOSERS = frozenset({"restore", "recover", "epoch"})


@dataclasses.dataclass(frozen=True)
class TimelineSpan:
    """A named interval attributed to one rank (and optionally a stream)."""

    name: str
    cat: str
    rank: int
    start: float
    end: float
    stream: int | None = None
    meta: t.Mapping[str, object] = dataclasses.field(default_factory=dict)

    @property
    def duration(self) -> float:
        return self.end - self.start


@dataclasses.dataclass(frozen=True)
class TimelineInstant:
    """A point event on one rank's track."""

    name: str
    cat: str
    rank: int
    time: float
    meta: t.Mapping[str, object] = dataclasses.field(default_factory=dict)


@dataclasses.dataclass(frozen=True)
class TimelineFlowPoint:
    """One anchor of a flow chain (Chrome ``s``/``t``/``f`` events)."""

    flow_id: int
    phase: str  # "start" | "step" | "end"
    name: str
    rank: int
    time: float
    stream: int | None = None


class StepTimeline:
    """Collects spans, instants, flow chains and step windows."""

    def __init__(self, enabled: bool = True) -> None:
        self.enabled = enabled
        self.spans: list[TimelineSpan] = []
        self.instants: list[TimelineInstant] = []
        self.flow_points: list[TimelineFlowPoint] = []
        #: ``(rank, step_index) -> [start, end|None]``.
        self._steps: dict[tuple[int, int], list[float | None]] = {}
        self._flow_ids = itertools.count(1)
        #: Open fault-recovery episode flow id, if any.
        self._fault_episode: int | None = None

    # -- spans / instants ----------------------------------------------------

    def span(self, name: str, cat: str, rank: int, start: float, end: float,
             stream: int | None = None, **meta: object) -> None:
        if not self.enabled:
            return
        if end < start:
            raise ReproError(f"span {name!r} ends before it starts")
        self.spans.append(TimelineSpan(name, cat, rank, start, end,
                                       stream, meta))

    def instant(self, name: str, cat: str, rank: int, time: float,
                **meta: object) -> None:
        if not self.enabled:
            return
        self.instants.append(TimelineInstant(name, cat, rank, time, meta))

    # -- step windows --------------------------------------------------------

    def begin_step(self, rank: int, step: int, at: float) -> None:
        if not self.enabled:
            return
        self._steps[(rank, step)] = [at, None]

    def end_step(self, rank: int, step: int, at: float) -> None:
        if not self.enabled:
            return
        window = self._steps.get((rank, step))
        if window is None:
            raise ReproError(f"end_step before begin_step for "
                             f"rank {rank} step {step}")
        window[1] = at

    def step_window(self, rank: int, step: int) -> tuple[float, float]:
        """The ``[start, end]`` window of one completed step."""
        window = self._steps.get((rank, step))
        if window is None or window[1] is None:
            raise ReproError(f"no completed step {step} for rank {rank}")
        return t.cast(float, window[0]), t.cast(float, window[1])

    def steps(self) -> t.Iterator[tuple[int, int, float, float]]:
        """Iterate completed ``(rank, step, start, end)`` windows."""
        for (rank, step), (start, end) in self._steps.items():
            if end is not None:
                yield rank, step, t.cast(float, start), end

    def ranks(self) -> list[int]:
        """Worker ranks with any recorded data, sorted."""
        seen = {rank for rank, _step in self._steps}
        seen.update(s.rank for s in self.spans)
        seen.update(i.rank for i in self.instants)
        seen.discard(NETWORK_RANK)
        return sorted(seen)

    # -- flow chains ---------------------------------------------------------

    def flow_start(self, name: str, rank: int, time: float,
                   stream: int | None = None) -> int:
        """Open a new flow chain; returns its id (0 when disabled)."""
        if not self.enabled:
            return 0
        flow_id = next(self._flow_ids)
        self.flow_points.append(TimelineFlowPoint(
            flow_id, "start", name, rank, time, stream))
        return flow_id

    def flow_step(self, flow_id: int, name: str, rank: int, time: float,
                  stream: int | None = None) -> None:
        if not self.enabled or flow_id == 0:
            return
        self.flow_points.append(TimelineFlowPoint(
            flow_id, "step", name, rank, time, stream))

    def flow_end(self, flow_id: int, name: str, rank: int, time: float,
                 stream: int | None = None) -> None:
        if not self.enabled or flow_id == 0:
            return
        self.flow_points.append(TimelineFlowPoint(
            flow_id, "end", name, rank, time, stream))

    # -- fault lifecycle -----------------------------------------------------

    def fault_event(self, kind: str, time: float, rank: int = 0,
                    **meta: object) -> None:
        """Record one fault-lifecycle event as an instant + flow anchor.

        Consecutive events chain into an *episode*: ``inject`` opens a
        flow, intermediate kinds (``suspect``, ``confirm``, ``rebuild``)
        extend it, and ``restore``/``recover`` close it — so a recovery
        renders as one connected arrow from the crash to the resume,
        next to the rings it aborted.
        """
        if not self.enabled:
            return
        name = f"fault.{kind}"
        self.instant(name, "fault", rank, time, **meta)
        if kind in _EPISODE_CLOSERS:
            # A closer with no open episode is a lone instant (e.g. an
            # epoch advance after the crash's restore already closed the
            # recovery arrow) — never open a dangling flow for it.
            if self._fault_episode is not None:
                self.flow_end(self._fault_episode, name, rank, time)
                self._fault_episode = None
        elif kind in _EPISODE_OPENERS or self._fault_episode is None:
            # Close a dangling episode rather than braiding two together.
            if self._fault_episode is not None:
                self.flow_end(self._fault_episode, "fault.episode",
                              rank, time)
            self._fault_episode = self.flow_start(name, rank, time)
        else:
            self.flow_step(self._fault_episode, name, rank, time)

    # -- membership epochs ---------------------------------------------------

    def epoch_event(self, epoch: int, time: float, rank: int = 0,
                    **meta: object) -> None:
        """Record a membership-epoch advance.

        Emits an ``epoch.advance`` instant (category ``membership``)
        carrying the new epoch number plus caller metadata (world size,
        transition kind, ...), and closes any open fault/membership
        episode so the announce→admit arrow ends at the epoch boundary.
        """
        if not self.enabled:
            return
        self.instant("epoch.advance", "membership", rank, time,
                     epoch=epoch, **meta)
        if self._fault_episode is not None:
            self.flow_end(self._fault_episode, "epoch.advance", rank, time)
            self._fault_episode = None

    # -- merging -------------------------------------------------------------

    def merge(self, other: "StepTimeline") -> None:
        """Fold another timeline's records into this one.

        Respects this timeline's ``enabled`` flag (a disabled destination
        stays empty — the retention policy belongs to the destination).
        """
        if not self.enabled:
            return
        self.spans.extend(other.spans)
        self.instants.extend(other.instants)
        self.flow_points.extend(other.flow_points)
        self._steps.update(other._steps)
