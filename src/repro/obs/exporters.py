"""Exporters: Perfetto/Chrome trace events, Prometheus text, JSONL.

All three render the same :class:`~repro.obs.metrics.MetricsRegistry` /
:class:`~repro.obs.timeline.StepTimeline` pair:

* :func:`chrome_trace_events` — Chrome trace-event JSON objects loadable
  in Perfetto/``chrome://tracing``.  ``pid`` is the worker rank, ``tid``
  is the CUDA stream (``1 + stream``) or a deterministically numbered
  activity lane; flow events (``s``/``t``/``f``) connect fault-recovery
  episodes and any other recorded chains.  Track naming uses metadata
  (``M``) events, so the UI shows "rank 0 / stream 3", not bare ids.
* :func:`prometheus_text` — the Prometheus text exposition format.
* :func:`jsonl_lines` — one self-describing JSON object per line
  (every line carries a ``kind`` field), suitable for streaming.

:func:`write_artifacts` persists all three under a directory.
"""

from __future__ import annotations

import json
import pathlib
import typing as t

from repro.ioutil import atomic_write_text
from repro.obs.metrics import Histogram, MetricsRegistry
from repro.obs.timeline import NETWORK_RANK, StepTimeline

#: pid used for fabric-level (rank-less) records; far above any rank.
NETWORK_PID = 1_000_000

#: tid of the per-rank activity lane (phases not bound to a stream).
ACTIVITY_TID = 0

#: First tid handed to named lanes beyond the stream tracks.
_LANE_TID_BASE = 64


def _pid_of(rank: int) -> int:
    return NETWORK_PID if rank == NETWORK_RANK else rank


def _json_safe(value: object) -> object:
    if isinstance(value, (bool, int, float, str)) or value is None:
        return value
    return str(value)


def _args(meta: t.Mapping[str, object]) -> dict[str, object]:
    return {key: _json_safe(value) for key, value in meta.items()}


def chrome_trace_events(timeline: StepTimeline) -> list[dict]:
    """Export the timeline as Chrome trace-event objects, sorted by ts.

    Deterministic track layout per process (= rank):

    - ``tid 0`` — activity lane: step markers, phases without a stream,
      instants;
    - ``tid 1 + k`` — CUDA stream ``k``;
    - ``tid 64+`` — named lanes (e.g. network links), numbered by sorted
      lane name so two runs of the same workload agree byte-for-byte.
    """
    events: list[dict] = []

    # Collect lane names per pid for deterministic tid assignment.
    lanes: dict[int, set[str]] = {}
    streams: dict[int, set[int]] = {}

    def _lane_tid(pid: int, span_stream: int | None,
                  lane: object) -> tuple[int, str | None]:
        if span_stream is not None:
            streams.setdefault(pid, set()).add(span_stream)
            return 1 + span_stream, None
        if lane is None:
            return ACTIVITY_TID, None
        lanes.setdefault(pid, set()).add(str(lane))
        return -1, str(lane)  # resolved after all lanes are known

    pending: list[tuple[dict, int, str]] = []

    for span in timeline.spans:
        pid = _pid_of(span.rank)
        tid, lane = _lane_tid(pid, span.stream, span.meta.get("lane"))
        event = {
            "name": span.name,
            "cat": span.cat,
            "ph": "X",
            "ts": span.start * 1e6,
            "dur": span.duration * 1e6,
            "pid": pid,
            "tid": tid,
            "args": _args(span.meta),
        }
        events.append(event)
        if lane is not None:
            pending.append((event, pid, lane))

    for rank, step, start, end in timeline.steps():
        events.append({
            "name": f"step {step}",
            "cat": "step",
            "ph": "X",
            "ts": start * 1e6,
            "dur": (end - start) * 1e6,
            "pid": _pid_of(rank),
            "tid": ACTIVITY_TID,
            "args": {"step": step},
        })

    for instant in timeline.instants:
        events.append({
            "name": instant.name,
            "cat": instant.cat,
            "ph": "i",
            "ts": instant.time * 1e6,
            "pid": _pid_of(instant.rank),
            "tid": ACTIVITY_TID,
            "s": "p",
            "args": _args(instant.meta),
        })

    _FLOW_PH = {"start": "s", "step": "t", "end": "f"}
    for point in timeline.flow_points:
        pid = _pid_of(point.rank)
        event = {
            "name": point.name,
            "cat": "flow",
            "ph": _FLOW_PH[point.phase],
            "id": point.flow_id,
            "ts": point.time * 1e6,
            "pid": pid,
            "tid": ACTIVITY_TID if point.stream is None
            else 1 + point.stream,
        }
        if point.phase == "end":
            event["bp"] = "e"
        events.append(event)
        if point.stream is not None:
            streams.setdefault(pid, set()).add(point.stream)

    # Resolve named-lane tids now that every lane is known.
    lane_tids = {
        pid: {name: _LANE_TID_BASE + index
              for index, name in enumerate(sorted(names))}
        for pid, names in lanes.items()
    }
    for event, pid, lane in pending:
        event["tid"] = lane_tids[pid][lane]

    # Track-naming metadata.
    meta_events: list[dict] = []
    pids = sorted({e["pid"] for e in events})
    for pid in pids:
        name = "network" if pid == NETWORK_PID else f"rank {pid}"
        meta_events.append({"name": "process_name", "ph": "M", "ts": 0.0,
                            "pid": pid, "tid": 0,
                            "args": {"name": name}})
        meta_events.append({"name": "thread_name", "ph": "M", "ts": 0.0,
                            "pid": pid, "tid": ACTIVITY_TID,
                            "args": {"name": "activity"}})
        for stream in sorted(streams.get(pid, ())):
            meta_events.append({"name": "thread_name", "ph": "M", "ts": 0.0,
                                "pid": pid, "tid": 1 + stream,
                                "args": {"name": f"stream {stream}"}})
        for lane, tid in sorted(lane_tids.get(pid, {}).items()):
            meta_events.append({"name": "thread_name", "ph": "M", "ts": 0.0,
                                "pid": pid, "tid": tid,
                                "args": {"name": lane}})

    events.sort(key=lambda event: (event["ts"], event["pid"], event["tid"]))
    return meta_events + events


def _escape_label(value: str) -> str:
    return value.replace("\\", r"\\").replace("\n", r"\n").replace('"', r'\"')


def _format_labels(labels: t.Mapping[str, str],
                   extra: t.Mapping[str, str] | None = None) -> str:
    merged = dict(labels)
    if extra:
        merged.update(extra)
    if not merged:
        return ""
    body = ",".join(f'{name}="{_escape_label(value)}"'
                    for name, value in sorted(merged.items()))
    return "{" + body + "}"


def _format_number(value: float) -> str:
    if value == int(value) and abs(value) < 1e15:
        return str(int(value))
    return repr(float(value))


def prometheus_text(registry: MetricsRegistry) -> str:
    """Render the registry in the Prometheus text exposition format."""
    lines: list[str] = []
    for metric in registry.collect():
        if metric.help:
            lines.append(f"# HELP {metric.name} {metric.help}")
        lines.append(f"# TYPE {metric.name} {metric.kind}")
        if isinstance(metric, Histogram):
            for labels, state in metric.labelled():
                cumulative = 0
                for bound, count in zip(metric.buckets,
                                        state.bucket_counts):
                    cumulative += count
                    label_str = _format_labels(labels,
                                               {"le": _format_number(bound)})
                    lines.append(f"{metric.name}_bucket{label_str} "
                                 f"{cumulative}")
                inf_labels = _format_labels(labels, {"le": "+Inf"})
                lines.append(f"{metric.name}_bucket{inf_labels} "
                             f"{state.count}")
                plain = _format_labels(labels)
                lines.append(f"{metric.name}_sum{plain} "
                             f"{_format_number(state.sum)}")
                lines.append(f"{metric.name}_count{plain} {state.count}")
        else:
            for labels, value in metric.labelled():
                label_str = _format_labels(labels)
                lines.append(f"{metric.name}{label_str} "
                             f"{_format_number(value)}")
    return "\n".join(lines) + "\n"


def jsonl_records(registry: MetricsRegistry | None,
                  timeline: StepTimeline | None
                  ) -> t.Iterator[dict[str, object]]:
    """Yield every record as a self-describing dict (``kind`` field)."""
    if registry is not None:
        for metric in registry.collect():
            if isinstance(metric, Histogram):
                for labels, state in metric.labelled():
                    yield {"kind": "histogram", "name": metric.name,
                           "labels": labels,
                           "buckets": list(metric.buckets),
                           "bucket_counts": list(state.bucket_counts),
                           "sum": state.sum, "count": state.count}
            else:
                for labels, value in metric.labelled():
                    yield {"kind": metric.kind, "name": metric.name,
                           "labels": labels, "value": value}
    if timeline is not None:
        for rank, step, start, end in timeline.steps():
            yield {"kind": "step", "rank": rank, "step": step,
                   "start_s": start, "end_s": end}
        for span in timeline.spans:
            yield {"kind": "span", "name": span.name, "cat": span.cat,
                   "rank": span.rank, "stream": span.stream,
                   "start_s": span.start, "end_s": span.end,
                   "meta": _args(span.meta)}
        for instant in timeline.instants:
            yield {"kind": "instant", "name": instant.name,
                   "cat": instant.cat, "rank": instant.rank,
                   "time_s": instant.time, "meta": _args(instant.meta)}
        for point in timeline.flow_points:
            yield {"kind": "flow", "id": point.flow_id,
                   "phase": point.phase, "name": point.name,
                   "rank": point.rank, "stream": point.stream,
                   "time_s": point.time}


def jsonl_lines(registry: MetricsRegistry | None,
                timeline: StepTimeline | None) -> t.Iterator[str]:
    """Serialized JSONL stream of :func:`jsonl_records`."""
    for record in jsonl_records(registry, timeline):
        yield json.dumps(record, sort_keys=True)


def write_artifacts(directory: str | pathlib.Path,
                    registry: MetricsRegistry | None = None,
                    timeline: StepTimeline | None = None
                    ) -> dict[str, pathlib.Path]:
    """Write trace.json / metrics.prom / timeline.jsonl under a directory.

    Every artifact is written atomically (temp file + ``os.replace``):
    downstream consumers — CI uploads, the report CLI, Perfetto — must
    never observe a half-written file, even if the exporting process is
    killed mid-write.  Returns ``{artifact_name: path}`` for whatever
    was written.
    """
    out_dir = pathlib.Path(directory)
    written: dict[str, pathlib.Path] = {}
    if timeline is not None:
        written["trace"] = atomic_write_text(
            out_dir / "trace.json",
            json.dumps(chrome_trace_events(timeline)))
        written["jsonl"] = atomic_write_text(
            out_dir / "timeline.jsonl",
            "\n".join(jsonl_lines(registry, timeline)) + "\n")
    if registry is not None:
        written["prometheus"] = atomic_write_text(
            out_dir / "metrics.prom", prometheus_text(registry))
    return written
