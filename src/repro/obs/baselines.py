"""Baseline loaders for the regression sentinel.

Two baseline sources, one shape: a :class:`Baseline` is a flat mapping
of numeric values (``simulated_step_s``, ``ranks``, ``streams``, ...)
plus string metadata (``model``, ``algorithm``, provenance).  The
sentinel folds these into relative SLO limits
(:func:`repro.obs.slo.evaluate_slos`).

* :func:`load_bench_baseline` — the committed benchmark trajectory
  (``BENCH_simulator.json``: a list of labelled capture entries, each
  holding named scenarios).
* :func:`load_campaign_baseline` — a durable campaign store's report
  (best completed cell for a spec filter).
"""

from __future__ import annotations

import dataclasses
import json
import pathlib
import typing as t

from repro.errors import ReproError

#: Default benchmark scenario the ``diagnose`` CLI measures against.
DEFAULT_BENCH_SCENARIO = "step-8r-4s"


@dataclasses.dataclass(frozen=True)
class Baseline:
    """One baseline: numeric values + string provenance metadata."""

    source: str
    values: t.Mapping[str, float]
    meta: t.Mapping[str, str] = dataclasses.field(default_factory=dict)

    def describe(self) -> str:
        bits = [self.source]
        bits += [f"{key}={value}" for key, value in sorted(self.meta.items())]
        return " ".join(bits)


def load_bench_baseline(path: str | pathlib.Path,
                        scenario: str = DEFAULT_BENCH_SCENARIO,
                        label: str | None = None) -> Baseline:
    """Load one scenario of one capture entry from the benchmark file.

    Defaults to the *latest* entry (the list is append-only, newest
    last); ``label`` selects an older capture by its label.
    """
    bench_path = pathlib.Path(path)
    if not bench_path.exists():
        raise ReproError(f"benchmark baseline file not found: {bench_path}")
    try:
        entries = json.loads(bench_path.read_text())
    except json.JSONDecodeError as exc:
        raise ReproError(
            f"corrupt benchmark file {bench_path}: {exc}") from exc
    if not isinstance(entries, list) or not entries:
        raise ReproError(f"benchmark file {bench_path} holds no entries")
    if label is None:
        entry = entries[-1]
    else:
        by_label = {e.get("label"): e for e in entries}
        entry = by_label.get(label)
        if entry is None:
            raise ReproError(
                f"no benchmark entry labelled {label!r} in {bench_path} "
                f"(available: {sorted(k for k in by_label if k)})")
    scenarios = entry.get("scenarios", {})
    data = scenarios.get(scenario)
    if data is None:
        raise ReproError(
            f"no scenario {scenario!r} in benchmark entry "
            f"{entry.get('label')!r} (available: {sorted(scenarios)})")
    values: dict[str, float] = {}
    meta: dict[str, str] = {"label": str(entry.get("label")),
                            "scenario": scenario}
    for key, value in data.items():
        if isinstance(value, bool):
            meta[key] = str(value).lower()
        elif isinstance(value, (int, float)):
            values[key] = float(value)
        else:
            meta[key] = str(value)
    return Baseline(source=f"bench:{bench_path.name}", values=values,
                    meta=meta)


def load_campaign_baseline(path: str | pathlib.Path,
                           campaign_id: str | None = None) -> Baseline:
    """Best completed cell of a campaign store, as a baseline.

    Picks the done cell with the lowest ``mean_iteration_s``; its
    result row supplies the numeric values (iteration time doubles as
    the ``simulated_step_s`` baseline key so the stock SLOs apply).
    """
    from repro.campaign.report import load_report_from_path

    report = load_report_from_path(path, campaign_id)
    best_row = None
    best_value = None
    for row in report.rows:
        if row.state != "done" or not isinstance(row.result, dict):
            continue
        value = row.result.get("mean_iteration_s")
        if not isinstance(value, (int, float)):
            continue
        if best_value is None or value < best_value:
            best_value = float(value)
            best_row = row
    if best_row is None:
        raise ReproError(
            f"campaign store {path} has no completed cell with a "
            f"mean_iteration_s result to baseline against")
    values: dict[str, float] = {}
    meta: dict[str, str] = {"spec_id": str(best_row.spec_id)}
    for key, value in best_row.result.items():
        if isinstance(value, bool):
            meta[key] = str(value).lower()
        elif isinstance(value, (int, float)):
            values[key] = float(value)
        elif isinstance(value, str):
            meta[key] = value
    values["simulated_step_s"] = t.cast(float, best_value)
    return Baseline(source=f"campaign:{pathlib.Path(path).name}",
                    values=values, meta=meta)
