"""First-class observability: metrics, timelines, attribution, exporters.

The paper's whole evaluation is an observability exercise —
link-utilisation per stream (Fig. 3), scaling efficiency, negotiation
overhead at scale, tuner convergence.  This package gives the runtime the
instruments to *explain* its own throughput:

- :class:`MetricsRegistry` — labelled counters/gauges/histograms with a
  single-branch disabled path (:mod:`repro.obs.metrics`);
- :class:`StepTimeline` — per-rank / per-stream span recorder with step
  windows, instants and flow chains (:mod:`repro.obs.timeline`);
- :func:`attribute_step` — critical-path attribution of each step to
  compute / negotiate / network / straggler, summing to measured step
  time (:mod:`repro.obs.critical_path`);
- exporters — Perfetto/Chrome trace (pid = rank, tid = stream),
  Prometheus text, streaming JSONL (:mod:`repro.obs.exporters`).

:class:`Observability` bundles one registry + one timeline and is what
the engines, the network model and the tuner accept.  Attach a
:class:`~repro.obs.detectors.DetectorSuite` via
:meth:`Observability.attach_detectors` to run the streaming anomaly
detectors during simulation; :func:`~repro.obs.diagnosis.diagnose`
turns the recorded run into typed findings, and
:mod:`repro.obs.slo` / :mod:`repro.obs.baselines` give the regression
sentinel its objectives and reference points.
"""

from repro.obs.baselines import (
    Baseline,
    load_bench_baseline,
    load_campaign_baseline,
)
from repro.obs.critical_path import (
    CATEGORY_MAP,
    COMPONENTS,
    StepAttribution,
    attribute_all,
    attribute_step,
    attribute_window,
)
from repro.obs.detectors import (
    DetectorConfig,
    DetectorEvent,
    DetectorSuite,
    LinkUtilisationSampler,
    Severity,
    parse_severity,
)
from repro.obs.diagnosis import (
    DiagnosisReport,
    Finding,
    diagnose,
    load_artifacts,
    write_diagnosis_artifacts,
)
from repro.obs.exporters import (
    chrome_trace_events,
    jsonl_lines,
    jsonl_records,
    prometheus_text,
    write_artifacts,
)
from repro.obs.metrics import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
)
from repro.obs.slo import (
    DEFAULT_SLOS,
    SLO,
    SLOResult,
    evaluate_slos,
    load_slos,
)
from repro.obs.timeline import (
    NETWORK_RANK,
    StepTimeline,
    TimelineInstant,
    TimelineSpan,
)


class Observability:
    """One run's metrics registry + step timeline, enabled together."""

    def __init__(self, enabled: bool = True,
                 registry: MetricsRegistry | None = None,
                 timeline: StepTimeline | None = None) -> None:
        self.registry = registry if registry is not None \
            else MetricsRegistry(enabled=enabled)
        self.timeline = timeline if timeline is not None \
            else StepTimeline(enabled=enabled)
        #: Optional attached :class:`DetectorSuite`; every hot-path hook
        #: site checks ``diag is not None`` exactly once.
        self.diag: DetectorSuite | None = None

    def attach_detectors(self, suite: "DetectorSuite | None" = None
                         ) -> DetectorSuite:
        """Attach (and return) a streaming-detector suite to this run."""
        self.diag = suite if suite is not None else DetectorSuite()
        return self.diag

    @classmethod
    def disabled(cls) -> "Observability":
        """A no-op instance: every record call is one branch."""
        return cls(enabled=False)

    @property
    def enabled(self) -> bool:
        return self.registry.enabled or self.timeline.enabled

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        state = "enabled" if self.enabled else "disabled"
        return f"<Observability {state}: {len(self.registry)} metrics, " \
               f"{len(self.timeline.spans)} spans>"


__all__ = [
    "CATEGORY_MAP",
    "COMPONENTS",
    "DEFAULT_SLOS",
    "Baseline",
    "Counter",
    "DetectorConfig",
    "DetectorEvent",
    "DetectorSuite",
    "DiagnosisReport",
    "Finding",
    "Gauge",
    "Histogram",
    "LinkUtilisationSampler",
    "Metric",
    "MetricsRegistry",
    "NETWORK_RANK",
    "Observability",
    "SLO",
    "SLOResult",
    "Severity",
    "StepAttribution",
    "StepTimeline",
    "TimelineInstant",
    "TimelineSpan",
    "attribute_all",
    "attribute_step",
    "attribute_window",
    "chrome_trace_events",
    "diagnose",
    "evaluate_slos",
    "jsonl_lines",
    "jsonl_records",
    "load_artifacts",
    "load_bench_baseline",
    "load_campaign_baseline",
    "load_slos",
    "parse_severity",
    "prometheus_text",
    "write_artifacts",
    "write_diagnosis_artifacts",
]
