"""BytePS baseline (Jiang et al., OSDI'20, v0.2 behaviour).

Parameter-server data plane: workers *push* gradients to servers and
*pull* aggregated values back.  BytePS shines when **extra CPU-only
server machines** absorb the aggregation traffic; the paper evaluates the
common GPU-cloud setup where servers are co-located with the 8-GPU worker
nodes — then each node's NIC must carry the push *and* pull traffic of
all eight of its workers, roughly ``2 x 8 x S x (m-1)/m`` bytes per
iteration versus the ring's ``~2 x S``.  This volume blow-up is why the
paper (and the independent Bagua study it cites) find BytePS the slowest
baseline, and why "to achieve improved performance for BytePS will incur
an extra financial cost for CPU machine subscription".

Tensors are partitioned into 4 MB parts, and push/pull of different parts
pipeline over a small pool of connections.
"""

from __future__ import annotations

import typing as t

from repro.frameworks.base import (
    BACKWARD_DONE,
    DDLBackend,
    IterationStats,
    ReadyGradient,
    TrainContext,
    UPDATE_TIME_S,
)
from repro.sim.resources import Resource, Store

_COMM_DONE = object()


class BytePSBackend(DDLBackend):
    """Co-located parameter-server push/pull (BytePS semantics)."""

    name = "byteps"

    def __init__(self, partition_bytes: float = 4e6,
                 num_connections: int = 4,
                 extra_cpu_server_nodes: int = 0,
                 server_overhead_s: float = 50e-6) -> None:
        if partition_bytes <= 0:
            raise ValueError("partition_bytes must be positive")
        if num_connections < 1:
            raise ValueError("num_connections must be >= 1")
        if extra_cpu_server_nodes < 0:
            raise ValueError("extra_cpu_server_nodes must be >= 0")
        self.partition_bytes = partition_bytes
        self.num_connections = num_connections
        #: Dedicated CPU server machines (the paper's setup has none).
        self.extra_cpu_server_nodes = extra_cpu_server_nodes
        self.server_overhead_s = server_overhead_s

    def nic_bytes_per_gradient(self, ctx: TrainContext,
                               grad_bytes: float) -> float:
        """Per-worker-node NIC bytes (one direction) to push one gradient.

        Each of the node's ``g`` workers pushes its full gradient,
        sharded across all servers; the remote share crosses the NIC.
        **Co-located** servers additionally serve the other nodes'
        workers through the same NIC — the paper's reason BytePS
        underperforms without "an extra financial cost for CPU machine
        subscription": dedicated CPU servers absorb that second term.
        """
        g = ctx.cluster.spec.gpus_per_node
        m = ctx.cluster.num_nodes
        n = ctx.cluster.world_size
        servers = m + self.extra_cpu_server_nodes
        if servers < 1 or m == 1:
            return 0.0
        if self.extra_cpu_server_nodes:
            # Dedicated servers: all pushes leave the node; the local
            # NIC carries only its own workers' traffic.
            worker_term = g * grad_bytes
            colocated_term = 0.0
        else:
            remote_share = (servers - 1) / servers
            worker_term = g * grad_bytes * remote_share
            # This node's co-located server handles the 1/m shard for
            # every remote worker (push in, pull out — one direction
            # each).
            colocated_term = (n - g) * grad_bytes / m
        return worker_term + colocated_term

    def server_nic_bytes_per_gradient(self, ctx: TrainContext,
                                      grad_bytes: float) -> float:
        """Per-dedicated-server-NIC bytes (one direction) per gradient.

        Only meaningful with ``extra_cpu_server_nodes``: every worker's
        push is sharded over the dedicated servers, so each server NIC
        absorbs ``n x S / k`` inbound (and the same outbound on pulls).
        """
        if not self.extra_cpu_server_nodes:
            return 0.0
        n = ctx.cluster.world_size
        return n * grad_bytes / self.extra_cpu_server_nodes

    def iteration(self, ctx: TrainContext) -> t.Generator:
        start = ctx.sim.now
        yield ctx.sim.timeout(ctx.forward_time_s)

        gradients = Store(ctx.sim, name="byteps.gradients")
        ctx.sim.spawn(ctx.backward_producer(gradients), name="backward")
        connections = Resource(ctx.sim, self.num_connections,
                               name="byteps.connections")
        transfers: list = []

        while True:
            item = yield gradients.get()
            if item is BACKWARD_DONE:
                break
            grad = t.cast(ReadyGradient, item)
            size = ctx.wire_bytes(grad.parameter)
            for part in self._partition(size):
                transfers.append(ctx.sim.spawn(
                    self._push_pull(ctx, connections, part),
                    name="byteps.pushpull"))
        if transfers:
            yield ctx.sim.all_of(transfers)
        yield ctx.sim.timeout(UPDATE_TIME_S)
        return IterationStats(
            iteration_time_s=ctx.sim.now - start,
            compute_time_s=ctx.compute_time_s,
        )

    def _partition(self, size: float) -> list[float]:
        parts = []
        while size > self.partition_bytes:
            parts.append(self.partition_bytes)
            size -= self.partition_bytes
        if size > 0:
            parts.append(size)
        return parts

    def _push_pull(self, ctx: TrainContext, connections: Resource,
                   part_bytes: float) -> t.Generator:
        """Push one partition to its server, then pull the aggregate."""
        nic_bytes = self.nic_bytes_per_gradient(ctx, part_bytes)
        yield connections.acquire()
        try:
            if nic_bytes <= 0:
                # Single node (or all-local servers): NVLink/loopback only.
                yield ctx.network.start_flow(
                    [ctx.cluster.nvlink[0]], 2 * part_bytes)
                return
            cap = ctx.cluster.stream_cap_bps()
            hop = list(ctx.cluster.representative_hop())
            server_bytes = self.server_nic_bytes_per_gradient(ctx,
                                                              part_bytes)
            if server_bytes:
                # Dedicated server NICs can become the bottleneck when
                # too few CPU machines are subscribed.
                hop.append(self._server_link(ctx))
                nic_bytes = max(nic_bytes, server_bytes)
            # Push ...
            yield ctx.network.start_flow(hop, nic_bytes, rate_cap_bps=cap)
            yield ctx.sim.timeout(self.server_overhead_s)
            # ... then pull the reduced value back.
            yield ctx.network.start_flow(hop, nic_bytes, rate_cap_bps=cap)
        finally:
            connections.release()

    def _server_link(self, ctx: TrainContext):
        """Lazily created shared NIC of the dedicated CPU server fleet."""
        link = getattr(self, "_server_link_obj", None)
        if link is None:
            from repro.sim.network import Link

            transport = ctx.cluster.spec.transport
            capacity = transport.effective_capacity_bps(
                ctx.cluster.spec.nic_bandwidth_bps)
            link = Link("byteps.server-nic", capacity)
            self._server_link_obj = link
        return link
