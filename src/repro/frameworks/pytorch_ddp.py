"""PyTorch DistributedDataParallel baseline (v1.10 behaviour).

Control plane: **static bucketing** — parameters are assigned to ~25 MB
buckets in *reverse registration order* at construction time (matching the
expected backward production order).  A bucket's all-reduce launches from
the autograd hook as soon as its last gradient arrives; there is no
per-cycle coordinator, but buckets must launch **in bucket order** and run
serially on a single NCCL stream.

A straggling gradient therefore blocks its bucket *and* all later buckets
— and the single stream is again capped at the transport's single-stream
efficiency.
"""

from __future__ import annotations

import typing as t

from repro.frameworks.base import (
    BACKWARD_DONE,
    DDLBackend,
    IterationStats,
    ReadyGradient,
    TrainContext,
    UPDATE_TIME_S,
)
from repro.models.base import ParameterSpec
from repro.sim.resources import Store

_COMM_DONE = object()


class PyTorchDDPBackend(DDLBackend):
    """Bucketed, hook-launched, single-stream all-reduce (DDP semantics)."""

    name = "pytorch-ddp"

    def __init__(self, bucket_bytes: float = 25e6,
                 launch_overhead_s: float = 30e-6,
                 stream_cap_scale: float = 0.65,
                 algorithm: str = "ring") -> None:
        if bucket_bytes <= 0:
            raise ValueError("bucket_bytes must be positive")
        if not 0 < stream_cap_scale <= 1:
            raise ValueError("stream_cap_scale must be in (0, 1]")
        self.bucket_bytes = bucket_bytes
        self.launch_overhead_s = launch_overhead_s
        #: DDP v1.10 ships NCCL default socket configuration (untuned
        #: NCCL_SOCKET_NTHREADS), reaching about two-thirds of the single-stream
        #: ceiling of a tuned Horovod deployment; calibrated against the
        #: paper's Fig. 9 Horovod/DDP gap at 256 GPUs.
        self.stream_cap_scale = stream_cap_scale
        self.algorithm = algorithm

    def build_buckets(self, ctx: TrainContext) -> list[list[str]]:
        """Assign parameters to buckets in reverse registration order."""
        buckets: list[list[str]] = []
        current: list[str] = []
        current_bytes = 0.0
        for parameter in reversed(ctx.model.parameters()):
            size = ctx.wire_bytes(parameter)
            if current and current_bytes + size > self.bucket_bytes:
                buckets.append(current)
                current = []
                current_bytes = 0.0
            current.append(parameter.name)
            current_bytes += size
        if current:
            buckets.append(current)
        return buckets

    def iteration(self, ctx: TrainContext) -> t.Generator:
        start = ctx.sim.now
        yield ctx.sim.timeout(ctx.forward_time_s)

        buckets = self.build_buckets(ctx)
        bucket_of: dict[str, int] = {}
        for index, names in enumerate(buckets):
            for name in names:
                bucket_of[name] = index
        remaining = [len(names) for names in buckets]
        sizes = self._bucket_sizes(ctx, buckets)

        gradients = Store(ctx.sim, name="ddp.gradients")
        comm_queue = Store(ctx.sim, name="ddp.comm")
        ctx.sim.spawn(ctx.backward_producer(gradients), name="backward")
        hook = ctx.sim.spawn(
            self._autograd_hook(ctx, gradients, comm_queue, bucket_of,
                                remaining, sizes), name="ddp.hook")
        comm = ctx.sim.spawn(self._comm_worker(ctx, comm_queue),
                             name="ddp.comm")
        yield hook
        yield comm
        yield ctx.sim.timeout(UPDATE_TIME_S)
        return IterationStats(
            iteration_time_s=ctx.sim.now - start,
            compute_time_s=ctx.compute_time_s,
        )

    def _bucket_sizes(self, ctx: TrainContext,
                      buckets: list[list[str]]) -> list[float]:
        by_name: dict[str, ParameterSpec] = {
            p.name: p for p in ctx.model.parameters()}
        return [
            sum(ctx.wire_bytes(by_name[name]) for name in names)
            for names in buckets
        ]

    def _autograd_hook(self, ctx: TrainContext, gradients: Store,
                       comm_queue: Store, bucket_of: dict[str, int],
                       remaining: list[int],
                       sizes: list[float]) -> t.Generator:
        """Mark gradients; release buckets in order as they complete.

        Each complete bucket is staged over PCIe (concurrently with the
        sends of earlier buckets) before entering the serial comm queue.
        """
        staging: list = []
        next_to_launch = 0
        complete = [count == 0 for count in remaining]
        while True:
            item = yield gradients.get()
            if item is BACKWARD_DONE:
                break
            grad = t.cast(ReadyGradient, item)
            index = bucket_of[grad.parameter.name]
            remaining[index] -= 1
            if remaining[index] == 0:
                complete[index] = True
                # DDP launches buckets strictly in bucket order.
                while next_to_launch < len(sizes) and \
                        complete[next_to_launch]:
                    staging.append(ctx.sim.spawn(_stage_then_enqueue(
                        ctx, sizes[next_to_launch], comm_queue)))
                    next_to_launch += 1
        if next_to_launch != len(sizes):
            # Straggler buckets launch at backward end (grads all arrived).
            while next_to_launch < len(sizes):
                staging.append(ctx.sim.spawn(_stage_then_enqueue(
                    ctx, sizes[next_to_launch], comm_queue)))
                next_to_launch += 1
        if staging:
            yield ctx.sim.all_of(staging)
        comm_queue.put(_COMM_DONE)

    def _comm_worker(self, ctx: TrainContext,
                     comm_queue: Store) -> t.Generator:
        while True:
            bucket_bytes = yield comm_queue.get()
            if bucket_bytes is _COMM_DONE:
                return
            yield ctx.sim.timeout(self.launch_overhead_s)
            yield ctx.collectives.allreduce(
                t.cast(float, bucket_bytes), algorithm=self.algorithm,
                cap_scale=self.stream_cap_scale)


def _stage_then_enqueue(ctx: TrainContext, bucket_bytes: float,
                        comm_queue: Store):
    """Copy a bucket over PCIe, then hand it to the comm thread."""
    staging = ctx.staging_time_s(bucket_bytes)
    if staging:
        yield ctx.sim.timeout(staging)
    comm_queue.put(bucket_bytes)
    return
    yield  # pragma: no cover
