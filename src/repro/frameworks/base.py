"""Common machinery for distributed-training communication backends.

A *backend* models the control plane and data plane of one DDL framework
(Horovod, PyTorch-DDP, BytePS, MXNet-KVStore, or AIACC-Training itself).
All backends drive the same simulated iteration structure:

1. **forward** — pure compute, ``batch x forward_flops`` on the GPU;
2. **backward** — compute runs for ``2x`` forward; gradient tensors become
   ready at their :meth:`~repro.models.base.ModelSpec.backward_schedule`
   fractions and are pushed to the backend as they appear;
3. **communication** — backend-specific; the iteration completes when all
   gradients are globally reduced and the optimizer step has run.

Because data-parallel workers are symmetric (identical model, identical
batch shape, synchronized steps), the simulation follows one
representative worker; cluster-wide network effects are captured by the
fluid network model and control-plane costs by each backend's analytic
terms.
"""

from __future__ import annotations

import abc
import dataclasses
import typing as t

from repro.errors import TrainingError
from repro.models.base import ModelSpec, ParameterSpec
from repro.collectives.timed import TimedCollectives
from repro.obs import Observability
from repro.sim.kernel import Simulator
from repro.sim.network import FluidNetwork
from repro.sim.resources import Store
from repro.sim.topology import Cluster
from repro.sim.tracing import Trace

#: Fixed cost of the optimizer parameter-update kernel per iteration.
UPDATE_TIME_S = 1e-3

#: Sentinel pushed to the gradient store when the backward pass finishes.
BACKWARD_DONE = object()


@dataclasses.dataclass(frozen=True)
class ReadyGradient:
    """A gradient tensor that has been produced on the local worker."""

    parameter: ParameterSpec
    #: Registration index (paper §V-A: sorted, unique ids; workers
    #: implicitly agree on communication order through them).
    grad_id: int
    ready_at: float


@dataclasses.dataclass
class TrainContext:
    """Everything a backend needs to run one worker's iterations."""

    sim: Simulator
    network: FluidNetwork
    cluster: Cluster
    collectives: TimedCollectives
    model: ModelSpec
    batch_per_gpu: int
    trace: Trace
    #: Bytes per gradient element actually transmitted (2 when fp16
    #: gradient compression is enabled, else the parameter dtype width).
    wire_dtype_bytes: int = 4
    #: Additional per-iteration time spent outside gradient communication,
    #: e.g. the NVLink activation exchange of hybrid data+model
    #: parallelism (folded into the forward pass).
    extra_forward_time_s: float = 0.0
    #: Metrics registry + step timeline; disabled by default so the
    #: record calls on the hot path cost a single branch.
    obs: Observability = dataclasses.field(
        default_factory=Observability.disabled)

    def __post_init__(self) -> None:
        if self.batch_per_gpu < 1:
            raise TrainingError("batch_per_gpu must be >= 1")
        if self.extra_forward_time_s < 0:
            raise TrainingError("extra_forward_time_s must be >= 0")

    # -- compute timing -----------------------------------------------------

    @property
    def forward_time_s(self) -> float:
        """Duration of the forward pass for one minibatch."""
        flops = self.model.forward_flops * self.batch_per_gpu
        return self.cluster.gpu_device.compute_time_s(flops) + \
            self.extra_forward_time_s

    @property
    def backward_time_s(self) -> float:
        """Duration of the backward pass for one minibatch."""
        flops = self.model.backward_flops * self.batch_per_gpu
        return self.cluster.gpu_device.compute_time_s(flops)

    @property
    def compute_time_s(self) -> float:
        """Forward + backward + update time; the no-communication floor."""
        return self.forward_time_s + self.backward_time_s + UPDATE_TIME_S

    def wire_bytes(self, parameter: ParameterSpec) -> float:
        """Bytes of ``parameter``'s gradient as sent on the network."""
        return parameter.num_elements * self.wire_dtype_bytes

    @property
    def effective_occupancy(self) -> float:
        """SM occupancy of compute kernels at the current batch size.

        Paper footnote 5: "Less GPU computation means that there will be
        a higher chance for the GPU hardware scheduler to dispatch more
        CUDA streams to run concurrently" — smaller batches launch
        smaller kernels, freeing SMs for communication streams.  Scales
        the model's nominal occupancy by the square root of the batch
        ratio (kernel width grows sub-linearly with batch).
        """
        ratio = self.batch_per_gpu / self.model.default_batch_size
        return min(1.0, self.model.compute_occupancy
                   * min(1.0, ratio) ** 0.5)

    def staging_time_s(self, nbytes: float) -> float:
        """GPU<->CPU staging cost for ``nbytes`` of gradient traffic.

        TCP communication buffers live in CPU memory (paper §V-A.2), so
        every transfer pays a PCIe round trip; GPU-direct RDMA reads
        device memory and pays nothing.  Applies identically to every
        backend — all of them move gradients through host buffers on a
        TCP fabric.
        """
        if self.cluster.spec.transport.gpu_direct:
            return 0.0
        return 2.0 * nbytes * 8.0 / self.cluster.spec.gpu.pcie_bps

    # -- gradient production --------------------------------------------------

    def backward_producer(self, store: Store) -> t.Generator:
        """Process emitting gradients into ``store`` during backward.

        Gradients appear in reverse layer order at schedule fractions of
        the backward duration; ids follow registration (forward) order.
        Ends by pushing :data:`BACKWARD_DONE`.
        """
        ids = {p.name: i for i, p in enumerate(self.model.parameters())}
        duration = self.backward_time_s
        elapsed = 0.0
        for event in self.model.backward_schedule():
            target = event.time_fraction * duration
            if target > elapsed:
                yield self.sim.timeout(target - elapsed)
                elapsed = target
            for parameter in event.parameters:
                store.put(ReadyGradient(
                    parameter=parameter,
                    grad_id=ids[parameter.name],
                    ready_at=self.sim.now,
                ))
        if elapsed < duration:
            yield self.sim.timeout(duration - elapsed)
        store.put(BACKWARD_DONE)


@dataclasses.dataclass(frozen=True)
class IterationStats:
    """Timing breakdown of one training iteration."""

    iteration_time_s: float
    compute_time_s: float

    @property
    def exposed_comm_time_s(self) -> float:
        """Communication time not hidden behind compute."""
        return max(0.0, self.iteration_time_s - self.compute_time_s)


class DDLBackend(abc.ABC):
    """One distributed-training communication framework."""

    #: Human-readable framework name used in reports.
    name: str = "abstract"

    @abc.abstractmethod
    def iteration(self, ctx: TrainContext) -> t.Generator:
        """Simulated-process generator for one full training iteration.

        Must return an :class:`IterationStats`.
        """

    def warmup(self, ctx: TrainContext) -> t.Generator:
        """Optional one-time setup (stream creation, tuning, rendezvous)."""
        return
        yield  # pragma: no cover - default is a no-op generator

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"<{type(self).__name__} {self.name!r}>"


def drain_gradients(store: Store) -> t.Generator:
    """Helper: collect every gradient of one backward pass from ``store``.

    Yields control while waiting; returns the complete list.  Useful for
    backends that only act on full-iteration boundaries.
    """
    gradients: list[ReadyGradient] = []
    while True:
        item = yield store.get()
        if item is BACKWARD_DONE:
            return gradients
        gradients.append(t.cast(ReadyGradient, item))
