"""Distributed-training communication backends.

``make_backend(name)`` builds a fresh backend instance:

========================  ====================================================
name                      framework modelled
========================  ====================================================
``aiacc``                 AIACC-Training (this paper)
``horovod``               Horovod v0.23 (master negotiation, fusion buffer)
``pytorch-ddp``           PyTorch v1.10 DistributedDataParallel (buckets)
``byteps``                BytePS v0.2 (co-located parameter servers)
``mxnet-kvstore``         MXNet distributed KVStore (whole-key PS)
========================  ====================================================

Backends are single-experiment objects: create a new one per run.
"""

from __future__ import annotations

import typing as t

from repro.errors import ReproError
from repro.frameworks.base import (
    BACKWARD_DONE,
    DDLBackend,
    IterationStats,
    ReadyGradient,
    TrainContext,
    UPDATE_TIME_S,
    drain_gradients,
)
from repro.frameworks.byteps import BytePSBackend
from repro.frameworks.horovod import HorovodBackend
from repro.frameworks.mxnet_kvstore import MXNetKVStoreBackend
from repro.frameworks.pytorch_ddp import PyTorchDDPBackend


def _make_aiacc(**kwargs: t.Any) -> DDLBackend:
    from repro.core.engine import AIACCBackend
    from repro.core.runtime import AIACCConfig

    if "config" in kwargs:
        return AIACCBackend(kwargs["config"])
    if kwargs:
        return AIACCBackend(AIACCConfig(**kwargs))
    return AIACCBackend()


_FACTORIES: dict[str, t.Callable[..., DDLBackend]] = {
    "aiacc": _make_aiacc,
    "horovod": HorovodBackend,
    "pytorch-ddp": PyTorchDDPBackend,
    "byteps": BytePSBackend,
    "mxnet-kvstore": MXNetKVStoreBackend,
}


def available_backends() -> list[str]:
    """Names of all registered communication backends."""
    return sorted(_FACTORIES)


def make_backend(name: str, **kwargs: t.Any) -> DDLBackend:
    """Instantiate a fresh backend by name with backend-specific options."""
    try:
        factory = _FACTORIES[name]
    except KeyError:
        raise ReproError(
            f"unknown backend {name!r}; available: {available_backends()}"
        ) from None
    return factory(**kwargs)


__all__ = [
    "BACKWARD_DONE",
    "BytePSBackend",
    "DDLBackend",
    "HorovodBackend",
    "IterationStats",
    "MXNetKVStoreBackend",
    "PyTorchDDPBackend",
    "ReadyGradient",
    "TrainContext",
    "UPDATE_TIME_S",
    "available_backends",
    "drain_gradients",
    "make_backend",
]
