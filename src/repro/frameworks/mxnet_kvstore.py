"""MXNet distributed KVStore baseline.

MXNet's native data-parallel path synchronizes through a distributed
key-value store: every parameter is a *key*; workers push gradient values
and pull back aggregated weights.  Compared to BytePS it lacks tensor
partitioning and connection pipelining — each key is pushed/pulled
whole over a single connection, with per-key serialization overhead —
which is why Fig. 12 of the paper shows "the parameter server approach
used by MXNet gives a lower throughput compared to the all-reduce used by
Tensorflow and PyTorch".

The paper's AIACC integration replaces exactly this interface ("porting
MXNet's parameter server-based code ... can be realized using the MXNet
key value store interface").
"""

from __future__ import annotations

import typing as t

from repro.frameworks.base import (
    BACKWARD_DONE,
    DDLBackend,
    IterationStats,
    ReadyGradient,
    TrainContext,
    UPDATE_TIME_S,
)
from repro.sim.resources import Resource, Store


class MXNetKVStoreBackend(DDLBackend):
    """Whole-key parameter server with minimal pipelining (KVStore)."""

    name = "mxnet-kvstore"

    def __init__(self, per_key_overhead_s: float = 100e-6,
                 num_connections: int = 2) -> None:
        if num_connections < 1:
            raise ValueError("num_connections must be >= 1")
        self.per_key_overhead_s = per_key_overhead_s
        #: KVStore overlaps the push of one key with the pull of another,
        #: but far less aggressively than BytePS's partitioned pipeline.
        self.num_connections = num_connections

    def iteration(self, ctx: TrainContext) -> t.Generator:
        start = ctx.sim.now
        yield ctx.sim.timeout(ctx.forward_time_s)

        gradients = Store(ctx.sim, name="kvstore.gradients")
        ctx.sim.spawn(ctx.backward_producer(gradients), name="backward")
        connections = Resource(ctx.sim, self.num_connections,
                               name="kvstore.connections")
        transfers: list = []

        while True:
            item = yield gradients.get()
            if item is BACKWARD_DONE:
                break
            grad = t.cast(ReadyGradient, item)
            size = ctx.wire_bytes(grad.parameter)
            transfers.append(ctx.sim.spawn(
                self._push_pull(ctx, connections, size),
                name="kvstore.pushpull"))
        if transfers:
            yield ctx.sim.all_of(transfers)
        yield ctx.sim.timeout(UPDATE_TIME_S)
        return IterationStats(
            iteration_time_s=ctx.sim.now - start,
            compute_time_s=ctx.compute_time_s,
        )

    def _push_pull(self, ctx: TrainContext, connections: Resource,
                   size: float) -> t.Generator:
        """Serial whole-key push then pull on one connection."""
        g = ctx.cluster.spec.gpus_per_node
        m = ctx.cluster.num_nodes
        yield connections.acquire()
        try:
            yield ctx.sim.timeout(self.per_key_overhead_s)
            if m == 1:
                yield ctx.network.start_flow(
                    [ctx.cluster.nvlink[0]], 2 * size)
                return
            nic_bytes = g * size * (m - 1) / m
            cap = ctx.cluster.stream_cap_bps()
            hop = ctx.cluster.representative_hop()
            yield ctx.network.start_flow(hop, nic_bytes, rate_cap_bps=cap)
            yield ctx.network.start_flow(hop, nic_bytes, rate_cap_bps=cap)
        finally:
            connections.release()
