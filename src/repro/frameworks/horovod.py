"""Horovod baseline (Sergeev et al., v0.23 behaviour).

Control plane: a **single coordinator** (rank 0).  Every *cycle* (default
5 ms) workers report their locally ready tensors to the coordinator, which
intersects the lists and broadcasts the negotiated set.  The coordinator
processes one message per worker per cycle plus one list entry per ready
tensor per worker — the serial master-node work that the paper identifies
as the scalability bottleneck beyond ~128 GPUs (Section III).

Data plane: negotiated tensors are packed into a **fusion buffer**
(default 64 MB) and all-reduced by NCCL on **one** communication stream,
serially.  A single stream reaches at most the transport's single-stream
efficiency (~30% of a TCP link), which is the other bottleneck AIACC
attacks.
"""

from __future__ import annotations

import typing as t

from repro.frameworks.base import (
    BACKWARD_DONE,
    DDLBackend,
    IterationStats,
    ReadyGradient,
    TrainContext,
    UPDATE_TIME_S,
)
from repro.sim.resources import Store

#: Queue sentinel: no more fusion buffers will be produced.
_COMM_DONE = object()


class HorovodBackend(DDLBackend):
    """Master-coordinated, single-stream all-reduce (Horovod semantics)."""

    name = "horovod"

    def __init__(self, cycle_time_s: float = 5e-3,
                 fusion_buffer_bytes: float = 64e6,
                 master_service_per_worker_s: float = 5e-6,
                 master_service_per_entry_s: float = 1.0e-6,
                 algorithm: str = "ring") -> None:
        if cycle_time_s <= 0 or fusion_buffer_bytes <= 0:
            raise ValueError("cycle time and fusion buffer must be positive")
        self.cycle_time_s = cycle_time_s
        self.fusion_buffer_bytes = fusion_buffer_bytes
        self.master_service_per_worker_s = master_service_per_worker_s
        self.master_service_per_entry_s = master_service_per_entry_s
        self.algorithm = algorithm

    # -- control-plane cost model ----------------------------------------------

    def negotiation_delay_s(self, ctx: TrainContext, num_tensors: int) -> float:
        """Latency of one coordinator negotiation round.

        One request per worker is serviced serially at the master, each
        carrying ``num_tensors`` readiness entries, followed by the
        response broadcast.
        """
        n = ctx.cluster.world_size
        rtt = 2 * ctx.cluster.spec.inter_node_latency_s
        serial = n * (self.master_service_per_worker_s
                      + num_tensors * self.master_service_per_entry_s)
        return rtt + serial

    def pack_fusion_buffers(self, ctx: TrainContext,
                            gradients: t.Sequence[ReadyGradient]
                            ) -> list[float]:
        """Greedily pack gradients into fusion buffers (byte sizes).

        Tensors larger than the buffer are sent alone — Horovod never
        splits a tensor, which is why VGG's 410 MB fc6 gradient crawls
        through one capped stream.
        """
        buffers: list[float] = []
        current = 0.0
        for grad in sorted(gradients, key=lambda g: g.grad_id):
            size = ctx.wire_bytes(grad.parameter)
            if current > 0 and current + size > self.fusion_buffer_bytes:
                buffers.append(current)
                current = 0.0
            current += size
        if current > 0:
            buffers.append(current)
        return buffers

    # -- iteration -----------------------------------------------------------

    def iteration(self, ctx: TrainContext) -> t.Generator:
        start = ctx.sim.now
        yield ctx.sim.timeout(ctx.forward_time_s)

        gradients = Store(ctx.sim, name="horovod.gradients")
        comm_queue = Store(ctx.sim, name="horovod.comm")
        ctx.sim.spawn(ctx.backward_producer(gradients), name="backward")
        negotiator = ctx.sim.spawn(
            self._negotiator(ctx, gradients, comm_queue), name="negotiator")
        comm = ctx.sim.spawn(self._comm_worker(ctx, comm_queue), name="comm")

        yield negotiator
        yield comm
        yield ctx.sim.timeout(UPDATE_TIME_S)
        return IterationStats(
            iteration_time_s=ctx.sim.now - start,
            compute_time_s=ctx.compute_time_s,
        )

    def _negotiator(self, ctx: TrainContext, gradients: Store,
                    comm_queue: Store) -> t.Generator:
        """Cycle loop: gather ready tensors, negotiate, emit fusion buffers."""
        backward_done = False
        pending: list[ReadyGradient] = []
        staging: list = []
        while not (backward_done and not pending and not len(gradients)):
            yield ctx.sim.timeout(self.cycle_time_s)
            while True:
                ok, item = gradients.try_get()
                if not ok:
                    break
                if item is BACKWARD_DONE:
                    backward_done = True
                else:
                    pending.append(t.cast(ReadyGradient, item))
            if not pending:
                continue
            delay = self.negotiation_delay_s(ctx, len(pending))
            ctx.trace.add_span("negotiation", ctx.sim.now,
                               ctx.sim.now + delay)
            yield ctx.sim.timeout(delay)
            for buffer_bytes in self.pack_fusion_buffers(ctx, pending):
                # PCIe staging into the fusion buffer overlaps with the
                # network send of earlier buffers (separate copy engine).
                staging.append(ctx.sim.spawn(
                    _stage_then_enqueue(ctx, buffer_bytes, comm_queue),
                    name="horovod.stage"))
            pending = []
        if staging:
            yield ctx.sim.all_of(staging)
        comm_queue.put(_COMM_DONE)

    def _comm_worker(self, ctx: TrainContext,
                     comm_queue: Store) -> t.Generator:
        """Single-stream serial all-reduce of fusion buffers."""
        while True:
            buffer_bytes = yield comm_queue.get()
            if buffer_bytes is _COMM_DONE:
                return
            yield ctx.collectives.allreduce(
                t.cast(float, buffer_bytes), algorithm=self.algorithm)


def _stage_then_enqueue(ctx: TrainContext, buffer_bytes: float,
                        comm_queue: Store) -> t.Generator:
    """Copy a fusion buffer over PCIe, then hand it to the comm thread."""
    staging = ctx.staging_time_s(buffer_bytes)
    if staging:
        yield ctx.sim.timeout(staging)
    comm_queue.put(buffer_bytes)
    return
    yield  # pragma: no cover - keeps this a generator when staging == 0
