"""repro — a full reproduction of AIACC-Training (ICDCS 2022).

Lin et al., "AIACC-Training: Optimizing Distributed Deep Learning
Training through Multi-streamed and Concurrent Gradient Communications".

Subpackages
-----------
``repro.sim``
    Deterministic discrete-event substrate replacing the GPU-cloud
    testbed: fluid network with per-stream caps, V100/CUDA-stream model,
    cluster topologies, MPI daemons.
``repro.collectives``
    Ring/hierarchical all-reduce and friends — numeric (verifiable) and
    timed (flow-level) faces.
``repro.models``
    Workload specs for every DNN the paper evaluates (Table I, GPT-2 XL,
    the production CTR system).
``repro.frameworks``
    Baselines: Horovod, PyTorch-DDP, BytePS, MXNet KVStore.
``repro.core``
    AIACC-Training itself: decentralized synchronization, gradient
    packing, the multi-stream engine, the Perseus API, and the
    production features (compression, fault tolerance, NaN debugging,
    source translation).
``repro.autotune``
    The Section VI ensemble auto-tuner and settings cache.
``repro.training``
    Optimizers, schedules, trainers (timed + numeric), hybrid
    parallelism, time-to-accuracy.
``repro.harness``
    One experiment per paper table/figure.
"""

__version__ = "1.0.0"

__all__ = ["__version__"]
