"""Topology-aware collective planner and in-network aggregation model.

The repo's first two all-reduce shapes (flat ring, hierarchical) are
hard-coded schedules that ignore the actual simulated topology.  This
module closes that gap along the lines of Blink (PAPERS.md): it takes
the concrete :class:`~repro.sim.topology.Cluster` — NVLink fabrics,
per-node NIC caps, an optionally oversubscribed spine — and *synthesizes*
an executable schedule per algorithm:

``halving-doubling``
    Recursive-halving reduce-scatter + recursive-doubling all-gather
    across nodes (power-of-two node counts).  Bandwidth-optimal like the
    ring but with ``2 log2(m)`` latency rounds instead of ``2 (m - 1)``.

``multi-tree``
    Blink-style packed reduction trees: chunk ``c``'s tree is a
    two-level star rooted at node ``c``; all ``m`` trees run
    concurrently, so both phases (reduce-to-roots, broadcast-from-roots)
    saturate every NIC at once and the whole collective needs only two
    inter-node rounds.

``ina``
    In-network aggregation (the FPGA SmartNIC model of PAPERS.md): each
    node ships its locally reduced gradient *once* to an aggregation
    point inside the fabric, which reduces at line rate and multicasts
    the result back.  Per-NIC volume drops from ``~2 S`` to ``S`` per
    direction, and the oversubscribed spine carries one multicast trunk
    copy instead of per-destination unicasts — the backend that wins
    when the spine, not the NIC, is the bottleneck.

Every schedule has two faces, mirroring the rest of
:mod:`repro.collectives`:

* a **timing face** — :class:`CollectiveSchedule` is a list of
  :class:`SchedulePhase` objects whose flows the timed executor places
  on the fluid network (:meth:`repro.collectives.timed.TimedCollectives.
  allreduce` dispatches planner algorithms here);
* a **numeric face** — :func:`planned_numeric_allreduce` executes the
  same data movement with real numpy arrays so property tests can prove
  each synthesized schedule reduces to bit-exactly the numeric ring's
  values (``tests/collectives/test_planner_properties.py``).

Timing is differential-tested against the closed forms in
:mod:`repro.collectives.cost_model`
(``tests/collectives/test_planner_differential.py``).
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.errors import CollectiveError
from repro.collectives.cost_model import (
    INA_SWITCH_LATENCY_S,
    PHASE_SYNC_S,
    ring_volume_bytes,
)
from repro.collectives.primitives import (
    ReduceOp,
    apply_op,
    chunk_bounds,
    finalize_op,
)
from repro.collectives.runner import run_workers
from repro.sim.kernel import Simulator
from repro.sim.mpi import Communicator
from repro.sim.network import Link
from repro.sim.topology import Cluster

#: Algorithms the planner can synthesize (beyond the legacy ring /
#: hierarchical schedules hard-coded in ``timed.py``).  The macro-phase
#: sync and aggregator latency constants (``PHASE_SYNC_S``,
#: ``INA_SWITCH_LATENCY_S``) are shared with
#: :mod:`repro.collectives.cost_model` so the closed forms and the
#: synthesized schedules charge identical constants.
PLANNER_ALGORITHMS = ("halving-doubling", "multi-tree", "ina")

_TAG_HD = 13 << 20
_TAG_MT = 14 << 20


@dataclasses.dataclass(frozen=True)
class FlowSpec:
    """One transport-stream bundle inside a schedule phase.

    ``weight`` bundles that many identical streams (the fluid network
    gives the bundle ``weight`` fair shares and applies ``rate_cap_bps``
    per stream); ``size_bytes`` is the bundle total.
    """

    links: tuple[Link, ...]
    size_bytes: float
    rate_cap_bps: float | None
    weight: int = 1

    def as_request(self) -> tuple[tuple[Link, ...], float, float | None,
                                  int]:
        return (self.links, self.size_bytes, self.rate_cap_bps,
                self.weight)


@dataclasses.dataclass(frozen=True)
class SchedulePhase:
    """Concurrent flows plus the latency charged after they drain.

    ``latency_s`` bundles the phase's per-hop latency, exposed
    per-message software overhead, and (at macro boundaries) the
    device-wide phase sync.
    """

    name: str
    flows: tuple[FlowSpec, ...]
    latency_s: float = 0.0


@dataclasses.dataclass(frozen=True)
class CollectiveSchedule:
    """An executable, topology-derived collective schedule."""

    algorithm: str
    size_bytes: float
    phases: tuple[SchedulePhase, ...]

    @property
    def total_flow_bytes(self) -> float:
        return sum(flow.size_bytes for phase in self.phases
                   for flow in phase.flows)

    @property
    def total_latency_s(self) -> float:
        return sum(phase.latency_s for phase in self.phases)


class CollectivePlanner:
    """Synthesizes collective schedules for one concrete cluster.

    Parameters
    ----------
    cluster:
        The simulated topology the schedules will run on.
    ina_agg_bps:
        Aggregate reduction throughput of the in-network aggregator.
        Defaults to line rate on every port (``num_nodes x`` effective
        NIC capacity) — a non-blocking FPGA aggregator; pass a lower
        value to model a constrained switch pipeline.
    """

    def __init__(self, cluster: Cluster,
                 ina_agg_bps: float | None = None) -> None:
        self.cluster = cluster
        spec = cluster.spec
        line_rate = spec.transport.effective_capacity_bps(
            spec.nic_bandwidth_bps)
        if ina_agg_bps is None:
            ina_agg_bps = cluster.num_nodes * line_rate
        if ina_agg_bps <= 0:
            raise CollectiveError("ina_agg_bps must be positive")
        self.ina_agg_bps = ina_agg_bps
        #: The aggregation point inside the fabric.  A free-standing
        #: link: every up-phase flow traverses it, so a constrained
        #: aggregator pipeline becomes a real shared bottleneck in the
        #: fluid model rather than a bolted-on delay.
        self._ina_link: Link | None = None

    # -- public API -------------------------------------------------------

    def supported_algorithms(self) -> tuple[str, ...]:
        """Planner algorithms valid on this cluster's shape."""
        m = self.cluster.num_nodes
        names = []
        if m == 1 or _is_power_of_two(m):
            names.append("halving-doubling")
        names.extend(["multi-tree", "ina"])
        return tuple(names)

    def plan(self, algorithm: str, size_bytes: float,
             cap_scale: float = 1.0) -> CollectiveSchedule:
        """Synthesize the schedule for one all-reduce.

        Raises :class:`~repro.errors.CollectiveError` for unknown
        algorithms or shapes the algorithm cannot run on (e.g.
        halving-doubling on a non-power-of-two node count).
        """
        if algorithm not in PLANNER_ALGORITHMS:
            raise CollectiveError(
                f"unknown planner algorithm {algorithm!r}; "
                f"expected one of {PLANNER_ALGORITHMS}"
            )
        if size_bytes < 0:
            raise CollectiveError("size_bytes must be non-negative")
        if not 0 < cap_scale <= 1:
            raise CollectiveError("cap_scale must be in (0, 1]")
        if size_bytes == 0 or self.cluster.world_size == 1:
            return CollectiveSchedule(algorithm, size_bytes, ())
        if self.cluster.num_nodes == 1:
            return CollectiveSchedule(
                algorithm, size_bytes,
                (self._single_node_ring(size_bytes),))
        if algorithm == "halving-doubling":
            phases = self._halving_doubling(size_bytes, cap_scale)
        elif algorithm == "multi-tree":
            phases = self._multi_tree(size_bytes, cap_scale)
        else:
            phases = self._ina(size_bytes, cap_scale)
        return CollectiveSchedule(algorithm, size_bytes, tuple(phases))

    # -- shared building blocks ----------------------------------------------

    def _cap(self, node: int, cap_scale: float) -> float:
        return self.cluster.stream_cap_bps(node) * cap_scale

    def _hop(self, src: int, dst: int) -> tuple[Link, ...]:
        """NIC links crossed by one inter-node transfer."""
        cluster = self.cluster
        links: list[Link] = [cluster.nic_out[src]]
        if cluster.core is not None:
            links.append(cluster.core)
        links.append(cluster.nic_in[dst])
        return tuple(links)

    def _uplink(self, src: int) -> tuple[Link, ...]:
        """Links from a node up to the in-network aggregation point."""
        cluster = self.cluster
        links: list[Link] = [cluster.nic_out[src]]
        if cluster.core is not None:
            links.append(cluster.core)
        links.append(self._ina_port())
        return tuple(links)

    def _ina_port(self) -> Link:
        if self._ina_link is None:
            self._ina_link = Link("ina.agg", self.ina_agg_bps)
        return self._ina_link

    def _exposed_s(self, per_stream_bytes: float, cap_bps: float) -> float:
        """Per-message software overhead not hidden behind the wire time."""
        overhead = self.cluster.spec.transport.per_message_overhead_s
        return max(0.0, overhead - per_stream_bytes * 8.0 / cap_bps)

    def _min_cap(self, cap_scale: float) -> float:
        """Per-stream cap of the slowest NIC (heterogeneous clusters)."""
        return min(self._cap(node, cap_scale)
                   for node in range(self.cluster.num_nodes))

    def _single_node_ring(self, size_bytes: float) -> SchedulePhase:
        cluster = self.cluster
        n = cluster.world_size
        hop_bytes = ring_volume_bytes(size_bytes, n)
        alpha = 2 * (n - 1) * cluster.spec.intra_node_latency_s
        return SchedulePhase(
            "nvlink-ring",
            (FlowSpec((cluster.nvlink[0],), hop_bytes, None),),
            latency_s=alpha)

    def _intra_phase(self, name: str, size_bytes: float,
                     sync_after: bool) -> SchedulePhase | None:
        """Intra-node reduce-scatter or all-gather over every fabric."""
        cluster = self.cluster
        g = cluster.spec.gpus_per_node
        if g == 1:
            return None
        phase_bytes = size_bytes * (g - 1) / g
        flows = tuple(FlowSpec((fabric,), phase_bytes, None)
                      for fabric in cluster.nvlink)
        latency = (g - 1) * cluster.spec.intra_node_latency_s
        if sync_after:
            latency += PHASE_SYNC_S
        return SchedulePhase(name, flows, latency_s=latency)

    # -- algorithms ---------------------------------------------------------

    def _halving_doubling(self, size_bytes: float,
                          cap_scale: float) -> list[SchedulePhase]:
        """Recursive halving/doubling across nodes on per-rank shards."""
        cluster = self.cluster
        m = cluster.num_nodes
        if not _is_power_of_two(m):
            raise CollectiveError(
                f"halving-doubling requires a power-of-two node count, "
                f"got {m} nodes"
            )
        g = cluster.spec.gpus_per_node
        spec = cluster.spec
        shard = size_bytes / g  # per-local-rank inter-node payload
        phases: list[SchedulePhase] = []
        intra_rs = self._intra_phase("intra-rs", size_bytes,
                                     sync_after=True)
        if intra_rs is not None:
            phases.append(intra_rs)

        rounds = m.bit_length() - 1
        min_cap = self._min_cap(cap_scale)

        def exchange(name: str, round_idx: int,
                     per_stream_bytes: float) -> SchedulePhase:
            stride = 1 << round_idx
            flows = []
            for node in range(m):
                partner = node ^ stride
                flows.append(FlowSpec(
                    self._hop(node, partner), per_stream_bytes * g,
                    self._cap(node, cap_scale), weight=g))
            latency = spec.inter_node_latency_s + \
                self._exposed_s(per_stream_bytes, min_cap)
            return SchedulePhase(name, tuple(flows), latency_s=latency)

        # Recursive-halving reduce-scatter: round k exchanges the half
        # of the currently owned range, so per-stream bytes halve each
        # round: S/g / 2, S/g / 4, ...
        for k in range(rounds):
            phases.append(exchange(f"rs-round{k}", k,
                                   shard / (1 << (k + 1))))
        # Recursive-doubling all-gather mirrors the sizes in reverse.
        for k in reversed(range(rounds)):
            phases.append(exchange(f"ag-round{k}", k,
                                   shard / (1 << (k + 1))))

        intra_ag = self._intra_phase("intra-ag", size_bytes,
                                     sync_after=False)
        if intra_ag is not None:
            phases[-1] = dataclasses.replace(
                phases[-1], latency_s=phases[-1].latency_s + PHASE_SYNC_S)
            phases.append(intra_ag)
        return phases

    def _multi_tree(self, size_bytes: float,
                    cap_scale: float) -> list[SchedulePhase]:
        """Packed star trees: chunk ``c`` reduces at (and re-broadcasts
        from) node ``c``; all ``m`` trees run concurrently."""
        cluster = self.cluster
        m = cluster.num_nodes
        g = cluster.spec.gpus_per_node
        spec = cluster.spec
        shard = size_bytes / g
        chunk = shard / m  # per-stream payload of one (node, root) edge
        phases: list[SchedulePhase] = []
        intra_rs = self._intra_phase("intra-rs", size_bytes,
                                     sync_after=True)
        if intra_rs is not None:
            phases.append(intra_rs)

        min_cap = self._min_cap(cap_scale)

        def star(name: str, toward_roots: bool) -> SchedulePhase:
            flows = []
            for node in range(m):
                for root in range(m):
                    if root == node:
                        continue
                    src, dst = (node, root) if toward_roots \
                        else (root, node)
                    flows.append(FlowSpec(
                        self._hop(src, dst), chunk * g,
                        self._cap(src, cap_scale), weight=g))
            latency = spec.inter_node_latency_s + \
                self._exposed_s(chunk, min_cap)
            return SchedulePhase(name, tuple(flows), latency_s=latency)

        phases.append(star("tree-reduce", toward_roots=True))
        last = star("tree-broadcast", toward_roots=False)
        intra_ag = self._intra_phase("intra-ag", size_bytes,
                                     sync_after=False)
        if intra_ag is not None:
            last = dataclasses.replace(
                last, latency_s=last.latency_s + PHASE_SYNC_S)
        phases.append(last)
        if intra_ag is not None:
            phases.append(intra_ag)
        return phases

    def _ina(self, size_bytes: float,
             cap_scale: float) -> list[SchedulePhase]:
        """In-network aggregation: one uplink copy, one multicast copy."""
        cluster = self.cluster
        m = cluster.num_nodes
        g = cluster.spec.gpus_per_node
        spec = cluster.spec
        phases: list[SchedulePhase] = []
        intra_rs = self._intra_phase("intra-rs", size_bytes,
                                     sync_after=True)
        if intra_rs is not None:
            phases.append(intra_rs)

        min_cap = self._min_cap(cap_scale)
        per_stream = size_bytes / g
        up = tuple(FlowSpec(self._uplink(node), size_bytes,
                            self._cap(node, cap_scale), weight=g)
                   for node in range(m))
        phases.append(SchedulePhase(
            "ina-up", up,
            latency_s=spec.inter_node_latency_s
            + self._exposed_s(per_stream, min_cap)
            + INA_SWITCH_LATENCY_S))

        # Multicast down: the aggregated result crosses the spine once
        # (replication happens at the switch egress), then fans out over
        # every node's NIC-in concurrently.
        down: list[FlowSpec] = []
        if cluster.core is not None:
            down.append(FlowSpec((cluster.core,), size_bytes, None))
        down.extend(FlowSpec((cluster.nic_in[node],), size_bytes,
                             self._cap(node, cap_scale), weight=g)
                    for node in range(m))
        latency = spec.inter_node_latency_s + \
            self._exposed_s(per_stream, min_cap)
        intra_ag = self._intra_phase("intra-ag", size_bytes,
                                     sync_after=False)
        if intra_ag is not None:
            latency += PHASE_SYNC_S
        phases.append(SchedulePhase("ina-down", tuple(down),
                                    latency_s=latency))
        if intra_ag is not None:
            phases.append(intra_ag)
        return phases


def _is_power_of_two(value: int) -> bool:
    return value >= 1 and (value & (value - 1)) == 0


# --------------------------------------------------------------------------
# Numeric face
# --------------------------------------------------------------------------

def halving_doubling_allreduce_worker(
    sim: Simulator,
    comm: Communicator,
    rank: int,
    data: np.ndarray,
    op: ReduceOp = ReduceOp.SUM,
) -> t.Generator:
    """Recursive halving/doubling all-reduce over the simulated MPI layer.

    Requires a power-of-two world size.  Step ``k`` of the
    reduce-scatter pairs rank ``r`` with ``r ^ 2^k`` and exchanges the
    half of the currently owned index range the partner is responsible
    for; the all-gather mirrors the exchanges in reverse.
    """
    n = comm.size
    if data.ndim != 1:
        raise CollectiveError("halving-doubling expects a flat array")
    if n == 1:
        return finalize_op(op, data.copy(), 1)
        yield  # pragma: no cover - makes this a generator
    if not _is_power_of_two(n):
        raise CollectiveError(
            f"halving-doubling requires a power-of-two world size, got {n}"
        )
    work = data.copy()
    bounds = chunk_bounds(len(work), n)
    itemsize = work.itemsize

    def span(lo_chunk: int, hi_chunk: int) -> tuple[int, int]:
        """Element range covered by chunks [lo_chunk, hi_chunk)."""
        return bounds[lo_chunk][0], bounds[hi_chunk - 1][1]

    # Reduce-scatter: the owned chunk range narrows by half per round.
    own_lo, own_hi = 0, n
    rounds = n.bit_length() - 1
    for k in range(rounds):
        stride = 1 << k
        partner = rank ^ stride
        mid = (own_lo + own_hi) // 2
        if rank & stride:
            send_chunks, keep = (own_lo, mid), (mid, own_hi)
        else:
            send_chunks, keep = (mid, own_hi), (own_lo, mid)
        lo, hi = span(*send_chunks)
        comm.send(rank, partner, work[lo:hi].copy(),
                  nbytes=(hi - lo) * itemsize, tag=_TAG_HD + k)
        incoming = yield comm.recv(rank, partner, tag=_TAG_HD + k)
        lo, hi = span(*keep)
        work[lo:hi] = apply_op(op, work[lo:hi], incoming)
        own_lo, own_hi = keep

    # All-gather: mirror the exchanges, widening the owned range.
    for k in reversed(range(rounds)):
        stride = 1 << k
        partner = rank ^ stride
        lo, hi = span(own_lo, own_hi)
        comm.send(rank, partner, work[lo:hi].copy(),
                  nbytes=(hi - lo) * itemsize, tag=_TAG_HD + rounds + k)
        incoming = yield comm.recv(rank, partner,
                                   tag=_TAG_HD + rounds + k)
        if rank & stride:
            other = (own_lo - (own_hi - own_lo), own_lo)
        else:
            other = (own_hi, own_hi + (own_hi - own_lo))
        lo, hi = span(*other)
        work[lo:hi] = incoming
        own_lo, own_hi = min(own_lo, other[0]), max(own_hi, other[1])

    return finalize_op(op, work, n)


def multi_tree_allreduce_worker(
    sim: Simulator,
    comm: Communicator,
    rank: int,
    data: np.ndarray,
    op: ReduceOp = ReduceOp.SUM,
) -> t.Generator:
    """Packed star trees: chunk ``c`` reduces at rank ``c``, then
    re-broadcasts.  Contributions are applied in ascending sender order
    so the association order is rank-deterministic."""
    n = comm.size
    if data.ndim != 1:
        raise CollectiveError("multi-tree expects a flat array")
    if n == 1:
        return finalize_op(op, data.copy(), 1)
        yield  # pragma: no cover - makes this a generator
    work = data.copy()
    bounds = chunk_bounds(len(work), n)
    itemsize = work.itemsize

    # Phase 1: every rank sends chunk c to its root c.
    for root in range(n):
        if root == rank:
            continue
        lo, hi = bounds[root]
        if hi > lo:
            comm.send(rank, root, work[lo:hi].copy(),
                      nbytes=(hi - lo) * itemsize, tag=_TAG_MT + rank)
    lo, hi = bounds[rank]
    if hi > lo:
        for sender in range(n):
            if sender == rank:
                continue
            incoming = yield comm.recv(rank, sender, tag=_TAG_MT + sender)
            work[lo:hi] = apply_op(op, work[lo:hi], incoming)

    # Phase 2: each root broadcasts its reduced chunk.
    if hi > lo:
        for target in range(n):
            if target == rank:
                continue
            comm.send(rank, target, work[lo:hi].copy(),
                      nbytes=(hi - lo) * itemsize, tag=_TAG_MT + n + rank)
    for root in range(n):
        if root == rank:
            continue
        rlo, rhi = bounds[root]
        if rhi > rlo:
            work[rlo:rhi] = yield comm.recv(rank, root,
                                            tag=_TAG_MT + n + root)

    return finalize_op(op, work, n)


def ina_allreduce(arrays: t.Sequence[np.ndarray],
                  op: ReduceOp = ReduceOp.SUM) -> list[np.ndarray]:
    """Numeric model of in-network aggregation.

    The aggregator is fabric hardware, not a worker process: it folds
    the contributions in ascending rank order (the deterministic order
    the FPGA pipeline sees them on its ports) and multicasts one result.
    """
    if not arrays:
        raise CollectiveError("ina_allreduce requires at least one array")
    shapes = {a.shape for a in arrays}
    if len(shapes) != 1:
        raise CollectiveError(f"workers disagree on shape: {shapes}")
    accumulator = arrays[0].copy()
    for incoming in arrays[1:]:
        accumulator = apply_op(op, accumulator, incoming)
    reduced = finalize_op(op, accumulator, len(arrays))
    return [reduced.copy() for _ in arrays]


def _run_numeric(worker: t.Callable[..., t.Generator],
                 arrays: t.Sequence[np.ndarray],
                 op: ReduceOp) -> list[np.ndarray]:
    if not arrays:
        raise CollectiveError("all-reduce requires at least one array")
    shapes = {a.shape for a in arrays}
    if len(shapes) != 1:
        raise CollectiveError(f"workers disagree on shape: {shapes}")
    sim = Simulator()
    comm = Communicator(sim, size=len(arrays))
    processes = [
        sim.spawn(worker(sim, comm, rank, array, op=op),
                  name=f"planned.r{rank}")
        for rank, array in enumerate(arrays)
    ]
    return [t.cast(np.ndarray, r) for r in run_workers(sim, processes)]


def halving_doubling_allreduce(arrays: t.Sequence[np.ndarray],
                               op: ReduceOp = ReduceOp.SUM
                               ) -> list[np.ndarray]:
    """Run a complete halving-doubling all-reduce (numeric face)."""
    return _run_numeric(halving_doubling_allreduce_worker, arrays, op)


def multi_tree_allreduce(arrays: t.Sequence[np.ndarray],
                         op: ReduceOp = ReduceOp.SUM) -> list[np.ndarray]:
    """Run a complete multi-tree all-reduce (numeric face)."""
    return _run_numeric(multi_tree_allreduce_worker, arrays, op)


def planned_numeric_allreduce(algorithm: str,
                              arrays: t.Sequence[np.ndarray],
                              op: ReduceOp = ReduceOp.SUM
                              ) -> list[np.ndarray]:
    """Numeric execution of a planner algorithm's data movement.

    Non-power-of-two world sizes fall back to the ring for
    halving-doubling — mirroring :meth:`CollectivePlanner.
    supported_algorithms`, which excludes it on such shapes.
    """
    if algorithm == "halving-doubling":
        if _is_power_of_two(len(arrays)):
            return halving_doubling_allreduce(arrays, op=op)
        raise CollectiveError(
            "halving-doubling numeric face requires a power-of-two "
            f"world size, got {len(arrays)}"
        )
    if algorithm == "multi-tree":
        return multi_tree_allreduce(arrays, op=op)
    if algorithm == "ina":
        return ina_allreduce(arrays, op=op)
    raise CollectiveError(
        f"unknown planner algorithm {algorithm!r}; "
        f"expected one of {PLANNER_ALGORITHMS}"
    )


__all__ = [
    "PLANNER_ALGORITHMS",
    "PHASE_SYNC_S",
    "INA_SWITCH_LATENCY_S",
    "CollectivePlanner",
    "CollectiveSchedule",
    "FlowSpec",
    "SchedulePhase",
    "halving_doubling_allreduce",
    "halving_doubling_allreduce_worker",
    "ina_allreduce",
    "multi_tree_allreduce",
    "multi_tree_allreduce_worker",
    "planned_numeric_allreduce",
]
