"""Timed collective execution over the simulated network.

This is the bridge between the collective algorithms and the fluid network
model.  A timed all-reduce creates the flows its algorithm would place on
the cluster links (each flow is one transport stream, subject to the
per-stream rate cap) and completes when the slowest flow drains plus the
α/pipeline-fill latency of the ring schedule.

Symmetric clusters run in **representative mode**: only node 0's NIC pair
and NVLink fabric are simulated.  By symmetry every other NIC would carry
exactly the same flow set at exactly the same rates, so the representative
rates — and therefore all completion times — are exact while the event
count drops by a factor of ``num_nodes``.
"""

from __future__ import annotations

import typing as t

from repro.errors import CollectiveError
from repro.collectives.cost_model import ring_volume_bytes
from repro.collectives.planner import PLANNER_ALGORITHMS, CollectivePlanner
from repro.obs import NETWORK_RANK, Observability
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.network import FluidNetwork, Link
from repro.sim.topology import Cluster
from repro.sim.tracing import Trace

#: Supported all-reduce algorithm names: the two legacy hard-coded
#: schedules (paper Section V-B) plus the topology-synthesized planner
#: backends (halving-doubling, multi-tree, in-network aggregation).
ALGORITHMS = ("ring", "hierarchical") + PLANNER_ALGORITHMS

#: Minimum same-instant flow fan-out before a collective inserts its
#: flows through the batched :meth:`~repro.sim.network.FluidNetwork.
#: start_flows` path (one rate reallocation for the whole batch) instead
#: of one :meth:`start_flow` call per flow.  Batching preserves every
#: simulated completion time but thins the event schedule (superseded
#: intermediate wakeups are elided), so it is gated to the scale where
#: the churn actually hurts: a full-link ring at >= 8 nodes fans out
#: >= 16 flows per unit.  Every config whose replay digest is pinned by
#: ``tests/sim/golden_digests.json`` (2–32 ranks, <= 4 nodes full-link,
#: or representative mode's 2 flows) stays on the per-flow path and
#: keeps its pre-optimisation event schedule bit-for-bit.
AGGREGATE_MIN_FLOWS = 16

#: Node count from which the hierarchical algorithm bundles the ``g``
#: parallel inter-node rings of one hop into a single weighted flow
#: (``weight=g``: g fair shares, per-stream cap, g× the bytes).  The g
#: rings share identical rate trajectories by symmetry, so the bundle
#: completes at the same instant up to float rounding; small clusters
#: keep per-ring flows so their event schedules stay bit-identical to
#: the pre-aggregation kernel.
WEIGHTED_RING_MIN_NODES = 16

#: Node count from which a symmetric same-instant fan-out (one identical
#: flow per node pair on pairwise-disjoint links) enters the fluid
#: network as a single bundled :class:`~repro.sim.network.GroupFlow`
#: solver entity per uniform run, via :meth:`~repro.sim.network.
#: FluidNetwork.start_flow_group`.  Bundling is *exact* — a bundled
#: member's links carry nothing but aligned bundle members, so the
#: representative's rate trajectory is every member's — but it thins the
#: event schedule (one completion event and one wakeup stream per run
#: instead of per flow), so like ``AGGREGATE_MIN_FLOWS`` it is gated far
#: above every pinned golden-digest config (<= 32 ranks / 4 nodes).
#: This is the lever that takes 1024–4096-rank steps from thousands of
#: flow objects per step to a couple dozen solver entities.
RING_BUNDLE_MIN_NODES = 64

#: Device-wide synchronization between the hierarchical algorithm's three
#: phases.  Every GPU of a node must finish phase k before phase k+1 may
#: launch; under backward-pass SM occupancy this event sync costs about a
#: millisecond — the overhead that makes the auto-tuner prefer the flat
#: ring on healthy networks (paper §VIII-D) while the hierarchical
#: algorithm still wins on congested links, where its bandwidth shape
#: matters more.
HIERARCHICAL_PHASE_SYNC_S = 2e-3


class _WirePlan:
    """Cached launch skeleton for the node-level ring's wire fan-out.

    The flat ring and the half-ring primitives place the identical flow
    pattern every launch — one NIC hop per node plus the NVLink fabrics
    — and the pattern depends only on the (immutable) topology and the
    static per-node stream caps.  Building it per call costs O(nodes)
    Python work per collective unit, which at 1024–4096 ranks dominates
    the simulated step; this plan is built once per collectives
    instance instead.  ``mode`` records the launch path decided by the
    same thresholds the per-call path applied: ``"flow"`` (per-flow
    insertion — every golden-digest config), ``"batch"`` (one batched
    allocator pass), or ``"bundle"`` (one solver entity per uniform run
    via cached :class:`~repro.sim.network.FlowBundle` handles).  Caps
    are stored unscaled; launches multiply by their ``cap_scale``.
    """

    __slots__ = ("mode", "specs", "entries", "slowest_base")

    def __init__(self, mode: str,
                 specs: list[tuple[list[Link], float | None, int]],
                 entries: list[tuple[object, float | None, int]] | None,
                 slowest_base: float | None) -> None:
        self.mode = mode
        self.specs = specs
        self.entries = entries
        self.slowest_base = slowest_base


class TimedCollectives:
    """Schedules timed collectives on a cluster.

    Parameters
    ----------
    sim, network, cluster:
        The simulation context.
    representative:
        Force representative mode on (True) / off (False); default:
        automatic — on for symmetric clusters.
    """

    def __init__(self, sim: Simulator, network: FluidNetwork,
                 cluster: Cluster, trace: Trace | None = None,
                 representative: bool | None = None,
                 obs: Observability | None = None) -> None:
        self.sim = sim
        self.network = network
        self.cluster = cluster
        self.trace = trace or Trace(enabled=False)
        #: Tenant identity stamped on every launched flow (the cluster
        #: runtime sets it so shared-fabric fairness and telemetry can
        #: attribute traffic per job; ``None`` = single-job semantics).
        self.job: str | None = None
        #: Observability sink for collective telemetry.
        self.obs = obs or Observability.disabled()
        registry = self.obs.registry
        self._m_allreduce = registry.counter(
            "allreduce_total", "Completed timed all-reduces")
        self._m_allreduce_bytes = registry.histogram(
            "allreduce_bytes", "Payload size of timed all-reduces",
            buckets=(1e6, 4e6, 16e6, 64e6, 256e6, 1e9))
        self._m_allreduce_seconds = registry.histogram(
            "allreduce_seconds", "Wall-clock duration of timed all-reduces",
            buckets=(1e-4, 1e-3, 1e-2, 0.1, 1.0, 10.0))
        if representative is None:
            representative = cluster.is_symmetric
        if representative and not cluster.is_symmetric:
            raise CollectiveError(
                "representative mode requires a symmetric cluster"
            )
        self.representative = representative
        #: Lazily built topology-aware planner (halving-doubling,
        #: multi-tree, ina).  Planner schedules always place the full
        #: link set — their flow patterns are not NIC-symmetric (e.g.
        #: the ina multicast trunk), so representative sampling would
        #: mis-count shared links.
        self._planner: CollectivePlanner | None = None
        #: Lazily built wire-flow launch skeleton (see :class:`_WirePlan`).
        self._wire_cache: _WirePlan | None = None

    # -- public API -------------------------------------------------------

    def _stalled(self, name: str) -> Event | None:
        """A never-firing event when a participating node is dead.

        Real NCCL collectives do not error when a ring member dies —
        they hang until an external watchdog fires.  Modelling that
        honestly (instead of raising) is what gives the engine's
        timeout-based failure detector something real to detect.
        Returns ``None`` when every node is alive.
        """
        if not self.cluster.failed_nodes:
            return None
        self.trace.incr("aiacc.faults.stalled_collectives")
        return self.sim.event(name=f"{name}.stalled")

    def allreduce(self, size_bytes: float, algorithm: str = "ring",
                  cap_scale: float = 1.0) -> Event:
        """Start a timed all-reduce of ``size_bytes`` across all workers.

        Parameters
        ----------
        algorithm:
            ``"ring"`` — flat topology-aware ring over all GPUs;
            ``"hierarchical"`` — intra-node reduce-scatter, ``g`` parallel
            inter-node rings, intra-node all-gather;
            ``"halving-doubling"`` / ``"multi-tree"`` / ``"ina"`` —
            planner-synthesized schedules (see
            :mod:`repro.collectives.planner`).
        cap_scale:
            Multiplier on the transport's per-stream rate cap.  1.0 models
            a well-tuned stack (Horovod's documented NCCL socket tuning);
            PyTorch-DDP v1.10 shipped with NCCL's default socket
            configuration and reaches a lower single-stream ceiling, which
            its backend models with ``cap_scale < 1``.

        Returns an event triggering at completion; its value is the
        duration in seconds.
        """
        if algorithm not in ALGORITHMS:
            raise CollectiveError(
                f"unknown all-reduce algorithm {algorithm!r}; "
                f"expected one of {ALGORITHMS}"
            )
        if size_bytes < 0:
            raise CollectiveError("size_bytes must be non-negative")
        if not 0 < cap_scale <= 1:
            raise CollectiveError("cap_scale must be in (0, 1]")
        stalled = self._stalled(f"allreduce.{algorithm}")
        if stalled is not None:
            return stalled
        start = self.sim.now
        if size_bytes == 0 or self.cluster.world_size == 1:
            # Degenerate all-reduce: nothing crosses any link.  Complete
            # at zero cost rather than launching empty flows (which would
            # still pay link latencies and α terms).
            inner = self.sim.timeout(0.0)
        elif algorithm == "ring":
            inner = self._ring(size_bytes, cap_scale)
        elif algorithm == "hierarchical":
            inner = self._hierarchical(size_bytes, cap_scale)
        else:
            inner = self._planned(algorithm, size_bytes, cap_scale)

        done = self.sim.event(name=f"allreduce.{algorithm}")

        def _finish(_ev: Event) -> None:
            duration = self.sim.now - start
            self.trace.add_span("allreduce", start, self.sim.now,
                                bytes=size_bytes, algorithm=algorithm)
            self.trace.incr("allreduce.count")
            self.trace.incr("allreduce.bytes", size_bytes)
            self._m_allreduce.inc(algorithm=algorithm)
            self._m_allreduce_bytes.observe(size_bytes,
                                            algorithm=algorithm)
            self._m_allreduce_seconds.observe(duration,
                                              algorithm=algorithm)
            done.succeed(duration)

        inner.add_callback(_finish)
        return done

    def control_roundtrip(self, payload_bytes: float = 64.0) -> Event:
        """A decentralized control-plane ring pass (readiness bit vector).

        AIACC's gradient synchronization all-reduces an ``n``-bit vector
        among the MPI daemons (paper Fig. 8b).  The payload is tiny, so the
        cost is pure latency: ``2 (m - 1)`` inter-node hops.
        """
        stalled = self._stalled("control_roundtrip")
        if stalled is not None:
            return stalled
        m = self.cluster.num_nodes
        spec = self.cluster.spec
        if m == 1:
            delay = 2 * max(spec.gpus_per_node - 1, 1) * \
                spec.intra_node_latency_s
        else:
            per_hop = spec.inter_node_latency_s + \
                spec.transport.per_message_overhead_s
            delay = 2 * (m - 1) * per_hop
            delay += payload_bytes * 8.0 * 2 * (m - 1) / \
                self.cluster.stream_cap_bps()
        return self.sim.timeout(delay)

    def broadcast(self, size_bytes: float) -> Event:
        """Timed pipelined broadcast from rank 0 to all workers."""
        stalled = self._stalled("broadcast")
        if stalled is not None:
            return stalled
        if size_bytes <= 0 or self.cluster.world_size == 1:
            # Nothing to move (or nobody to move it to): zero-cost, no
            # flows — a single-worker "broadcast" is a no-op, not an
            # NVLink transfer of the full payload to itself.
            return self.sim.timeout(0.0)
        m = self.cluster.num_nodes
        if m == 1:
            flow = self.network.start_flow(
                [self.cluster.nvlink[0]], size_bytes)
            return flow
        flows = [self.network.start_flow(
            hop, size_bytes,
            rate_cap_bps=self.cluster.stream_cap_bps(src_node))
            for src_node, hop in self._nic_hops()]
        return self.sim.all_of(flows)

    def alltoall(self, size_bytes: float) -> Event:
        """Timed all-to-all: each worker exchanges ``size_bytes`` split
        evenly across all ``n`` workers (staggered-partner schedule).

        Returns an event triggering at completion.
        """
        stalled = self._stalled("alltoall")
        if stalled is not None:
            return stalled
        n = self.cluster.world_size
        if size_bytes <= 0 or n == 1:
            return self.sim.timeout(0.0)
        m = self.cluster.num_nodes
        g = self.cluster.spec.gpus_per_node
        spec = self.cluster.spec
        specs: list[tuple[list[Link], float, float | None, int]] = []
        # Bytes leaving node i for other nodes: g senders x (n - g)/n of
        # their payload each.
        if m > 1:
            inter_bytes = g * size_bytes * (n - g) / n
            for src_node, hop in self._nic_hops():
                cap = self.cluster.stream_cap_bps(src_node)
                specs.append((hop, inter_bytes, cap, g))
            alpha = (n - 1) * spec.inter_node_latency_s
        else:
            alpha = (n - 1) * spec.intra_node_latency_s
        if g > 1:
            intra_bytes = g * size_bytes * (g - 1) / n
            for fabric in self._nvlink_fabrics():
                specs.append(([fabric], intra_bytes, None, 1))
        if not specs:
            return self.sim.timeout(alpha)
        done = self.sim.all_of(self._launch(specs, label="alltoall"))
        return self._after(done, alpha)

    def reduce_scatter(self, size_bytes: float) -> Event:
        """Timed ring reduce-scatter of ``size_bytes`` (half a ring
        all-reduce: ``n - 1`` steps, ``S (n-1)/n`` bytes per hop)."""
        return self._half_ring("reduce_scatter", size_bytes)

    def allgather(self, size_bytes: float) -> Event:
        """Timed ring all-gather of ``size_bytes`` (the other half)."""
        return self._half_ring("allgather", size_bytes)

    def _half_ring(self, name: str, size_bytes: float) -> Event:
        stalled = self._stalled(name)
        if stalled is not None:
            return stalled
        n = self.cluster.world_size
        if size_bytes <= 0 or n == 1:
            return self.sim.timeout(0.0)
        m = self.cluster.num_nodes
        spec = self.cluster.spec
        hop_bytes = ring_volume_bytes(size_bytes, n) / 2.0
        if m > 1:
            alpha = (n - 1) * spec.inter_node_latency_s
        else:
            alpha = (n - 1) * spec.intra_node_latency_s
        done = self.sim.all_of(
            self._launch_wire(self._wire_plan(), hop_bytes, 1.0, name))
        return self._after(done, alpha)

    # -- algorithm schedules -------------------------------------------------

    def _nic_hops(self) -> list[tuple[int, list[Link]]]:
        """Directed inter-node NIC hops of the node-level ring.

        Returns ``(source_node, links)`` pairs; the source node determines
        the per-stream rate cap (a congested node's NIC caps lower).
        """
        m = self.cluster.num_nodes
        if self.representative:
            return [(0, self.cluster.representative_hop())]
        core = [self.cluster.core] if self.cluster.core is not None else []
        return [
            (i, [self.cluster.nic_out[i], *core,
                 self.cluster.nic_in[(i + 1) % m]])
            for i in range(m)
        ]

    def _nvlink_fabrics(self) -> list[Link]:
        if self.representative:
            return [self.cluster.nvlink[0]]
        return list(self.cluster.nvlink)

    def _launch(self, specs: t.Sequence[tuple[t.Sequence[Link], float,
                                              float | None, int]],
                label: str | None = None) -> list[Event]:
        """Start one flow per ``(links, bytes, cap, weight)`` spec.

        Large fan-outs go through the batched allocator path; small ones
        keep per-flow insertion (see ``AGGREGATE_MIN_FLOWS``).  ``label``
        stamps every launched flow with its algorithm for telemetry.
        """
        network = self.network
        previous = network.flow_label
        previous_job = network.flow_job
        if label is not None:
            network.flow_label = label
        if self.job is not None:
            network.flow_job = self.job
        try:
            if len(specs) >= AGGREGATE_MIN_FLOWS:
                runs = self._uniform_runs(specs)
                if runs is not None:
                    return [network.start_flow_group(members, size_bytes,
                                                     rate_cap_bps=cap,
                                                     weight=weight)
                            for members, size_bytes, cap, weight in runs]
                return network.start_flows(specs)
            return [network.start_flow(links, size_bytes,
                                       rate_cap_bps=cap, weight=weight)
                    for links, size_bytes, cap, weight in specs]
        finally:
            network.flow_label = previous
            network.flow_job = previous_job

    @staticmethod
    def _uniform_runs(specs: t.Sequence[tuple[t.Sequence[Link], float,
                                              float | None, int]]
                      ) -> list[tuple[list[t.Sequence[Link]], float,
                                      float | None, int]] | None:
        """Partition a launch into bundleable uniform runs, or ``None``.

        A *run* is a maximal stretch of consecutive specs sharing
        (bytes, cap, weight) — e.g. a ring launch is one run of NIC hops
        followed by one run of NVLink fabrics.  Bundling applies only
        when **every** run reaches ``RING_BUNDLE_MIN_NODES`` members:
        mixing bundles with loose flows in one launch would land the
        loose flows on freshly claimed links and split the bundles right
        back apart.  Link-level exactness (disjointness, identical
        capacity profiles, unoccupied links) is re-checked per run by
        :meth:`~repro.sim.network.FluidNetwork.start_flow_group`, which
        falls back to per-member flows when it does not hold.
        """
        runs: list[tuple[list[t.Sequence[Link]], float,
                         float | None, int]] = []
        for links, size_bytes, cap, weight in specs:
            if runs and runs[-1][1:] == (size_bytes, cap, weight):
                runs[-1][0].append(links)
            else:
                runs.append(([links], size_bytes, cap, weight))
        if all(len(members) >= RING_BUNDLE_MIN_NODES
               for members, _size, _cap, _weight in runs):
            return runs
        return None

    def _wire_plan(self) -> _WirePlan:
        """Build (once) the launch skeleton for ring/half-ring wire flows.

        Safe to cache for the instance lifetime: hop structure and
        NVLink fabrics are fixed by the topology, and per-node stream
        caps come from the static cluster spec and build-time congestion
        map — runtime capacity degradation (``set_link_capacity``) does
        not alter them, it only breaks bundle exactness, which the
        cached :class:`~repro.sim.network.FlowBundle` handles re-check
        through their claim channels on every launch.
        """
        plan = self._wire_cache
        if plan is not None:
            return plan
        cluster = self.cluster
        m = cluster.num_nodes
        spec = cluster.spec
        specs: list[tuple[list[Link], float | None, int]] = []
        slowest_base: float | None = None
        if m > 1:
            hops = self._nic_hops()
            slowest_base = min(cluster.stream_cap_bps(src_node)
                               for src_node, _hop in hops)
            for src_node, hop in hops:
                specs.append((hop, cluster.stream_cap_bps(src_node), 1))
            if spec.gpus_per_node > 1:
                for fabric in self._nvlink_fabrics():
                    specs.append(([fabric], None, 1))
        else:
            for fabric in self._nvlink_fabrics():
                specs.append(([fabric], None, 1))
        mode = "flow"
        entries: list[tuple[object, float | None, int]] | None = None
        if len(specs) >= AGGREGATE_MIN_FLOWS:
            mode = "batch"
            runs: list[tuple[list[list[Link]], float | None, int]] = []
            for links, cap, weight in specs:
                if runs and runs[-1][1:] == (cap, weight):
                    runs[-1][0].append(links)
                else:
                    runs.append(([links], cap, weight))
            if all(len(members) >= RING_BUNDLE_MIN_NODES
                   for members, _cap, _weight in runs):
                handles = [(self.network.bundle(members), cap, weight)
                           for members, cap, weight in runs]
                if all(handle is not None
                       for handle, _cap, _weight in handles):
                    mode = "bundle"
                    entries = handles
        plan = _WirePlan(mode, specs, entries, slowest_base)
        self._wire_cache = plan
        return plan

    def _launch_wire(self, plan: _WirePlan, hop_bytes: float,
                     cap_scale: float, label: str) -> list[Event]:
        """Launch one ``hop_bytes`` transfer per wire-plan spec.

        Identical flow set and launch order as building the spec list
        per call (NIC hops in node order, then NVLink fabrics), with the
        plan's unscaled caps multiplied by ``cap_scale``; only the
        per-call Python work is elided.
        """
        network = self.network
        previous = network.flow_label
        previous_job = network.flow_job
        network.flow_label = label
        if self.job is not None:
            network.flow_job = self.job
        try:
            if plan.mode == "bundle":
                assert plan.entries is not None
                return [network.start_flow_group(
                            handle, hop_bytes,
                            rate_cap_bps=(None if base is None
                                          else base * cap_scale),
                            weight=weight)
                        for handle, base, weight in plan.entries]
            if plan.mode == "batch":
                return network.start_flows(
                    [(links, hop_bytes,
                      None if base is None else base * cap_scale, weight)
                     for links, base, weight in plan.specs])
            return [network.start_flow(
                        links, hop_bytes,
                        rate_cap_bps=(None if base is None
                                      else base * cap_scale),
                        weight=weight)
                    for links, base, weight in plan.specs]
        finally:
            network.flow_label = previous
            network.flow_job = previous_job

    def _slowest_stream_cap_bps(self, hops: t.Sequence[tuple[int, t.Any]],
                                cap_scale: float) -> float:
        """Per-stream cap of the slowest hop in a schedule.

        Exposed per-chunk overhead must be computed against the slowest
        NIC on the ring's path: the pipeline advances at the pace of its
        most constrained hop, so on clusters with heterogeneous NIC caps
        the default node's cap underestimates chunk wire time.  On
        symmetric clusters every cap is the identical float, so the min
        changes nothing (replay digests included).
        """
        return min(self.cluster.stream_cap_bps(src_node)
                   for src_node, _hop in hops) * cap_scale

    def _ring(self, size_bytes: float, cap_scale: float = 1.0) -> Event:
        """Flat topology-aware ring across all ``n`` GPUs."""
        n = self.cluster.world_size
        m = self.cluster.num_nodes
        spec = self.cluster.spec
        if n == 1:
            return self.sim.timeout(0.0)
        hop_bytes = ring_volume_bytes(size_bytes, n)
        steps = 2 * (n - 1)
        plan = self._wire_plan()

        if m > 1:
            # Per-chunk software overhead is pipelined behind chunk
            # transmission: only the part exceeding the chunk's wire time
            # is exposed on the critical path.  Small units at large n
            # (tiny chunks) therefore pay the overhead; big fusion
            # buffers hide it.  The wire time is set by the slowest hop
            # of the ring, not the default node's NIC.
            slowest = plan.slowest_base * cap_scale
            chunk_tx = (size_bytes / n) * 8.0 / slowest
            exposed = max(0.0,
                          spec.transport.per_message_overhead_s - chunk_tx)
            alpha = steps * exposed
            fill = m * spec.inter_node_latency_s + \
                (n - m) * spec.intra_node_latency_s
        else:
            alpha = steps * spec.intra_node_latency_s
            fill = 0.0

        all_flows = self.sim.all_of(
            self._launch_wire(plan, hop_bytes, cap_scale, "ring"))
        return self._after(all_flows, alpha + fill)

    def _hierarchical(self, size_bytes: float,
                      cap_scale: float = 1.0) -> Event:
        """Intra-node RS, g parallel inter-node rings, intra-node AG."""
        m = self.cluster.num_nodes
        g = self.cluster.spec.gpus_per_node
        if m == 1 or g == 1:
            return self._ring(size_bytes, cap_scale)
        spec = self.cluster.spec

        def schedule() -> t.Generator:
            # Phase 1: intra-node reduce-scatter.
            rs_bytes = size_bytes * (g - 1) / g
            yield self.sim.all_of(self._launch([
                ([fabric], rs_bytes, None, 1)
                for fabric in self._nvlink_fabrics()
            ], label="hierarchical"))
            yield self.sim.timeout((g - 1) * spec.intra_node_latency_s
                                   + HIERARCHICAL_PHASE_SYNC_S)

            # Phase 2: g parallel inter-node rings on 1/g shards.  The g
            # rings of one hop are symmetric clones (same links, same
            # cap) — at scale they collapse into one weighted flow.
            shard_hop = ring_volume_bytes(size_bytes / g, m)
            bundle = m >= WEIGHTED_RING_MIN_NODES
            hops = self._nic_hops()
            specs: list[tuple[list[Link], float, float | None, int]] = []
            for src_node, hop in hops:
                cap = self.cluster.stream_cap_bps(src_node) * cap_scale
                if bundle:
                    specs.append((hop, shard_hop * g, cap, g))
                else:
                    specs.extend((hop, shard_hop, cap, 1)
                                 for _local in range(g))
            yield self.sim.all_of(self._launch(specs,
                                               label="hierarchical"))
            # Exposed overhead is paced by the slowest hop of the
            # inter-node rings (see _slowest_stream_cap_bps).
            shard_chunk_tx = (size_bytes / g / m) * 8.0 / \
                self._slowest_stream_cap_bps(hops, cap_scale)
            exposed = max(0.0, spec.transport.per_message_overhead_s
                          - shard_chunk_tx)
            yield self.sim.timeout(
                2 * (m - 1) * (spec.inter_node_latency_s + exposed)
                + HIERARCHICAL_PHASE_SYNC_S)

            # Phase 3: intra-node all-gather.
            ag_bytes = size_bytes * (g - 1) / g
            yield self.sim.all_of(self._launch([
                ([fabric], ag_bytes, None, 1)
                for fabric in self._nvlink_fabrics()
            ], label="hierarchical"))
            yield self.sim.timeout((g - 1) * spec.intra_node_latency_s)

        return self.sim.spawn(schedule(), name="hier.allreduce")

    def _planned(self, algorithm: str, size_bytes: float,
                 cap_scale: float) -> Event:
        """Execute a planner-synthesized schedule phase by phase."""
        planner = self._planner
        if planner is None:
            planner = self._planner = CollectivePlanner(self.cluster)
        schedule = planner.plan(algorithm, size_bytes, cap_scale)
        if not schedule.phases:
            return self.sim.timeout(0.0)
        timeline = self.obs.timeline

        def run() -> t.Generator:
            for phase in schedule.phases:
                phase_start = self.sim.now
                specs = [flow.as_request() for flow in phase.flows
                         if flow.size_bytes > 0]
                if specs:
                    yield self.sim.all_of(
                        self._launch(specs, label=algorithm))
                if phase.latency_s > 0:
                    yield self.sim.timeout(phase.latency_s)
                timeline.span(
                    f"collective.{phase.name}", "collective",
                    NETWORK_RANK, phase_start, self.sim.now,
                    algorithm=algorithm, bytes=size_bytes)

        return self.sim.spawn(run(), name=f"planned.{algorithm}")

    def _after(self, event: Event, extra_delay_s: float) -> Event:
        """An event firing ``extra_delay_s`` after ``event`` triggers."""
        done = self.sim.event(name="after")

        def _chain(_ev: Event) -> None:
            self.sim._schedule_at(self.sim.now + extra_delay_s, done, None)

        event.add_callback(_chain)
        return done
