"""Numeric reduce-scatter and all-gather.

These are the two halves of the ring all-reduce (paper Fig. 1a/1b),
exposed separately because AIACC-Training "utilizes and extends the
collective communication primitives (like all-reduce, broadcast, and
scatter)" (Section V-B) and the hybrid-parallelism path uses them
directly.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import CollectiveError
from repro.collectives.primitives import (
    ReduceOp,
    apply_op,
    chunk_bounds,
    finalize_op,
)
from repro.collectives.runner import run_workers
from repro.sim.kernel import Simulator
from repro.sim.mpi import Communicator

_TAG_RS = 6 << 20
_TAG_AG = 7 << 20


def reduce_scatter_worker(
    sim: Simulator,
    comm: Communicator,
    rank: int,
    data: np.ndarray,
    op: ReduceOp = ReduceOp.SUM,
) -> t.Generator:
    """Ring reduce-scatter; returns this worker's fully reduced chunk.

    Worker ``r`` ends up owning chunk ``(r + 1) mod n`` of the reduction —
    the same ownership convention as :mod:`repro.collectives.ring`.
    """
    n = comm.size
    if n == 1:
        return finalize_op(op, data.copy(), 1)
        yield  # pragma: no cover
    work = data.copy()
    bounds = chunk_bounds(len(work), n)
    predecessor, successor = comm.ring_neighbors(rank)
    for step in range(n - 1):
        send_idx = (rank - step) % n
        recv_idx = (rank - step - 1) % n
        lo, hi = bounds[send_idx]
        comm.send(rank, successor, work[lo:hi].copy(),
                  nbytes=(hi - lo) * work.itemsize, tag=_TAG_RS + step)
        incoming = yield comm.recv(rank, predecessor, tag=_TAG_RS + step)
        lo, hi = bounds[recv_idx]
        work[lo:hi] = apply_op(op, work[lo:hi], incoming)
    lo, hi = bounds[(rank + 1) % n]
    return finalize_op(op, work[lo:hi].copy(), n)


def allgather_worker(
    sim: Simulator,
    comm: Communicator,
    rank: int,
    chunk: np.ndarray,
) -> t.Generator:
    """Ring all-gather; returns the list of every worker's chunk, by rank."""
    n = comm.size
    if n == 1:
        return [chunk.copy()]
        yield  # pragma: no cover
    predecessor, successor = comm.ring_neighbors(rank)
    gathered: list[np.ndarray | None] = [None] * n
    gathered[rank] = chunk.copy()
    holding = rank
    for step in range(n - 1):
        payload = gathered[holding]
        comm.send(rank, successor, (holding, payload),
                  nbytes=t.cast(np.ndarray, payload).nbytes + 8,
                  tag=_TAG_AG + step)
        origin, incoming = yield comm.recv(rank, predecessor,
                                           tag=_TAG_AG + step)
        gathered[origin] = incoming
        holding = origin
    if any(part is None for part in gathered):
        raise CollectiveError("all-gather finished with missing chunks")
    return t.cast(list, gathered)


def reduce_scatter(arrays: t.Sequence[np.ndarray],
                   op: ReduceOp = ReduceOp.SUM) -> list[np.ndarray]:
    """Run a ring reduce-scatter; returns each worker's owned chunk."""
    if not arrays:
        raise CollectiveError("reduce_scatter requires at least one array")
    sim = Simulator()
    comm = Communicator(sim, size=len(arrays))
    processes = [
        sim.spawn(reduce_scatter_worker(sim, comm, rank, array, op=op))
        for rank, array in enumerate(arrays)
    ]
    return [t.cast(np.ndarray, r) for r in run_workers(sim, processes)]


def allgather(chunks: t.Sequence[np.ndarray]) -> list[list[np.ndarray]]:
    """Run a ring all-gather; returns, per worker, all workers' chunks."""
    if not chunks:
        raise CollectiveError("allgather requires at least one chunk")
    sim = Simulator()
    comm = Communicator(sim, size=len(chunks))
    processes = [
        sim.spawn(allgather_worker(sim, comm, rank, chunk))
        for rank, chunk in enumerate(chunks)
    ]
    return [t.cast(list, r) for r in run_workers(sim, processes)]
