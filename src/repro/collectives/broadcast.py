"""Numeric broadcast (ring pipeline).

Used by AIACC-Training's elastic deployment to propagate the model
parameters to newly joined workers (paper Section IV) and by the examples.
The root splits the data into chunks and pipelines them around the ring,
which is bandwidth-optimal for large tensors.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import CollectiveError
from repro.collectives.primitives import chunk_bounds
from repro.collectives.runner import run_workers
from repro.sim.kernel import Simulator
from repro.sim.mpi import Communicator

_TAG_BCAST = 5 << 20


def broadcast_worker(
    sim: Simulator,
    comm: Communicator,
    rank: int,
    data: np.ndarray | None,
    root: int = 0,
    num_chunks: int | None = None,
) -> t.Generator:
    """Simulated-process generator for a pipelined ring broadcast.

    Non-root workers pass ``data=None`` and receive the root's array.  The
    shape travels with the first chunk, so receivers need no prior
    knowledge.
    """
    n = comm.size
    if rank == root and data is None:
        raise CollectiveError("root must provide data")
    if n == 1:
        return t.cast(np.ndarray, data).copy()
        yield  # pragma: no cover

    chunks = num_chunks or min(8, n)
    successor = (rank + 1) % n
    # Ring distance from root determines what this worker forwards.
    is_tail = (rank - root) % n == n - 1

    if rank == root:
        array = t.cast(np.ndarray, data)
        bounds = chunk_bounds(len(array), chunks)
        header = (array.shape, array.dtype, bounds)
        comm.send(rank, successor, header, nbytes=64, tag=_TAG_BCAST)
        for index, (lo, hi) in enumerate(bounds):
            comm.send(rank, successor, array[lo:hi].copy(),
                      nbytes=(hi - lo) * array.itemsize,
                      tag=_TAG_BCAST + 1 + index)
        return array.copy()

    predecessor = (rank - 1) % n
    header = yield comm.recv(rank, predecessor, tag=_TAG_BCAST)
    shape, dtype, bounds = header
    if not is_tail:
        comm.send(rank, successor, header, nbytes=64, tag=_TAG_BCAST)
    result = np.empty(shape, dtype=dtype)
    for index, (lo, hi) in enumerate(bounds):
        chunk = yield comm.recv(rank, predecessor, tag=_TAG_BCAST + 1 + index)
        result[lo:hi] = chunk
        if not is_tail:
            comm.send(rank, successor, chunk,
                      nbytes=(hi - lo) * result.itemsize,
                      tag=_TAG_BCAST + 1 + index)
    return result


def broadcast(arrays: t.Sequence[np.ndarray | None],
              root: int = 0) -> list[np.ndarray]:
    """Broadcast ``arrays[root]`` to all workers; returns each worker's copy."""
    if not arrays:
        raise CollectiveError("broadcast requires at least one worker slot")
    if not 0 <= root < len(arrays):
        raise CollectiveError(f"root {root} out of range")
    sim = Simulator()
    comm = Communicator(sim, size=len(arrays))
    processes = [
        sim.spawn(broadcast_worker(sim, comm, rank, array, root=root),
                  name=f"bcast.r{rank}")
        for rank, array in enumerate(arrays)
    ]
    return [t.cast(np.ndarray, r) for r in run_workers(sim, processes)]
