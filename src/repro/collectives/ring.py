"""Numeric ring all-reduce (Fig. 1 of the paper).

The ring algorithm runs in two phases over ``n`` workers:

*reduce-scatter* — the data is split into ``n`` chunks; in step ``s`` worker
``r`` sends chunk ``(r - s) mod n`` to its successor and reduces the chunk
``(r - s - 1) mod n`` received from its predecessor.  After ``n - 1`` steps
worker ``r`` holds the fully reduced chunk ``(r + 1) mod n``.

*all-gather* — the reduced chunks circulate for another ``n - 1`` steps so
every worker ends with the complete reduced array.

This implementation exchanges real :mod:`numpy` arrays through the simulated
MPI layer, so its results are bit-for-bit verifiable against the
mathematical reduction — the property-based tests rely on this.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import CollectiveError, ProcessInterrupt
from repro.collectives.primitives import (
    ReduceOp,
    apply_op,
    chunk_bounds,
    finalize_op,
)
from repro.collectives.runner import run_workers
from repro.sim.kernel import Simulator
from repro.sim.mpi import Communicator

#: Tag space: phase * _TAG_STRIDE + step, so concurrent collectives on
#: distinct tag bases never cross-match.
_TAG_STRIDE = 4096


def ring_allreduce_worker(
    sim: Simulator,
    comm: Communicator,
    rank: int,
    data: np.ndarray,
    op: ReduceOp = ReduceOp.SUM,
    tag_base: int = 0,
) -> t.Generator:
    """Simulated-process generator performing one ring all-reduce.

    Returns (via ``StopIteration``) the reduced array; the input array is
    not modified.
    """
    n = comm.size
    if data.ndim != 1:
        raise CollectiveError("ring all-reduce expects a flat array")
    if n == 1:
        return finalize_op(op, data.copy(), 1)
        yield  # pragma: no cover - makes this a generator

    # Dtype is preserved (gradients are float32/float16; the readiness
    # vector is uint8).  AVG callers should pass floating-point data.
    work = data.copy()
    bounds = chunk_bounds(len(work), n)
    predecessor, successor = comm.ring_neighbors(rank)
    itemsize = work.itemsize

    def _recv(tag: int) -> t.Generator:
        # Interrupt-safe receive: an interrupted (e.g. timed-out) worker
        # must withdraw its pending getter, or a later send on the same
        # tag hands its payload to this dead request and the retry round
        # silently loses a message.
        request = comm.recv(rank, predecessor, tag=tag)
        try:
            incoming = yield request
        except ProcessInterrupt:
            comm.cancel_recv(request)
            raise
        return incoming

    # Chunk-count cap: a ring larger than the element count produces
    # empty chunks (``chunk_bounds`` guarantees they only occur when
    # ``n > len(work)``), and shipping them through the MPI layer costs
    # two events per step per rank for a no-op reduction.  Every rank
    # computes the same ``bounds``, so sender and receiver of an empty
    # chunk skip it in lock-step agreement — the message count per phase
    # is capped at ``min(n - 1, len(work))`` per rank while the reduced
    # result stays bit-identical.

    # Phase 1: reduce-scatter.
    for step in range(n - 1):
        send_idx = (rank - step) % n
        recv_idx = (rank - step - 1) % n
        lo, hi = bounds[send_idx]
        if hi > lo:
            comm.send(rank, successor, work[lo:hi].copy(),
                      nbytes=(hi - lo) * itemsize,
                      tag=tag_base + step)
        lo, hi = bounds[recv_idx]
        if hi > lo:
            incoming = yield from _recv(tag_base + step)
            work[lo:hi] = apply_op(op, work[lo:hi], incoming)

    # Phase 2: all-gather.
    for step in range(n - 1):
        send_idx = (rank - step + 1) % n
        recv_idx = (rank - step) % n
        lo, hi = bounds[send_idx]
        if hi > lo:
            comm.send(rank, successor, work[lo:hi].copy(),
                      nbytes=(hi - lo) * itemsize,
                      tag=tag_base + _TAG_STRIDE + step)
        lo, hi = bounds[recv_idx]
        if hi > lo:
            incoming = yield from _recv(tag_base + _TAG_STRIDE + step)
            work[lo:hi] = incoming

    return finalize_op(op, work, n)


def ring_allreduce(
    arrays: t.Sequence[np.ndarray],
    op: ReduceOp = ReduceOp.SUM,
    comm: Communicator | None = None,
) -> list[np.ndarray]:
    """Run a complete ring all-reduce across ``len(arrays)`` workers.

    Convenience entry point: builds a simulator and an ideal communicator,
    runs one worker process per input array, and returns each worker's
    reduced result.  Intended for tests and the numeric training mode.
    """
    if not arrays:
        raise CollectiveError("ring_allreduce requires at least one array")
    shapes = {a.shape for a in arrays}
    if len(shapes) != 1:
        raise CollectiveError(f"workers disagree on shape: {shapes}")

    if comm is None:
        sim = Simulator()
        comm = Communicator(sim, size=len(arrays))
    else:
        sim = comm.sim
        if comm.size != len(arrays):
            raise CollectiveError(
                f"communicator size {comm.size} != #arrays {len(arrays)}"
            )
    processes = [
        sim.spawn(ring_allreduce_worker(sim, comm, rank, array, op=op),
                  name=f"allreduce.r{rank}")
        for rank, array in enumerate(arrays)
    ]
    return [t.cast(np.ndarray, r) for r in run_workers(sim, processes)]
