"""Numeric all-to-all, gather, scatter and reduce-to-root.

Rounds out the primitive set the paper builds upon ("AIACC-Training
builds upon low-level collective communication primitives (all-scatter,
all-gather, etc.)", §IX).  All-to-all in particular is the substrate of
model-parallel attention/expert layers, which the hybrid-parallelism path
exercises.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import CollectiveError
from repro.collectives.primitives import ReduceOp, apply_op, finalize_op
from repro.collectives.runner import run_workers
from repro.sim.kernel import Simulator
from repro.sim.mpi import Communicator

_TAG_A2A = 9 << 20
_TAG_GATHER = 10 << 20
_TAG_SCATTER = 11 << 20
_TAG_REDUCE = 12 << 20


def alltoall_worker(sim: Simulator, comm: Communicator, rank: int,
                    chunks: t.Sequence[np.ndarray]) -> t.Generator:
    """Exchange chunk ``j`` with worker ``j``; returns received chunks.

    ``chunks[j]`` is this worker's message for worker ``j``.  The
    schedule staggers partners (round r pairs ``rank`` with
    ``(rank + r) % n``) so no receiver is hit by all senders at once.
    """
    n = comm.size
    if len(chunks) != n:
        raise CollectiveError(
            f"worker {rank} provided {len(chunks)} chunks for {n} workers"
        )
    received: list[np.ndarray | None] = [None] * n
    received[rank] = chunks[rank].copy()
    for round_idx in range(1, n):
        send_to = (rank + round_idx) % n
        recv_from = (rank - round_idx) % n
        comm.send(rank, send_to, chunks[send_to].copy(),
                  nbytes=chunks[send_to].nbytes,
                  tag=_TAG_A2A + round_idx)
        received[recv_from] = yield comm.recv(rank, recv_from,
                                              tag=_TAG_A2A + round_idx)
    return t.cast(list, received)


def gather_worker(sim: Simulator, comm: Communicator, rank: int,
                  data: np.ndarray, root: int = 0) -> t.Generator:
    """Collect every worker's array at ``root`` (others return None)."""
    if rank == root:
        gathered: list[np.ndarray | None] = [None] * comm.size
        gathered[root] = data.copy()
        for source in range(comm.size):
            if source == root:
                continue
            gathered[source] = yield comm.recv(rank, source,
                                               tag=_TAG_GATHER + source)
        return t.cast(list, gathered)
    comm.send(rank, root, data.copy(), nbytes=data.nbytes,
              tag=_TAG_GATHER + rank)
    return None
    yield  # pragma: no cover


def scatter_worker(sim: Simulator, comm: Communicator, rank: int,
                   chunks: t.Sequence[np.ndarray] | None,
                   root: int = 0) -> t.Generator:
    """Distribute ``chunks[j]`` from ``root`` to worker ``j``."""
    if rank == root:
        if chunks is None or len(chunks) != comm.size:
            raise CollectiveError("root must provide one chunk per worker")
        for target in range(comm.size):
            if target == root:
                continue
            comm.send(rank, target, chunks[target].copy(),
                      nbytes=chunks[target].nbytes,
                      tag=_TAG_SCATTER + target)
        return chunks[root].copy()
        yield  # pragma: no cover
    part = yield comm.recv(rank, root, tag=_TAG_SCATTER + rank)
    return part


def reduce_worker(sim: Simulator, comm: Communicator, rank: int,
                  data: np.ndarray, root: int = 0,
                  op: ReduceOp = ReduceOp.SUM) -> t.Generator:
    """Reduce all workers' arrays at ``root`` (others return None)."""
    if rank == root:
        accumulator = data.copy()
        for source in range(comm.size):
            if source == root:
                continue
            incoming = yield comm.recv(rank, source,
                                       tag=_TAG_REDUCE + source)
            accumulator = apply_op(op, accumulator, incoming)
        return finalize_op(op, accumulator, comm.size)
    comm.send(rank, root, data.copy(), nbytes=data.nbytes,
              tag=_TAG_REDUCE + rank)
    return None
    yield  # pragma: no cover


def _run(worker_factory: t.Callable[[Simulator, Communicator, int],
                                    t.Generator],
         size: int) -> list:
    sim = Simulator()
    comm = Communicator(sim, size=size)
    processes = [sim.spawn(worker_factory(sim, comm, rank),
                           name=f"coll.r{rank}")
                 for rank in range(size)]
    return run_workers(sim, processes)


def alltoall(per_worker_chunks: t.Sequence[t.Sequence[np.ndarray]]
             ) -> list[list[np.ndarray]]:
    """Run an all-to-all; returns what each worker received, by source."""
    if not per_worker_chunks:
        raise CollectiveError("alltoall requires at least one worker")
    size = len(per_worker_chunks)
    return _run(lambda sim, comm, rank: alltoall_worker(
        sim, comm, rank, per_worker_chunks[rank]), size)


def gather(arrays: t.Sequence[np.ndarray], root: int = 0) -> list:
    """Run a gather; result[root] is the list of all arrays."""
    if not arrays:
        raise CollectiveError("gather requires at least one array")
    return _run(lambda sim, comm, rank: gather_worker(
        sim, comm, rank, arrays[rank], root=root), len(arrays))


def scatter(chunks: t.Sequence[np.ndarray], root: int = 0,
            size: int | None = None) -> list[np.ndarray]:
    """Run a scatter of ``chunks`` from ``root``; returns per-worker parts."""
    world = size or len(chunks)
    if len(chunks) != world:
        raise CollectiveError("need exactly one chunk per worker")
    return _run(lambda sim, comm, rank: scatter_worker(
        sim, comm, rank, chunks if rank == root else None, root=root),
        world)


def reduce(arrays: t.Sequence[np.ndarray], root: int = 0,
           op: ReduceOp = ReduceOp.SUM) -> list:
    """Run a reduce-to-root; result[root] is the reduction."""
    if not arrays:
        raise CollectiveError("reduce requires at least one array")
    return _run(lambda sim, comm, rank: reduce_worker(
        sim, comm, rank, arrays[rank], root=root, op=op), len(arrays))
