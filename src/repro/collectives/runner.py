"""Helper to drive a set of collective worker processes to completion."""

from __future__ import annotations

import typing as t

from repro.errors import SimulationError
from repro.sim.kernel import Simulator
from repro.sim.process import Process


def run_workers(sim: Simulator, processes: t.Sequence[Process]) -> list:
    """Run ``sim`` until every worker finishes; return their results.

    If any worker failed, its exception is re-raised (first failure wins).
    Workers left pending after the simulation drains — e.g. blocked on a
    message a crashed peer never sent — surface as a failure of the
    collective rather than a silent wrong answer.
    """
    finished = sim.all_of(processes)
    try:
        sim.run(until=finished)
    except SimulationError:
        # Out of events: some worker deadlocked; fall through to diagnosis.
        pass
    for process in processes:
        if process.triggered and not process.ok:
            raise t.cast(BaseException, process.value)
    stuck = [p.name for p in processes if not p.triggered]
    if stuck:
        raise SimulationError(
            f"collective deadlocked; stuck workers: {stuck}"
        )
    return [p.value for p in processes]
