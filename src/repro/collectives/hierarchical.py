"""Numeric hierarchical ("tree") all-reduce.

AIACC-Training's second algorithm (paper Section V-B): "first performs a
ring all-reduce operation among GPUs of the same computing node and then
uses ring all-reduce to communicate across computing nodes".  Concretely:

1. *intra-node reduce-scatter* — GPUs of a node reduce-scatter over NVLink,
   leaving each local GPU with a reduced shard of the node's data;
2. *inter-node ring all-reduce* — each GPU ring-all-reduces its shard with
   the same-local-rank GPUs of the other nodes (``g`` parallel rings across
   the NICs);
3. *intra-node all-gather* — shards are re-assembled inside each node.

It is selected by the auto-tuner "when some of the physical network links
become congested due to burst communications from other shared cloud
users".
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import CollectiveError
from repro.collectives.primitives import (
    ReduceOp,
    apply_op,
    chunk_bounds,
    finalize_op,
)
from repro.collectives.ring import ring_allreduce_worker
from repro.collectives.runner import run_workers
from repro.sim.kernel import Simulator
from repro.sim.mpi import Communicator

_TAG_INTRA_RS = 1 << 20
_TAG_INTRA_AG = 2 << 20
_TAG_INTER = 3 << 20


def hierarchical_allreduce_worker(
    sim: Simulator,
    comm: Communicator,
    rank: int,
    data: np.ndarray,
    gpus_per_node: int,
    op: ReduceOp = ReduceOp.SUM,
) -> t.Generator:
    """Simulated-process generator for one hierarchical all-reduce worker."""
    n = comm.size
    g = gpus_per_node
    if n % g != 0:
        raise CollectiveError(
            f"world size {n} is not a multiple of gpus_per_node {g}"
        )
    num_nodes = n // g
    if g == 1 or num_nodes == 1:
        # Degenerates to a flat ring.
        result = yield sim.spawn(
            ring_allreduce_worker(sim, comm, rank, data, op=op))
        return result

    work = data.copy()
    node = rank // g
    local = rank % g
    bounds = chunk_bounds(len(work), g)
    itemsize = work.itemsize
    local_pred = node * g + (local - 1) % g
    local_succ = node * g + (local + 1) % g

    # Phase 1: intra-node reduce-scatter over the local ring.
    for step in range(g - 1):
        send_idx = (local - step) % g
        recv_idx = (local - step - 1) % g
        lo, hi = bounds[send_idx]
        comm.send(rank, local_succ, work[lo:hi].copy(),
                  nbytes=(hi - lo) * itemsize, tag=_TAG_INTRA_RS + step)
        incoming = yield comm.recv(rank, local_pred, tag=_TAG_INTRA_RS + step)
        lo, hi = bounds[recv_idx]
        work[lo:hi] = apply_op(op, work[lo:hi], incoming)

    # Worker holds the node-reduced shard (local + 1) % g.
    shard_idx = (local + 1) % g
    lo, hi = bounds[shard_idx]
    shard = work[lo:hi].copy()

    # Phase 2: inter-node ring all-reduce of the shard among same-local-rank
    # peers.  Ranks in this sub-ring: local, g + local, 2g + local, ...
    sub_bounds = chunk_bounds(len(shard), num_nodes)
    inter_pred = ((node - 1) % num_nodes) * g + local
    inter_succ = ((node + 1) % num_nodes) * g + local
    for step in range(num_nodes - 1):
        send_idx = (node - step) % num_nodes
        recv_idx = (node - step - 1) % num_nodes
        slo, shi = sub_bounds[send_idx]
        comm.send(rank, inter_succ, shard[slo:shi].copy(),
                  nbytes=(shi - slo) * itemsize, tag=_TAG_INTER + step)
        incoming = yield comm.recv(rank, inter_pred, tag=_TAG_INTER + step)
        slo, shi = sub_bounds[recv_idx]
        shard[slo:shi] = apply_op(op, shard[slo:shi], incoming)
    for step in range(num_nodes - 1):
        send_idx = (node - step + 1) % num_nodes
        recv_idx = (node - step) % num_nodes
        slo, shi = sub_bounds[send_idx]
        comm.send(rank, inter_succ, shard[slo:shi].copy(),
                  nbytes=(shi - slo) * itemsize,
                  tag=_TAG_INTER + num_nodes + step)
        incoming = yield comm.recv(rank, inter_pred,
                                   tag=_TAG_INTER + num_nodes + step)
        slo, shi = sub_bounds[recv_idx]
        shard[slo:shi] = incoming
    work[lo:hi] = shard

    # Phase 3: intra-node all-gather of the globally reduced shards.
    for step in range(g - 1):
        send_idx = (local - step + 1) % g
        recv_idx = (local - step) % g
        slo, shi = bounds[send_idx]
        comm.send(rank, local_succ, work[slo:shi].copy(),
                  nbytes=(shi - slo) * itemsize, tag=_TAG_INTRA_AG + step)
        incoming = yield comm.recv(rank, local_pred, tag=_TAG_INTRA_AG + step)
        slo, shi = bounds[recv_idx]
        work[slo:shi] = incoming

    return finalize_op(op, work, n)


def hierarchical_allreduce(
    arrays: t.Sequence[np.ndarray],
    gpus_per_node: int,
    op: ReduceOp = ReduceOp.SUM,
) -> list[np.ndarray]:
    """Run a hierarchical all-reduce across ``len(arrays)`` workers."""
    if not arrays:
        raise CollectiveError("hierarchical_allreduce requires arrays")
    sim = Simulator()
    comm = Communicator(sim, size=len(arrays))
    processes = [
        sim.spawn(hierarchical_allreduce_worker(
            sim, comm, rank, array, gpus_per_node, op=op),
            name=f"hier.r{rank}")
        for rank, array in enumerate(arrays)
    ]
    return [t.cast(np.ndarray, r) for r in run_workers(sim, processes)]
