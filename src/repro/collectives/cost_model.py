"""Analytic α–β cost models for the collective algorithms.

These closed-form estimates serve three purposes:

1. sanity checks for the flow-level simulation (tests compare both);
2. fast candidate scoring inside the auto-tuner's search techniques;
3. documentation of the communication volumes used by the timed executor.

Notation: ``S`` bytes reduced over ``n`` workers on ``m`` nodes with ``g``
GPUs per node; β terms are bandwidth (bits/s), α terms per-message latency.
"""

from __future__ import annotations

import dataclasses

from repro.errors import CollectiveError

#: Device-wide synchronization charged between macro phases of the
#: multi-phase algorithms (hierarchical and the planner backends).  The
#: timed executor and the planner import this so closed forms and
#: simulated schedules charge the identical constant.
PHASE_SYNC_S = 2e-3

#: Store-and-forward latency of the in-network aggregation point (FPGA
#: pipeline fill, single-digit microseconds per the SmartNIC paper).
INA_SWITCH_LATENCY_S = 10e-6


@dataclasses.dataclass(frozen=True)
class CostParams:
    """Bandwidth/latency description of one deployment."""

    world_size: int
    num_nodes: int
    #: Bandwidth available to one stream crossing the NIC (bits/s).
    nic_stream_bps: float
    #: Aggregate usable NIC bandwidth (bits/s).
    nic_total_bps: float
    #: Per-GPU NVLink bandwidth (bits/s).
    nvlink_bps: float
    #: Per-message overhead on the inter-node path (s).
    inter_alpha_s: float
    #: Per-message overhead on the intra-node path (s).
    intra_alpha_s: float = 5e-6
    #: One-way inter-node wire latency (s); the planner closed forms
    #: charge it per exchange round on top of the software overhead.
    inter_latency_s: float = 100e-6
    #: Capacity of the shared (oversubscribed) datacenter core link, or
    #: ``None`` for a non-blocking fabric.
    core_bps: float | None = None
    #: Aggregate reduction throughput of the in-network aggregation
    #: point; ``None`` means line rate on every port (non-blocking).
    ina_agg_bps: float | None = None

    def __post_init__(self) -> None:
        if self.world_size < 1 or self.num_nodes < 1:
            raise CollectiveError("world_size and num_nodes must be >= 1")
        if self.world_size % self.num_nodes != 0:
            raise CollectiveError("world_size must divide across nodes evenly")

    @property
    def gpus_per_node(self) -> int:
        return self.world_size // self.num_nodes


def ring_volume_bytes(size_bytes: float, participants: int) -> float:
    """Bytes crossing each ring hop for an all-reduce of ``size_bytes``."""
    if participants < 1:
        raise CollectiveError("participants must be >= 1")
    if participants == 1:
        return 0.0
    return 2.0 * size_bytes * (participants - 1) / participants


def ring_allreduce_time_s(size_bytes: float, params: CostParams,
                          streams: int = 1) -> float:
    """Time for a flat topology-aware ring all-reduce of ``size_bytes``.

    ``streams`` > 1 models AIACC's multi-streamed mode where the unit's
    traffic effectively enjoys the bandwidth of ``streams`` capped
    connections (up to the aggregate NIC limit); used only for analytic
    tuning — the simulator models streams explicitly.
    """
    n = params.world_size
    m = params.num_nodes
    if n == 1 or size_bytes <= 0:
        return 0.0
    hop_bytes = ring_volume_bytes(size_bytes, n)
    steps = 2 * (n - 1)
    alpha = steps * (params.inter_alpha_s if m > 1 else params.intra_alpha_s)
    if m == 1:
        return hop_bytes * 8.0 / params.nvlink_bps + alpha
    bandwidth = min(params.nic_stream_bps * streams, params.nic_total_bps)
    if params.core_bps is not None:
        bandwidth = min(bandwidth, params.core_bps / m)
    nic_time = hop_bytes * 8.0 / bandwidth
    if params.gpus_per_node == 1:
        # One GPU per node: the flat ring never touches NVLink, so the
        # intra-node term must not appear (previously it did, inflating
        # the estimate whenever NVLink was slower than the NIC path).
        return nic_time + alpha
    nvlink_time = hop_bytes * 8.0 / params.nvlink_bps
    return max(nic_time, nvlink_time) + alpha


def hierarchical_allreduce_time_s(size_bytes: float,
                                  params: CostParams) -> float:
    """Time for the hierarchical (intra-ring + inter-ring) all-reduce.

    Phase 2 runs ``g`` parallel inter-node rings (one per local rank), each
    carrying a ``1/g`` shard, so it naturally uses ``g`` streams.
    """
    n = params.world_size
    m = params.num_nodes
    g = params.gpus_per_node
    if n == 1 or size_bytes <= 0:
        return 0.0
    if m == 1 or g == 1:
        return ring_allreduce_time_s(size_bytes, params)

    # Phase 1 (reduce-scatter) + phase 3 (all-gather) over NVLink.
    intra_bytes = 2.0 * size_bytes * (g - 1) / g
    intra_time = intra_bytes * 8.0 / params.nvlink_bps
    intra_alpha = 2 * (g - 1) * params.intra_alpha_s

    # Phase 2: g parallel rings of m nodes, each reducing S/g bytes.
    shard = size_bytes / g
    hop_bytes = ring_volume_bytes(shard, m)
    bandwidth = min(params.nic_stream_bps * g, params.nic_total_bps) / g
    if params.core_bps is not None:
        bandwidth = min(bandwidth, params.core_bps / (m * g))
    inter_time = hop_bytes * 8.0 / bandwidth
    inter_alpha = 2 * (m - 1) * params.inter_alpha_s

    return intra_time + intra_alpha + inter_time + inter_alpha


def broadcast_time_s(size_bytes: float, params: CostParams) -> float:
    """Pipelined ring broadcast of ``size_bytes`` to all workers."""
    if params.world_size == 1 or size_bytes <= 0:
        return 0.0
    if params.num_nodes == 1:
        return size_bytes * 8.0 / params.nvlink_bps + \
            params.world_size * params.intra_alpha_s
    return size_bytes * 8.0 / params.nic_stream_bps + \
        params.num_nodes * params.inter_alpha_s


# -- planner-backend closed forms -------------------------------------------
#
# These mirror, phase for phase, the schedules synthesized by
# :class:`repro.collectives.planner.CollectivePlanner`; the differential
# tests hold the simulated execution inside a tolerance band of them.
# Shared structure: an optional intra-node reduce-scatter / all-gather
# pair (identical to the hierarchical algorithm's phases 1 and 3, with a
# device sync at each macro boundary), around an algorithm-specific
# inter-node stage.


def _intra_wrap_time_s(size_bytes: float, params: CostParams) -> float:
    """Intra-node RS + AG phases plus their two macro-boundary syncs."""
    g = params.gpus_per_node
    if g == 1:
        return 0.0
    intra_bytes = 2.0 * size_bytes * (g - 1) / g
    return intra_bytes * 8.0 / params.nvlink_bps \
        + 2 * (g - 1) * params.intra_alpha_s + 2 * PHASE_SYNC_S


def _exposed_s(per_stream_bytes: float, params: CostParams) -> float:
    """Per-message overhead not hidden behind a stream's wire time."""
    return max(0.0, params.inter_alpha_s
               - per_stream_bytes * 8.0 / params.nic_stream_bps)


def _single_node_time_s(size_bytes: float, params: CostParams) -> float:
    """All planner backends degenerate to the NVLink ring on one node."""
    n = params.world_size
    return ring_volume_bytes(size_bytes, n) * 8.0 / params.nvlink_bps \
        + 2 * (n - 1) * params.intra_alpha_s


def halving_doubling_time_s(size_bytes: float,
                            params: CostParams) -> float:
    """Recursive halving/doubling all-reduce across nodes.

    ``2 log2(m)`` exchange rounds; round ``k`` of the reduce-scatter
    moves ``(S/g) / 2^(k+1)`` bytes per stream, the all-gather mirrors
    the sizes.  Bandwidth-optimal like the ring, but latency scales with
    ``log m`` instead of ``m``.
    """
    m = params.num_nodes
    g = params.gpus_per_node
    if params.world_size == 1 or size_bytes <= 0:
        return 0.0
    if m == 1:
        return _single_node_time_s(size_bytes, params)
    if m & (m - 1):
        raise CollectiveError(
            f"halving-doubling requires a power-of-two node count, got {m}"
        )
    per_stream_bw = min(params.nic_stream_bps, params.nic_total_bps / g)
    if params.core_bps is not None:
        per_stream_bw = min(per_stream_bw, params.core_bps / (m * g))
    total = _intra_wrap_time_s(size_bytes, params)
    rounds = m.bit_length() - 1
    for k in range(rounds):
        per_stream = (size_bytes / g) / (1 << (k + 1))
        round_time = per_stream * 8.0 / per_stream_bw \
            + 2 * params.inter_latency_s + _exposed_s(per_stream, params)
        total += 2 * round_time  # the AG round mirrors the RS round
    return total


def multi_tree_time_s(size_bytes: float, params: CostParams) -> float:
    """Blink-style packed star trees: two inter-node rounds total.

    Each node concurrently serves ``m - 1`` chunk trees of
    ``S / (g m)`` bytes per stream, so the NIC carries ``g (m - 1)``
    streams at once in each of the two phases.
    """
    m = params.num_nodes
    g = params.gpus_per_node
    if params.world_size == 1 or size_bytes <= 0:
        return 0.0
    if m == 1:
        return _single_node_time_s(size_bytes, params)
    per_stream = size_bytes / (g * m)
    streams_per_nic = g * (m - 1)
    per_stream_bw = min(params.nic_stream_bps,
                        params.nic_total_bps / streams_per_nic)
    if params.core_bps is not None:
        per_stream_bw = min(per_stream_bw,
                            params.core_bps / (m * streams_per_nic))
    phase_time = per_stream * 8.0 / per_stream_bw \
        + 2 * params.inter_latency_s + _exposed_s(per_stream, params)
    return _intra_wrap_time_s(size_bytes, params) + 2 * phase_time


def ina_time_s(size_bytes: float, params: CostParams) -> float:
    """In-network aggregation: one uplink copy, one multicast copy.

    Up phase: every node ships its reduced shard set (``S`` bytes as
    ``g`` streams) to the aggregation point, whose pipeline throughput
    ``ina_agg_bps`` is shared by all ``m`` nodes.  Down phase: the
    result crosses the spine once (multicast trunk) and fans out over
    every node's NIC-in concurrently.
    """
    m = params.num_nodes
    g = params.gpus_per_node
    if params.world_size == 1 or size_bytes <= 0:
        return 0.0
    if m == 1:
        return _single_node_time_s(size_bytes, params)
    per_stream = size_bytes / g

    up_bw = min(params.nic_stream_bps * g, params.nic_total_bps)
    if params.core_bps is not None:
        up_bw = min(up_bw, params.core_bps / m)
    if params.ina_agg_bps is not None:
        up_bw = min(up_bw, params.ina_agg_bps / m)
    up_time = size_bytes * 8.0 / up_bw + 1.5 * params.inter_latency_s \
        + _exposed_s(per_stream, params) + INA_SWITCH_LATENCY_S

    down_bw = min(params.nic_stream_bps * g, params.nic_total_bps)
    down_time = size_bytes * 8.0 / down_bw
    if params.core_bps is not None:
        down_time = max(down_time, size_bytes * 8.0 / params.core_bps)
    down_time += 1.5 * params.inter_latency_s \
        + _exposed_s(per_stream, params)

    return _intra_wrap_time_s(size_bytes, params) + up_time + down_time
