"""Analytic α–β cost models for the collective algorithms.

These closed-form estimates serve three purposes:

1. sanity checks for the flow-level simulation (tests compare both);
2. fast candidate scoring inside the auto-tuner's search techniques;
3. documentation of the communication volumes used by the timed executor.

Notation: ``S`` bytes reduced over ``n`` workers on ``m`` nodes with ``g``
GPUs per node; β terms are bandwidth (bits/s), α terms per-message latency.
"""

from __future__ import annotations

import dataclasses

from repro.errors import CollectiveError


@dataclasses.dataclass(frozen=True)
class CostParams:
    """Bandwidth/latency description of one deployment."""

    world_size: int
    num_nodes: int
    #: Bandwidth available to one stream crossing the NIC (bits/s).
    nic_stream_bps: float
    #: Aggregate usable NIC bandwidth (bits/s).
    nic_total_bps: float
    #: Per-GPU NVLink bandwidth (bits/s).
    nvlink_bps: float
    #: Per-message overhead on the inter-node path (s).
    inter_alpha_s: float
    #: Per-message overhead on the intra-node path (s).
    intra_alpha_s: float = 5e-6

    def __post_init__(self) -> None:
        if self.world_size < 1 or self.num_nodes < 1:
            raise CollectiveError("world_size and num_nodes must be >= 1")
        if self.world_size % self.num_nodes != 0:
            raise CollectiveError("world_size must divide across nodes evenly")

    @property
    def gpus_per_node(self) -> int:
        return self.world_size // self.num_nodes


def ring_volume_bytes(size_bytes: float, participants: int) -> float:
    """Bytes crossing each ring hop for an all-reduce of ``size_bytes``."""
    if participants < 1:
        raise CollectiveError("participants must be >= 1")
    if participants == 1:
        return 0.0
    return 2.0 * size_bytes * (participants - 1) / participants


def ring_allreduce_time_s(size_bytes: float, params: CostParams,
                          streams: int = 1) -> float:
    """Time for a flat topology-aware ring all-reduce of ``size_bytes``.

    ``streams`` > 1 models AIACC's multi-streamed mode where the unit's
    traffic effectively enjoys the bandwidth of ``streams`` capped
    connections (up to the aggregate NIC limit); used only for analytic
    tuning — the simulator models streams explicitly.
    """
    n = params.world_size
    m = params.num_nodes
    if n == 1:
        return 0.0
    hop_bytes = ring_volume_bytes(size_bytes, n)
    steps = 2 * (n - 1)
    alpha = steps * (params.inter_alpha_s if m > 1 else params.intra_alpha_s)
    if m == 1:
        return hop_bytes * 8.0 / params.nvlink_bps + alpha
    bandwidth = min(params.nic_stream_bps * streams, params.nic_total_bps)
    nic_time = hop_bytes * 8.0 / bandwidth
    nvlink_time = hop_bytes * 8.0 / params.nvlink_bps
    return max(nic_time, nvlink_time) + alpha


def hierarchical_allreduce_time_s(size_bytes: float,
                                  params: CostParams) -> float:
    """Time for the hierarchical (intra-ring + inter-ring) all-reduce.

    Phase 2 runs ``g`` parallel inter-node rings (one per local rank), each
    carrying a ``1/g`` shard, so it naturally uses ``g`` streams.
    """
    n = params.world_size
    m = params.num_nodes
    g = params.gpus_per_node
    if n == 1:
        return 0.0
    if m == 1 or g == 1:
        return ring_allreduce_time_s(size_bytes, params)

    # Phase 1 (reduce-scatter) + phase 3 (all-gather) over NVLink.
    intra_bytes = 2.0 * size_bytes * (g - 1) / g
    intra_time = intra_bytes * 8.0 / params.nvlink_bps
    intra_alpha = 2 * (g - 1) * params.intra_alpha_s

    # Phase 2: g parallel rings of m nodes, each reducing S/g bytes.
    shard = size_bytes / g
    hop_bytes = ring_volume_bytes(shard, m)
    bandwidth = min(params.nic_stream_bps * g, params.nic_total_bps) / g
    inter_time = hop_bytes * 8.0 / bandwidth
    inter_alpha = 2 * (m - 1) * params.inter_alpha_s

    return intra_time + intra_alpha + inter_time + inter_alpha


def broadcast_time_s(size_bytes: float, params: CostParams) -> float:
    """Pipelined ring broadcast of ``size_bytes`` to all workers."""
    if params.world_size == 1:
        return 0.0
    if params.num_nodes == 1:
        return size_bytes * 8.0 / params.nvlink_bps + \
            params.world_size * params.intra_alpha_s
    return size_bytes * 8.0 / params.nic_stream_bps + \
        params.num_nodes * params.inter_alpha_s
