"""Collective communication: numeric algorithms and timed execution.

Every collective has two coupled faces:

* **numeric** — exchanges real numpy chunks through the simulated MPI
  layer; results are verifiable against the mathematical reduction
  (property-based tests in ``tests/collectives``);
* **timed** — places the algorithm's transport streams as flows on the
  fluid network model, producing completion times that reflect per-stream
  caps and contention.
"""

from repro.collectives.alltoall import (
    alltoall,
    alltoall_worker,
    gather,
    gather_worker,
    reduce,
    reduce_worker,
    scatter,
    scatter_worker,
)
from repro.collectives.broadcast import broadcast, broadcast_worker
from repro.collectives.cost_model import (
    CostParams,
    broadcast_time_s,
    halving_doubling_time_s,
    hierarchical_allreduce_time_s,
    ina_time_s,
    multi_tree_time_s,
    ring_allreduce_time_s,
    ring_volume_bytes,
)
from repro.collectives.hierarchical import (
    hierarchical_allreduce,
    hierarchical_allreduce_worker,
)
from repro.collectives.primitives import (
    ReduceOp,
    apply_op,
    chunk_bounds,
    concat_chunks,
    finalize_op,
    split_chunks,
)
from repro.collectives.planner import (
    PLANNER_ALGORITHMS,
    CollectivePlanner,
    CollectiveSchedule,
    FlowSpec,
    SchedulePhase,
    halving_doubling_allreduce,
    halving_doubling_allreduce_worker,
    ina_allreduce,
    multi_tree_allreduce,
    multi_tree_allreduce_worker,
    planned_numeric_allreduce,
)
from repro.collectives.ring import ring_allreduce, ring_allreduce_worker
from repro.collectives.scatter_gather import (
    allgather,
    allgather_worker,
    reduce_scatter,
    reduce_scatter_worker,
)
from repro.collectives.timed import ALGORITHMS, TimedCollectives

__all__ = [
    "ALGORITHMS",
    "PLANNER_ALGORITHMS",
    "CollectivePlanner",
    "CollectiveSchedule",
    "CostParams",
    "FlowSpec",
    "ReduceOp",
    "SchedulePhase",
    "TimedCollectives",
    "allgather",
    "allgather_worker",
    "alltoall",
    "alltoall_worker",
    "gather",
    "gather_worker",
    "reduce",
    "reduce_worker",
    "scatter",
    "scatter_worker",
    "apply_op",
    "broadcast",
    "broadcast_time_s",
    "broadcast_worker",
    "chunk_bounds",
    "concat_chunks",
    "finalize_op",
    "halving_doubling_allreduce",
    "halving_doubling_allreduce_worker",
    "halving_doubling_time_s",
    "hierarchical_allreduce",
    "hierarchical_allreduce_time_s",
    "hierarchical_allreduce_worker",
    "ina_allreduce",
    "ina_time_s",
    "multi_tree_allreduce",
    "multi_tree_allreduce_worker",
    "multi_tree_time_s",
    "planned_numeric_allreduce",
    "reduce_scatter",
    "reduce_scatter_worker",
    "ring_allreduce",
    "ring_allreduce_time_s",
    "ring_allreduce_worker",
    "ring_volume_bytes",
    "split_chunks",
]
