"""Shared collective-communication primitives and helpers.

Defines the reduction operators and the chunking arithmetic used by the
ring/hierarchical algorithms.  The *min* operator is what AIACC-Training's
decentralized gradient synchronization applies to the readiness bit vector
(paper Section V-A): a gradient is globally ready only if *every* worker
has produced it, i.e. ``min`` over the 0/1 bits is 1.
"""

from __future__ import annotations

import enum
import typing as t

import numpy as np

from repro.errors import CollectiveError


class ReduceOp(enum.Enum):
    """Reduction operators supported by the collectives."""

    SUM = "sum"
    MIN = "min"
    MAX = "max"
    PROD = "prod"
    AVG = "avg"


def apply_op(op: ReduceOp, accumulator: np.ndarray,
             incoming: np.ndarray) -> np.ndarray:
    """Combine ``incoming`` into ``accumulator`` element-wise.

    ``AVG`` accumulates as a sum; callers divide by world size at the end
    (see :func:`finalize_op`), matching how NCCL implements averaging.
    """
    if accumulator.shape != incoming.shape:
        raise CollectiveError(
            f"shape mismatch in reduction: {accumulator.shape} vs "
            f"{incoming.shape}"
        )
    if op in (ReduceOp.SUM, ReduceOp.AVG):
        return accumulator + incoming
    if op is ReduceOp.MIN:
        return np.minimum(accumulator, incoming)
    if op is ReduceOp.MAX:
        return np.maximum(accumulator, incoming)
    if op is ReduceOp.PROD:
        return accumulator * incoming
    raise CollectiveError(f"unsupported reduce op: {op}")


def finalize_op(op: ReduceOp, reduced: np.ndarray,
                world_size: int) -> np.ndarray:
    """Apply the terminal step of the reduction (division for ``AVG``)."""
    if op is ReduceOp.AVG:
        return reduced / float(world_size)
    return reduced


def chunk_bounds(total: int, parts: int) -> list[tuple[int, int]]:
    """Split ``total`` elements into ``parts`` contiguous (start, end) ranges.

    The first ``total % parts`` ranges receive one extra element, so ranges
    differ in length by at most one and empty ranges only occur when
    ``parts > total``.
    """
    if parts < 1:
        raise CollectiveError(f"parts must be >= 1, got {parts}")
    if total < 0:
        raise CollectiveError(f"total must be >= 0, got {total}")
    base, extra = divmod(total, parts)
    bounds = []
    start = 0
    for index in range(parts):
        size = base + (1 if index < extra else 0)
        bounds.append((start, start + size))
        start += size
    return bounds


def split_chunks(data: np.ndarray, parts: int) -> list[np.ndarray]:
    """Split a 1-D array into ``parts`` contiguous chunks (views)."""
    if data.ndim != 1:
        raise CollectiveError(
            f"collectives operate on flat arrays, got ndim={data.ndim}"
        )
    return [data[start:end] for start, end in chunk_bounds(len(data), parts)]


def concat_chunks(chunks: t.Sequence[np.ndarray]) -> np.ndarray:
    """Inverse of :func:`split_chunks`."""
    return np.concatenate(list(chunks)) if chunks else np.empty(0)
