"""Synthetic click-through-rate (CTR) recommendation workload.

Section VIII-C evaluates AIACC-Training on a production "click to
recommend" system ("we cannot disclose the specific model structure used
by CTR").  What matters for communication is the *shape* of such systems:

* thousands of small embedding-table gradient tensors (one per feature
  field / hash bucket group),
* a small dense MLP tower,
* very little compute per sample (the GPU is mostly idle),
* enormous gradient *count*, which hammers the readiness-negotiation
  control plane — Horovod's master-node synchronization becomes the
  bottleneck and AIACC's decentralized scheme wins by 13.4x at 128 GPUs.

This module builds a synthetic spec with those properties.
"""

from __future__ import annotations

from repro.models.base import LayerSpec, ModelSpec, ParameterSpec

#: Number of embedding feature fields (each one gradient tensor).
NUM_EMBEDDING_FIELDS = 8000
#: Elements per embedding-field gradient actually touched per iteration
#: (dense-communicated slice of the sparse table).
EMBEDDING_FIELD_ELEMENTS = 8_192
#: Dense MLP tower widths.
_MLP_PLAN = [(4096, 1024), (1024, 512), (512, 256), (256, 1)]


def build_ctr() -> ModelSpec:
    """Construct the synthetic production-CTR workload spec."""
    layers = []
    for field in range(NUM_EMBEDDING_FIELDS):
        layers.append(LayerSpec(
            f"embedding.field{field:04d}",
            (ParameterSpec(f"embedding.field{field:04d}.weight",
                           EMBEDDING_FIELD_ELEMENTS),),
            # A lookup touches a handful of rows; compute is a few
            # multiply-adds per field, not the full table.
            forward_flops=64.0,
        ))
    for index, (fin, fout) in enumerate(_MLP_PLAN):
        layers.append(LayerSpec(
            f"mlp.fc{index}",
            (ParameterSpec(f"mlp.fc{index}.weight", fin * fout),
             ParameterSpec(f"mlp.fc{index}.bias", fout)),
            forward_flops=2.0 * fin * fout,
        ))
    return ModelSpec(
        name="ctr",
        layers=tuple(layers),
        compute_occupancy=0.25,
        category="CTR",
        sample_unit="entries",
        default_batch_size=8192,
        dataset="ctr-production",
    )
