"""Workload model descriptions: parameters, layers, gradient schedules.

Gradient communication behaviour depends only on *when* gradients appear
(backward-pass schedule), *how big* they are (tensor bytes), and *how many*
there are — not on the numeric content of training.  A :class:`ModelSpec`
captures exactly those properties for each DNN the paper evaluates
(Table I), plus the GPU occupancy used by the CUDA-stream contention model.

Parameter counts and FLOPs are normalised to the paper's Table I numbers
(see :func:`ModelSpec.scaled_to`), so Table I is reproduced exactly even
where our generated layer tables differ slightly from the authors'
implementations.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import ReproError


class ModelSpecError(ReproError):
    """Invalid model description."""


@dataclasses.dataclass(frozen=True)
class ParameterSpec:
    """One trainable tensor (weight or bias) producing one gradient."""

    name: str
    num_elements: int
    dtype_bytes: int = 4

    def __post_init__(self) -> None:
        if self.num_elements < 1:
            raise ModelSpecError(
                f"parameter {self.name!r} must have >= 1 element"
            )
        if self.dtype_bytes not in (1, 2, 4, 8):
            raise ModelSpecError(
                f"parameter {self.name!r} has unsupported dtype width "
                f"{self.dtype_bytes}"
            )

    @property
    def nbytes(self) -> int:
        return self.num_elements * self.dtype_bytes


@dataclasses.dataclass(frozen=True)
class LayerSpec:
    """One network layer: its parameters and per-sample forward FLOPs."""

    name: str
    parameters: tuple[ParameterSpec, ...]
    forward_flops: float

    def __post_init__(self) -> None:
        if self.forward_flops < 0:
            raise ModelSpecError(f"layer {self.name!r} has negative FLOPs")

    @property
    def num_parameters(self) -> int:
        return sum(p.num_elements for p in self.parameters)

    @property
    def nbytes(self) -> int:
        return sum(p.nbytes for p in self.parameters)


@dataclasses.dataclass(frozen=True)
class GradientEvent:
    """A point in the backward pass where some gradients become ready.

    ``time_fraction`` is the fraction of total backward time elapsed when
    the gradients of ``layer_index`` are produced (layers emit in reverse
    order: the output layer's gradients appear first).
    """

    time_fraction: float
    layer_index: int
    parameters: tuple[ParameterSpec, ...]


@dataclasses.dataclass(frozen=True)
class ModelSpec:
    """A complete DNN workload description."""

    name: str
    layers: tuple[LayerSpec, ...]
    #: Fraction of GPU SMs busy while compute kernels run; drives the
    #: CUDA-stream contention model (paper §VIII-A: computation-intensive
    #: models limit concurrent communication streams).
    compute_occupancy: float
    #: "CV", "NLP" or "CTR" — controls dataset and unit naming.
    category: str = "CV"
    #: What one sample is called in throughput reports.
    sample_unit: str = "images"
    #: Default per-GPU minibatch (the large-batch setting of §VII-D).
    default_batch_size: int = 64
    #: Dataset the paper trains this model on.
    dataset: str = "imagenet"
    #: FLOPs value printed in the paper's Table I, when it differs from the
    #: timing-model forward FLOPs (the paper counts multiply-adds as one
    #: FLOP for the ResNets but as two elsewhere).
    table_flops: float | None = None

    def __post_init__(self) -> None:
        if not self.layers:
            raise ModelSpecError(f"model {self.name!r} has no layers")
        if not 0 < self.compute_occupancy <= 1:
            raise ModelSpecError(
                f"model {self.name!r} compute_occupancy out of (0, 1]"
            )
        names = [p.name for layer in self.layers for p in layer.parameters]
        if len(names) != len(set(names)):
            raise ModelSpecError(
                f"model {self.name!r} has duplicate parameter names"
            )

    # -- aggregate properties ---------------------------------------------

    @property
    def num_parameters(self) -> int:
        """Total trainable elements (the '#Param.s' column of Table I)."""
        return sum(layer.num_parameters for layer in self.layers)

    @property
    def num_gradients(self) -> int:
        """Number of gradient tensors produced per backward pass."""
        return sum(len(layer.parameters) for layer in self.layers)

    @property
    def gradient_bytes(self) -> int:
        """Bytes of gradients exchanged per iteration (fp32)."""
        return sum(layer.nbytes for layer in self.layers)

    @property
    def forward_flops(self) -> float:
        """Per-sample forward FLOPs used by the timing model."""
        return sum(layer.forward_flops for layer in self.layers)

    @property
    def reported_flops(self) -> float:
        """The '#FLOPs' value as printed in the paper's Table I."""
        return self.table_flops if self.table_flops is not None \
            else self.forward_flops

    @property
    def backward_flops(self) -> float:
        """Per-sample backward FLOPs (standard 2x forward estimate)."""
        return 2.0 * self.forward_flops

    @property
    def training_flops(self) -> float:
        """Per-sample FLOPs for one full training step."""
        return self.forward_flops + self.backward_flops

    def parameters(self) -> list[ParameterSpec]:
        """All parameters in registration (forward) order."""
        return [p for layer in self.layers for p in layer.parameters]

    # -- memory model --------------------------------------------------------

    @property
    def activation_bytes_per_sample(self) -> float:
        """Rough activation memory per training sample.

        Proxy: activations scale with compute, not parameters (conv nets
        have huge spatial activations, transformers recompute parts of
        theirs).  Coefficients are order-of-magnitude fits to published
        profiler numbers (ResNet-50 ≈ 80 MB, BERT-Large ≈ 0.6 GB/seq).
        """
        divisor = 400.0 if self.category == "NLP" else 100.0
        return self.forward_flops / divisor

    def memory_required_bytes(self, batch_size: int) -> float:
        """Training memory at ``batch_size``: states + activations.

        Parameter states are weights + gradients + two Adam moments
        (4x model bytes, fp32).
        """
        if batch_size < 1:
            raise ModelSpecError("batch_size must be >= 1")
        states = 4.0 * self.gradient_bytes
        return states + batch_size * self.activation_bytes_per_sample

    def max_batch_size(self, gpu_memory_bytes: float) -> int:
        """Largest per-GPU batch fitting in ``gpu_memory_bytes``."""
        if gpu_memory_bytes <= 0:
            raise ModelSpecError("gpu_memory_bytes must be positive")
        budget = gpu_memory_bytes - 4.0 * self.gradient_bytes
        if budget <= 0:
            return 0
        return max(0, int(budget // self.activation_bytes_per_sample))

    # -- backward schedule --------------------------------------------------

    def backward_schedule(self) -> list[GradientEvent]:
        """When each layer's gradients appear during the backward pass.

        Backward propagation visits layers in reverse order; each layer's
        share of backward time is proportional to its FLOPs.  A layer's
        gradients become ready when its backward computation *finishes*.
        """
        total = self.backward_flops
        events: list[GradientEvent] = []
        elapsed = 0.0
        for index in range(len(self.layers) - 1, -1, -1):
            layer = self.layers[index]
            elapsed += 2.0 * layer.forward_flops
            if layer.parameters:
                fraction = elapsed / total if total > 0 else 1.0
                events.append(GradientEvent(
                    time_fraction=min(fraction, 1.0),
                    layer_index=index,
                    parameters=layer.parameters,
                ))
        return events

    # -- normalisation ----------------------------------------------------------

    def scaled_to(self, target_parameters: int,
                  target_forward_flops: float) -> "ModelSpec":
        """Uniformly rescale parameter counts and FLOPs to match targets.

        Used to pin generated layer tables to the paper's Table I totals.
        Relative layer sizes — which determine communication behaviour —
        are preserved.
        """
        if target_parameters < 1 or target_forward_flops <= 0:
            raise ModelSpecError("scale targets must be positive")
        param_scale = target_parameters / self.num_parameters
        flop_scale = target_forward_flops / self.forward_flops
        new_layers = []
        for layer in self.layers:
            new_params = tuple(
                dataclasses.replace(
                    p, num_elements=max(1, round(p.num_elements * param_scale)))
                for p in layer.parameters
            )
            new_layers.append(dataclasses.replace(
                layer,
                parameters=new_params,
                forward_flops=layer.forward_flops * flop_scale,
            ))
        return dataclasses.replace(self, layers=tuple(new_layers))


def make_layer(name: str, shapes: t.Sequence[tuple[str, int]],
               forward_flops: float) -> LayerSpec:
    """Convenience builder: ``shapes`` is ``[(suffix, num_elements), ...]``."""
    params = tuple(
        ParameterSpec(name=f"{name}.{suffix}", num_elements=count)
        for suffix, count in shapes
    )
    return LayerSpec(name=name, parameters=params, forward_flops=forward_flops)
