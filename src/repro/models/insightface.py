"""InsightFace-style face-recognition workload (paper §VIII-C).

"When applying AIACC-Training to the hand-tuned ResNet-50 of the
InsightFace library (with DDL enabled) on face recognition datasets,
AIACC-Training improves the hand-tuned DDL code by 3.8x when using 128
GPUs."

Face-recognition training couples a ResNet-50 backbone with a *massive
classification head*: one 512-d embedding column per identity, and
production datasets carry hundreds of thousands to millions of
identities.  The head's gradient (512 x #identities fp32) dwarfs the
backbone — this workload is far more communication-bound than ImageNet
ResNet-50, which is exactly why the paper sees a much larger speedup on
it.
"""

from __future__ import annotations

import dataclasses

from repro.models.base import LayerSpec, ModelSpec, ParameterSpec
from repro.models.resnet import build_resnet50

#: Face-embedding dimension (ArcFace standard).
EMBEDDING_DIM = 512
#: Identities in the synthetic training set (glint360k-scale).
NUM_IDENTITIES = 1_000_000


def build_insightface(num_identities: int = NUM_IDENTITIES) -> ModelSpec:
    """ResNet-50 backbone + ArcFace-style identity classification head."""
    backbone = build_resnet50()
    head = LayerSpec(
        "arcface_head",
        (ParameterSpec("arcface_head.weight",
                       EMBEDDING_DIM * num_identities),),
        # Cosine-logit matmul: embedding x identity matrix, 2 FLOPs/MAC.
        forward_flops=2.0 * EMBEDDING_DIM * num_identities,
    )
    return dataclasses.replace(
        backbone,
        name="insightface-r50",
        layers=backbone.layers + (head,),
        dataset="face-recognition",
        default_batch_size=64,
    )
