"""Model registry and the paper's Table I.

``get_model(name)`` returns a freshly built :class:`ModelSpec` for any
workload the paper evaluates; ``table1()`` reproduces Table I ("DNN model
characteristics") from the registered specs.
"""

from __future__ import annotations

import typing as t

from repro.errors import ReproError
from repro.models.base import ModelSpec
from repro.models.ctr import build_ctr
from repro.models.insightface import build_insightface
from repro.models.resnet import build_resnet50, build_resnet101
from repro.models.transformer import (
    build_bert_large,
    build_gpt2_xl,
    build_transformer,
)
from repro.models.vgg import build_vgg16

_BUILDERS: dict[str, t.Callable[[], ModelSpec]] = {
    "vgg16": build_vgg16,
    "resnet50": build_resnet50,
    "resnet101": build_resnet101,
    "transformer": build_transformer,
    "bert-large": build_bert_large,
    "gpt2-xl": build_gpt2_xl,
    "ctr": build_ctr,
    "insightface-r50": build_insightface,
}

#: Models that appear in the paper's Table I, in its print order.
TABLE1_MODELS = ("vgg16", "resnet50", "resnet101", "transformer",
                 "bert-large")


def available_models() -> list[str]:
    """Names of all registered workload models."""
    return sorted(_BUILDERS)


def get_model(name: str) -> ModelSpec:
    """Build the named workload model."""
    try:
        builder = _BUILDERS[name]
    except KeyError:
        raise ReproError(
            f"unknown model {name!r}; available: {available_models()}"
        ) from None
    return builder()


def table1() -> list[dict[str, object]]:
    """Reproduce Table I: model name, #parameters and #FLOPs."""
    rows = []
    for name in TABLE1_MODELS:
        spec = get_model(name)
        rows.append({
            "model": spec.name,
            "parameters": spec.num_parameters,
            "flops": spec.reported_flops,
            "gradients": spec.num_gradients,
            "gradient_bytes": spec.gradient_bytes,
        })
    return rows
