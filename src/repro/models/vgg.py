"""VGG-16 workload model (Simonyan & Zisserman, 2014).

13 convolutional layers followed by 3 fully connected layers.  The FC
layers hold ~90% of the parameters (fc6 alone is 102.7M), so VGG's
gradient traffic is dominated by a few huge tensors that appear *early*
in the backward pass — the classic communication-bound workload where
the paper reports Horovod scaling efficiency of only 40%.
"""

from __future__ import annotations

from repro.models.base import LayerSpec, ModelSpec, ParameterSpec

#: (in_channels, out_channels, spatial_size) of each 3x3 conv, 224x224 input.
_CONV_PLAN = [
    (3, 64, 224), (64, 64, 224),
    (64, 128, 112), (128, 128, 112),
    (128, 256, 56), (256, 256, 56), (256, 256, 56),
    (256, 512, 28), (512, 512, 28), (512, 512, 28),
    (512, 512, 14), (512, 512, 14), (512, 512, 14),
]

#: (in_features, out_features) of the classifier.
_FC_PLAN = [(25088, 4096), (4096, 4096), (4096, 1000)]

#: Table I targets.
TABLE1_PARAMETERS = 138_300_000
TABLE1_FLOPS = 31e9


def build_vgg16() -> ModelSpec:
    """Construct the VGG-16 spec, normalised to the paper's Table I."""
    layers = []
    for index, (cin, cout, size) in enumerate(_CONV_PLAN):
        name = f"conv{index + 1}"
        weight = ParameterSpec(f"{name}.weight", 9 * cin * cout)
        bias = ParameterSpec(f"{name}.bias", cout)
        flops = 2.0 * 9 * cin * cout * size * size
        layers.append(LayerSpec(name, (weight, bias), flops))
    for index, (fin, fout) in enumerate(_FC_PLAN):
        name = f"fc{index + 6}"
        weight = ParameterSpec(f"{name}.weight", fin * fout)
        bias = ParameterSpec(f"{name}.bias", fout)
        layers.append(LayerSpec(name, (weight, bias), 2.0 * fin * fout))
    spec = ModelSpec(
        name="vgg16",
        layers=tuple(layers),
        compute_occupancy=0.50,
        category="CV",
        sample_unit="images",
        default_batch_size=64,
        dataset="imagenet",
    )
    return spec.scaled_to(TABLE1_PARAMETERS, TABLE1_FLOPS)
