"""ResNet-50 / ResNet-101 workload models (He et al., 2016).

Bottleneck residual networks.  Compared to VGG, the parameters are spread
over many small conv/batch-norm tensors (~160 gradients for ResNet-50),
making gradient *packing* (merging small tensors into all-reduce units)
essential — and giving the best scalability in the paper (≥95% scaling
efficiency with AIACC at 256 GPUs).

Parameter totals are normalised to the paper's Table I (25.6M / 29.4M);
the timing model uses the conventional 2-FLOPs-per-MAC forward counts
(8.2G / 16G) while Table I reports the paper's MAC-based 4G / 8G.
"""

from __future__ import annotations

from repro.models.base import LayerSpec, ModelSpec, ParameterSpec

#: Bottleneck stage plan: (blocks, width) with stride-halved spatial sizes.
_STAGES_50 = [(3, 64, 56), (4, 128, 28), (6, 256, 14), (3, 512, 7)]
_STAGES_101 = [(3, 64, 56), (4, 128, 28), (23, 256, 14), (3, 512, 7)]

RESNET50_TABLE1_PARAMETERS = 25_600_000
RESNET50_TABLE1_FLOPS = 4e9
RESNET101_TABLE1_PARAMETERS = 29_400_000
RESNET101_TABLE1_FLOPS = 8e9


def _conv_bn(name: str, cin: int, cout: int, k: int,
             size: int) -> tuple[list[ParameterSpec], float]:
    """Conv(k x k) + BatchNorm parameter tensors and forward FLOPs."""
    params = [
        ParameterSpec(f"{name}.conv.weight", k * k * cin * cout),
        ParameterSpec(f"{name}.bn.weight", cout),
        ParameterSpec(f"{name}.bn.bias", cout),
    ]
    flops = 2.0 * k * k * cin * cout * size * size
    return params, flops


def _build_resnet(name: str, stages: list[tuple[int, int, int]],
                  table_params: int, table_flops: float,
                  timing_flops: float,
                  compute_occupancy: float) -> ModelSpec:
    layers: list[LayerSpec] = []
    stem_params, stem_flops = _conv_bn("stem", 3, 64, 7, 112)
    layers.append(LayerSpec("stem", tuple(stem_params), stem_flops))

    cin = 64
    for stage_idx, (blocks, width, size) in enumerate(stages):
        cout = width * 4
        for block_idx in range(blocks):
            prefix = f"layer{stage_idx + 1}.{block_idx}"
            params: list[ParameterSpec] = []
            flops = 0.0
            for conv_idx, (ci, co, k) in enumerate(
                    [(cin, width, 1), (width, width, 3), (width, cout, 1)]):
                p, f = _conv_bn(f"{prefix}.conv{conv_idx + 1}", ci, co, k,
                                size)
                params.extend(p)
                flops += f
            if cin != cout:  # downsample shortcut
                p, f = _conv_bn(f"{prefix}.downsample", cin, cout, 1, size)
                params.extend(p)
                flops += f
            layers.append(LayerSpec(prefix, tuple(params), flops))
            cin = cout

    fc = LayerSpec("fc", (
        ParameterSpec("fc.weight", cin * 1000),
        ParameterSpec("fc.bias", 1000),
    ), 2.0 * cin * 1000)
    layers.append(fc)

    spec = ModelSpec(
        name=name,
        layers=tuple(layers),
        compute_occupancy=compute_occupancy,
        category="CV",
        sample_unit="images",
        default_batch_size=80,
        dataset="imagenet",
        table_flops=table_flops,
    )
    return spec.scaled_to(table_params, timing_flops)


def build_resnet50() -> ModelSpec:
    """ResNet-50: 25.6M parameters in ~160 small gradient tensors."""
    return _build_resnet(
        "resnet50", _STAGES_50,
        RESNET50_TABLE1_PARAMETERS, RESNET50_TABLE1_FLOPS,
        timing_flops=2 * RESNET50_TABLE1_FLOPS,
        compute_occupancy=0.55,
    )


def build_resnet101() -> ModelSpec:
    """ResNet-101: deeper variant, 29.4M parameters per the paper."""
    return _build_resnet(
        "resnet101", _STAGES_101,
        RESNET101_TABLE1_PARAMETERS, RESNET101_TABLE1_FLOPS,
        timing_flops=2 * RESNET101_TABLE1_FLOPS,
        compute_occupancy=0.60,
    )
