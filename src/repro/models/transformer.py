"""Transformer-family workload models: Transformer, BERT-Large, GPT-2 XL.

Transformer-based DNNs produce a *large number* of gradient tensors
(4 attention matrices + 2 MLP matrices + biases + layer norms per block),
which is why the paper observes that the auto-tuner chooses a *larger*
communication granularity for them (Section VIII-D): many medium tensors
pack well into bigger all-reduce units.

Per-sample FLOPs follow Table I (a "sample" is one sequence; Fig. 14's
batches average 128 tokens per sample).  GPT-2 XL (1,558M parameters) is
the RDMA showcase of Section VIII-D.
"""

from __future__ import annotations

from repro.models.base import LayerSpec, ModelSpec, ParameterSpec

TRANSFORMER_TABLE1_PARAMETERS = 66_500_000
TRANSFORMER_TABLE1_FLOPS = 145e9
BERT_TABLE1_PARAMETERS = 302_200_000
BERT_TABLE1_FLOPS = 232e9
GPT2_XL_PARAMETERS = 1_558_000_000
#: Not in Table I; scaled from BERT by parameter ratio.
GPT2_XL_FLOPS = 1200e9


def _transformer_block(prefix: str, d_model: int, d_ff: int,
                       seq_len: int) -> LayerSpec:
    """One encoder/decoder block: attention + feed-forward + layer norms."""
    params = []
    for proj in ("q", "k", "v", "o"):
        params.append(ParameterSpec(f"{prefix}.attn.{proj}.weight",
                                    d_model * d_model))
        params.append(ParameterSpec(f"{prefix}.attn.{proj}.bias", d_model))
    params.append(ParameterSpec(f"{prefix}.mlp.fc1.weight", d_model * d_ff))
    params.append(ParameterSpec(f"{prefix}.mlp.fc1.bias", d_ff))
    params.append(ParameterSpec(f"{prefix}.mlp.fc2.weight", d_ff * d_model))
    params.append(ParameterSpec(f"{prefix}.mlp.fc2.bias", d_model))
    for ln in ("ln1", "ln2"):
        params.append(ParameterSpec(f"{prefix}.{ln}.weight", d_model))
        params.append(ParameterSpec(f"{prefix}.{ln}.bias", d_model))
    # 2 FLOPs/MAC: projections + attention scores + MLP, per token.
    flops_per_token = 2.0 * (4 * d_model * d_model
                             + 2 * seq_len * d_model
                             + 2 * d_model * d_ff)
    return LayerSpec(prefix, tuple(params), flops_per_token * seq_len)


def _build_transformer_family(
    name: str,
    num_blocks: int,
    d_model: int,
    d_ff: int,
    vocab: int,
    seq_len: int,
    table_params: int,
    table_flops: float,
    compute_occupancy: float,
    default_batch_size: int,
) -> ModelSpec:
    layers = [LayerSpec("embedding", (
        ParameterSpec("embedding.weight", vocab * d_model),
    ), 0.0)]
    for index in range(num_blocks):
        layers.append(_transformer_block(f"block{index}", d_model, d_ff,
                                         seq_len))
    layers.append(LayerSpec("lm_head", (
        ParameterSpec("lm_head.weight", d_model * vocab),
    ), 2.0 * d_model * vocab * seq_len))
    spec = ModelSpec(
        name=name,
        layers=tuple(layers),
        compute_occupancy=compute_occupancy,
        category="NLP",
        sample_unit="sequences",
        default_batch_size=default_batch_size,
        dataset="wikitext-en",
    )
    return spec.scaled_to(table_params, table_flops)


def build_transformer() -> ModelSpec:
    """The original Transformer (Vaswani et al.), 66.5M parameters."""
    return _build_transformer_family(
        "transformer", num_blocks=12, d_model=512, d_ff=2048,
        vocab=32000, seq_len=128,
        table_params=TRANSFORMER_TABLE1_PARAMETERS,
        table_flops=TRANSFORMER_TABLE1_FLOPS,
        compute_occupancy=0.75,
        default_batch_size=32,
    )


def build_bert_large() -> ModelSpec:
    """BERT-Large: 24 blocks, d=1024; 302.2M parameters per Table I."""
    return _build_transformer_family(
        "bert-large", num_blocks=24, d_model=1024, d_ff=4096,
        vocab=30522, seq_len=128,
        table_params=BERT_TABLE1_PARAMETERS,
        table_flops=BERT_TABLE1_FLOPS,
        compute_occupancy=0.85,
        default_batch_size=16,
    )


def build_gpt2_xl() -> ModelSpec:
    """GPT-2 XL: 48 blocks, d=1600; 1,558M parameters (Section VIII-D)."""
    return _build_transformer_family(
        "gpt2-xl", num_blocks=48, d_model=1600, d_ff=6400,
        vocab=50257, seq_len=128,
        table_params=GPT2_XL_PARAMETERS,
        table_flops=GPT2_XL_FLOPS,
        compute_occupancy=0.92,
        default_batch_size=4,
    )
