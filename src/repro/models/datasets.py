"""Dataset descriptors.

The throughput experiments never inspect sample content, so a dataset is
described only by its size and sample unit.  The convergence model
(:mod:`repro.training.convergence`) additionally needs epochs-to-accuracy
calibration, which lives with the dataset it was measured on.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ReproError


@dataclasses.dataclass(frozen=True)
class DatasetSpec:
    """Size and shape of a training dataset."""

    name: str
    num_samples: int
    sample_unit: str

    def __post_init__(self) -> None:
        if self.num_samples < 1:
            raise ReproError(f"dataset {self.name!r} must have samples")

    def iterations_per_epoch(self, global_batch: int) -> int:
        """Minibatch steps per epoch at ``global_batch`` samples/step."""
        if global_batch < 1:
            raise ReproError("global batch must be >= 1")
        return max(1, self.num_samples // global_batch)


#: ImageNet-1k training split (ILSVRC-2012).
IMAGENET = DatasetSpec("imagenet", 1_281_167, "images")

#: English Wikitext corpus, in 128-token sequences.
WIKITEXT_EN = DatasetSpec("wikitext-en", 800_000, "sequences")

#: The paper's production CTR system processes "100+ billion entries in
#: 5 hours"; one epoch here is a representative shard.
CTR_PRODUCTION = DatasetSpec("ctr-production", 100_000_000_000, "entries")

_REGISTRY = {d.name: d for d in (IMAGENET, WIKITEXT_EN, CTR_PRODUCTION)}


def get_dataset(name: str) -> DatasetSpec:
    """Look up a dataset by name."""
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError(
            f"unknown dataset {name!r}; available: {sorted(_REGISTRY)}"
        ) from None
