"""DNN workload models: layer tables, gradient schedules and datasets.

The specs reproduce the communication-relevant shape of every model the
paper evaluates (Table I plus GPT-2 XL and the production CTR system):
per-layer gradient tensor sizes, backward production order/timing, FLOPs
and GPU occupancy.
"""

from repro.models.base import (
    GradientEvent,
    LayerSpec,
    ModelSpec,
    ModelSpecError,
    ParameterSpec,
    make_layer,
)
from repro.models.ctr import build_ctr
from repro.models.insightface import build_insightface
from repro.models.datasets import (
    CTR_PRODUCTION,
    IMAGENET,
    WIKITEXT_EN,
    DatasetSpec,
    get_dataset,
)
from repro.models.resnet import build_resnet50, build_resnet101
from repro.models.synthetic import random_model_spec
from repro.models.transformer import (
    build_bert_large,
    build_gpt2_xl,
    build_transformer,
)
from repro.models.vgg import build_vgg16
from repro.models.zoo import TABLE1_MODELS, available_models, get_model, table1

__all__ = [
    "CTR_PRODUCTION",
    "DatasetSpec",
    "GradientEvent",
    "IMAGENET",
    "LayerSpec",
    "ModelSpec",
    "ModelSpecError",
    "ParameterSpec",
    "TABLE1_MODELS",
    "WIKITEXT_EN",
    "available_models",
    "build_bert_large",
    "build_ctr",
    "build_insightface",
    "build_gpt2_xl",
    "build_resnet50",
    "build_resnet101",
    "build_transformer",
    "build_vgg16",
    "get_dataset",
    "get_model",
    "make_layer",
    "random_model_spec",
    "table1",
]
