"""Synthetic workload generator.

Random-but-realistic :class:`~repro.models.base.ModelSpec` instances for
property-based testing and tuner robustness studies: layer sizes follow a
log-normal distribution (like real DNNs, where a few tensors dominate),
FLOPs correlate with parameter counts through a configurable reuse
factor, and the gradient production schedule inherits the usual
reverse-layer order.
"""

from __future__ import annotations

import numpy as np

from repro.errors import ReproError
from repro.models.base import LayerSpec, ModelSpec, ParameterSpec


def random_model_spec(
    seed: int,
    num_layers: int = 24,
    total_parameters: int = 50_000_000,
    total_forward_flops: float = 20e9,
    size_spread: float = 1.5,
    compute_occupancy: float | None = None,
    name: str | None = None,
) -> ModelSpec:
    """Generate a random workload with the given totals.

    Parameters
    ----------
    size_spread:
        Sigma of the log-normal layer-size distribution; 0 gives equal
        layers, 2+ gives VGG-like domination by a few huge tensors.
    """
    if num_layers < 1:
        raise ReproError("num_layers must be >= 1")
    if total_parameters < num_layers:
        raise ReproError("need at least one parameter per layer")
    if total_forward_flops <= 0:
        raise ReproError("total_forward_flops must be positive")
    if size_spread < 0:
        raise ReproError("size_spread must be >= 0")
    rng = np.random.default_rng(seed)

    weights = rng.lognormal(mean=0.0, sigma=size_spread, size=num_layers)
    sizes = np.maximum(
        1, (weights / weights.sum() * total_parameters).astype(np.int64))
    flop_weights = rng.lognormal(mean=0.0, sigma=size_spread / 2,
                                 size=num_layers)
    flops = flop_weights / flop_weights.sum() * total_forward_flops

    layers = []
    for index in range(num_layers):
        params = [ParameterSpec(f"layer{index:03d}.weight",
                                int(sizes[index]))]
        if rng.random() < 0.5 and sizes[index] > 64:
            bias = max(1, int(sizes[index] ** 0.5))
            params.append(ParameterSpec(f"layer{index:03d}.bias", bias))
        layers.append(LayerSpec(f"layer{index:03d}", tuple(params),
                                float(flops[index])))

    occupancy = compute_occupancy if compute_occupancy is not None \
        else float(rng.uniform(0.3, 0.9))
    return ModelSpec(
        name=name or f"synthetic-{seed}",
        layers=tuple(layers),
        compute_occupancy=occupancy,
        category="CV",
        sample_unit="samples",
        default_batch_size=32,
        dataset="imagenet",
    )
