"""Exception hierarchy for the repro package.

Every error raised by this library derives from :class:`ReproError` so that
callers can catch library failures with a single ``except`` clause while
still letting programming errors (``TypeError`` etc.) propagate.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


class SimulationError(ReproError):
    """The discrete-event simulator reached an inconsistent state."""


class InvariantViolation(ReproError):
    """A simulation-wide invariant was violated.

    Raised by the opt-in :class:`repro.sim.invariants.InvariantChecker`
    (``AIACCConfig.check_invariants`` / ``--check-invariants`` /
    ``REPRO_CHECK_INVARIANTS=1``).  Structured so a violation in a
    multi-worker run pinpoints itself: it names the invariant, the rank it
    is attributable to (when known), and the simulated time.
    """

    def __init__(self, invariant: str, detail: str,
                 rank: "int | None" = None,
                 sim_time: "float | None" = None) -> None:
        where = []
        if rank is not None:
            where.append(f"rank {rank}")
        if sim_time is not None:
            where.append(f"t={sim_time:.6f}s")
        suffix = f" ({', '.join(where)})" if where else ""
        super().__init__(
            f"invariant {invariant!r} violated{suffix}: {detail}"
        )
        self.invariant = invariant
        self.detail = detail
        self.rank = rank
        self.sim_time = sim_time


class ProcessInterrupt(ReproError):
    """A simulated process was interrupted by another process.

    The interrupting party may attach an arbitrary ``cause`` describing why
    the interrupt happened (e.g. a simulated node failure).
    """

    def __init__(self, cause: object = None) -> None:
        super().__init__(f"process interrupted (cause={cause!r})")
        self.cause = cause


class FaultInjectionError(ReproError):
    """A fault-injection plan was invalid or could not be delivered."""


class PeerDeadError(ReproError):
    """A communication peer was declared dead by the failure detector.

    Raised by the AIACC engine after a collective misses its deadline and
    every bounded retry (with exponential backoff) also times out — the
    paper's §IV fault-tolerance path.  Carries the detection timeline so
    recovery drivers can report detection latency.
    """

    def __init__(self, phase: str, suspected_at_s: float,
                 confirmed_at_s: float, cause: object = None) -> None:
        super().__init__(
            f"peer declared dead during {phase!r} "
            f"(suspected at t={suspected_at_s:.3f}s, "
            f"confirmed at t={confirmed_at_s:.3f}s)"
        )
        self.phase = phase
        self.suspected_at_s = suspected_at_s
        self.confirmed_at_s = confirmed_at_s
        self.cause = cause


class NetworkError(ReproError):
    """Invalid network configuration or flow state."""


class TopologyError(ReproError):
    """Invalid cluster topology description."""


class CollectiveError(ReproError):
    """A collective operation was invoked with inconsistent arguments."""


class RegistrationError(ReproError):
    """Gradient registration failed (duplicate/unknown parameters, ...)."""


class SynchronizationError(ReproError):
    """Gradient synchronization reached an inconsistent state."""


class SyncTimeoutError(SynchronizationError):
    """A decentralized synchronization round missed its deadline.

    The min-allreduce ring is master-free, so there is no central health
    tracker: a rank whose round does not complete within the deadline can
    only *suspect* that some peer died (it cannot yet name the culprit).
    """

    def __init__(self, rank: int, round_index: int,
                 deadline_s: float) -> None:
        super().__init__(
            f"rank {rank} sync round {round_index} missed its "
            f"{deadline_s:g}s deadline; suspecting a peer failure"
        )
        self.rank = rank
        self.round_index = round_index
        self.deadline_s = deadline_s


class PackingError(ReproError):
    """Gradient packing/unpacking failed."""


class AutotuneError(ReproError):
    """Auto-tuning was configured incorrectly."""


class TrainingError(ReproError):
    """The training driver hit an unrecoverable condition."""


class CheckpointError(ReproError):
    """Saving or restoring a checkpoint failed."""


class TranslationError(ReproError):
    """The source-to-source translator could not convert the input script."""


class ReportInputError(ReproError):
    """A report command was pointed at a missing or corrupt input file.

    Raised (instead of an unhandled ``OSError``/``json.JSONDecodeError``
    traceback) by ``python -m repro report`` and the campaign report
    path so scripted pipelines get a typed failure and a non-zero exit.
    """


class CampaignError(ReproError):
    """The experiment-campaign service hit an invalid request or state."""


class CampaignStoreError(CampaignError):
    """The durable campaign results store is missing, corrupt or denied
    an atomic state transition it needed."""


class TransientWorkerError(ReproError):
    """A campaign run failed in a way that is expected to succeed on
    retry (injected by test runners; the retry policy's canonical
    transient error class)."""


class ClusterError(ReproError):
    """The multi-tenant cluster runtime hit an invalid request or state."""


class AdmissionRejected(ClusterError):
    """A job could not be admitted before its queueing deadline.

    Raised by the placement scheduler when the conservative
    bandwidth/slot estimate still does not fit after the capped-backoff
    retry budget is exhausted.  Carries the job identity and the last
    reason the admission check failed so callers can requeue, resize, or
    surface a typed error.
    """

    def __init__(self, job_id: str, deadline_s: float,
                 reason: str, attempts: int) -> None:
        super().__init__(
            f"job {job_id!r} rejected after {attempts} admission "
            f"attempt(s) over {deadline_s:g}s: {reason}"
        )
        self.job_id = job_id
        self.deadline_s = deadline_s
        self.reason = reason
        self.attempts = attempts


class NaNGradientError(TrainingError):
    """A NaN/Inf value was detected in a gradient tensor.

    Raised by the debugging support described in Section IV of the paper
    when ``nan_check`` is enabled and a non-finite gradient is produced.
    """

    def __init__(self, parameter_name: str, worker_rank: int) -> None:
        super().__init__(
            f"non-finite gradient for parameter {parameter_name!r} "
            f"on worker rank {worker_rank}"
        )
        self.parameter_name = parameter_name
        self.worker_rank = worker_rank
