"""The communication thread/stream pool (paper §V, Algorithm 1).

"Multi-streamed gradient communication is achieved by first creating a
thread pool with multiple CUDA stream contexts ... The MPI communication
process automatically dispatches an all-reduce unit to an available CUDA
stream."

The pool's *effective* concurrency is limited by GPU SM availability
while backward compute kernels are running (paper §VIII-A): the
:class:`~repro.sim.cuda.GPUDevice` contention model shrinks the pool
during backward and the full requested width becomes available once
compute finishes.
"""

from __future__ import annotations

import heapq
import typing as t

from repro.errors import ProcessInterrupt, ReproError
from repro.obs import Observability
from repro.sim.cuda import GPUDevice
from repro.sim.events import Event
from repro.sim.kernel import Simulator
from repro.sim.resources import Resource


class CommStreamPool:
    """A pool of communication streams with compute-aware concurrency."""

    def __init__(self, sim: Simulator, gpu: GPUDevice, num_streams: int,
                 compute_occupancy: float,
                 setup_latency_s: float = 0.0,
                 obs: Observability | None = None,
                 rank: int = 0) -> None:
        if num_streams < 1:
            raise ReproError("num_streams must be >= 1")
        self.sim = sim
        self.gpu = gpu
        self.requested_streams = num_streams
        self.compute_occupancy = compute_occupancy
        #: Observability sink for per-stream unit spans and metrics.
        self.obs = obs or Observability.disabled()
        #: Rank this pool's spans are attributed to (the timed engine
        #: follows one representative worker, rank 0).
        self.rank = rank
        #: Membership epoch of the worker group this pool serves; the
        #: elastic runtime bumps it so unit spans from different
        #: topologies are distinguishable in exported traces.
        self.epoch = 0
        #: Tenant identity for multi-job fabrics: when set, every unit
        #: span carries ``job`` in its meta so exported traces separate
        #: lanes per job (mirrors ``FluidNetwork.flow_job``).
        self.job: str | None = None
        #: Free CUDA-stream indices, smallest-first so the same workload
        #: lands units on the same lanes run after run.
        self._free_ids = list(range(num_streams))
        heapq.heapify(self._free_ids)
        #: Cost of creating *one* stream/communicator context — the
        #: constructor argument, kept under an unambiguous name (the
        #: argument used to be silently redefined from per-stream to
        #: total under the same attribute name).
        self.per_stream_setup_latency_s = float(setup_latency_s)
        #: One-time cost of creating all ``num_streams`` contexts, paid
        #: sequentially at :meth:`setup` (stream construction is a
        #: host-side serial operation).
        self.total_setup_latency_s = float(setup_latency_s) * num_streams
        self._resource = Resource(
            sim,
            capacity=gpu.effective_streams(num_streams, compute_occupancy),
            name="comm-streams",
        )
        #: Units actually granted a stream (counted on grant, not on
        #: request: a queued request cancelled by an interrupt never
        #: dispatched anything and must not inflate this metric).
        self.dispatched_units = 0
        self._m_dispatched = self.obs.registry.counter(
            "aiacc_dispatched_units_total",
            "All-reduce units granted a CUDA stream")
        self._m_in_flight = self.obs.registry.gauge(
            "aiacc_streams_in_flight",
            "CUDA stream slots currently held by units")

    # -- lifecycle -----------------------------------------------------------

    def setup(self) -> Event:
        """Event firing once stream contexts are constructed."""
        return self.sim.timeout(self.total_setup_latency_s)

    def compute_finished(self) -> None:
        """Backward compute ended: all requested streams become usable."""
        self._resource.resize(self.requested_streams)

    def compute_started(self) -> None:
        """Backward compute (re)started: SM contention shrinks the pool.

        In-flight units keep their streams; the reduced width applies to
        new dispatches (matching how the hardware scheduler admits new
        kernels).
        """
        limited = self.gpu.effective_streams(
            self.requested_streams, self.compute_occupancy)
        self._resource.resize(limited)

    # -- dispatch -----------------------------------------------------------

    @property
    def effective_streams(self) -> int:
        """Streams currently admitted by the hardware scheduler."""
        return self._resource.capacity

    @property
    def in_flight(self) -> int:
        return self._resource.in_use

    def acquire(self, streams: int = 1) -> Event:
        """Wait for ``streams`` free slots (granted atomically).

        ``dispatched_units`` is incremented when the grant fires, not
        when the request is queued — a request later withdrawn by an
        interrupt (:meth:`run_unit`'s cancel path) never dispatched and
        must not drift the post-recovery metrics.
        """
        grant = self._resource.acquire(streams)

        def _count_grant(event: Event) -> None:
            if event.ok:
                self.dispatched_units += 1
                self._m_dispatched.inc(rank=self.rank)
                self._m_in_flight.set(self._resource.in_use,
                                      rank=self.rank)

        grant.add_callback(_count_grant)
        return grant

    def release(self, streams: int = 1) -> None:
        self._resource.release(streams)
        self._m_in_flight.set(self._resource.in_use, rank=self.rank)

    def run_unit(self, work: t.Callable[[], Event],
                 streams: int = 1, label: str = "unit",
                 **span_meta: object) -> t.Generator:
        """Process generator: acquire stream(s), run ``work()``, release.

        ``streams`` > 1 models collectives that occupy several CUDA
        streams at once — the hierarchical all-reduce runs ``g`` parallel
        inter-node rings, one stream each (paper §V-B).

        With observability attached, the unit's occupancy is recorded as
        one timeline span per held CUDA stream (``label`` + ``span_meta``
        under category ``network``), so the exported trace shows exactly
        which lanes carried which unit — including units cut short by an
        interrupt, which are flagged ``interrupted``.

        Interrupt-safe: an abort while queued withdraws the acquire
        request (no leaked grant to a dead process); an abort while
        running releases the held streams.
        """
        request = self.acquire(streams)
        try:
            yield request
        except ProcessInterrupt:
            if not self._resource.cancel(request):
                self.release(streams)
            raise
        held = [heapq.heappop(self._free_ids)
                for _ in range(min(streams, len(self._free_ids)))]
        granted_at = self.sim.now
        interrupted = False
        try:
            yield work()
        except ProcessInterrupt:
            interrupted = True
            raise
        finally:
            timeline = self.obs.timeline
            diag = self.obs.diag
            if self.epoch:
                span_meta = dict(span_meta, epoch=self.epoch)
            if self.job is not None:
                span_meta = dict(span_meta, job=self.job)
            for stream_id in held:
                heapq.heappush(self._free_ids, stream_id)
                timeline.span(label, "network", self.rank, granted_at,
                              self.sim.now, stream=stream_id,
                              interrupted=interrupted, **span_meta)
                if diag is not None:
                    diag.observe_stream_span(
                        self.rank, stream_id, self.sim.now - granted_at,
                        float(t.cast(float, span_meta.get("bytes", 0.0))))
            self.release(streams)
