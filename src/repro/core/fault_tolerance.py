"""Fault tolerance and elastic deployment (paper §IV).

"As a production library, AIACC-Training also provides fault-tolerance to
restart the training process from the last checkpoint upon node failure
and elastic deployment by propagating training parameters into newly
added computing nodes."

:class:`CheckpointManager` persists model/optimizer state atomically and
restores the most recent valid checkpoint.  :class:`ElasticCoordinator`
manages the worker set: on failure it shrinks the group and restores from
checkpoint; on scale-up it broadcasts the live parameters to joiners (no
checkpoint round-trip needed).
"""

from __future__ import annotations

import json
import os
import pathlib
import typing as t

import numpy as np

from repro.errors import CheckpointError
from repro.collectives.broadcast import broadcast as numeric_broadcast

State = t.Dict[str, np.ndarray]


class CheckpointManager:
    """Atomic on-disk checkpoints of training state."""

    def __init__(self, directory: str | pathlib.Path,
                 keep_last: int = 3) -> None:
        if keep_last < 1:
            raise CheckpointError("keep_last must be >= 1")
        self.directory = pathlib.Path(directory)
        self.directory.mkdir(parents=True, exist_ok=True)
        self.keep_last = keep_last
        #: Checkpoint files :meth:`load` skipped because they were
        #: corrupt, newest first.
        self.skipped: list[pathlib.Path] = []
        # Sweep temp files left by a writer that crashed mid-save; they
        # are partial by definition and must never shadow a real
        # checkpoint.
        for stale in self.directory.glob(".tmp-ckpt-*.npz"):
            stale.unlink()

    # -- save ------------------------------------------------------------------

    def save(self, iteration: int, parameters: State,
             optimizer_state: State | None = None,
             metadata: t.Mapping[str, object] | None = None) -> pathlib.Path:
        """Write checkpoint ``iteration`` atomically; prune old ones."""
        if iteration < 0:
            raise CheckpointError("iteration must be >= 0")
        path = self.directory / f"ckpt-{iteration:010d}.npz"
        # The temp name must NOT match the ckpt-*.npz glob: a writer
        # crashing between the write and the rename would otherwise
        # leave a partial file that latest() happily returns.
        tmp = self.directory / f".tmp-{path.name}"
        payload: dict[str, np.ndarray] = {
            f"param/{k}": np.asarray(v) for k, v in parameters.items()}
        for key, value in (optimizer_state or {}).items():
            payload[f"opt/{key}"] = np.asarray(value)
        payload["meta/json"] = np.frombuffer(
            json.dumps({"iteration": iteration,
                        **dict(metadata or {})}).encode(), dtype=np.uint8)
        # Flush + fsync before the rename: os.replace is atomic against
        # readers, but only a sync makes the *content* durable — without
        # it a crash just after the rename can surface a checkpoint
        # whose metadata/tensor bytes never hit the disk.
        with open(tmp, "wb") as fh:
            np.savez(fh, **payload)
            fh.flush()
            os.fsync(fh.fileno())
        tmp.replace(path)
        self._prune()
        return path

    # -- load ------------------------------------------------------------------

    def latest(self) -> pathlib.Path | None:
        """Path of the newest checkpoint, or None when none exist."""
        checkpoints = sorted(self.directory.glob("ckpt-*.npz"))
        return checkpoints[-1] if checkpoints else None

    def load(self, path: pathlib.Path | None = None
             ) -> tuple[int, State, State, dict]:
        """Restore (iteration, parameters, optimizer_state, metadata).

        Without an explicit ``path``, tries checkpoints newest-first and
        falls back past corrupt files (recording them in
        :attr:`skipped`): recovery restarting from a checkpoint that was
        being overwritten when the node died must not be stranded by the
        newest file being garbage.
        """
        if path is not None:
            return self._load_one(path)
        candidates = sorted(self.directory.glob("ckpt-*.npz"), reverse=True)
        if not candidates:
            raise CheckpointError(
                f"no checkpoint found in {self.directory}"
            )
        failures: list[str] = []
        for target in candidates:
            try:
                return self._load_one(target)
            except CheckpointError as exc:
                self.skipped.append(target)
                failures.append(str(exc))
        raise CheckpointError(
            f"all {len(candidates)} checkpoints in {self.directory} are "
            f"corrupt: {'; '.join(failures)}"
        )

    def _load_one(self, target: pathlib.Path
                  ) -> tuple[int, State, State, dict]:
        try:
            with np.load(target) as data:
                parameters: State = {}
                optimizer_state: State = {}
                metadata: dict = {}
                for key in data.files:
                    if key.startswith("param/"):
                        parameters[key[len("param/"):]] = data[key]
                    elif key.startswith("opt/"):
                        optimizer_state[key[len("opt/"):]] = data[key]
                    elif key == "meta/json":
                        metadata = json.loads(bytes(data[key]).decode())
        except (OSError, ValueError) as exc:
            raise CheckpointError(f"corrupt checkpoint {target}: {exc}") \
                from exc
        iteration = int(metadata.pop("iteration", 0))
        return iteration, parameters, optimizer_state, metadata

    def _prune(self) -> None:
        checkpoints = sorted(self.directory.glob("ckpt-*.npz"))
        for stale in checkpoints[:-self.keep_last]:
            stale.unlink()


class ElasticCoordinator:
    """Tracks the live worker set and handles joins/failures."""

    def __init__(self, checkpoints: CheckpointManager,
                 initial_workers: int,
                 init_parameters: t.Callable[[], State] | None = None
                 ) -> None:
        if initial_workers < 1:
            raise CheckpointError("need at least one worker")
        self.checkpoints = checkpoints
        self.live_workers = initial_workers
        #: Factory for fresh parameters, used when a failure arrives
        #: before the first checkpoint was ever written (cold start).
        self.init_parameters = init_parameters
        self.restarts = 0
        self.joins = 0
        #: Workers that left *cleanly* (scale-down at an epoch boundary,
        #: no checkpoint restore) — distinct from :attr:`restarts`.
        self.departures = 0

    def on_failure(self, failed_workers: int = 1) -> tuple[int, State]:
        """Shrink the group and restore state from the last checkpoint.

        Returns ``(iteration, parameters)`` to resume from.  The failed
        workers' in-flight iteration is lost — exactly the paper's
        "restart the training process from the last checkpoint".

        Cold start: a failure that lands before the first checkpoint was
        written restarts from iteration 0 with freshly initialized
        parameters (via ``init_parameters``, or empty state) instead of
        raising mid-recovery.
        """
        if not 0 < failed_workers < self.live_workers:
            raise CheckpointError(
                f"cannot lose {failed_workers} of {self.live_workers} workers"
            )
        self.live_workers -= failed_workers
        self.restarts += 1
        if self.checkpoints.latest() is None:
            fresh = self.init_parameters() if self.init_parameters else {}
            return 0, fresh
        iteration, parameters, _, _ = self.checkpoints.load()
        return iteration, parameters

    def on_leave(self, departing_workers: int = 1) -> int:
        """Shrink the group after a *clean* departure (scale-down).

        Unlike :meth:`on_failure`, nothing is lost and nothing is
        restored: the survivors already hold the live parameters, so
        training continues from them — no checkpoint round-trip.
        Returns the new live worker count.
        """
        if not 0 < departing_workers < self.live_workers:
            raise CheckpointError(
                f"cannot release {departing_workers} of "
                f"{self.live_workers} workers"
            )
        self.live_workers -= departing_workers
        self.departures += departing_workers
        return self.live_workers

    def on_join(self, live_parameters: t.Sequence[State],
                new_workers: int = 1) -> list[State]:
        """Grow the group; broadcast live parameters to the joiners.

        ``live_parameters`` holds each existing worker's parameter dict;
        returns the parameter dicts of the *new total* worker set (the
        joiners receive rank-0's state via a pipelined broadcast, no
        checkpoint involved).
        """
        if new_workers < 1:
            raise CheckpointError("new_workers must be >= 1")
        if len(live_parameters) != self.live_workers:
            raise CheckpointError(
                f"expected state for {self.live_workers} live workers"
            )
        self.live_workers += new_workers
        self.joins += new_workers
        root = live_parameters[0]
        result: list[State] = [dict(p) for p in live_parameters] + \
            [dict() for _ in range(new_workers)]
        for name in sorted(root):
            slots: list[np.ndarray | None] = [None] * self.live_workers
            slots[0] = root[name].ravel()
            received = numeric_broadcast(slots, root=0)
            for rank in range(len(live_parameters), self.live_workers):
                result[rank][name] = received[rank].reshape(root[name].shape)
        return result
