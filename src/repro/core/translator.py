"""Source-to-source translation (paper §IV "Programming interface").

Two entry points, matching the two porting paths the paper describes:

:func:`translate_horovod_source`
    "porting Horovod distributed training programs to AIACC-Training ...
    means just changing one line of the code by replacing the import
    package from Horovod to Perseus."  Rewrites ``import horovod.<fw>``
    (and ``from horovod.<fw> import ...``) to the Perseus module.

:func:`translate_sequential_source`
    "AIACC-Training uses a compiler-based source-to-source translator to
    automatically convert the user program to AIACC-Training's Perseus
    API for distributed training."  An AST pass that, on a vanilla
    single-GPU training script:

    * inserts the Perseus import and ``init()`` call,
    * wraps recognised optimizer constructions (``SGD(...)`` /
      ``Adam(...)`` / ``AdamSGD(...)``) in ``DistributedOptimizer``,
    * scales the learning-rate keyword by the worker count (standard
      linear-scaling rule).
"""

from __future__ import annotations

import ast
import re

from repro.errors import TranslationError

#: Module that replaces horovod.* imports.
PERSEUS_MODULE = "repro.core.perseus"

#: Optimizer constructors the sequential translator recognises.
_OPTIMIZER_NAMES = {"SGD", "Adam", "AdamSGD"}

_HOROVOD_IMPORT = re.compile(
    r"^(\s*)import\s+horovod(?:\.\w+)*\s+as\s+(\w+)\s*$", re.MULTILINE)
_HOROVOD_FROM = re.compile(
    r"^(\s*)from\s+horovod(?:\.\w+)*\s+import\s+(.+)$", re.MULTILINE)
_HOROVOD_PLAIN = re.compile(
    r"^(\s*)import\s+horovod(?:\.\w+)*\s*$", re.MULTILINE)


def translate_horovod_source(source: str) -> str:
    """Rewrite Horovod imports to Perseus (the one-line port)."""
    try:
        ast.parse(source)
    except SyntaxError as exc:
        raise TranslationError(f"input is not valid Python: {exc}") from exc
    out = _HOROVOD_IMPORT.sub(
        rf"\1import {PERSEUS_MODULE} as \2", source)
    out = _HOROVOD_FROM.sub(
        rf"\1from {PERSEUS_MODULE} import \2", out)
    out = _HOROVOD_PLAIN.sub(
        rf"\1import {PERSEUS_MODULE}", out)
    if out == source and "horovod" in source:
        raise TranslationError(
            "found the string 'horovod' but no import to rewrite; "
            "is the import generated dynamically?"
        )
    return out


class _SequentialTransformer(ast.NodeTransformer):
    """Wraps optimizers and scales learning rates for data parallelism."""

    def __init__(self, session_var: str) -> None:
        self.session_var = session_var
        self.optimizers_wrapped = 0

    def visit_Call(self, node: ast.Call) -> ast.AST:
        self.generic_visit(node)
        name = self._callee_name(node)
        if name not in _OPTIMIZER_NAMES:
            return node
        self.optimizers_wrapped += 1
        for keyword in node.keywords:
            if keyword.arg in ("lr", "learning_rate"):
                keyword.value = ast.BinOp(
                    left=keyword.value,
                    op=ast.Mult(),
                    right=ast.Call(
                        func=ast.Attribute(
                            value=ast.Name(self.session_var, ast.Load()),
                            attr="size", ctx=ast.Load()),
                        args=[], keywords=[]),
                )
        return ast.Call(
            func=ast.Name("DistributedOptimizer", ast.Load()),
            args=[node],
            keywords=[ast.keyword(
                arg="session",
                value=ast.Name(self.session_var, ast.Load()))],
        )

    @staticmethod
    def _callee_name(node: ast.Call) -> str | None:
        if isinstance(node.func, ast.Name):
            return node.func.id
        if isinstance(node.func, ast.Attribute):
            return node.func.attr
        return None


def translate_sequential_source(source: str, num_workers: int = 8,
                                session_var: str = "_perseus") -> str:
    """Convert a sequential training script to the Perseus API.

    Raises :class:`TranslationError` when no optimizer construction is
    found — the script would not actually be distributed, and silent
    no-op translation is worse than an error.
    """
    if num_workers < 1:
        raise TranslationError("num_workers must be >= 1")
    try:
        tree = ast.parse(source)
    except SyntaxError as exc:
        raise TranslationError(f"input is not valid Python: {exc}") from exc

    transformer = _SequentialTransformer(session_var)
    tree = transformer.visit(tree)
    if transformer.optimizers_wrapped == 0:
        raise TranslationError(
            "no recognised optimizer construction "
            f"({sorted(_OPTIMIZER_NAMES)}) found in the script"
        )

    prelude = ast.parse(
        f"import {PERSEUS_MODULE} as perseus\n"
        "from repro.training.optimizer import DistributedOptimizer\n"
        f"{session_var} = perseus.init(size={num_workers})\n"
    ).body
    # Keep a module docstring (if any) first.
    body = list(tree.body)
    insert_at = 1 if (body and isinstance(body[0], ast.Expr)
                      and isinstance(body[0].value, ast.Constant)
                      and isinstance(body[0].value.value, str)) else 0
    tree.body = body[:insert_at] + prelude + body[insert_at:]
    ast.fix_missing_locations(tree)
    return ast.unparse(tree)
