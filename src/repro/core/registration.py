"""Gradient registration and the synchronization vector (paper §V-A.1).

"When loading a DNN model, the training worker registers the parameters to
participate in all-reduced gradient aggregation.  This will generate an
n-element gradient synchronization vector ... During gradient
registration, parameters are sorted and assigned a unique index."

Sorting parameter names gives every worker an identical id assignment
without any coordination — the foundation of the decentralized scheme:
workers "implicitly agree on gradient communication order" (§V-B).
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import RegistrationError
from repro.models.base import ModelSpec, ParameterSpec


class GradientRegistry:
    """Sorted parameter registry with a readiness bit vector."""

    def __init__(self) -> None:
        self._specs: dict[str, ParameterSpec] = {}
        self._index: dict[str, int] | None = None
        self._ordered: list[str] = []
        self._vector: np.ndarray | None = None

    # -- registration -----------------------------------------------------

    def register(self, parameter: ParameterSpec) -> None:
        """Register one parameter; must happen before :meth:`freeze`."""
        if self._index is not None:
            raise RegistrationError(
                "cannot register parameters after the registry is frozen"
            )
        if parameter.name in self._specs:
            raise RegistrationError(
                f"parameter {parameter.name!r} registered twice"
            )
        self._specs[parameter.name] = parameter

    def register_model(self, model: ModelSpec) -> None:
        """Register every parameter of ``model``."""
        for parameter in model.parameters():
            self.register(parameter)

    def freeze(self) -> None:
        """Sort parameters, assign ids, allocate the sync vector."""
        if self._index is not None:
            raise RegistrationError("registry already frozen")
        if not self._specs:
            raise RegistrationError("no parameters registered")
        self._ordered = sorted(self._specs)
        self._index = {name: i for i, name in enumerate(self._ordered)}
        self._vector = np.zeros(len(self._ordered), dtype=np.uint8)

    # -- queries -------------------------------------------------------------

    @property
    def frozen(self) -> bool:
        return self._index is not None

    def __len__(self) -> int:
        return len(self._specs)

    def grad_id(self, name: str) -> int:
        """Unique index of a registered parameter."""
        self._require_frozen()
        try:
            return t.cast(dict, self._index)[name]
        except KeyError:
            raise RegistrationError(f"unknown parameter {name!r}") from None

    def spec_by_id(self, grad_id: int) -> ParameterSpec:
        """Parameter spec for a gradient id."""
        self._require_frozen()
        if not 0 <= grad_id < len(self._ordered):
            raise RegistrationError(f"gradient id {grad_id} out of range")
        return self._specs[self._ordered[grad_id]]

    def ordered_specs(self) -> list[ParameterSpec]:
        """All parameters in gradient-id order."""
        self._require_frozen()
        return [self._specs[name] for name in self._ordered]

    # -- synchronization vector ---------------------------------------------

    @property
    def sync_vector(self) -> np.ndarray:
        """The local readiness bit vector (1 = gradient computed)."""
        self._require_frozen()
        return t.cast(np.ndarray, self._vector)

    def mark_ready(self, name: str) -> int:
        """Set the bit for ``name``; returns its gradient id."""
        grad_id = self.grad_id(name)
        t.cast(np.ndarray, self._vector)[grad_id] = 1
        return grad_id

    def reset_vector(self) -> None:
        """Zero the vector — "before each backward stage, elements ... are
        set to zeros" (§V-A.1)."""
        self._require_frozen()
        t.cast(np.ndarray, self._vector)[:] = 0

    def _require_frozen(self) -> None:
        if self._index is None:
            raise RegistrationError(
                "registry must be frozen before use; call freeze()"
            )
