"""Decentralized gradient synchronization (paper §V-A.2 and Fig. 8b).

Workers must agree on which gradients are ready everywhere before
all-reducing them.  Horovod routes this through a master; AIACC-Training
instead performs a **ring all-reduce with a min operator over the
readiness bit vector** among the per-worker MPI daemons:

    "To check if a gradient has been computed by all training workers, we
    apply a min reduction operator to each element of the gradient
    synchronization vector.  Since a min operator is used, a gradient in
    the all-reduced synchronization vector will be marked as 0 (not
    ready) if it has not been computed by any of the workers."

This module provides the message-level implementation used in numeric
mode (and by the tests that prove the min-reduction semantics); the timed
engine models the same exchange through
:meth:`repro.collectives.timed.TimedCollectives.control_roundtrip`.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import SynchronizationError, SyncTimeoutError
from repro.collectives.primitives import ReduceOp
from repro.collectives.ring import ring_allreduce_worker
from repro.core.registration import GradientRegistry
from repro.obs import Observability
from repro.sim.kernel import Simulator
from repro.sim.mpi import Communicator

#: Tag namespace for synchronization rounds; one stride per round.
_SYNC_TAG_BASE = 8 << 20
_SYNC_TAG_STRIDE = 16384
#: Tag offset per membership epoch.  An elastic transition re-keys the
#: sync namespace so a straggling pre-transition ring message can never
#: collide with the re-formed group's rounds.
_SYNC_EPOCH_STRIDE = 1 << 26


class DecentralizedSynchronizer:
    """Per-worker handle performing bit-vector min all-reduce rounds."""

    def __init__(self, sim: Simulator, comm: Communicator, rank: int,
                 registry: GradientRegistry,
                 obs: Observability | None = None,
                 epoch: int = 0) -> None:
        if not registry.frozen:
            raise SynchronizationError(
                "registry must be frozen before synchronization"
            )
        if epoch < 0:
            raise SynchronizationError("epoch must be >= 0")
        self.sim = sim
        self.comm = comm
        self.rank = rank
        self.registry = registry
        #: Membership epoch keying this synchronizer's tag namespace
        #: (epoch 0 preserves the historical tag layout).
        self.epoch = epoch
        self._round = 0
        #: Observability sink for negotiation spans/counters.
        self.obs = obs or Observability.disabled()
        self._m_rounds = self.obs.registry.counter(
            "aiacc_sync_rounds_total",
            "Decentralized readiness synchronization rounds")

    def sync_round(self, timeout_s: float | None = None) -> t.Generator:
        """Simulated-process generator for one synchronization round.

        All workers must enter the same round number.  Returns the array
        of gradient ids that are ready on **every** worker.

        With ``timeout_s`` set, the round races a deadline: the design is
        master-free (no central health tracker, paper §IV), so a rank
        whose ring pass does not complete in time can only *suspect* a
        peer failure — it raises :class:`SyncTimeoutError` and leaves
        confirmation to the caller's retry policy.
        """
        round_index = self._round
        tag_base = (_SYNC_TAG_BASE + self.epoch * _SYNC_EPOCH_STRIDE
                    + round_index * _SYNC_TAG_STRIDE)
        self._round += 1
        started_at = self.sim.now
        local = self.registry.sync_vector.copy()
        checker = getattr(self.sim, "invariants", None)
        worker = self.sim.spawn(ring_allreduce_worker(
            self.sim, self.comm, self.rank, local,
            op=ReduceOp.MIN, tag_base=tag_base),
            name=f"sync.r{self.rank}")
        if checker is not None:
            checker.on_sync_worker(self, self.rank, round_index, worker)
        if timeout_s is None:
            reduced = yield worker
        else:
            index, value = yield self.sim.any_of(
                [worker, self.sim.timeout(timeout_s)])
            if index != 0:
                # The ring worker must not be abandoned: alive, it keeps
                # consuming this round's tags and peer messages, which
                # collide with the retry round's exchanges.
                if worker.can_interrupt:
                    worker.interrupt("sync deadline missed")
                raise SyncTimeoutError(self.rank, round_index, timeout_s)
            reduced = value
        mask = t.cast(np.ndarray, reduced)
        if mask.shape != local.shape:
            raise SynchronizationError("sync vector shape changed mid-round")
        ready = np.flatnonzero(mask == 1)
        if checker is not None:
            checker.report_sync_result(self.rank, round_index, len(mask),
                                       ready)
        self.obs.timeline.span("sync-round", "negotiate", self.rank,
                               started_at, self.sim.now,
                               round=round_index, ready=len(ready))
        if self.obs.diag is not None:
            self.obs.diag.observe_negotiation(
                self.rank, self.sim.now - started_at)
        self._m_rounds.inc(rank=self.rank)
        return ready


def synchronize_all(
    registries: t.Sequence[GradientRegistry],
) -> list[np.ndarray]:
    """Run one synchronization round across all workers' registries.

    Convenience wrapper for tests/examples: builds a fresh simulator,
    returns each worker's view of the globally ready gradient ids (which
    the min-reduction guarantees are identical).
    """
    if not registries:
        raise SynchronizationError("need at least one registry")
    lengths = {len(r.sync_vector) for r in registries}
    if len(lengths) != 1:
        raise SynchronizationError(
            f"workers disagree on parameter count: {lengths}"
        )
    sim = Simulator()
    comm = Communicator(sim, size=len(registries))
    synchronizers = [
        DecentralizedSynchronizer(sim, comm, rank, registry)
        for rank, registry in enumerate(registries)
    ]
    processes = [sim.spawn(s.sync_round(), name=f"sync{i}")
                 for i, s in enumerate(synchronizers)]
    sim.run(until=sim.all_of(processes))
    return [t.cast(np.ndarray, p.value) for p in processes]
