"""Gradient packing: forming all-reduce units (paper §V Gradient packing).

"Because the tensor size of gradients can vary, and the optimal
communication granularity depends on the communication network, the
AIACC-Training runtime may choose to split the tensor into multiple units
or merge multiple tensors across multiple synchronized gradients to form
a suitable all-reduce unit."

Packing is deterministic across workers: synchronized gradients are
processed in gradient-id order, so "all workers also implicitly agree on
gradient communication order" without any extra coordination.

Unlike Horovod's fusion buffer, units may contain *slices* of a tensor —
a 410 MB VGG fc6 gradient becomes ~26 units of 16 MB that can ride 26
concurrent streams instead of crawling through one.
"""

from __future__ import annotations

import dataclasses
import typing as t

from repro.errors import PackingError

#: Minimum slice size, as a fraction of the packing granularity.  Byte
#: counts are floats, so closing a unit at *exact* granularity lets
#: accumulated rounding error leave a ~1e-10-byte residue of "room" that
#: would be emitted as a degenerate :class:`TensorSlice` (and, worse, the
#: residue can be below the float epsilon of ``current_bytes`` so adding
#: it is a no-op and packing stalls).  Units are therefore closed once
#: within ``granularity * SLICE_EPSILON_FRACTION`` of full, and residues
#: below that epsilon are absorbed into the preceding slice.
SLICE_EPSILON_FRACTION = 1e-9


@dataclasses.dataclass(frozen=True)
class TensorSlice:
    """A contiguous byte range of one gradient tensor."""

    grad_id: int
    offset: float
    nbytes: float

    def __post_init__(self) -> None:
        if self.nbytes <= 0 or self.offset < 0:
            raise PackingError(
                f"invalid slice of gradient {self.grad_id}: "
                f"offset={self.offset}, nbytes={self.nbytes}"
            )


@dataclasses.dataclass(frozen=True)
class AllReduceUnit:
    """One unit of communication: a bundle of tensor slices."""

    unit_id: int
    slices: tuple[TensorSlice, ...]

    @property
    def nbytes(self) -> float:
        return sum(s.nbytes for s in self.slices)


class GradientPacker:
    """Splits/merges synchronized gradients into all-reduce units."""

    def __init__(self, granularity_bytes: float) -> None:
        if granularity_bytes <= 0:
            raise PackingError("granularity must be positive")
        self.granularity_bytes = float(granularity_bytes)
        self._next_unit_id = 0

    def pack(self, gradients: t.Sequence[tuple[int, float]]
             ) -> list[AllReduceUnit]:
        """Pack ``(grad_id, nbytes)`` pairs into all-reduce units.

        Gradients are processed in id order; tensors larger than the
        granularity are sliced, smaller ones merged.  Every unit except
        possibly the last is ``granularity_bytes`` within a relative
        tolerance of :data:`SLICE_EPSILON_FRACTION`: byte counts are
        floats, and demanding *exact* fullness would emit degenerate
        sub-epsilon residue slices (or stall outright when the residue
        falls below the accumulator's float epsilon).
        """
        if not gradients:
            return []
        seen: set[int] = set()
        for grad_id, nbytes in gradients:
            if grad_id in seen:
                raise PackingError(f"gradient {grad_id} packed twice")
            if nbytes <= 0:
                raise PackingError(f"gradient {grad_id} has no bytes")
            seen.add(grad_id)

        epsilon = self.granularity_bytes * SLICE_EPSILON_FRACTION
        units: list[AllReduceUnit] = []
        current: list[TensorSlice] = []
        current_bytes = 0.0
        for grad_id, nbytes in sorted(gradients):
            offset = 0.0
            remaining = float(nbytes)
            while remaining > 0:
                room = self.granularity_bytes - current_bytes
                take = min(remaining, room)
                if remaining - take <= epsilon:
                    # Never leave a sub-epsilon tail of this gradient for
                    # the next unit: absorb it into this slice instead of
                    # emitting a degenerate residue slice later.
                    take = remaining
                current.append(TensorSlice(grad_id, offset, take))
                current_bytes += take
                offset += take
                remaining -= take
                if self.granularity_bytes - current_bytes <= epsilon:
                    units.append(self._emit(current))
                    current = []
                    current_bytes = 0.0
        if current:
            units.append(self._emit(current))
        return units

    def _emit(self, slices: list[TensorSlice]) -> AllReduceUnit:
        unit = AllReduceUnit(self._next_unit_id, tuple(slices))
        self._next_unit_id += 1
        return unit


def unpack(units: t.Sequence[AllReduceUnit]) -> dict[int, float]:
    """Regroup unit slices back into whole tensors (§V-B "unpack").

    Returns ``{grad_id: total_bytes}`` and validates slice contiguity —
    the inverse of :meth:`GradientPacker.pack`.
    """
    pieces: dict[int, list[TensorSlice]] = {}
    for unit in units:
        for piece in unit.slices:
            pieces.setdefault(piece.grad_id, []).append(piece)
    totals: dict[int, float] = {}
    for grad_id, slices in pieces.items():
        slices.sort(key=lambda s: s.offset)
        position = 0.0
        for piece in slices:
            if abs(piece.offset - position) > 1e-6:
                raise PackingError(
                    f"gradient {grad_id} has a gap/overlap at byte "
                    f"{position:g} (slice starts at {piece.offset:g})"
                )
            position += piece.nbytes
        totals[grad_id] = position
    return totals
