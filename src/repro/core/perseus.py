"""Perseus: the Horovod-compatible numeric API of AIACC-Training.

"AIACC-Training provides a unified communication API (named Perseus) to
all supported programming models ... porting Horovod distributed training
programs to AIACC-Training ... means just changing one line of the code by
replacing the import package from Horovod to Perseus" (paper §IV).

This module is the **numeric** execution mode: it runs ``size`` simulated
data-parallel workers inside one Python process and performs real
reductions on real numpy arrays through the full AIACC pipeline —
registration, decentralized bit-vector synchronization, packing into
all-reduce units, ring all-reduce, unpacking — so end-to-end gradient math
is verifiable.  The timed mode (:class:`repro.core.engine.AIACCBackend`)
shares the same components but models performance instead.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import RegistrationError, SynchronizationError
from repro.collectives.primitives import ReduceOp
from repro.collectives.broadcast import broadcast as numeric_broadcast
from repro.collectives.ring import ring_allreduce
from repro.core.compression import FP16Compressor, NullCompressor
from repro.core.debugging import GradientDebugger
from repro.core.packing import GradientPacker
from repro.core.registration import GradientRegistry
from repro.core.runtime import AIACCConfig
from repro.core.synchronization import synchronize_all
from repro.models.base import ParameterSpec

Gradients = t.Dict[str, np.ndarray]


class PerseusSession:
    """A group of simulated data-parallel workers sharing one model.

    Parameters
    ----------
    size:
        Number of data-parallel workers.
    config:
        AIACC runtime configuration (granularity, compression, NaN check).
    """

    def __init__(self, size: int, config: AIACCConfig | None = None) -> None:
        if size < 1:
            raise RegistrationError(f"session size must be >= 1, got {size}")
        self._size = size
        self.config = config or AIACCConfig()
        self._registries = [GradientRegistry() for _ in range(size)]
        self._shapes: dict[str, tuple[int, ...]] = {}
        #: Per-rank gradients pushed but not yet globally reduced.
        self._pending: list[dict[str, np.ndarray]] = [
            {} for _ in range(size)]
        self.debugger = GradientDebugger(nan_check=self.config.nan_check)
        if self.config.fp16_compression:
            self.compressor: FP16Compressor | NullCompressor = \
                FP16Compressor()
        else:
            self.compressor = NullCompressor()
        self.steps_completed = 0

    # -- Horovod-style introspection ----------------------------------------

    def size(self) -> int:
        """Number of workers (Horovod's ``hvd.size()``)."""
        return self._size

    def local_size(self) -> int:
        """Workers per node; the numeric mode runs one simulated node."""
        return self._size

    def ranks(self) -> range:
        """All worker ranks."""
        return range(self._size)

    # -- registration -----------------------------------------------------------

    def register_parameters(self,
                            shapes: t.Mapping[str, tuple[int, ...]]) -> None:
        """Register the model's parameters on every worker.

        Mirrors Fig. 8a: each worker registers the same sorted parameter
        set and receives identical gradient ids.
        """
        if self._shapes:
            raise RegistrationError("parameters already registered")
        if not shapes:
            raise RegistrationError("no parameters to register")
        self._shapes = {name: tuple(shape) for name, shape in shapes.items()}
        for registry in self._registries:
            for name, shape in self._shapes.items():
                count = int(np.prod(shape)) if shape else 1
                registry.register(ParameterSpec(name, count))
            registry.freeze()

    @property
    def registered(self) -> bool:
        return bool(self._shapes)

    # -- collectives ---------------------------------------------------------------

    def allreduce(self, arrays: t.Sequence[np.ndarray],
                  op: ReduceOp = ReduceOp.AVG) -> list[np.ndarray]:
        """Plain all-reduce of one array per worker (``hvd.allreduce``)."""
        flat = [np.asarray(a, dtype=np.float64).ravel() for a in arrays]
        reduced = ring_allreduce(flat, op=op)
        return [r.reshape(np.asarray(a).shape)
                for r, a in zip(reduced, arrays)]

    def broadcast_parameters(self, parameters: t.Sequence[Gradients | None],
                             root_rank: int = 0) -> list[Gradients]:
        """Broadcast the root's parameter dict to all workers.

        Horovod's ``hvd.broadcast_parameters``; also the elastic-join path
        (paper §IV: "propagating training parameters into newly added
        computing nodes").
        """
        root = parameters[root_rank]
        if root is None:
            raise RegistrationError("root worker has no parameters")
        result: list[Gradients] = [dict() for _ in parameters]
        for name in sorted(root):
            received = numeric_broadcast(
                [root[name].ravel() if rank == root_rank else None
                 for rank in range(len(parameters))],
                root=root_rank)
            for rank, value in enumerate(received):
                result[rank][name] = value.reshape(root[name].shape)
        return result

    # -- asynchronous (partial-readiness) flow ------------------------------------

    def push_gradient(self, rank: int, name: str,
                      gradient: np.ndarray) -> None:
        """Deposit one locally computed gradient (paper §V-A.2).

        Mirrors the framework hook pushing tensors into the gradient
        queue as backward propagation produces them — in arbitrary order,
        possibly before other workers have the same tensor.
        """
        if not 0 <= rank < self._size:
            raise RegistrationError(f"rank {rank} out of range")
        if not self._shapes:
            raise RegistrationError("register_parameters() first")
        if name not in self._shapes:
            raise RegistrationError(f"unknown parameter {name!r}")
        pending = self._pending[rank]
        if name in pending:
            raise RegistrationError(
                f"gradient {name!r} pushed twice on rank {rank}"
            )
        self.debugger.observe(name, gradient, worker_rank=rank)
        pending[name] = np.asarray(gradient, dtype=np.float64)
        self._registries[rank].mark_ready(name)

    def reduce_ready(self) -> tuple[list[Gradients], list[str]]:
        """Run one synchronization round and reduce what is ready.

        Performs the decentralized bit-vector min all-reduce; tensors
        that *every* worker has pushed are averaged and returned (and
        consumed); tensors still missing somewhere stay pending — the
        exact semantics of Fig. 8b.

        Returns ``(per-worker reduced gradients, ready parameter names)``.
        """
        if not self._shapes:
            raise RegistrationError("register_parameters() first")
        ready_ids = synchronize_all(self._registries)[0]
        specs = self._registries[0].ordered_specs()
        ready_names = [specs[i].name for i in ready_ids]
        results: list[Gradients] = [dict() for _ in range(self._size)]
        for name in ready_names:
            stacked = [self._pending[rank].pop(name)
                       for rank in range(self._size)]
            reduced = ring_allreduce(
                [value.ravel() for value in stacked], op=ReduceOp.SUM)
            for rank in range(self._size):
                results[rank][name] = (
                    reduced[rank] / self._size).reshape(
                    self._shapes[name])
            for registry in self._registries:
                # Consume the bit so the next round reflects only new
                # pushes ("before each backward stage ... set to zeros").
                registry.sync_vector[registry.grad_id(name)] = 0
        return results, ready_names

    def pending_counts(self) -> list[int]:
        """Gradients pushed but not yet globally reduced, per worker."""
        return [len(self._pending[rank]) for rank in range(self._size)]

    # -- the gradient step --------------------------------------------------------

    def reduce_gradients(self,
                         worker_grads: t.Sequence[Gradients]
                         ) -> list[Gradients]:
        """Run one full AIACC gradient exchange; returns averaged gradients.

        Pipeline per paper §V: NaN check → mark readiness → decentralized
        min-all-reduce synchronization → pack into all-reduce units →
        ring all-reduce each unit → unpack → average.
        """
        self._validate_step_input(worker_grads)
        wire_dtype = np.float16 if self.config.fp16_compression \
            else np.float32

        # 1. Debug checks + readiness marking.
        for rank, grads in enumerate(worker_grads):
            registry = self._registries[rank]
            registry.reset_vector()
            for name, gradient in grads.items():
                self.debugger.observe(name, gradient, worker_rank=rank)
                registry.mark_ready(name)

        # 2. Decentralized synchronization (bit-vector min all-reduce).
        ready_views = synchronize_all(self._registries)
        expected = len(self._registries[0].sync_vector)
        for view in ready_views:
            if len(view) != expected:
                raise SynchronizationError(
                    "workers disagree on ready gradients in a dense step"
                )

        # 3. Pack into all-reduce units (element granularity).
        specs = self._registries[0].ordered_specs()
        element_bytes = 2 if self.config.fp16_compression else 4
        granularity_elements = max(
            1, int(self.config.granularity_bytes // element_bytes))
        packer = GradientPacker(granularity_elements)
        units = packer.pack([(i, spec.num_elements)
                             for i, spec in enumerate(specs)])

        # 4. Build per-worker wire buffers in gradient-id order.
        buffers = []
        for rank, grads in enumerate(worker_grads):
            parts = [
                self.compressor.compress(
                    np.asarray(grads[spec.name], dtype=np.float32).ravel())
                for spec in specs
            ]
            buffers.append(np.concatenate(parts).astype(wire_dtype))

        # 5. All-reduce each unit across workers (SUM, averaged at unpack).
        reduced = [np.empty_like(buffer, dtype=np.float64)
                   for buffer in buffers]
        offsets = np.cumsum([0] + [s.num_elements for s in specs])
        for unit in units:
            for piece in unit.slices:
                lo = int(offsets[piece.grad_id] + piece.offset)
                hi = lo + int(piece.nbytes)
                outs = ring_allreduce(
                    [buffer[lo:hi].astype(np.float64)
                     for buffer in buffers],
                    op=ReduceOp.SUM)
                for rank, out in enumerate(outs):
                    reduced[rank][lo:hi] = out

        # 6. Unpack back to named tensors, averaging.
        results: list[Gradients] = []
        for rank in range(self._size):
            grads: Gradients = {}
            for index, spec in enumerate(specs):
                lo, hi = int(offsets[index]), int(offsets[index + 1])
                value = reduced[rank][lo:hi] / self._size
                grads[spec.name] = self.compressor.decompress(
                    value.astype(wire_dtype)).astype(np.float64).reshape(
                    self._shapes[spec.name])
            results.append(grads)
        # Clear readiness bits so a later push_gradient()/reduce_ready()
        # flow starts from a clean vector.
        for registry in self._registries:
            registry.reset_vector()
        self.steps_completed += 1
        return results

    # -- internals -------------------------------------------------------------------

    def _validate_step_input(self,
                             worker_grads: t.Sequence[Gradients]) -> None:
        if not self._shapes:
            raise RegistrationError(
                "register_parameters() must run before reduce_gradients()"
            )
        if any(self._pending[rank] for rank in range(self._size)):
            raise SynchronizationError(
                "cannot run a dense reduce_gradients() step while "
                "push_gradient()/reduce_ready() gradients are pending"
            )
        if len(worker_grads) != self._size:
            raise RegistrationError(
                f"expected gradients from {self._size} workers, "
                f"got {len(worker_grads)}"
            )
        expected = set(self._shapes)
        for rank, grads in enumerate(worker_grads):
            if set(grads) != expected:
                missing = expected.symmetric_difference(grads)
                raise RegistrationError(
                    f"worker {rank} gradient keys mismatch: {sorted(missing)}"
                )


def init(size: int, config: AIACCConfig | None = None) -> PerseusSession:
    """Create a Perseus session (the Horovod ``hvd.init()`` analogue)."""
    return PerseusSession(size, config=config)
