"""AIACC-Training runtime configuration.

The three hyperparameters of Section VI — number of concurrent
communication streams, gradient communication granularity, and all-reduce
algorithm — plus the production feature toggles of Section IV.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ReproError
from repro.sim.invariants import invariants_enabled_by_env

#: Search bounds observed in the paper's deployments ("the number of
#: concurrent CUDA streams varies between 2 and 24", §VIII-D).
MIN_STREAMS = 1
MAX_STREAMS = 24

#: Granularity bounds for packing gradients into all-reduce units.
MIN_GRANULARITY_BYTES = 512 * 1024
MAX_GRANULARITY_BYTES = 256 * 1024 * 1024

#: Default cap on the failure detector's exponential per-attempt
#: deadline (and backoff) growth, as a multiple of the base timeout.
#: Without a cap, ``comm_retries`` retries give the last attempt a
#: ``2**retries x timeout`` deadline, so confirming a dead peer can take
#: far longer than ``retries x timeout``.
DETECTION_DEADLINE_CAP_FACTOR = 4.0


@dataclasses.dataclass(frozen=True)
class AIACCConfig:
    """Tunable communication parameters and feature switches."""

    #: Concurrent communication streams (CUDA streams / TCP connections).
    num_streams: int = 8
    #: Target byte size of one all-reduce unit; small tensors are merged
    #: up to it and large tensors split down to it (paper §V-B).
    granularity_bytes: float = 16e6
    #: All-reduce algorithm: "ring", "hierarchical" (the paper's tree),
    #: or a planner-synthesized backend ("halving-doubling",
    #: "multi-tree", "ina" — see :mod:`repro.collectives.planner`).
    algorithm: str = "ring"
    #: Transmit gradients as fp16 (Section X: "half-precision
    #: representation to accelerate gradient transmission").
    fp16_compression: bool = False
    #: Raise NaNGradientError when a non-finite gradient is produced.
    nan_check: bool = False
    #: Run the Section VI auto-tuner during warm-up.
    autotune: bool = False
    #: Iteration budget of the auto-tuning warm-up phase (paper: n = 100).
    autotune_budget: int = 100
    #: Deadline for the decentralized readiness sync round; a rank that
    #: misses it suspects a peer failure (paper §IV fault tolerance).
    #: ``None`` disables detection (the healthy-path default).
    sync_timeout_s: float | None = None
    #: Per-all-reduce-unit deadline before the unit is retried.
    unit_timeout_s: float | None = None
    #: Bounded retries after a timed-out collective before the peer is
    #: declared dead.
    comm_retries: int = 2
    #: Base of the exponential backoff between retries.
    retry_backoff_s: float = 0.5
    #: Hard cap on the failure detector's per-attempt deadline (and the
    #: backoff slept between attempts).  ``None`` caps at
    #: ``DETECTION_DEADLINE_CAP_FACTOR x`` the phase's base timeout, so
    #: total confirmation latency stays linear in ``comm_retries``
    #: instead of exponential.
    max_detection_deadline_s: float | None = None
    #: Run under the simulation-wide invariant checker
    #: (:mod:`repro.sim.invariants`): resource-accounting ledgers,
    #: unit-plan/sync-round cross-worker agreement, quiescence at
    #: iteration boundaries.  Defaults to the ``REPRO_CHECK_INVARIANTS``
    #: environment flag (the ``--check-invariants`` CLI flag sets it).
    check_invariants: bool = dataclasses.field(
        default_factory=invariants_enabled_by_env)

    def __post_init__(self) -> None:
        if not MIN_STREAMS <= self.num_streams <= MAX_STREAMS:
            raise ReproError(
                f"num_streams must be within [{MIN_STREAMS}, {MAX_STREAMS}]"
            )
        if not MIN_GRANULARITY_BYTES <= self.granularity_bytes \
                <= MAX_GRANULARITY_BYTES:
            raise ReproError(
                "granularity_bytes must be within "
                f"[{MIN_GRANULARITY_BYTES}, {MAX_GRANULARITY_BYTES}]"
            )
        from repro.collectives.timed import ALGORITHMS
        if self.algorithm not in ALGORITHMS:
            raise ReproError(
                f"algorithm must be one of {ALGORITHMS}, "
                f"got {self.algorithm!r}"
            )
        if self.autotune_budget < 1:
            raise ReproError("autotune_budget must be >= 1")
        if self.sync_timeout_s is not None and self.sync_timeout_s <= 0:
            raise ReproError("sync_timeout_s must be positive when set")
        if self.unit_timeout_s is not None and self.unit_timeout_s <= 0:
            raise ReproError("unit_timeout_s must be positive when set")
        if self.comm_retries < 0:
            raise ReproError("comm_retries must be >= 0")
        if self.retry_backoff_s < 0:
            raise ReproError("retry_backoff_s must be >= 0")
        if self.max_detection_deadline_s is not None \
                and self.max_detection_deadline_s <= 0:
            raise ReproError(
                "max_detection_deadline_s must be positive when set")

    @property
    def wire_dtype_bytes(self) -> int:
        """Bytes per gradient element on the wire."""
        return 2 if self.fp16_compression else 4

    def replace(self, **changes: object) -> "AIACCConfig":
        """Return a copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)
