"""AIACC-Training runtime configuration.

The three hyperparameters of Section VI — number of concurrent
communication streams, gradient communication granularity, and all-reduce
algorithm — plus the production feature toggles of Section IV.
"""

from __future__ import annotations

import dataclasses

from repro.errors import ReproError

#: Search bounds observed in the paper's deployments ("the number of
#: concurrent CUDA streams varies between 2 and 24", §VIII-D).
MIN_STREAMS = 1
MAX_STREAMS = 24

#: Granularity bounds for packing gradients into all-reduce units.
MIN_GRANULARITY_BYTES = 512 * 1024
MAX_GRANULARITY_BYTES = 256 * 1024 * 1024


@dataclasses.dataclass(frozen=True)
class AIACCConfig:
    """Tunable communication parameters and feature switches."""

    #: Concurrent communication streams (CUDA streams / TCP connections).
    num_streams: int = 8
    #: Target byte size of one all-reduce unit; small tensors are merged
    #: up to it and large tensors split down to it (paper §V-B).
    granularity_bytes: float = 16e6
    #: "ring" or "hierarchical" (the paper's tree) all-reduce.
    algorithm: str = "ring"
    #: Transmit gradients as fp16 (Section X: "half-precision
    #: representation to accelerate gradient transmission").
    fp16_compression: bool = False
    #: Raise NaNGradientError when a non-finite gradient is produced.
    nan_check: bool = False
    #: Run the Section VI auto-tuner during warm-up.
    autotune: bool = False
    #: Iteration budget of the auto-tuning warm-up phase (paper: n = 100).
    autotune_budget: int = 100

    def __post_init__(self) -> None:
        if not MIN_STREAMS <= self.num_streams <= MAX_STREAMS:
            raise ReproError(
                f"num_streams must be within [{MIN_STREAMS}, {MAX_STREAMS}]"
            )
        if not MIN_GRANULARITY_BYTES <= self.granularity_bytes \
                <= MAX_GRANULARITY_BYTES:
            raise ReproError(
                "granularity_bytes must be within "
                f"[{MIN_GRANULARITY_BYTES}, {MAX_GRANULARITY_BYTES}]"
            )
        if self.algorithm not in ("ring", "hierarchical"):
            raise ReproError(
                f"algorithm must be 'ring' or 'hierarchical', "
                f"got {self.algorithm!r}"
            )
        if self.autotune_budget < 1:
            raise ReproError("autotune_budget must be >= 1")

    @property
    def wire_dtype_bytes(self) -> int:
        """Bytes per gradient element on the wire."""
        return 2 if self.fp16_compression else 4

    def replace(self, **changes: object) -> "AIACCConfig":
        """Return a copy with ``changes`` applied."""
        return dataclasses.replace(self, **changes)
