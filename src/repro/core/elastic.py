"""Elastic membership runtime: epoch-based scale-up/down (paper §IV).

"As a production library, AIACC-Training also provides ... elastic
deployment by propagating training parameters into newly added computing
nodes."  This module is the membership protocol behind that sentence.

A worker group carries a monotonically increasing **membership epoch**.
Epochs advance only at iteration boundaries, where the group is
quiescent; each advance is one of three transitions:

``scale-down``
    One or more nodes announced a clean departure.  The survivors excise
    them, re-form rings/streams over the smaller group and continue from
    the **live** parameters — no checkpoint restore, no lost work.

``scale-up``
    New node identities are admitted.  The joiners receive rank 0's live
    parameters through the pipelined broadcast of
    :meth:`~repro.core.fault_tolerance.ElasticCoordinator.on_join`; the
    runtime verifies all ranks came out bit-identical, rescales the
    learning rate for the larger global batch (linear scaling rule) and
    re-keys the auto-tuner's best-setting cache for the new topology.

``failure``
    A crash detected by the engine's failure detector.  The group
    shrinks and restores from the last checkpoint — the pre-existing
    recovery path, now also stamped with an epoch advance.

:class:`ElasticRuntime` owns the current :class:`MembershipView` and the
append-only log of :class:`EpochTransition` records; the recovery driver
(:func:`repro.training.resilience.run_fault_injected_training`) calls
into it at every boundary.
"""

from __future__ import annotations

import dataclasses
import typing as t

import numpy as np

from repro.errors import TrainingError
from repro.core.fault_tolerance import ElasticCoordinator, State

if t.TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.autotune.cache import SettingsCache
    from repro.core.runtime import AIACCConfig
    from repro.models.base import ModelSpec
    from repro.sim.topology import Cluster

#: Transition kinds an epoch advance may record.  ``preempt`` and
#: ``resume`` are the cluster overload controller's epoch-boundary
#: eviction / readmission of a whole tenant (see ``repro.cluster``).
TRANSITION_KINDS = ("scale-down", "scale-up", "failure",
                    "preempt", "resume")


@dataclasses.dataclass(frozen=True)
class MembershipView:
    """One epoch's worker group: which node identities participate.

    ``members`` holds *original* node identities in cluster order — the
    same identity space the fault injector plans against — so a node
    that leaves at epoch 2 and rejoins at epoch 5 is recognisably the
    same machine.
    """

    epoch: int
    members: tuple[int, ...]
    gpus_per_node: int

    def __post_init__(self) -> None:
        if self.epoch < 0:
            raise TrainingError("membership epoch must be >= 0")
        if not self.members:
            raise TrainingError("a worker group needs at least one member")
        if len(set(self.members)) != len(self.members):
            raise TrainingError(f"duplicate members: {self.members}")
        if self.gpus_per_node < 1:
            raise TrainingError("gpus_per_node must be >= 1")

    @property
    def num_nodes(self) -> int:
        return len(self.members)

    @property
    def world_size(self) -> int:
        """GPU workers in this epoch's group."""
        return len(self.members) * self.gpus_per_node


@dataclasses.dataclass(frozen=True)
class EpochTransition:
    """Record of one membership-epoch boundary."""

    #: Epoch *entered* by this transition.
    epoch: int
    #: Simulated time of the boundary.
    at_s: float
    #: One of :data:`TRANSITION_KINDS`.
    kind: str
    #: Original node identities excised at this boundary.
    departed: tuple[int, ...]
    #: Original node identities admitted at this boundary.
    joined: tuple[int, ...]
    world_before: int
    world_after: int
    #: True when training continued from the live parameters (clean
    #: scale-down / scale-up); False when state restored from checkpoint.
    live_continuation: bool
    #: Whether the joiners' broadcast state was verified bit-identical
    #: to rank 0's (``None`` when no broadcast happened).
    broadcast_identical: bool | None
    #: Iteration training resumed from after the boundary.
    resumed_iteration: int
    #: Linear-scaling-rule learning-rate multiplier for the new world
    #: size, relative to the initial deployment.
    lr_scale: float
    #: Simulated seconds spent re-forming the group (communicator
    #: rebuild, and for scale-up the live-parameter broadcast).
    reconfigure_time_s: float
    #: Label of the auto-tuner cache entry applied for the new topology,
    #: when the tuner re-keyed its best-setting cache.
    retuned: str | None = None

    def __post_init__(self) -> None:
        if self.kind not in TRANSITION_KINDS:
            raise TrainingError(
                f"kind must be one of {TRANSITION_KINDS}, got {self.kind!r}")
        if self.world_before < 1 or self.world_after < 1:
            raise TrainingError("world sizes must be >= 1")
        if self.reconfigure_time_s < 0:
            raise TrainingError("reconfigure_time_s must be >= 0")


class ElasticRuntime:
    """Epoch bookkeeping + coordinator calls for the recovery driver.

    Owns the current :class:`MembershipView`, the transition log, the
    linear-scaling learning-rate rule and the tuner re-key on topology
    change.  The driver remains responsible for the simulated-time costs
    (reconfigure pauses) and for rebuilding the train context; this
    class guarantees the *bookkeeping* is consistent: members stay
    unique, epochs only move forward, the coordinator's live-worker
    count tracks the view's world size.
    """

    def __init__(self, coordinator: ElasticCoordinator,
                 members: t.Sequence[int], gpus_per_node: int,
                 settings_cache: "SettingsCache | None" = None) -> None:
        self.coordinator = coordinator
        self.view = MembershipView(0, tuple(members), gpus_per_node)
        self.settings_cache = settings_cache
        #: World size of the initial deployment — the linear-scaling
        #: rule's reference point.
        self.initial_world_size = self.view.world_size
        self.transitions: list[EpochTransition] = []
        if coordinator.live_workers != self.view.world_size:
            raise TrainingError(
                f"coordinator tracks {coordinator.live_workers} workers "
                f"but the membership view holds {self.view.world_size}")

    # -- queries -------------------------------------------------------------

    @property
    def epoch(self) -> int:
        return self.view.epoch

    @property
    def members(self) -> tuple[int, ...]:
        return self.view.members

    def lr_scale(self, world_size: int | None = None) -> float:
        """Linear scaling rule multiplier for ``world_size`` workers.

        Goyal et al.'s "linear scaling rule": when the global batch
        grows k×, multiply the learning rate by k.  Relative to the
        *initial* deployment so successive resizes compose.
        """
        world = self.view.world_size if world_size is None else world_size
        if world < 1:
            raise TrainingError("world_size must be >= 1")
        return world / self.initial_world_size

    # -- transitions ---------------------------------------------------------

    def scale_down(self, departed: t.Sequence[int], at_s: float,
                   resumed_iteration: int,
                   reconfigure_time_s: float) -> EpochTransition:
        """Excise cleanly departing nodes; continue from live state.

        No checkpoint restore: the survivors' parameters *are* the
        training state, so ``resumed_iteration`` is whatever iteration
        the group had completed — nothing is lost.
        """
        gone = tuple(dict.fromkeys(departed))
        if not gone:
            raise TrainingError("scale_down needs at least one departure")
        missing = [n for n in gone if n not in self.view.members]
        if missing:
            raise TrainingError(
                f"cannot excise non-members {missing} at epoch "
                f"{self.view.epoch}")
        survivors = tuple(n for n in self.view.members if n not in gone)
        if not survivors:
            raise TrainingError(
                "scale-down would leave an empty worker group")
        self.coordinator.on_leave(
            departing_workers=len(gone) * self.view.gpus_per_node)
        return self._advance(
            kind="scale-down", at_s=at_s, members=survivors,
            departed=gone, joined=(), live_continuation=True,
            broadcast_identical=None, resumed_iteration=resumed_iteration,
            reconfigure_time_s=reconfigure_time_s)

    def scale_up(self, joined: t.Sequence[int], at_s: float,
                 live_parameters: t.Sequence[State],
                 resumed_iteration: int, reconfigure_time_s: float,
                 retuned: str | None = None
                 ) -> tuple[list[State], EpochTransition]:
        """Admit joiners via pipelined live-parameter broadcast.

        ``live_parameters`` is each current worker's parameter dict (the
        coordinator validates the count).  Returns the new total worker
        set's states plus the transition record; the record's
        ``broadcast_identical`` asserts every rank came out bit-identical
        to rank 0 — the correctness contract of the broadcast path.
        """
        fresh = tuple(dict.fromkeys(joined))
        if not fresh:
            raise TrainingError("scale_up needs at least one joiner")
        clashes = [n for n in fresh if n in self.view.members]
        if clashes:
            raise TrainingError(
                f"cannot admit existing members {clashes} at epoch "
                f"{self.view.epoch}")
        states = self.coordinator.on_join(
            live_parameters,
            new_workers=len(fresh) * self.view.gpus_per_node)
        identical = _states_identical(states)
        transition = self._advance(
            kind="scale-up", at_s=at_s,
            members=self.view.members + fresh,
            departed=(), joined=fresh, live_continuation=True,
            broadcast_identical=identical,
            resumed_iteration=resumed_iteration,
            reconfigure_time_s=reconfigure_time_s, retuned=retuned)
        return states, transition

    def failure(self, dead: t.Sequence[int], at_s: float,
                resumed_iteration: int,
                reconfigure_time_s: float) -> EpochTransition:
        """Record the epoch advance of a crash recovery.

        The driver has already routed the state through
        :meth:`ElasticCoordinator.on_failure` (checkpoint restore) —
        this only advances the membership bookkeeping.
        """
        gone = tuple(dict.fromkeys(dead))
        if not gone:
            raise TrainingError("failure transition needs dead nodes")
        missing = [n for n in gone if n not in self.view.members]
        if missing:
            raise TrainingError(
                f"crashed nodes {missing} are not members at epoch "
                f"{self.view.epoch}")
        survivors = tuple(n for n in self.view.members if n not in gone)
        if not survivors:
            raise TrainingError("failure would leave an empty worker group")
        return self._advance(
            kind="failure", at_s=at_s, members=survivors,
            departed=gone, joined=(), live_continuation=False,
            broadcast_identical=None, resumed_iteration=resumed_iteration,
            reconfigure_time_s=reconfigure_time_s)

    # -- tuner re-key ---------------------------------------------------------

    def retune(self, model: "ModelSpec", cluster: "Cluster",
               config: "AIACCConfig"
               ) -> tuple["AIACCConfig", str | None]:
        """Re-key the tuner's best-setting cache for a new topology.

        Looks up the nearest remembered deployment for the resized
        cluster (paper §VI: settings are cached per computation graph ×
        topology) and applies its parameter point to ``config``.
        Returns ``(config, None)`` unchanged when no cache is attached
        or it has no usable entry.
        """
        if self.settings_cache is None:
            return config, None
        found = self.settings_cache.lookup(model, cluster.topology_graph())
        if found is None:
            return config, None
        entry, _distance = found
        point = entry.best_point
        return config.replace(
            num_streams=point.num_streams,
            granularity_bytes=point.granularity_bytes,
            algorithm=point.algorithm,
        ), entry.label

    # -- internals -----------------------------------------------------------

    def _advance(self, kind: str, at_s: float,
                 members: tuple[int, ...], departed: tuple[int, ...],
                 joined: tuple[int, ...], live_continuation: bool,
                 broadcast_identical: bool | None, resumed_iteration: int,
                 reconfigure_time_s: float,
                 retuned: str | None = None) -> EpochTransition:
        before = self.view
        after = MembershipView(before.epoch + 1, members,
                               before.gpus_per_node)
        if self.coordinator.live_workers != after.world_size:
            raise TrainingError(
                f"coordinator/view divergence at epoch {after.epoch}: "
                f"{self.coordinator.live_workers} != {after.world_size}")
        transition = EpochTransition(
            epoch=after.epoch, at_s=at_s, kind=kind,
            departed=departed, joined=joined,
            world_before=before.world_size, world_after=after.world_size,
            live_continuation=live_continuation,
            broadcast_identical=broadcast_identical,
            resumed_iteration=resumed_iteration,
            lr_scale=after.world_size / self.initial_world_size,
            reconfigure_time_s=reconfigure_time_s, retuned=retuned)
        self.view = after
        self.transitions.append(transition)
        return transition


def _states_identical(states: t.Sequence[State]) -> bool:
    """True when every worker's state is bit-identical to rank 0's."""
    if not states:
        return True
    root = states[0]
    for other in states[1:]:
        if set(other) != set(root):
            return False
        for name, value in root.items():
            if not np.array_equal(np.asarray(value),
                                  np.asarray(other[name])):
                return False
    return True
