"""Top-k gradient sparsification with error feedback.

The paper builds on the gradient-compression literature it cites (Deep
Gradient Compression, AdaComp — refs [7], [8]) and notes AIACC-Training
"supports communication optimization techniques like gradient
compression" (§I).  Beyond the fp16 path of
:mod:`repro.core.compression`, this module implements the classic top-k
scheme those papers use:

* only the ``k`` largest-magnitude gradient elements are transmitted
  (index + value pairs);
* the untransmitted *residual* is accumulated locally and added to the
  next step's gradient ("error feedback"), which is what preserves
  convergence.

The sparse exchange is an all-gather of (index, value) pairs rather than
an all-reduce; :func:`sparse_allreduce` provides the numeric semantics
and :func:`sparse_wire_bytes` the wire-volume model used for timing
what-ifs.
"""

from __future__ import annotations

import typing as t

import numpy as np

from repro.errors import ReproError

#: Bytes per transmitted element: 4-byte index + 4-byte fp32 value.
BYTES_PER_SPARSE_ELEMENT = 8


class TopKCompressor:
    """Per-tensor top-k selection with residual error feedback."""

    def __init__(self, compress_ratio: float = 0.01) -> None:
        if not 0 < compress_ratio <= 1:
            raise ReproError("compress_ratio must be in (0, 1]")
        self.compress_ratio = compress_ratio
        self._residuals: dict[str, np.ndarray] = {}

    def compress(self, name: str, gradient: np.ndarray
                 ) -> tuple[np.ndarray, np.ndarray]:
        """Return (indices, values) of the top-k corrected gradient.

        The gradient is first corrected by the stored residual; whatever
        is not selected becomes the new residual.
        """
        flat = gradient.ravel().astype(np.float64)
        residual = self._residuals.get(name)
        if residual is not None:
            flat = flat + residual
        k = max(1, int(np.ceil(flat.size * self.compress_ratio)))
        # argpartition is O(n); ties broken deterministically by index.
        candidates = np.argpartition(-np.abs(flat), k - 1)[:k]
        indices = np.sort(candidates)
        values = flat[indices]
        new_residual = flat.copy()
        new_residual[indices] = 0.0
        self._residuals[name] = new_residual
        return indices.astype(np.int64), values

    def residual_norm(self, name: str) -> float:
        """L2 norm of the currently stored residual for ``name``."""
        residual = self._residuals.get(name)
        return float(np.linalg.norm(residual)) if residual is not None \
            else 0.0


def sparse_allreduce(per_worker: t.Sequence[tuple[np.ndarray, np.ndarray]],
                     dense_size: int,
                     average: bool = True) -> np.ndarray:
    """Combine workers' (indices, values) into the dense mean gradient.

    Semantically an all-gather of sparse contributions followed by a
    local scatter-add — the standard DGC aggregation.
    """
    if dense_size < 1:
        raise ReproError("dense_size must be >= 1")
    if not per_worker:
        raise ReproError("need at least one worker contribution")
    dense = np.zeros(dense_size)
    for indices, values in per_worker:
        if len(indices) != len(values):
            raise ReproError("indices/values length mismatch")
        if len(indices) and (indices.min() < 0
                             or indices.max() >= dense_size):
            raise ReproError("sparse index out of range")
        np.add.at(dense, indices, values)
    if average:
        dense /= len(per_worker)
    return dense


def sparse_wire_bytes(num_elements: int, compress_ratio: float,
                      world_size: int) -> float:
    """Per-worker wire bytes for a sparse all-gather exchange.

    Each worker broadcasts its k (index, value) pairs to all peers; with
    a ring all-gather every worker sends/receives ``(n-1) x k`` pairs.
    Compare against the dense ring all-reduce's ``~2 x 4 x num_elements``
    to see where sparsification pays off (it stops paying when
    ``ratio > 1/n``, which is why DGC targets 0.1-1%).
    """
    if world_size < 1:
        raise ReproError("world_size must be >= 1")
    k = max(1, int(np.ceil(num_elements * compress_ratio)))
    return float((world_size - 1) * k * BYTES_PER_SPARSE_ELEMENT)


def train_step_with_topk(
    compressor_per_worker: t.Sequence[TopKCompressor],
    worker_grads: t.Sequence[t.Mapping[str, np.ndarray]],
) -> dict[str, np.ndarray]:
    """One synchronized sparse gradient exchange across workers.

    Returns the aggregated dense gradients (identical on every worker).
    """
    if len(compressor_per_worker) != len(worker_grads):
        raise ReproError("one compressor per worker required")
    names = sorted(worker_grads[0])
    aggregated: dict[str, np.ndarray] = {}
    for name in names:
        shape = worker_grads[0][name].shape
        size = int(np.prod(shape)) if shape else 1
        contributions = [
            compressor.compress(name, grads[name])
            for compressor, grads in zip(compressor_per_worker,
                                         worker_grads)
        ]
        aggregated[name] = sparse_allreduce(
            contributions, size).reshape(shape)
    return aggregated
