"""Gradient compression (paper §X).

"AIACC-Training adopts a similar idea [to gradient-compression work] by
using half-precision representation to accelerate gradient transmission."

The numeric path casts fp32 gradients to fp16 before the all-reduce and
back after; the timed path simply halves the wire bytes (see
:attr:`repro.core.runtime.AIACCConfig.wire_dtype_bytes`).  Values outside
the fp16 range are clamped to the largest finite fp16, mirroring NCCL's
half-precision behaviour.
"""

from __future__ import annotations

import dataclasses

import numpy as np

#: Largest finite fp16 magnitude; fp32 values beyond it are clamped.
FP16_MAX = float(np.finfo(np.float16).max)


@dataclasses.dataclass
class CompressionStats:
    """Byte accounting for one training run."""

    raw_bytes: float = 0.0
    wire_bytes: float = 0.0

    @property
    def ratio(self) -> float:
        """Compression ratio achieved so far (raw / wire)."""
        return self.raw_bytes / self.wire_bytes if self.wire_bytes else 1.0


class FP16Compressor:
    """Half-precision gradient compressor."""

    def __init__(self) -> None:
        self.stats = CompressionStats()

    def compress(self, gradient: np.ndarray) -> np.ndarray:
        """fp32 → fp16 with saturation at the fp16 range."""
        clipped = np.clip(gradient, -FP16_MAX, FP16_MAX)
        compressed = clipped.astype(np.float16)
        self.stats.raw_bytes += gradient.size * gradient.itemsize
        self.stats.wire_bytes += compressed.nbytes
        return compressed

    def decompress(self, gradient: np.ndarray) -> np.ndarray:
        """fp16 → fp32."""
        return gradient.astype(np.float32)


class NullCompressor:
    """Identity compressor (compression disabled)."""

    def __init__(self) -> None:
        self.stats = CompressionStats()

    def compress(self, gradient: np.ndarray) -> np.ndarray:
        self.stats.raw_bytes += gradient.size * gradient.itemsize
        self.stats.wire_bytes += gradient.size * gradient.itemsize
        return gradient

    def decompress(self, gradient: np.ndarray) -> np.ndarray:
        return gradient
