"""AIACC-Training core: the paper's primary contribution.

Components (paper section in parentheses):

- :mod:`repro.core.runtime` — tunable communication parameters (§VI);
- :mod:`repro.core.registration` — sorted parameter registry + readiness
  bit vector (§V-A.1);
- :mod:`repro.core.synchronization` — decentralized min-all-reduce
  gradient synchronization (§V-A.2);
- :mod:`repro.core.packing` — split/merge into all-reduce units (§V-B);
- :mod:`repro.core.streams` — the multi-stream communication pool with
  CUDA SM contention (§V, Algorithm 1);
- :mod:`repro.core.engine` — the timed backend combining all of the
  above (Fig. 6);
- :mod:`repro.core.perseus` — the Horovod-compatible numeric API (§IV);
- :mod:`repro.core.compression` — fp16 wire compression (§X);
- :mod:`repro.core.fault_tolerance` — checkpoints and elasticity (§IV);
- :mod:`repro.core.elastic` — epoch-based elastic membership:
  scale-up/down at iteration boundaries (§IV);
- :mod:`repro.core.debugging` — NaN attribution (§IV);
- :mod:`repro.core.translator` — source-to-source porting tool (§IV).
"""

from repro.core.compression import FP16Compressor, NullCompressor
from repro.core.debugging import GradientDebugger, check_finite
from repro.core.elastic import (
    ElasticRuntime,
    EpochTransition,
    MembershipView,
)
from repro.core.engine import AIACCBackend
from repro.core.fault_tolerance import CheckpointManager, ElasticCoordinator
from repro.core.message_engine import (
    MessageLevelResult,
    run_message_level_iteration,
)
from repro.core.packing import AllReduceUnit, GradientPacker, TensorSlice, unpack
from repro.core.perseus import PerseusSession, init
from repro.core.registration import GradientRegistry
from repro.core.runtime import AIACCConfig
from repro.core.sparsification import (
    TopKCompressor,
    sparse_allreduce,
    sparse_wire_bytes,
    train_step_with_topk,
)
from repro.core.streams import CommStreamPool
from repro.core.synchronization import DecentralizedSynchronizer, synchronize_all
from repro.core.translator import (
    translate_horovod_source,
    translate_sequential_source,
)

__all__ = [
    "AIACCBackend",
    "AIACCConfig",
    "AllReduceUnit",
    "CheckpointManager",
    "CommStreamPool",
    "DecentralizedSynchronizer",
    "ElasticCoordinator",
    "ElasticRuntime",
    "EpochTransition",
    "MembershipView",
    "FP16Compressor",
    "GradientDebugger",
    "GradientPacker",
    "GradientRegistry",
    "MessageLevelResult",
    "NullCompressor",
    "PerseusSession",
    "TensorSlice",
    "TopKCompressor",
    "sparse_allreduce",
    "sparse_wire_bytes",
    "train_step_with_topk",
    "check_finite",
    "init",
    "run_message_level_iteration",
    "synchronize_all",
    "translate_horovod_source",
    "translate_sequential_source",
    "unpack",
]
