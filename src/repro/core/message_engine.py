"""Message-level AIACC engine: the full pipeline, one process per worker.

The timed engine (:mod:`repro.core.engine`) follows one representative
worker and models the cluster through aggregate flows.  This module runs
the *entire* AIACC pipeline with a real simulated process per worker at
small scale:

* every worker produces its own gradient tensors on the backward
  schedule;
* readiness is agreed by actual bit-vector min all-reduce **messages**
  among the workers (over the cluster network, contending with gradient
  traffic);
* packing is computed independently per worker (and must agree — the
  implicit-agreement property of §V-B);
* each all-reduce unit is a real numeric ring all-reduce whose chunks are
  flows on the cluster links, dispatched through a per-worker stream
  pool.

It exists for validation: the numeric results must equal the
mathematical reduction, and the iteration wall-clock must agree with the
representative timed engine (``tests/integration`` checks both).  It is
practical up to ~8 workers and a few million parameters.
"""

from __future__ import annotations

import dataclasses
import heapq
import typing as t

import numpy as np

from repro.errors import SynchronizationError
from repro.collectives.primitives import ReduceOp
from repro.collectives.ring import ring_allreduce_worker
from repro.collectives.runner import run_workers
from repro.core.packing import GradientPacker
from repro.core.registration import GradientRegistry
from repro.core.runtime import AIACCConfig
from repro.core.synchronization import DecentralizedSynchronizer
from repro.models.base import ModelSpec
from repro.obs import Observability
from repro.sim.kernel import Simulator
from repro.sim.mpi import Communicator
from repro.sim.network import FluidNetwork
from repro.sim.resources import Resource
from repro.sim.topology import Cluster, NodeSpec

#: Tag namespace for gradient-unit rings.  A unit's tag is derived from
#: its starting *global element offset*, which is identical on every
#: worker regardless of the order in which concurrent synchronization
#: rounds complete locally (unit ids from the packer are call-ordered
#: and therefore NOT cross-worker stable).
_UNIT_TAG_BASE = 16 << 20
_UNIT_TAG_STRIDE = 1 << 13


@dataclasses.dataclass(frozen=True)
class MessageLevelResult:
    """Outcome of one message-level iteration."""

    iteration_time_s: float
    #: Per-worker reduced gradients, keyed by parameter name.
    reduced: list[dict[str, np.ndarray]]
    units: int
    sync_rounds: int
    #: Event-sequence digest (replay determinism); ``None`` unless the
    #: invariant checker ran.
    state_digest: str | None = None


class _SharedState:
    """Counters reported once (worker 0's view) per iteration."""

    def __init__(self) -> None:
        self.units_seen = 0
        self.sync_rounds = 0


def run_message_level_iteration(
    model: ModelSpec,
    num_nodes: int = 2,
    gpus_per_node: int = 2,
    config: AIACCConfig | None = None,
    compute_time_s: float = 0.0,
    seed: int = 0,
    check_invariants: bool = False,
    obs: Observability | None = None,
    compute_skew: t.Mapping[int, float] | None = None,
) -> MessageLevelResult:
    """Execute one full AIACC iteration with real per-worker processes.

    ``compute_time_s`` is the backward duration over which the gradient
    schedule is spread (0 = all gradients available immediately).
    ``compute_skew`` optionally scales that duration per rank
    (``{rank: factor}``, default 1.0) — the straggler scenario knob: one
    slow rank stretches its own backward while the cohort keeps pace.
    Gradient values are deterministic per (worker, parameter) so the
    reduction can be verified.

    With ``check_invariants`` (or ``config.check_invariants``, or the
    environment flag) the invariant checker runs as a shadow referee:
    every worker's unit plan and sync decision is compared against the
    other ranks' for the same round, and the returned
    ``state_digest`` fingerprints the full event sequence.
    """
    config = config or AIACCConfig()
    checking = check_invariants or config.check_invariants
    obs = obs or Observability.disabled()
    timeline = obs.timeline
    sim = Simulator(check_invariants=True if checking else None)
    checker = sim.invariants
    network = FluidNetwork(sim)
    network.obs = obs if obs.enabled else None
    network.diag = obs.diag
    cluster = Cluster(sim, num_nodes,
                      NodeSpec(gpus_per_node=gpus_per_node))
    world = cluster.world_size
    comm = Communicator(sim, size=world, cluster=cluster, network=network,
                        connections_per_pair=config.num_streams)
    rng = np.random.default_rng(seed)
    # Deterministic per-worker values: value(worker, param) = base + rank.
    bases = {p.name: float(rng.normal())
             for p in model.parameters()}

    registries = []
    for _rank in range(world):
        registry = GradientRegistry()
        registry.register_model(model)
        registry.freeze()
        registries.append(registry)
    synchronizers = [
        DecentralizedSynchronizer(sim, comm, rank, registries[rank],
                                  obs=obs)
        for rank in range(world)
    ]
    pools = [Resource(sim, config.num_streams, name=f"pool.r{rank}")
             for rank in range(world)]
    # Per-rank free CUDA-stream ids, smallest-first so lane assignment is
    # deterministic (mirrors :class:`repro.core.streams.CommStreamPool`).
    stream_ids = [list(range(config.num_streams)) for _ in range(world)]
    packers = [GradientPacker(config.granularity_bytes)
               for _ in range(world)]
    shared = _SharedState()
    element_bytes = 4
    # Global byte offset of each gradient in id order (identical on all
    # workers); anchors content-derived unit tags.
    prefix_bytes: dict[int, int] = {}
    cursor = 0
    for index, parameter in enumerate(
            registries[0].ordered_specs()):
        prefix_bytes[index] = cursor
        cursor += parameter.nbytes

    def worker(rank: int) -> t.Generator:
        registry = registries[rank]
        packer = packers[rank]
        grads: dict[int, np.ndarray] = {}
        specs = registry.ordered_specs()
        reduced: dict[str, np.ndarray] = {}
        communicated: set[int] = set()
        unit_procs = []

        def run_unit(unit) -> t.Generator:
            """One worker's participation in one unit's ring."""
            first = unit.slices[0]
            start_element = (prefix_bytes[first.grad_id]
                             + int(first.offset)) // element_bytes
            tag = _UNIT_TAG_BASE + start_element * _UNIT_TAG_STRIDE
            pieces = []
            for piece in unit.slices:
                lo = int(piece.offset // element_bytes)
                hi = lo + int(piece.nbytes // element_bytes)
                pieces.append(grads[piece.grad_id][lo:hi])
            buffer = np.concatenate(pieces)
            yield pools[rank].acquire()
            stream_id = heapq.heappop(stream_ids[rank])
            granted_at = sim.now
            try:
                out = yield sim.spawn(ring_allreduce_worker(
                    sim, comm, rank, buffer, op=ReduceOp.SUM,
                    tag_base=tag))
            finally:
                heapq.heappush(stream_ids[rank], stream_id)
                timeline.span("allreduce-unit", "network", rank,
                              granted_at, sim.now, stream=stream_id,
                              bytes=float(unit.nbytes))
                if obs.diag is not None:
                    obs.diag.observe_stream_span(
                        rank, stream_id, sim.now - granted_at,
                        float(unit.nbytes))
                pools[rank].release()
            out = t.cast(np.ndarray, out)
            cursor = 0
            for piece in unit.slices:
                lo = int(piece.offset // element_bytes)
                hi = lo + int(piece.nbytes // element_bytes)
                name = specs[piece.grad_id].name
                target = reduced.setdefault(
                    name, np.empty(specs[piece.grad_id].num_elements))
                target[lo:hi] = out[cursor:cursor + (hi - lo)]
                cursor += hi - lo

        def dispatch(batch: list[tuple[int, float]],
                     after, done_event) -> t.Generator:
            # Synchronization rounds serialize through the worker's MPI
            # daemon (paper Fig. 4): round k+1 starts only after round k
            # completed locally.  This also makes round-completion order
            # globally consistent, so every worker dispatches units in
            # the same order — a FIFO stream pool then cannot deadlock
            # across workers.
            if after is not None:
                yield after
            round_index = synchronizers[rank]._round
            ready = yield sim.spawn(synchronizers[rank].sync_round())
            if rank == 0:
                shared.sync_rounds += 1
            ready_new = [(gid, size) for gid, size in batch
                         if gid in set(t.cast(np.ndarray, ready))
                         and gid not in communicated]
            missing = [gid for gid, _ in batch
                       if gid not in set(t.cast(np.ndarray, ready))]
            if missing:
                raise SynchronizationError(
                    f"worker {rank}: batch gradients {missing} not "
                    "globally ready despite symmetric production"
                )
            units = packer.pack(ready_new)
            if checker is not None:
                # Shadow referee: every rank's independently computed
                # plan for this round must be structurally identical.
                checker.report_unit_plan(rank, round_index, units,
                                         config.granularity_bytes)
            communicated.update(gid for gid, _ in ready_new)
            if rank == 0:
                shared.units_seen += len(units)
            for unit in units:
                unit_procs.append(sim.spawn(
                    run_unit(unit), name=f"r{rank}.unit{unit.unit_id}"))
            done_event.succeed(None)

        # Backward pass: produce gradients on the schedule.
        step_start = sim.now
        timeline.begin_step(rank, 0, step_start)
        dispatch_procs = []
        previous_sync = None
        batch: list[tuple[int, float]] = []
        batch_bytes = 0.0
        elapsed = 0.0
        ids = {p.name: i for i, p in enumerate(specs)}
        skew = 1.0 if compute_skew is None \
            else float(compute_skew.get(rank, 1.0))
        for event in model.backward_schedule():
            target_t = event.time_fraction * compute_time_s * skew
            if target_t > elapsed:
                segment_start = sim.now
                yield sim.timeout(target_t - elapsed)
                timeline.span("backward", "compute", rank,
                              segment_start, sim.now)
                elapsed = target_t
            for parameter in event.parameters:
                gid = ids[parameter.name]
                grads[gid] = np.full(parameter.num_elements,
                                     bases[parameter.name] + rank)
                registry.mark_ready(parameter.name)
                batch.append((gid, parameter.nbytes))
                batch_bytes += parameter.nbytes
            if batch_bytes >= config.granularity_bytes:
                sync_done = sim.event(name=f"r{rank}.sync_done")
                dispatch_procs.append(sim.spawn(
                    dispatch(batch, previous_sync, sync_done)))
                previous_sync = sync_done
                batch = []
                batch_bytes = 0.0
        if batch:
            sync_done = sim.event(name=f"r{rank}.sync_done")
            dispatch_procs.append(sim.spawn(
                dispatch(batch, previous_sync, sync_done)))

        if dispatch_procs:
            yield sim.all_of(dispatch_procs)
        if unit_procs:
            yield sim.all_of(unit_procs)
        step_end = sim.now
        timeline.end_step(rank, 0, step_end)
        if obs.diag is not None:
            obs.diag.observe_step(rank, 0, step_end - step_start, step_end)
        return reduced

    processes = [sim.spawn(worker(rank), name=f"worker{rank}")
                 for rank in range(world)]
    results = run_workers(sim, processes)
    reduced = [
        {name: value for name, value in worker_result.items()}
        for worker_result in t.cast(list, results)
    ]
    return MessageLevelResult(
        iteration_time_s=sim.now,
        reduced=reduced,
        units=shared.units_seen,
        sync_rounds=shared.sync_rounds,
        state_digest=sim.state_digest(),
    )
