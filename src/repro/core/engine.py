"""The AIACC-Training communication engine (paper §V, Algorithm 1).

One iteration runs the pipeline of Fig. 6:

1. gradients appear asynchronously during backward propagation and are
   pushed into the gradient queue by the framework hook;
2. when the accumulated bytes reach the communication granularity, a
   **decentralized synchronization round** (bit-vector min all-reduce
   among the MPI daemons) confirms global readiness — asynchronously, off
   the critical path;
3. synchronized gradients are **packed** into all-reduce units of the
   tuned granularity (large tensors sliced, small tensors merged);
4. each unit is dispatched to a free stream of the **communication
   thread pool** and all-reduced concurrently with other units over the
   same physical network — the multi-streamed communication that lifts
   TCP utilisation from ≤30% toward the aggregate limit;
5. when every unit of the iteration has completed, gradients are
   unpacked and handed to the optimizer via the callback.
"""

from __future__ import annotations

import typing as t

from repro.errors import PeerDeadError, ProcessInterrupt, TrainingError
from repro.core.packing import GradientPacker, unpack
from repro.core.registration import GradientRegistry
from repro.core.runtime import AIACCConfig, DETECTION_DEADLINE_CAP_FACTOR
from repro.core.streams import CommStreamPool
from repro.frameworks.base import (
    BACKWARD_DONE,
    DDLBackend,
    IterationStats,
    ReadyGradient,
    TrainContext,
    UPDATE_TIME_S,
)
from repro.obs.metrics import STEP_TIME_BUCKETS
from repro.sim.invariants import InvariantChecker, ensure_invariants
from repro.sim.process import Process
from repro.sim.resources import Resource, Store


class AIACCBackend(DDLBackend):
    """Multi-streamed, decentralized gradient communication."""

    name = "aiacc"

    #: CPU time the MPI daemon spends launching one all-reduce unit
    #: (queue handling plus the NCCL group call).
    UNIT_DISPATCH_OVERHEAD_S = 50e-6

    def __init__(self, config: AIACCConfig | None = None) -> None:
        self.config = config or AIACCConfig()
        self._pool: CommStreamPool | None = None
        self._registry: GradientRegistry | None = None
        self._daemon: Resource | None = None
        self._checker: InvariantChecker | None = None
        #: Processes this iteration spawned that are still running;
        #: :meth:`abort` interrupts them on a confirmed peer death.
        #: Insertion-ordered (dict-as-set): processes hash by identity,
        #: so a plain set would make abort's interrupt order — and with
        #: it the cancel-vs-grant outcome of same-timestamp stream
        #: requests — depend on memory addresses, leaking allocation
        #: history into the replay digest.
        self._inflight: dict[Process, None] = {}
        #: Step index of the representative worker's timeline (-1 until
        #: the first iteration runs).
        self._step = -1
        #: Membership epoch of the worker group this engine serves.  The
        #: elastic runtime bumps it at every scale-up/down boundary via
        #: :meth:`advance_epoch`; spans and streams record it so traces
        #: of different topologies are distinguishable.
        self.epoch = 0

    # -- lifecycle -----------------------------------------------------------

    def warmup(self, ctx: TrainContext) -> t.Generator:
        """Create stream contexts and the registry (one-time setup)."""
        # Attach the invariant checker before building the pool/daemon so
        # their resources register their accounting ledgers with it.
        if self.config.check_invariants:
            self._checker = ensure_invariants(ctx.sim)
        else:
            self._checker = getattr(ctx.sim, "invariants", None)
        self._registry = GradientRegistry()
        self._registry.register_model(ctx.model)
        self._registry.freeze()
        self._pool = CommStreamPool(
            ctx.sim,
            ctx.cluster.gpu_device,
            self.config.num_streams,
            # Batch-size-aware occupancy (paper footnote 5): smaller
            # batches leave more SMs for communication streams.
            ctx.effective_occupancy,
            setup_latency_s=ctx.cluster.spec.transport.setup_latency_s,
            obs=ctx.obs,
        )
        # A rewarm after an elastic transition builds a fresh pool; it
        # serves the same (possibly advanced) membership epoch.
        self._pool.epoch = self.epoch
        registry = ctx.obs.registry
        self._m_gradients = registry.counter(
            "aiacc_gradients_total", "Gradients pushed by the framework")
        self._m_sync_rounds = registry.counter(
            "aiacc_sync_rounds_total",
            "Decentralized readiness synchronization rounds")
        self._m_units = registry.counter(
            "aiacc_units_total", "All-reduce units packed and launched")
        self._m_unit_bytes = registry.histogram(
            "aiacc_unit_bytes", "Wire size of packed all-reduce units",
            buckets=(1e6, 4e6, 16e6, 64e6, 256e6))
        self._m_iterations = registry.counter(
            "aiacc_iterations_total", "Completed training iterations")
        self._m_step_seconds = registry.histogram(
            "aiacc_step_seconds", "Simulated end-to-end step time",
            buckets=STEP_TIME_BUCKETS)
        # The per-GPU MPI daemon is single-threaded: synchronization
        # relays and unit launches serialize through it (paper Fig. 4).
        self._daemon = Resource(ctx.sim, 1, name="mpi-daemon")
        self._inflight.clear()
        yield self._pool.setup()

    def advance_epoch(self, epoch: int) -> None:
        """Enter membership epoch ``epoch`` after an elastic transition.

        Called by the recovery driver once the new worker group is
        formed.  Propagates the epoch to the stream pool (span metadata)
        and to the invariant checker, whose cross-worker referee tables
        are keyed per-topology and must not compare sync rounds or unit
        plans across a membership change.
        """
        if epoch < self.epoch:
            raise TrainingError(
                f"membership epoch moved backwards: {self.epoch} -> {epoch}")
        self.epoch = epoch
        if self._pool is not None:
            self._pool.epoch = epoch
        if self._checker is not None:
            self._checker.advance_epoch(epoch)

    def abort(self, cause: object = None) -> int:
        """Interrupt every in-flight dispatch/unit process.

        Called by the recovery driver after a confirmed peer death: units
        talking to the dead node would otherwise hold stream slots
        forever.  Returns the number of processes interrupted.
        """
        victims, self._inflight = list(self._inflight), {}
        interrupted = 0
        for victim in victims:
            if victim.can_interrupt:
                # A no-op watcher so the interrupt is recorded as a
                # failed event instead of surfacing out of sim.step().
                victim.add_callback(lambda _ev: None)
                victim.interrupt(cause)
                interrupted += 1
        return interrupted

    # -- iteration -----------------------------------------------------------

    def iteration(self, ctx: TrainContext) -> t.Generator:
        if self._pool is None or self._registry is None:
            raise TrainingError(
                "AIACCBackend.warmup() must run before iterations"
            )
        pool = self._pool
        registry = self._registry
        registry.reset_vector()
        packer = GradientPacker(self.config.granularity_bytes)

        timeline = ctx.obs.timeline
        self._step += 1
        step = self._step
        start = ctx.sim.now
        timeline.begin_step(0, step, start)
        yield ctx.sim.timeout(ctx.forward_time_s)
        timeline.span("forward", "compute", 0, start, ctx.sim.now)
        backward_start = ctx.sim.now
        pool.compute_started()

        gradients = Store(ctx.sim, name="aiacc.gradients")
        ctx.sim.spawn(ctx.backward_producer(gradients), name="backward")

        unit_processes: list[Process] = []
        dispatch_processes: list[Process] = []
        batch: list[tuple[int, float]] = []
        batch_bytes = 0.0

        while True:
            item = yield gradients.get()
            if item is BACKWARD_DONE:
                break
            grad = t.cast(ReadyGradient, item)
            grad_id = registry.mark_ready(grad.parameter.name)
            size = ctx.wire_bytes(grad.parameter)
            batch.append((grad_id, size))
            batch_bytes += size
            ctx.trace.incr("aiacc.gradients")
            self._m_gradients.inc()
            if batch_bytes >= self.config.granularity_bytes:
                dispatch_processes.append(self._track(ctx.sim.spawn(
                    self._dispatch(ctx, packer, batch, unit_processes),
                    name="aiacc.dispatch")))
                batch = []
                batch_bytes = 0.0

        pool.compute_finished()
        timeline.span("backward", "compute", 0, backward_start, ctx.sim.now)
        if batch:
            dispatch_processes.append(self._track(ctx.sim.spawn(
                self._dispatch(ctx, packer, batch, unit_processes),
                name="aiacc.dispatch")))

        # All dispatches must finish creating units before the barrier on
        # the units themselves is complete.
        if dispatch_processes:
            yield ctx.sim.all_of(dispatch_processes)
        if unit_processes:
            yield ctx.sim.all_of(unit_processes)

        if self._checker is not None:
            # Iteration boundary is a quiescence point: every stream slot
            # returned, no queued units, the daemon idle — anything else
            # means an interrupt leaked a grant or a counter drifted.
            self._checker.check_pool_quiescent(pool, rank=0)
            self._checker.check_idle(
                t.cast(Resource, self._daemon), rank=0)

        apply_start = ctx.sim.now
        yield ctx.sim.timeout(UPDATE_TIME_S)
        timeline.span("apply", "apply", 0, apply_start, ctx.sim.now)
        timeline.end_step(0, step, ctx.sim.now)
        self._m_iterations.inc()
        self._m_step_seconds.observe(ctx.sim.now - start)
        if ctx.obs.diag is not None:
            ctx.obs.diag.observe_step(0, step, ctx.sim.now - start,
                                      ctx.sim.now)
        return IterationStats(
            iteration_time_s=ctx.sim.now - start,
            compute_time_s=ctx.compute_time_s,
        )

    # -- internals -------------------------------------------------------------

    def _track(self, process: Process) -> Process:
        """Register a spawned process for :meth:`abort`.

        The tracking callback doubles as a watcher, so a failing tracked
        process records its exception (surfaced via the iteration
        barriers) rather than hard-raising out of the simulator.
        """
        self._inflight[process] = None
        process.add_callback(lambda _ev: self._inflight.pop(process, None))
        return process

    def _retrying(self, ctx: TrainContext,
                  launch: t.Callable[[], t.Any], phase: str,
                  timeout_s: float,
                  abandon: t.Callable[[t.Any], None] | None = None,
                  ) -> t.Generator:
        """Race ``launch()`` against a deadline, with bounded retries.

        The paper's failure detector: a missed deadline raises
        *suspicion*; only after ``comm_retries`` further attempts — each
        preceded by exponential backoff and given a doubled deadline —
        is the peer *confirmed* dead (:class:`PeerDeadError`).  The
        optional ``abandon`` callback tears down a timed-out attempt
        (e.g. interrupts a hung unit so it frees its streams).

        Both the per-attempt deadline and the backoff are clamped to
        ``config.max_detection_deadline_s`` (default:
        ``DETECTION_DEADLINE_CAP_FACTOR x timeout_s``) so confirmation
        latency grows linearly — not exponentially — in ``comm_retries``.
        """
        cap = self.config.max_detection_deadline_s
        if cap is None:
            cap = DETECTION_DEADLINE_CAP_FACTOR * timeout_s
        deadline = min(timeout_s, cap)
        suspected_at: float | None = None
        for attempt in range(self.config.comm_retries + 1):
            pending = launch()
            index, value = yield ctx.sim.any_of(
                [pending, ctx.sim.timeout(deadline)])
            if index == 0:
                return value
            if suspected_at is None:
                suspected_at = ctx.sim.now
                ctx.trace.fault("suspect", ctx.sim.now, phase=phase)
            ctx.trace.incr(f"aiacc.faults.{phase}_timeout")
            if abandon is not None:
                abandon(pending)
            if attempt < self.config.comm_retries:
                yield ctx.sim.timeout(min(
                    self.config.retry_backoff_s * (2 ** attempt), cap))
                deadline = min(deadline * 2, cap)
        ctx.trace.fault("confirm", ctx.sim.now, phase=phase)
        raise PeerDeadError(phase=phase,
                            suspected_at_s=t.cast(float, suspected_at),
                            confirmed_at_s=ctx.sim.now)

    def _dispatch(self, ctx: TrainContext, packer: GradientPacker,
                  batch: list[tuple[int, float]],
                  unit_processes: list[Process]) -> t.Generator:
        """Synchronize a gradient batch, pack it, launch its units.

        The daemon CPU work (relaying the bit-vector ring, launching
        units) is serialized on the single MPI daemon thread; the network
        round-trip of the synchronization ring is asynchronous and only
        delays when these units may start.
        """
        pool = t.cast(CommStreamPool, self._pool)
        daemon = t.cast(Resource, self._daemon)
        spec = ctx.cluster.spec
        units = packer.pack(batch)
        if self._checker is not None:
            self._checker.check_unit_plan(
                units, self.config.granularity_bytes, rank=0)

        # CPU service time on the daemon: one ring relay per sync round
        # plus one launch per unit.
        relay_cost = 2 * max(ctx.cluster.num_nodes - 1, 1) * \
            spec.transport.per_message_overhead_s
        service = relay_cost + len(units) * self.UNIT_DISPATCH_OVERHEAD_S
        request = daemon.acquire()
        try:
            yield request
        except ProcessInterrupt:
            # Abort while queued: withdraw the request so the grant is
            # not handed to a dead process.
            if not daemon.cancel(request):
                daemon.release()
            raise
        try:
            service_start = ctx.sim.now
            yield ctx.sim.timeout(service)
            ctx.obs.timeline.span("pack+launch", "pack", 0, service_start,
                                  ctx.sim.now, units=len(units))
        finally:
            daemon.release()

        # Network round-trip of the decentralized min all-reduce.  With a
        # sync deadline configured, this is the paper's master-free
        # failure detector: a missed round means suspicion.
        payload = max(1.0, len(t.cast(GradientRegistry,
                                      self._registry).sync_vector) / 8.0)
        negotiate_start = ctx.sim.now
        if self.config.sync_timeout_s is None:
            yield ctx.collectives.control_roundtrip(payload_bytes=payload)
        else:
            yield from self._retrying(
                ctx,
                lambda: ctx.collectives.control_roundtrip(
                    payload_bytes=payload),
                phase="sync", timeout_s=self.config.sync_timeout_s)
        ctx.obs.timeline.span("sync-round", "negotiate", 0,
                              negotiate_start, ctx.sim.now,
                              payload_bytes=payload)
        if ctx.obs.diag is not None:
            ctx.obs.diag.observe_negotiation(
                0, ctx.sim.now - negotiate_start)
        ctx.trace.incr("aiacc.sync_rounds")
        ctx.trace.incr("aiacc.units", len(units))
        self._m_sync_rounds.inc()
        self._m_units.inc(len(units))
        for unit in units:
            self._m_unit_bytes.observe(unit.nbytes)

        # A hierarchical or planner-synthesized unit occupies one CUDA
        # stream per local GPU for its inter-node stage (g parallel
        # rings / per-shard exchange streams); a flat-ring unit
        # occupies one.
        streams_per_unit = 1 if self.config.algorithm == "ring" \
            else spec.gpus_per_node
        for unit in units:
            def work(nbytes: float = unit.nbytes) -> t.Any:
                return ctx.collectives.allreduce(
                    nbytes, algorithm=self.config.algorithm)

            def unit_process(nbytes: float = unit.nbytes,
                             do_work: t.Callable = work) -> t.Generator:
                # Paper §V-A.2: with GPU-direct RDMA the bucket lives in
                # GPU memory; over TCP it is staged through CPU memory.
                staging = ctx.staging_time_s(nbytes)
                if staging:
                    staging_start = ctx.sim.now
                    yield ctx.sim.timeout(staging)
                    ctx.obs.timeline.span("staging", "staging", 0,
                                          staging_start, ctx.sim.now,
                                          bytes=nbytes)
                if self.config.unit_timeout_s is None:
                    result = yield ctx.sim.spawn(
                        pool.run_unit(do_work, streams=streams_per_unit,
                                      label="allreduce-unit", bytes=nbytes))
                    return result

                def launch() -> Process:
                    return self._track(ctx.sim.spawn(
                        pool.run_unit(do_work, streams=streams_per_unit,
                                      label="allreduce-unit",
                                      bytes=nbytes)))

                def abandon(runner: Process) -> None:
                    # Free the hung attempt's streams before retrying.
                    if runner.can_interrupt:
                        runner.add_callback(lambda _ev: None)
                        runner.interrupt("unit timeout")

                result = yield from self._retrying(
                    ctx, launch, phase="unit",
                    timeout_s=t.cast(float, self.config.unit_timeout_s),
                    abandon=abandon)
                return result

            unit_processes.append(self._track(ctx.sim.spawn(
                unit_process(), name=f"aiacc.unit{unit.unit_id}")))
        # Account for the unpack/regroup callback bookkeeping.
        unpack(units)
