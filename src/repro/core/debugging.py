"""Debugging support: NaN detection and gradient statistics (paper §IV).

"It offers debugging support like identifying NaN (not a number) values
from individual gradients - a headache for many users during DDL."

The key property is *attribution*: instead of the loss silently becoming
NaN three layers later, the check fires on the exact parameter and worker
that produced the first non-finite gradient.
"""

from __future__ import annotations

import dataclasses
import math

import numpy as np

from repro.errors import NaNGradientError


def check_finite(name: str, gradient: np.ndarray, worker_rank: int) -> None:
    """Raise :class:`NaNGradientError` if ``gradient`` has NaN/Inf values."""
    if not np.all(np.isfinite(gradient)):
        raise NaNGradientError(name, worker_rank)


@dataclasses.dataclass
class GradientStats:
    """Running statistics of one parameter's gradients."""

    updates: int = 0
    last_norm: float = 0.0
    max_abs: float = 0.0
    nan_count: int = 0

    def observe(self, gradient: np.ndarray) -> None:
        self.updates += 1
        finite = gradient[np.isfinite(gradient)]
        self.nan_count += int(gradient.size - finite.size)
        if finite.size:
            self.last_norm = float(np.linalg.norm(finite))
            self.max_abs = max(self.max_abs, float(np.max(np.abs(finite))))


class GradientDebugger:
    """Per-parameter gradient monitor with optional strict NaN checking."""

    def __init__(self, nan_check: bool = True,
                 explosion_threshold: float = 1e4) -> None:
        self.nan_check = nan_check
        #: Gradient-norm level above which :meth:`warnings` flags a tensor.
        self.explosion_threshold = explosion_threshold
        self.stats: dict[str, GradientStats] = {}

    def observe(self, name: str, gradient: np.ndarray,
                worker_rank: int = 0) -> None:
        """Record one gradient; raises on NaN when strict checking is on."""
        if self.nan_check:
            check_finite(name, gradient, worker_rank)
        self.stats.setdefault(name, GradientStats()).observe(gradient)

    def warnings(self) -> list[str]:
        """Human-readable anomaly report (NaNs seen, exploding norms)."""
        issues = []
        for name, stat in sorted(self.stats.items()):
            if stat.nan_count:
                issues.append(
                    f"{name}: {stat.nan_count} non-finite values observed"
                )
            if stat.last_norm > self.explosion_threshold or \
                    math.isinf(stat.last_norm):
                issues.append(
                    f"{name}: gradient norm {stat.last_norm:.3g} exceeds "
                    f"{self.explosion_threshold:g}"
                )
        return issues
