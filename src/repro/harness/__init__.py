"""Experiment harness: regenerates every table and figure of the paper.

See :mod:`repro.harness.experiments` for one function per table/figure and
:mod:`repro.harness.report` for table rendering/persistence.  The
``benchmarks/`` directory drives these functions under pytest-benchmark
and asserts the paper's shape criteria.
"""

from repro.harness.chaos import (
    ChaosOutcome,
    ChaosSoakReport,
    default_chaos_model,
    run_chaos_case,
    run_chaos_soak,
)
from repro.harness.experiments import (
    congested_algorithm_choice,
    PYTORCH_BACKENDS,
    SCALE_AXIS,
    autotune_parameters,
    bandwidth_utilization,
    ctr_production,
    dawnbench,
    fig2_motivation,
    fig9_cv_pytorch,
    fig10_nlp_pytorch,
    fig11_tensorflow,
    fig12_mxnet,
    fig13_hybrid,
    fig14_batchsize,
    fig15_rdma,
    future_gpu_whatif,
    insightface_speedup,
    measure,
    planner_backend_sweep,
    scaling_efficiency_summary,
    throughput_matrix,
    tuned_aiacc_config,
)
from repro.harness.report import (
    ascii_chart,
    format_table,
    save_report,
    series_summary,
)

__all__ = [
    "ChaosOutcome",
    "ChaosSoakReport",
    "PYTORCH_BACKENDS",
    "SCALE_AXIS",
    "default_chaos_model",
    "run_chaos_case",
    "run_chaos_soak",
    "autotune_parameters",
    "bandwidth_utilization",
    "congested_algorithm_choice",
    "ctr_production",
    "dawnbench",
    "fig2_motivation",
    "fig9_cv_pytorch",
    "fig10_nlp_pytorch",
    "fig11_tensorflow",
    "fig12_mxnet",
    "fig13_hybrid",
    "fig14_batchsize",
    "fig15_rdma",
    "ascii_chart",
    "format_table",
    "future_gpu_whatif",
    "insightface_speedup",
    "measure",
    "planner_backend_sweep",
    "save_report",
    "scaling_efficiency_summary",
    "series_summary",
    "throughput_matrix",
    "tuned_aiacc_config",
]
